"""SimulatedDisk cost accounting: the substrate every result rests on."""

import pytest

from repro.storage.disk import DiskProfile, DiskStats, SimClock, SimulatedDisk


@pytest.fixture()
def disk():
    return SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock(),
                         page_size=8192, extent_pages=16)


def test_hdd_profile_ratio():
    hdd = DiskProfile.hdd()
    assert hdd.rand_cost / hdd.seq_cost == 10.0


def test_ssd_profile_ratio():
    ssd = DiskProfile.ssd()
    assert ssd.rand_cost / ssd.seq_cost == 2.0


def test_first_read_is_random(disk):
    disk.read_page(0, 10)
    assert disk.stats.rand_pages == 1
    assert disk.stats.seq_pages == 0
    assert disk.stats.requests == 1


def test_adjacent_read_is_sequential(disk):
    disk.read_page(0, 10)
    disk.read_page(0, 11)
    assert disk.stats.seq_pages == 1
    assert disk.stats.rand_pages == 1


def test_short_forward_skip_is_sequential(disk):
    # Prefetchers absorb small forward skips (Sort Scan's pattern).
    disk.read_page(0, 10)
    disk.read_page(0, 10 + disk.seq_window)
    assert disk.stats.seq_pages == 1


def test_long_forward_jump_is_random(disk):
    disk.read_page(0, 10)
    disk.read_page(0, 11 + disk.seq_window)
    assert disk.stats.rand_pages == 2


def test_backward_read_is_random(disk):
    disk.read_page(0, 10)
    disk.read_page(0, 9)
    assert disk.stats.rand_pages == 2


def test_other_file_breaks_sequence(disk):
    disk.read_page(0, 10)
    disk.read_page(1, 11)
    assert disk.stats.rand_pages == 2


def test_stream_hint_survives_interleaving(disk):
    # A leaf chain stays sequential across interleaved heap reads.
    disk.read_page(1, 0, stream_hint=True)
    disk.read_page(0, 500)             # heap fetch in between
    disk.read_page(1, 1, stream_hint=True)
    assert disk.stats.seq_pages == 1
    assert disk.stats.rand_pages == 2


def test_read_run_costs_one_random_plus_sequential(disk):
    disk.read_run(0, 100, 8)
    expected = disk.profile.page_ms(False) + 7 * disk.profile.page_ms(True)
    assert disk.clock.io_ms == pytest.approx(expected)
    assert disk.stats.pages_read == 8
    assert disk.stats.requests == 1  # within one extent


def test_read_run_requests_batched_per_extent(disk):
    disk.read_run(0, 0, 33)
    assert disk.stats.requests == 3  # ceil(33/16)


def test_read_run_continuation_is_fully_sequential(disk):
    disk.read_run(0, 0, 16)
    disk.read_run(0, 16, 16)
    assert disk.stats.rand_pages == 1
    assert disk.stats.seq_pages == 31


def test_read_run_empty_is_free(disk):
    disk.read_run(0, 0, 0)
    assert disk.stats.pages_read == 0
    assert disk.clock.total_ms == 0


def test_bytes_accounting(disk):
    disk.read_page(0, 0)
    disk.read_run(0, 1, 4)
    assert disk.stats.bytes_read == 5 * 8192


def test_spill_charges_two_sequential_passes(disk):
    disk.spill(32)
    expected = 2 * 32 * disk.profile.page_ms(True)
    assert disk.clock.io_ms == pytest.approx(expected)
    assert disk.stats.requests == 4  # 2 x ceil(32/16)


def test_stats_snapshot_diff():
    stats = DiskStats(requests=5, pages_read=10, seq_pages=7,
                      rand_pages=3, bytes_read=100)
    before = stats.snapshot()
    stats.requests += 2
    stats.pages_read += 1
    delta = stats.diff(before)
    assert delta.requests == 2
    assert delta.pages_read == 1


def test_clock_split_and_reset():
    clock = SimClock()
    clock.charge_io(5.0)
    clock.charge_cpu(2.0)
    assert clock.total_ms == 7.0
    assert clock.snapshot() == (5.0, 2.0)
    clock.reset()
    assert clock.total_ms == 0.0


def test_disk_reset_clears_head(disk):
    disk.read_page(0, 10)
    disk.reset()
    disk.read_page(0, 11)
    assert disk.stats.rand_pages == 1  # no memory of the pre-reset head
