"""Predicates, key ranges, and range extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanningError
from repro.exec.expressions import (
    And,
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    KeyRange,
    Not,
    Or,
    StringMatch,
    TruePredicate,
    column_getter,
    conjunction,
    extract_range,
    require_columns,
)
from repro.storage.types import Schema

SCHEMA = Schema.of_ints(["a", "b", "c"])


def bind(pred):
    return pred.bind(SCHEMA)


def test_true_predicate():
    assert bind(TruePredicate())((1, 2, 3))


@pytest.mark.parametrize("op,value,expect", [
    (CompareOp.EQ, 2, True), (CompareOp.NE, 2, False),
    (CompareOp.LT, 3, True), (CompareOp.LE, 2, True),
    (CompareOp.GT, 1, True), (CompareOp.GE, 3, False),
])
def test_comparison_ops(op, value, expect):
    assert bind(Comparison("b", op, value))((1, 2, 3)) is expect


def test_between_bounds():
    assert bind(Between("b", 1, 3))((0, 1, 0))
    assert not bind(Between("b", 1, 3))((0, 3, 0))
    assert bind(Between("b", 1, 3, hi_inclusive=True))((0, 3, 0))
    assert not bind(Between("b", 1, 3, lo_inclusive=False))((0, 1, 0))


def test_in_list():
    pred = bind(InList("a", (1, 5, 9)))
    assert pred((5, 0, 0))
    assert not pred((2, 0, 0))


def test_and_or_not_composition():
    pred = (Comparison("a", CompareOp.GT, 0)
            & Comparison("b", CompareOp.LT, 10))
    assert bind(pred)((1, 5, 0))
    assert not bind(pred)((0, 5, 0))
    disj = (Comparison("a", CompareOp.EQ, 1)
            | Comparison("a", CompareOp.EQ, 2))
    assert bind(disj)((2, 0, 0))
    assert bind(Not(Comparison("a", CompareOp.EQ, 1)))((2, 0, 0))


def test_string_match_kinds():
    row = ("PROMO BRUSHED TIN",)

    def match(kind, value):
        from repro.storage.types import Column, ColumnType
        s = Schema([Column("s", ColumnType.CHAR, 25)])
        return StringMatch("s", kind, value).bind(s)(row)

    assert match("prefix", "PROMO")
    assert match("suffix", "TIN")
    assert match("contains", "BRUSHED")
    assert not match("prefix", "TIN")


def test_string_match_bad_kind():
    with pytest.raises(PlanningError):
        StringMatch("s", "regex", "x")


def test_column_comparison():
    pred = bind(ColumnComparison("a", CompareOp.LT, "b"))
    assert pred((1, 2, 0))
    assert not pred((2, 1, 0))


def test_key_range_contains():
    rng = KeyRange(10, 20)
    assert rng.contains(10) and rng.contains(19)
    assert not rng.contains(20) and not rng.contains(9)
    assert KeyRange.equal(5).contains(5)
    assert KeyRange.all().contains(-999)
    assert not KeyRange(10, 20, lo_inclusive=False).contains(10)
    assert KeyRange(10, 20, hi_inclusive=True).contains(20)


def test_key_range_intersect():
    merged = KeyRange(0, 100).intersect(KeyRange(50, 200))
    assert merged.lo == 50 and merged.hi == 100
    point = KeyRange.equal(5).intersect(KeyRange(0, 10))
    assert point.contains(5)


def test_extract_range_comparison():
    rng, residual = extract_range(Comparison("b", CompareOp.GE, 7), "b")
    assert rng.lo == 7 and rng.lo_inclusive and rng.hi is None
    assert isinstance(residual, TruePredicate)


def test_extract_range_between():
    rng, residual = extract_range(Between("b", 1, 9), "b")
    assert (rng.lo, rng.hi) == (1, 9)
    assert isinstance(residual, TruePredicate)


def test_extract_range_wrong_column():
    pred = Comparison("a", CompareOp.GE, 7)
    rng, residual = extract_range(pred, "b")
    assert rng is None
    assert residual is pred


def test_extract_range_conjunction_combines():
    pred = And([
        Comparison("b", CompareOp.GE, 5),
        Comparison("b", CompareOp.LT, 10),
        Comparison("a", CompareOp.EQ, 1),
    ])
    rng, residual = extract_range(pred, "b")
    assert (rng.lo, rng.hi) == (5, 10)
    assert "a" in residual.columns()
    assert "b" not in residual.columns()


def test_extract_range_ne_is_residual():
    rng, residual = extract_range(Comparison("b", CompareOp.NE, 5), "b")
    assert rng is None
    assert residual.columns() == {"b"}


def test_extract_range_or_is_opaque():
    pred = Or([Comparison("b", CompareOp.EQ, 1),
               Comparison("b", CompareOp.EQ, 2)])
    rng, residual = extract_range(pred, "b")
    assert rng is None
    assert residual is pred


def test_extract_range_in_list_bounds_with_residual():
    pred = InList("b", (30, 5, 12))
    rng, residual = extract_range(pred, "b")
    assert (rng.lo, rng.hi) == (5, 30)
    assert rng.lo_inclusive and rng.hi_inclusive
    # The range over-approximates membership: the full IN stays residual.
    assert residual is pred


def test_extract_range_in_list_conjunction_intersects():
    pred = And([
        InList("b", (5, 12, 30)),
        Comparison("b", CompareOp.LT, 20),
        Comparison("a", CompareOp.EQ, 1),
    ])
    rng, residual = extract_range(pred, "b")
    assert (rng.lo, rng.hi) == (5, 20)
    assert not rng.hi_inclusive
    # Residual keeps both the membership check and the other column.
    assert residual.columns() == {"a", "b"}


def test_extract_range_in_list_respects_rows():
    # Semantics check: range + residual together select exactly the
    # IN members, as every index-driven path assumes.
    schema = Schema.of_ints(["a", "b"])
    rows = [(i, i % 7) for i in range(50)]
    pred = InList("b", (2, 5))
    rng, residual = extract_range(pred, "b")
    matched = [
        r for r in rows
        if rng.contains(r[1]) and residual.bind(schema)(r)
    ]
    assert matched == [r for r in rows if r[1] in (2, 5)]


def test_extract_range_empty_in_list_is_opaque():
    pred = InList("b", ())
    rng, residual = extract_range(pred, "b")
    assert rng is None
    assert residual is pred


def test_extract_range_unorderable_in_list_is_opaque():
    # Mixed-type IN lists bind fine (frozenset membership) but have no
    # ordered bounds; they must stay opaque instead of raising.
    pred = InList("b", (5, "x"))
    rng, residual = extract_range(pred, "b")
    assert rng is None
    assert residual is pred


def test_predicate_reprs_are_sqlish():
    assert repr(Between("c2", 0, 20_000, hi_inclusive=True)) == \
        "c2 BETWEEN 0 AND 20000"
    assert repr(Between("c2", 0, 20_000)) == "c2 >= 0 AND c2 < 20000"
    assert repr(InList("c2", (1, 2, 3))) == "c2 IN (1, 2, 3)"
    assert repr(Not(Comparison("c2", CompareOp.EQ, 5))) == "NOT (c2 = 5)"
    assert repr(And([Comparison("a", CompareOp.GT, 1),
                     InList("b", (7,))])) == "(a > 1 AND b IN (7))"


def test_conjunction_simplifies():
    assert isinstance(conjunction([]), TruePredicate)
    single = Comparison("a", CompareOp.EQ, 1)
    assert conjunction([TruePredicate(), single]) is single
    multi = conjunction([single, Comparison("b", CompareOp.EQ, 2)])
    assert isinstance(multi, And)


def test_require_columns():
    require_columns(SCHEMA, Comparison("a", CompareOp.EQ, 1))
    with pytest.raises(PlanningError):
        require_columns(SCHEMA, Comparison("z", CompareOp.EQ, 1))


def test_column_getter():
    get_b = column_getter(SCHEMA, "b")
    assert get_b((1, 2, 3)) == 2


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50),
                       st.integers(0, 50)), max_size=100),
    st.integers(0, 50), st.integers(0, 50), st.integers(0, 50),
)
def test_property_extract_range_equivalence(rows, lo, hi, other):
    """Range + residual must accept exactly the rows the original does."""
    pred = And([
        Comparison("b", CompareOp.GE, lo),
        Comparison("b", CompareOp.LT, hi),
        Comparison("a", CompareOp.GE, other),
    ])
    rng, residual = extract_range(pred, "b")
    bound_orig = pred.bind(SCHEMA)
    bound_res = residual.bind(SCHEMA)
    for row in rows:
        recombined = rng.contains(row[1]) and bound_res(row)
        assert recombined == bound_orig(row)
