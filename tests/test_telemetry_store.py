"""The self-hosted history store: events in engine tables, SQL rollups."""

import pytest

from repro.database import Database
from repro.exec.scheduler import CooperativeScheduler
from repro.optimizer.planner import PlannerOptions
from repro.telemetry import HistoryStore
from repro.telemetry.rollups import (
    by_bin,
    by_client,
    totals,
    verify_against_report,
)
from repro.telemetry.schema import EVENTS_TABLE, QUERIES_TABLE
from repro.telemetry.store import WAREHOUSE_BUFFER_PAGES
from repro.workloads.micro import build_micro_table

NUM_TUPLES = 12_000

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"

SMOOTH = PlannerOptions(enable_sort_scan=False, enable_smooth=True)


@pytest.fixture()
def traced_db():
    db = Database()
    build_micro_table(db, num_tuples=NUM_TUPLES, seed=7)
    db.analyze()
    db.tracer.enable()
    return db


def run_scheduled(db, clients=2, queries=3):
    conn = db.connect(options=SMOOTH, cold=False)
    statement = conn.prepare(SQL)
    scheduler = CooperativeScheduler(db)
    for i in range(clients):
        client = scheduler.client(f"c{i + 1}")
        for j in range(queries):
            hi = 10_000 + 10_000 * j
            client.add_query(
                f"q{j}",
                lambda s=statement, p={"lo": 0, "hi": hi}: s.execute(p),
            )
    return scheduler.run(cold=True, interleave=True)


def test_sync_persists_events_and_spans(traced_db):
    report = run_scheduled(traced_db)
    store = HistoryStore()
    ingested = store.sync(traced_db.tracer)
    assert ingested > 0
    assert store.event_count == ingested
    assert store.query_count == len(report.records)
    # Draining means a second sync ingests nothing new.
    assert store.sync(traced_db.tracer) == 0


def test_store_uses_its_own_warehouse_database(traced_db):
    store = HistoryStore()
    store.sync(traced_db.tracer)
    assert store.db is not traced_db
    assert store.db.config.buffer_pool_pages == WAREHOUSE_BUFFER_PAGES
    # The measured database never grew telemetry tables.
    assert QUERIES_TABLE not in traced_db.tables
    assert QUERIES_TABLE in store.db.tables
    assert EVENTS_TABLE in store.db.tables


def test_query_id_is_btree_indexed_and_joinable(traced_db):
    run_scheduled(traced_db)
    store = HistoryStore()
    store.sync(traced_db.tracer)
    assert "query_id" in store.db.table(QUERIES_TABLE).indexes
    assert "query_id" in store.db.table(EVENTS_TABLE).indexes
    with store.connect() as conn:
        span = conn.run(
            f"SELECT query_id, rows_out FROM {QUERIES_TABLE} "
            "WHERE run_id = 0"
        ).rows[0]
        drill = conn.run(
            f"SELECT count(*) AS n FROM {EVENTS_TABLE} "
            "WHERE query_id = :qid", {"qid": span[0]}
        ).rows[0]
    assert drill[0] >= 2  # at least query.start + query.finish


def test_rollups_agree_with_workload_report(traced_db):
    report = run_scheduled(traced_db)
    store = HistoryStore()
    store.sync(traced_db.tracer)
    assert verify_against_report(store, report, run_id=0) == []
    t = totals(store, run_id=0)
    assert t["queries"] == len(report.records)
    assert int(t["rows_out"]) == report.rows
    per_client = by_client(store, run_id=0)
    assert [row["client"] for row in per_client] == ["c1", "c2"]
    assert all(row["queries"] == 3 for row in per_client)
    bins = by_bin(store, run_id=0)
    assert sum(row["queries"] for row in bins) == len(report.records)
    # Bins are emitted in ascending order by the ORDER BY.
    assert [row["bin"] for row in bins] \
        == sorted(row["bin"] for row in bins)


def test_incremental_sync_completes_open_spans(traced_db):
    conn = traced_db.connect(options=SMOOTH, cold=False)
    cursor = conn.cursor().execute(SQL, {"lo": 0, "hi": 50_000})
    cursor.fetchmany(10)  # span open: started, not finished
    store = HistoryStore()
    store.sync(traced_db.tracer)
    assert store.query_count == 0  # start held back, no finish yet
    cursor.fetchall()
    store.sync(traced_db.tracer)
    assert store.query_count == 1  # the later sync closed the span
    row = totals(store, run_id=0)
    assert row["queries"] == 1


def test_runs_are_isolated_by_run_id(traced_db):
    report = run_scheduled(traced_db)
    store = HistoryStore()
    events = traced_db.tracer.drain()
    store.ingest(events, run_id=3)
    store.ingest(events, run_id=4)
    for run_id in (3, 4):
        assert totals(store, run_id=run_id)["queries"] \
            == len(report.records)
    assert totals(store, run_id=0)["queries"] == 0


def test_empty_run_rolls_up_to_zeros():
    store = HistoryStore()
    t = totals(store, run_id=9)
    assert t["queries"] == 0
    assert t["rows_out"] == 0.0
    assert by_bin(store, run_id=9) == []
