"""Buffer pool LRU semantics, hit/miss charging, and cold runs."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskProfile, SimClock, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.types import Schema


@pytest.fixture()
def setup():
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    pool = BufferPool(disk=disk, capacity_pages=4)
    heap = HeapFile(file_id=0, schema=Schema.of_ints(["a"]),
                    tuples_per_page=2)
    for i in range(40):
        heap.append((i,))
    return disk, pool, heap


def test_miss_then_hit(setup):
    disk, pool, heap = setup
    pool.get_page(heap, 3)
    assert pool.stats.misses == 1
    pool.get_page(heap, 3)
    assert pool.stats.hits == 1
    assert disk.stats.pages_read == 1  # second access served from memory


def test_hit_charges_only_cpu(setup):
    disk, pool, heap = setup
    pool.get_page(heap, 0)
    io_before = disk.clock.io_ms
    pool.get_page(heap, 0)
    assert disk.clock.io_ms == io_before
    assert disk.clock.cpu_ms > 0


def test_lru_eviction(setup):
    disk, pool, heap = setup
    for pid in range(5):  # capacity 4 -> page 0 evicted
        pool.get_page(heap, pid)
    assert not pool.contains(heap, 0)
    assert pool.contains(heap, 4)
    pool.get_page(heap, 0)
    assert pool.stats.misses == 6


def test_lru_touch_refreshes(setup):
    disk, pool, heap = setup
    for pid in range(4):
        pool.get_page(heap, pid)
    pool.get_page(heap, 0)     # refresh page 0
    pool.get_page(heap, 9)     # evicts page 1, not 0
    assert pool.contains(heap, 0)
    assert not pool.contains(heap, 1)


def test_get_run_batches_misses(setup):
    disk, pool, heap = setup
    pages = pool.get_run(heap, 0, 4)
    assert [p.page_id for p in pages] == [0, 1, 2, 3]
    assert disk.stats.requests == 1
    assert disk.stats.pages_read == 4


def test_get_run_skips_resident_pages(setup):
    disk, pool, heap = setup
    pool.get_page(heap, 1)
    disk.reset()
    pool.get_run(heap, 0, 3)
    # Page 1 was resident: only pages 0 and 2 hit the disk.
    assert disk.stats.pages_read == 2


def test_get_run_clips_at_end_of_file(setup):
    disk, pool, heap = setup
    pages = pool.get_run(heap, 18, 10)
    assert [p.page_id for p in pages] == [18, 19]


def test_get_run_empty(setup):
    _disk, pool, heap = setup
    assert pool.get_run(heap, 0, 0) == []


def test_reset_evicts_everything(setup):
    disk, pool, heap = setup
    pool.get_page(heap, 0)
    pool.reset()
    assert len(pool) == 0
    assert pool.stats.misses == 0
    pool.get_page(heap, 0)
    assert pool.stats.misses == 1


def test_capacity_must_be_positive():
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    with pytest.raises(StorageError):
        BufferPool(disk=disk, capacity_pages=0)


def test_hit_rate(setup):
    _disk, pool, heap = setup
    pool.get_page(heap, 0)
    pool.get_page(heap, 0)
    pool.get_page(heap, 0)
    assert pool.stats.hit_rate == pytest.approx(2 / 3)
