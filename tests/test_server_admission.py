"""SLA-aware admission: price with the planner, admit/degrade/reject."""

import math

import pytest

from repro.core.trigger import SLADrivenTrigger
from repro.costmodel.formulas import full_scan_cost
from repro.database import Database
from repro.errors import ConfigError
from repro.experiments.concurrency import CLASSIC_OPTIONS, SMOOTH_OPTIONS
from repro.server.admission import (
    ADMIT,
    DEGRADE,
    REJECT,
    AdmissionController,
    AdmissionStats,
)
from repro.storage.types import Column, ColumnType, Schema
from repro.workloads.micro import build_micro_table

#: 100 pages; the scale where index wins at the seed selectivity and
#: the eager smooth worst case fits inside two full scans.
NUM_TUPLES = 12_000

SQL = "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi"


@pytest.fixture(scope="module")
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=NUM_TUPLES, seed=7)
    db.analyze()
    return db


def seeded(db, options):
    """A connection whose plan cache holds the 0.05%-selectivity recipe."""
    conn = db.connect(options=options, cold=False)
    statement = conn.prepare(SQL)
    statement.run({"lo": 0, "hi": 50}, keep_rows=False)
    return conn, statement


def test_budget_is_the_sla_multiple_of_full_scan(micro_db):
    ac = AdmissionController(micro_db, sla_multiple=2.0)
    params = ac.table_params("micro")
    assert ac.budget_for("micro") == \
        2.0 * full_scan_cost(params.at_selectivity(1.0))
    # Memoized: same float object/value on every lookup.
    assert ac.budget_for("micro") == ac.budget_for("micro")


def test_selective_probe_admits(micro_db):
    ac = AdmissionController(micro_db)
    conn, statement = seeded(micro_db, CLASSIC_OPTIONS)
    decision = ac.decide(conn, statement, {"lo": 0, "hi": 100})
    assert decision.action == ADMIT
    assert decision.admitted
    assert decision.estimated_cost <= decision.budget
    conn.close()


def test_drifted_replay_degrades_to_bounded_smooth(micro_db):
    # The cached recipe pins the index path chosen at 0.05%; re-priced
    # at 8% selectivity the same plan costs ~50x the budget, and the
    # controller re-routes it to the SLA-triggered Smooth Scan.
    ac = AdmissionController(micro_db)
    conn, statement = seeded(micro_db, CLASSIC_OPTIONS)
    decision = ac.decide(conn, statement, {"lo": 0, "hi": 8_000})
    assert decision.action == DEGRADE
    assert decision.admitted
    assert decision.estimated_cost > decision.budget
    options = ac.degrade_options_for("micro", CLASSIC_OPTIONS)
    assert options.force_path == "smooth"
    assert isinstance(options.smooth_trigger, SLADrivenTrigger)
    # One stable options object per table: degraded executions share a
    # plan-cache entry instead of fingerprinting a fresh trigger each.
    assert ac.degrade_options_for("micro", CLASSIC_OPTIONS) is options
    conn.close()


def test_force_path_hint_forbids_degrading(micro_db):
    ac = AdmissionController(micro_db)
    conn = micro_db.connect(options=CLASSIC_OPTIONS, cold=False)
    statement = conn.prepare(
        "SELECT /*+ force_path(index) */ * FROM micro "
        "WHERE c2 >= :lo AND c2 < :hi")
    decision = ac.decide(conn, statement, {"lo": 0, "hi": 50_000})
    assert decision.action == REJECT
    assert not decision.admitted
    assert decision.estimated_cost > decision.budget
    assert "force_path(index)" in decision.reason
    assert decision.to_dict()["action"] == "reject"
    conn.close()


def test_smooth_plans_are_priced_not_nan(micro_db):
    # The planner leaves smooth decisions uncosted (NaN); admission
    # must still price them — with the smooth cost model — so the
    # budget comparison is meaningful.
    ac = AdmissionController(micro_db)
    conn, statement = seeded(micro_db, SMOOTH_OPTIONS)
    _planned, cost = ac.price(conn, statement, {"lo": 0, "hi": 8_000})
    assert math.isfinite(cost)
    assert cost > 0
    decision = ac.decide(conn, statement, {"lo": 0, "hi": 8_000})
    # The smooth expectation at 8% fits: no degrade, no rejection.
    assert decision.action == ADMIT
    conn.close()


def test_tight_sla_rejects_when_no_degrade_can_help(micro_db):
    # Half a full scan is below the eager smooth worst case: nothing
    # on this table can bound the blowup, so over-budget = reject.
    ac = AdmissionController(micro_db, sla_multiple=0.5)
    assert ac.degrade_options_for("micro", CLASSIC_OPTIONS) is None
    conn, statement = seeded(micro_db, CLASSIC_OPTIONS)
    decision = ac.decide(conn, statement, {"lo": 0, "hi": 8_000})
    assert decision.action == REJECT
    assert "no Smooth Scan" in decision.reason
    conn.close()


def test_unindexed_table_has_budget_but_no_degrade_path():
    db = Database()
    schema = Schema((Column("k", ColumnType.INT),))
    table = db.create_table("bare", schema)
    table.insert_many([(i,) for i in range(5_000)])
    db.analyze()
    ac = AdmissionController(db)
    assert ac.budget_for("bare") > 0
    assert ac.degrade_options_for("bare", None) is None


def test_controller_validates_configuration(micro_db):
    with pytest.raises(ConfigError):
        AdmissionController(micro_db, sla_multiple=0.0)
    with pytest.raises(ConfigError):
        AdmissionController(micro_db, max_inflight=0)


def test_inflight_slots_ration_and_release(micro_db):
    ac = AdmissionController(micro_db, max_inflight=2)
    assert ac.slots_free == 2
    assert ac.try_acquire() and ac.try_acquire()
    assert ac.slots_free == 0
    assert not ac.try_acquire()
    ac.release()
    assert ac.slots_free == 1
    ac.release()
    with pytest.raises(ConfigError):
        ac.release()  # nothing held


def test_stats_counters_and_queue_percentiles(micro_db):
    ac = AdmissionController(micro_db)
    conn, statement = seeded(micro_db, CLASSIC_OPTIONS)
    admit = ac.decide(conn, statement, {"lo": 0, "hi": 100})
    degrade = ac.decide(conn, statement, {"lo": 0, "hi": 8_000})
    stats = AdmissionStats()
    stats.note_admitted(admit, wait_ms=0.0, was_queued=False)
    stats.note_admitted(degrade, wait_ms=12.5, was_queued=True)
    stats.note_rejected(degrade)
    assert (stats.admitted, stats.degraded, stats.rejected) == (1, 1, 1)
    assert stats.decided == 3
    assert stats.queued == 1
    assert stats.queue_wait_p99_ms == 12.5
    assert stats.rejections == [(degrade.estimated_cost, degrade.budget)]
    as_dict = stats.to_dict()
    assert as_dict["queued"] == 1
    assert as_dict["queue_wait_p50_ms"] == 0.0
    conn.close()
