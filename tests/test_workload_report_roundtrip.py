"""WorkloadReport serialization: summary stays frozen, detail round-trips."""

import json

import pytest

from repro.database import Database
from repro.errors import ExecutionError
from repro.exec.scheduler import CooperativeScheduler, WorkloadReport
from repro.optimizer.planner import PlannerOptions
from repro.workloads.micro import build_micro_table

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"

SMOOTH = PlannerOptions(enable_sort_scan=False, enable_smooth=True)


@pytest.fixture()
def report():
    db = Database()
    build_micro_table(db, num_tuples=2_000, seed=42)
    db.analyze()
    conn = db.connect(options=SMOOTH, cold=False)
    statement = conn.prepare(SQL)
    scheduler = CooperativeScheduler(db)
    for i in range(2):
        client = scheduler.client(f"c{i + 1}")
        for hi in (20_000, 60_000):
            client.add_query(
                "q",
                lambda s=statement, p={"lo": 0, "hi": hi}: s.execute(p),
            )
    return scheduler.run(cold=True, interleave=True)


def test_default_to_json_is_the_summary_schema(report):
    data = json.loads(report.to_json())
    assert data["schema"] == "workload-report/v1"
    assert data == report.summary_dict()
    # No detail keys leak into the frozen artifact shape.
    assert "records" not in data


def test_detail_round_trip_reproduces_everything(report):
    blob = report.to_json(detail=True)
    loaded = WorkloadReport.from_detail_dict(json.loads(blob))
    assert len(loaded.records) == len(report.records)
    for a, b in zip(loaded.records, report.records, strict=False):
        assert a.client == b.client
        assert a.label == b.label
        assert a.rows == b.rows
        assert a.start_ms == b.start_ms
        assert a.finish_ms == b.finish_ms
        assert a.ledger.to_dict() == b.ledger.to_dict()
    # Percentiles are recomputed, not stored — and land identical.
    assert loaded.summary_dict() == report.summary_dict()
    assert loaded.total_ledger().to_dict() == report.total_ledger().to_dict()
    # A second serialization round is byte-stable.
    assert loaded.to_json(detail=True) == blob


def test_detail_schema_is_checked():
    with pytest.raises(ExecutionError, match="unsupported workload-report"):
        WorkloadReport.from_detail_dict({"schema": "workload-report/v1",
                                         "records": []})
