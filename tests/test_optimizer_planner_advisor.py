"""Access-path selection and the index advisor."""

import random

import pytest

from repro.core.smooth_scan import SmoothScan
from repro.database import Database
from repro.exec.expressions import Between, Comparison, CompareOp, KeyRange
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.exec.stats import measure
from repro.optimizer.advisor import IndexAdvisor, WorkloadQuery
from repro.optimizer.planner import Planner, PlannerOptions
from repro.optimizer.statistics import StatisticsCatalog
from repro.storage.types import Schema


@pytest.fixture()
def planned():
    # Large enough that the index/full tipping point sits inside the
    # value domain: 60K rows = 500 pages.
    db = Database()
    rng = random.Random(11)
    table = db.load_table(
        "t", Schema.of_ints([f"c{i}" for i in range(1, 11)]),
        (tuple([i] + [rng.randrange(100_000) for _ in range(9)])
         for i in range(60_000)),
    )
    db.create_index("t", "c2")
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["c1", "c2"])
    return db, table, catalog


def test_tiny_selectivity_picks_index(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog)
    op, decision = planner.plan_scan("t", Between("c2", 0, 20))
    assert decision.path in ("index", "sort")
    assert decision.column == "c2"
    assert isinstance(op, (IndexScan, SortScan))


def test_high_selectivity_picks_full(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog)
    op, decision = planner.plan_scan("t", Between("c2", 0, 90_000))
    assert decision.path == "full"
    assert isinstance(op, FullTableScan)


def test_no_usable_index_falls_back_to_full(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog)
    op, decision = planner.plan_scan("t", Between("c5", 0, 10))
    assert decision.path == "full"
    assert decision.column is None


def test_order_by_indexed_column_without_predicate(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog)
    op, decision = planner.plan_scan("t", order_by="c2")
    # Any path is legal but the plan must produce c2-ordered output.
    rows = measure(db, op, keep_rows=True).rows
    keys = [r[1] for r in rows[:2_000]]
    assert keys == sorted(keys)


def test_plans_execute_equivalently(planned):
    db, table, catalog = planned
    pred = Between("c2", 0, 400)
    expected = sorted(measure(db, FullTableScan(table, pred)).rows)
    for options in (PlannerOptions(),
                    PlannerOptions(enable_sort_scan=False),
                    PlannerOptions(enable_index=False),
                    PlannerOptions(enable_smooth=True)):
        planner = Planner(db, catalog, options)
        op, _decision = planner.plan_scan("t", pred)
        assert sorted(measure(db, op).rows) == expected


def test_smooth_planner_always_smooth(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog, PlannerOptions(enable_smooth=True))
    op, decision = planner.plan_scan("t", Between("c2", 0, 90_000))
    assert decision.path == "smooth"
    assert isinstance(op, SmoothScan)


def test_smooth_planner_ordered_when_order_matches_index(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog, PlannerOptions(enable_smooth=True))
    op, _d = planner.plan_scan("t", Between("c2", 0, 500), order_by="c2")
    assert isinstance(op, SmoothScan) and op.ordered


def test_smooth_planner_sorts_for_other_order(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog, PlannerOptions(enable_smooth=True))
    op, _d = planner.plan_scan("t", Between("c2", 0, 500), order_by="c1")
    assert isinstance(op, Sort)


def test_decision_records_alternatives(planned):
    db, _t, catalog = planned
    planner = Planner(db, catalog)
    _op, decision = planner.plan_scan("t", Between("c2", 0, 100))
    assert set(decision.alternatives) == {"full", "index", "sort"}
    assert decision.estimated_cost == min(decision.alternatives.values())


def test_misestimated_plan_is_the_papers_trap(planned):
    """A wrongly tiny estimate makes the planner pick the index path even
    when the true selectivity would melt it — Section I's motivation."""
    db, _t, catalog = planned
    catalog.scale_row_count("t", 0.001)
    planner = Planner(db, catalog)
    _op, decision = planner.plan_scan("t", Between("c2", 0, 2_000))
    assert decision.estimated_cardinality < 200  # wildly wrong
    # The chosen path's estimated cost looked fine; execution won't be.


# -- index opportunity selection --------------------------------------------

@pytest.fixture()
def two_indexed():
    """c2 uniform over 100K, c3 uniform over 100; both indexed (c2 first)."""
    db = Database()
    rng = random.Random(17)
    table = db.load_table(
        "t", Schema.of_ints(["c1", "c2", "c3", "c4"]),
        ((i, rng.randrange(100_000), rng.randrange(100),
          rng.randrange(10)) for i in range(20_000)),
    )
    db.create_index("t", "c2")
    db.create_index("t", "c3")
    return db, table


def test_index_opportunity_prefers_tighter_range(two_indexed):
    db, table = two_indexed
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["c2", "c3"])
    planner = Planner(db, catalog)
    pred = Between("c2", 0, 50_000) & Between("c3", 0, 5)
    op, decision = planner.plan_scan("t", pred)
    # ~5% on c3 beats ~50% on c2: the tighter estimated range drives.
    assert decision.column == "c3"
    # The c2 conjunct survives as the access path's residual predicate.
    assert isinstance(op, (IndexScan, SortScan, FullTableScan))
    if not isinstance(op, FullTableScan):
        assert op.residual == Between("c2", 0, 50_000)


def test_index_opportunity_tie_breaks_by_index_order(two_indexed):
    db, _table = two_indexed
    # No statistics: both ranges estimate to the same magic default, so
    # the tie resolves to the first index registered (c2).
    planner = Planner(db, StatisticsCatalog())
    pred = Between("c2", 0, 10) & Between("c3", 0, 10)
    _op, decision = planner.plan_scan("t", pred)
    assert decision.column == "c2"


def test_residual_preserved_on_forced_index(two_indexed):
    db, table = two_indexed
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["c2", "c3"])
    planner = Planner(db, catalog, PlannerOptions(force_path="index"))
    residual = Comparison("c4", CompareOp.EQ, 3)
    op, decision = planner.plan_scan("t", Between("c3", 0, 5) & residual)
    assert isinstance(op, IndexScan) and decision.column == "c3"
    assert op.residual == residual
    assert op.key_range == KeyRange(0, 5)
    # Executed rows honor both the range and the residual.
    rows = measure(db, op).rows
    assert rows and all(0 <= r[2] < 5 and r[3] == 3 for r in rows)


def test_order_by_index_used_when_predicate_has_no_range(two_indexed):
    db, table = two_indexed
    catalog = StatisticsCatalog()
    catalog.analyze(table)
    planner = Planner(db, catalog)
    pred = Comparison("c4", CompareOp.EQ, 3)
    op, decision = planner.plan_scan("t", pred, order_by="c2")
    # No range on any indexed column: the c2 index still qualifies via
    # the requested order, with the whole predicate as residual.
    assert decision.column == "c2"
    rows = measure(db, op).rows
    keys = [r[1] for r in rows]
    assert keys == sorted(keys) and all(r[3] == 3 for r in rows)


def test_order_by_other_column_penalizes_index_path(two_indexed):
    db, table = two_indexed
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["c2", "c3"])
    planner = Planner(db, catalog)
    pred = Between("c3", 0, 40)
    # Ordering on a column the chosen index does NOT provide: the index
    # path pays the posterior sort penalty like everyone else.
    _op, plain = planner.plan_scan("t", pred)
    _op, ordered = planner.plan_scan("t", pred, order_by="c2")
    penalty = ordered.alternatives["index"] - plain.alternatives["index"]
    assert penalty > 0
    # Ordering on the index's own column stays penalty-free.
    _op, matching = planner.plan_scan("t", pred, order_by="c3")
    assert matching.alternatives["index"] == plain.alternatives["index"]
    assert ordered.estimated_cost == min(ordered.alternatives.values())


def test_enable_flags_filter_alternatives(two_indexed):
    db, table = two_indexed
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["c2", "c3"])
    pred = Between("c3", 0, 5)
    cases = [
        (PlannerOptions(), {"full", "index", "sort"}),
        (PlannerOptions(enable_index=False), {"full", "sort"}),
        (PlannerOptions(enable_sort_scan=False), {"full", "index"}),
        (PlannerOptions(enable_index=False, enable_sort_scan=False),
         {"full"}),
    ]
    for options, expected in cases:
        planner = Planner(db, catalog, options)
        _op, decision = planner.plan_scan("t", pred)
        assert set(decision.alternatives) == expected
        assert decision.path in expected
        assert decision.estimated_cost == min(decision.alternatives.values())


# -- advisor ----------------------------------------------------------------

@pytest.fixture()
def advisor_setup():
    db = Database()
    rng = random.Random(5)
    db.load_table(
        "t", Schema.of_ints(["c1", "c2", "c3"]),
        ((i, rng.randrange(10_000), rng.randrange(100))
         for i in range(50_000)),
    )
    catalog = StatisticsCatalog()
    catalog.analyze(db.table("t"))
    return db, catalog


def test_advisor_recommends_beneficial_index(advisor_setup):
    db, catalog = advisor_setup
    advisor = IndexAdvisor(db, catalog)
    workload = [WorkloadQuery("t", Between("c2", 0, 20))]
    rec = advisor.recommend(workload, space_budget_bytes=10**9)
    assert ("t", "c2") in rec.indexes
    assert rec.benefits[("t", "c2")] > 0


def test_advisor_skips_useless_candidates(advisor_setup):
    db, catalog = advisor_setup
    advisor = IndexAdvisor(db, catalog)
    # 100% selectivity: an index cannot beat the full scan.
    workload = [WorkloadQuery("t", Between("c2", 0, 10_000))]
    rec = advisor.recommend(workload, space_budget_bytes=10**9)
    assert rec.indexes == []


def test_advisor_respects_budget(advisor_setup):
    db, catalog = advisor_setup
    advisor = IndexAdvisor(db, catalog)
    workload = [WorkloadQuery("t", Between("c2", 0, 20)),
                WorkloadQuery("t", Comparison("c3", CompareOp.EQ, 5))]
    rec = advisor.recommend(workload, space_budget_bytes=1)
    assert rec.indexes == []
    assert rec.total_bytes == 0


def test_advisor_apply_creates_indexes(advisor_setup):
    db, catalog = advisor_setup
    advisor = IndexAdvisor(db, catalog)
    workload = [WorkloadQuery("t", Between("c2", 0, 20))]
    rec = advisor.recommend(workload, space_budget_bytes=10**9)
    advisor.apply(rec)
    assert db.table("t").has_index("c2")
    # Idempotent: re-applying is a no-op.
    advisor.apply(rec)


def test_advisor_candidates_include_order_by(advisor_setup):
    db, catalog = advisor_setup
    advisor = IndexAdvisor(db, catalog)
    workload = [WorkloadQuery("t", Between("c2", 0, 100), order_by="c3")]
    cands = advisor.candidate_columns(workload)
    assert ("t", "c2") in cands and ("t", "c3") in cands
