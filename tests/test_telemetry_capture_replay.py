"""Capture/replay: traced workloads become deterministic trace files."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.database import Database
from repro.errors import ReproError
from repro.exec.scheduler import CooperativeScheduler
from repro.exec.stats import measure
from repro.optimizer.planner import PlannerOptions
from repro.telemetry import WorkloadTrace, capture_run, replay_trace
from repro.telemetry.capture import options_from_dict, options_to_dict
from repro.telemetry.replay import main as replay_main
from repro.workloads.micro import build_micro_table

NUM_TUPLES = 2_000

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"

SMOOTH = PlannerOptions(enable_sort_scan=False, enable_smooth=True)

SETUP = {"workload": "micro", "num_tuples": NUM_TUPLES, "seed": 42,
         "analyze": True}


def make_db():
    db = Database()
    build_micro_table(db, num_tuples=NUM_TUPLES, seed=42)
    db.analyze()
    return db


def trace_workload(his=(30_000, 60_000, 90_000)):
    """Run one seeded 2-client workload traced; returns its trace."""
    db = make_db()
    db.tracer.enable()
    conn = db.connect(options=SMOOTH, cold=False)
    statement = conn.prepare(SQL)
    statement.run({"lo": 0, "hi": 500}, cold=True, keep_rows=False)
    scheduler = CooperativeScheduler(db)
    for i in range(2):
        client = scheduler.client(f"c{i + 1}")
        for j, hi in enumerate(his):
            client.add_query(
                f"q{j}",
                lambda s=statement, p={"lo": 0, "hi": hi}: s.execute(p),
            )
    scheduler.run(cold=True, interleave=True)
    run = capture_run(db.tracer.drain(), label="mix", interleave=True,
                      quantum=1, cold=True)
    return WorkloadTrace(setup=dict(SETUP)).add_run(run)


def test_capture_joins_seeds_and_client_queues():
    trace = trace_workload()
    (run,) = trace.runs
    assert len(run.seeds) == 1
    assert run.seeds[0].sql == SQL
    assert run.seeds[0].params == {"lo": 0, "hi": 500}
    assert run.seeds[0].cold is True
    assert list(run.clients) == ["c1", "c2"]  # admission order
    assert all(len(q) == 3 for q in run.clients.values())
    assert run.weights == {"c1": 1, "c2": 1}
    q0 = run.clients["c1"][0]
    assert q0.label == "q0"
    assert q0.rows > 0
    assert q0.ledger["io_ms"] > 0


def test_replay_reproduces_every_ledger():
    trace = trace_workload()
    result = replay_trace(trace)
    assert result.ok, result.describe()
    assert result.statements == trace.statement_count == 7
    assert "replay OK" in result.describe()


def test_trace_file_round_trip(tmp_path):
    trace = trace_workload()
    path = tmp_path / "trace.json"
    trace.save(path)
    loaded = WorkloadTrace.load(path)
    assert loaded.to_json() == trace.to_json()
    assert replay_trace(loaded).ok


def test_replay_cli(tmp_path, capsys):
    trace = trace_workload()
    path = tmp_path / "trace.json"
    trace.save(path)
    assert replay_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "replay OK: 7 statements" in out


def test_replay_detects_divergence(tmp_path):
    trace = trace_workload()
    victim = trace.runs[0].clients["c1"][1]
    victim.ledger["buffer_hits"] += 1
    result = replay_trace(trace)
    assert not result.ok
    assert any("c1[1]" in m for m in result.mismatches)


def test_bad_schema_and_unknown_setup_are_rejected():
    with pytest.raises(ReproError, match="unsupported trace schema"):
        WorkloadTrace.from_dict({"schema": "nope", "setup": {},
                                 "runs": []})
    trace = WorkloadTrace(setup={"workload": "tpch"})
    with pytest.raises(ReproError, match="unknown trace setup"):
        replay_trace(trace)


def test_options_round_trip_and_hook_rejection():
    data = options_to_dict(SMOOTH)
    assert data["enable_smooth"] is True
    assert options_from_dict(data) == SMOOTH
    assert options_to_dict(None) is None
    assert options_from_dict(None) is None
    hooked = PlannerOptions(enable_smooth=True,
                            smooth_trigger=lambda stats: True)
    recorded = options_to_dict(hooked)
    assert recorded["unserializable_hooks"] == ["smooth_trigger"]
    with pytest.raises(ReproError, match="callable hooks"):
        options_from_dict(recorded)


def test_capture_refuses_spans_without_statement_text():
    """Fluent-API executions (no SQL) cannot be captured for replay."""
    db = make_db()
    db.tracer.enable()
    from repro.exec.scans import FullTableScan
    measure(db, FullTableScan(db.table("micro")), cold=True,
            keep_rows=False)
    with pytest.raises(ReproError, match="no statement text"):
        capture_run(db.tracer.drain(), label="raw")


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(his=st.lists(st.integers(min_value=100, max_value=100_000),
                    min_size=1, max_size=4))
def test_property_replaying_twice_is_bitwise_identical(his):
    """Replay determinism: two replays of one capture agree bitwise.

    Whatever mix of selectivities was captured, replaying the trace on
    two independently-built databases yields identical per-statement
    outcomes — the totals of every replayed ledger match to the bit,
    ints and floats alike.
    """
    trace = trace_workload(his=tuple(his))
    first, second = replay_trace(trace), replay_trace(trace)
    assert first.ok, first.describe()
    assert second.ok, second.describe()
    totals = []
    for result in (first, second):
        (report,) = result.reports
        totals.append(report.total_ledger().to_dict())
    assert totals[0] == totals[1]
    # The detailed reports — every record, every stamp — agree too.
    assert first.reports[0].to_json(detail=True) \
        == second.reports[0].to_json(detail=True)
