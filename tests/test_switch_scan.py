"""SwitchScan: binary adaptation, its cliff, and its worst-case bound."""

import pytest

from repro.core.switch_scan import SwitchScan
from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan, IndexScan
from repro.exec.stats import measure


def test_no_switch_below_threshold(small_table):
    db, table = small_table
    scan = SwitchScan(table, "c2", KeyRange(0, 10), threshold=10_000)
    rows = measure(db, scan).rows
    assert not scan.switched
    expected = measure(db, IndexScan(table, "c2", KeyRange(0, 10))).rows
    assert sorted(rows) == sorted(expected)


def test_switch_produces_exact_results(small_table):
    db, table = small_table
    scan = SwitchScan(table, "c2", KeyRange(0, 500), threshold=50)
    rows = measure(db, scan).rows
    assert scan.switched
    expected = measure(
        db, FullTableScan(table, Between("c2", 0, 500))
    ).rows
    assert sorted(rows) == sorted(expected)
    assert len(rows) == len(set(rows))  # the Tuple ID cache prevents dups


def test_threshold_zero_switches_immediately(small_table):
    db, table = small_table
    scan = SwitchScan(table, "c2", KeyRange(0, 500), threshold=0)
    rows = measure(db, scan).rows
    assert scan.switched
    assert sorted(rows) == sorted(
        measure(db, FullTableScan(table, Between("c2", 0, 500))).rows
    )


def test_negative_threshold_rejected(small_table):
    _db, table = small_table
    with pytest.raises(ValueError):
        SwitchScan(table, "c2", KeyRange(0, 10), threshold=-1)


def test_performance_cliff_at_threshold(small_table):
    """Crossing the threshold adds a full scan's worth of time at once."""
    db, table = small_table
    threshold = 40
    # Just below: stays an index scan.
    below = measure(db, SwitchScan(table, "c2", KeyRange(0, 7),
                                   threshold=threshold))
    # Just above: index work + a whole full scan.
    above = measure(db, SwitchScan(table, "c2", KeyRange(0, 12),
                                   threshold=threshold))
    full = measure(db, FullTableScan(table, Between("c2", 0, 12)))
    # The switch adds roughly one full scan's worth of time at once (the
    # post-switch scan runs on a warm buffer, so allow half a cold scan).
    assert above.total_ms > full.total_ms
    assert above.total_ms > below.total_ms + 0.5 * full.total_ms


def test_bounded_worst_case(small_table):
    """After switching, total cost ≈ index-to-threshold + one full scan."""
    db, table = small_table
    switch = measure(db, SwitchScan(table, "c2", KeyRange(0, 1000),
                                    threshold=20))
    index_only = measure(db, IndexScan(table, "c2", KeyRange(0, 1000)))
    assert switch.total_ms < index_only.total_ms  # never as bad as IS


def test_switch_empty_range(small_table):
    db, table = small_table
    scan = SwitchScan(table, "c2", KeyRange(5000, 6000), threshold=5)
    assert measure(db, scan).rows == []
    assert not scan.switched
