"""Connection / Cursor / PreparedStatement — the PEP-249 session layer.

Covers the acceptance bar of the API redesign: prepared statements
compile and plan exactly once across re-executions (counters), results
are measurement-identical to the legacy literal-SQL facade, cursors
stream without materializing, and EXPLAIN is a structured result set.
"""

import warnings

import pytest

from repro.database import Database
from repro.errors import InterfaceError
from repro.exec.expressions import Between
from repro.optimizer.planner import PlannerOptions
from repro.storage.types import ColumnType
from repro.workloads.micro import build_micro_table


@pytest.fixture(scope="module")
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=24_000, seed=11)
    db.analyze()
    return db


@pytest.fixture()
def conn(micro_db):
    return micro_db.connect()


# -- cursors: execute + fetch -------------------------------------------------

def test_fetchall_matches_database_execute(micro_db, conn):
    cur = conn.execute("SELECT c1, c2 FROM micro WHERE c2 < 5000 "
                       "ORDER BY c2")
    rows = cur.fetchall()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = micro_db.sql("SELECT c1, c2 FROM micro WHERE c2 < 5000 "
                              "ORDER BY c2")
    assert rows == legacy.rows
    assert cur.rowcount == len(rows)


def test_description_names_and_types(conn):
    cur = conn.execute("SELECT c1, c2 FROM micro WHERE c2 < 100")
    assert [d[0] for d in cur.description] == ["c1", "c2"]
    assert all(d[1] is ColumnType.INT for d in cur.description)
    assert all(len(d) == 7 for d in cur.description)


def test_fetchone_and_iteration(conn):
    cur = conn.execute("SELECT c1 FROM micro WHERE c2 < 300 ORDER BY c1")
    first = cur.fetchone()
    rest = list(cur)
    assert first is not None
    total = conn.run("SELECT c1 FROM micro WHERE c2 < 300").row_count
    assert 1 + len(rest) == total
    assert cur.fetchone() is None  # exhausted


def test_fetchmany_streams_incrementally(conn):
    cur = conn.cursor()
    cur.arraysize = 16
    cur.execute("SELECT * FROM micro")  # 24K-row full scan
    first = cur.fetchmany()
    assert len(first) == 16
    partial = cur.result()
    # Only the batches needed so far were pulled — nowhere near the
    # whole table (one heap page is 120 tuples; the buffered tail stays
    # far below the 24K total).
    assert partial.run.extras["partial"] is True
    assert 16 <= partial.row_count < 2_000
    assert cur.rowcount == -1  # unknown until drained
    cur.close()


def test_partial_measurement_grows_to_full(conn):
    cur = conn.execute("SELECT * FROM micro WHERE c2 < 50000")
    cur.fetchmany(10)
    early = cur.result()
    cur.fetchall()
    done = cur.result()
    assert early.run.extras["partial"] and not done.run.extras["partial"]
    assert early.total_ms <= done.total_ms
    assert early.disk.requests <= done.disk.requests
    # A fully-drained streaming run costs exactly what measure() charges.
    fresh = conn.run("SELECT * FROM micro WHERE c2 < 50000",
                     keep_rows=False)
    assert done.total_ms == fresh.total_ms
    assert done.disk.requests == fresh.disk.requests


def test_fetch_before_execute_raises(conn):
    cur = conn.cursor()
    with pytest.raises(InterfaceError, match="no statement"):
        cur.fetchall()


def test_closed_handles_refuse(micro_db):
    session = micro_db.connect()
    cur = session.cursor()
    cur.close()
    with pytest.raises(InterfaceError, match="cursor is closed"):
        cur.execute("SELECT * FROM micro")
    session.close()
    with pytest.raises(InterfaceError, match="connection is closed"):
        session.cursor()


def test_connection_context_manager_and_noop_txn(micro_db):
    with micro_db.connect() as session:
        session.commit()
        session.rollback()
    with pytest.raises(InterfaceError):
        session.commit()


# -- prepared statements ------------------------------------------------------

def test_prepared_compiles_and_plans_exactly_once(micro_db):
    session = micro_db.connect()
    compiles0 = micro_db.sql_compile_count
    stats = micro_db.plan_cache.stats
    hits0, misses0 = stats.hits, stats.misses

    st = session.prepare("SELECT * FROM micro WHERE c2 >= ? AND c2 < ?")
    assert micro_db.sql_compile_count == compiles0 + 1

    r1 = st.run((0, 120))
    r2 = st.run((0, 60_000))
    r3 = st.run((40_000, 90_000))
    assert micro_db.sql_compile_count == compiles0 + 1  # still one
    assert stats.misses == misses0 + 1                  # planned once
    assert stats.hits == hits0 + 2                      # replayed twice
    assert r1.row_count < r2.row_count
    assert r3.row_count > 0


def _assert_measurement_identical(prepared, literal):
    assert prepared.rows == literal.rows
    assert prepared.total_ms == literal.total_ms
    assert prepared.io_ms == literal.io_ms
    assert prepared.cpu_ms == literal.cpu_ms
    assert prepared.disk.requests == literal.disk.requests
    assert prepared.disk.bytes_read == literal.disk.bytes_read
    assert [d.path for d in prepared.decisions] \
        == [d.path for d in literal.decisions]


def test_prepared_results_measurement_identical_to_literal_sql(micro_db):
    # At the plan-caching execution the prepared path charges exactly
    # what the legacy literal facade does: parameter plumbing is free.
    session = micro_db.connect()
    st = session.prepare("SELECT c1, c2 FROM micro "
                         "WHERE c2 >= ? AND c2 < ? ORDER BY c2")
    prepared = st.run((0, 120))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        literal = micro_db.sql("SELECT c1, c2 FROM micro WHERE c2 >= 0 "
                               "AND c2 < 120 ORDER BY c2")
    _assert_measurement_identical(prepared, literal)


def test_prepared_smooth_measurement_identical_across_drift(micro_db):
    # Under enable_smooth the cached plan IS what a fresh plan would be
    # at every parameter value, so prepared re-execution stays
    # measurement-identical to literal SQL across the whole drift —
    # the statistics-oblivious property, visible through the API.
    session = micro_db.connect(
        options=PlannerOptions(enable_smooth=True)
    )
    st = session.prepare("SELECT c1, c2 FROM micro "
                         "WHERE c2 >= ? AND c2 < ? ORDER BY c2")
    for lo, hi in ((0, 120), (0, 60_000), (20_000, 20_500)):
        prepared = st.run((lo, hi))
        literal = session.run(
            f"SELECT c1, c2 FROM micro WHERE c2 >= {lo} "
            f"AND c2 < {hi} ORDER BY c2"
        )
        _assert_measurement_identical(prepared, literal)


def test_prepared_drifted_params_same_rows_cached_plan(micro_db):
    # At drifted parameter values the cached classic plan may legally
    # differ from what a fresh plan would pick — that divergence is the
    # paper's motivating scenario — but the *results* never differ.
    session = micro_db.connect()
    st = session.prepare("SELECT c1, c2 FROM micro "
                         "WHERE c2 >= ? AND c2 < ? ORDER BY c2")
    first = st.run((0, 120))
    drifted = st.run((0, 60_000))
    fresh = micro_db.execute(
        micro_db.query("micro")
        .where(Between("c2", 0, 60_000, True, False))
        .order_by("c2").select("c1", "c2")
    )
    assert drifted.rows == fresh.rows
    # The cached plan kept the first execution's access path.
    assert drifted.decisions[0].path == first.decisions[0].path


def test_prepared_named_params_via_cursor(conn):
    st = conn.prepare("SELECT count(*) AS n FROM micro "
                      "WHERE c2 >= :lo AND c2 < :hi")
    assert st.param_names == ("lo", "hi")
    [(n1,)] = st.execute({"lo": 0, "hi": 1000}).fetchall()
    [(n2,)] = st.execute({"lo": 0, "hi": 50_000}).fetchall()
    assert 0 < n1 < n2


def test_cache_hit_measurement_identical_to_miss(micro_db):
    # Same text + same catalog: the replayed plan must cost exactly what
    # the originally-planned one did.
    session = micro_db.connect()
    sql = "SELECT * FROM micro WHERE c2 BETWEEN 100 AND 4000"
    miss = session.run(sql, keep_rows=False)
    hit = session.run(sql, keep_rows=False)
    assert miss.total_ms == hit.total_ms
    assert miss.disk.requests == hit.disk.requests
    assert miss.row_count == hit.row_count
    assert [d.path for d in miss.decisions] == \
        [d.path for d in hit.decisions]
    # explain() output (estimates included) is also identical.
    assert miss.plan.render() == hit.plan.render()


def test_prepared_statement_rejects_foreign_database(micro_db):
    other = Database()
    build_micro_table(other, num_tuples=1_200)
    st = other.connect().prepare("SELECT * FROM micro")
    with pytest.raises(InterfaceError, match="different database"):
        micro_db.connect().cursor().execute(st)
    # Connection.run enforces the same boundary as Cursor.execute.
    with pytest.raises(InterfaceError, match="different database"):
        micro_db.connect().run(st)
    # Sharing across connections of the SAME database is allowed.
    assert micro_db.connect().run(
        micro_db.connect().prepare("SELECT count(*) AS n FROM micro")
    ).row_count == 1


# -- executemany --------------------------------------------------------------

def test_executemany_counts_all_rows(micro_db, conn):
    compiles0 = micro_db.sql_compile_count
    cur = conn.cursor()
    cur.executemany("SELECT * FROM micro WHERE c2 < ?",
                    [(100,), (200,), (400,)])
    assert micro_db.sql_compile_count == compiles0 + 1
    expected = sum(
        conn.run("SELECT * FROM micro WHERE c2 < ?", (hi,),
                 keep_rows=False).row_count
        for hi in (100, 200, 400)
    )
    assert cur.rowcount == expected


# -- EXPLAIN as a result set --------------------------------------------------

def test_explain_is_a_structured_result(conn):
    cur = conn.execute("EXPLAIN SELECT * FROM micro WHERE c2 < 2000")
    rows = cur.fetchall()
    assert cur.description[0][0] == "plan"
    assert cur.rowcount == len(rows)
    assert all(len(r) == 1 for r in rows)
    assert rows[0][0].startswith("-> ")
    assert rows[-1][0].startswith("plan cache: ")
    assert cur.result() is None  # nothing executed


def test_explain_surfaces_cache_status(conn):
    sql = "EXPLAIN SELECT * FROM micro WHERE c2 < 3333"
    first = conn.execute(sql).fetchall()[-1][0]
    second = conn.execute(sql).fetchall()[-1][0]
    assert first.startswith("plan cache: miss")
    assert second.startswith("plan cache: hit")


# -- options and hints --------------------------------------------------------

def test_session_options_and_hints_compose(micro_db):
    session = micro_db.connect(
        options=PlannerOptions(enable_smooth=True)
    )
    smooth = session.run("SELECT * FROM micro WHERE c2 < 2000",
                         keep_rows=False)
    assert smooth.decisions[0].path == "smooth"
    forced = session.run(
        "SELECT /*+ force_path(full) */ * FROM micro WHERE c2 < 2000",
        keep_rows=False,
    )
    assert forced.decisions[0].path == "full"


def test_different_options_do_not_share_cache_entries(micro_db):
    sql = "SELECT * FROM micro WHERE c2 < 777"
    plain = micro_db.connect().run(sql, keep_rows=False)
    smooth = micro_db.connect(
        options=PlannerOptions(enable_smooth=True)
    ).run(sql, keep_rows=False)
    assert plain.decisions[0].path != "smooth"
    assert smooth.decisions[0].path == "smooth"


# -- deprecated facade pins ---------------------------------------------------

def test_database_sql_and_explain_warn_but_work(micro_db):
    with pytest.deprecated_call():
        result = micro_db.sql("SELECT count(*) AS n FROM micro")
    assert result.row_count == 1
    with pytest.deprecated_call():
        plan_text = micro_db.sql("EXPLAIN SELECT * FROM micro "
                                 "WHERE c2 < 500")
    # Old contract: EXPLAIN through db.sql is a *string* (the wart the
    # cursor API fixes), without the cursor's plan-cache line.
    assert isinstance(plan_text, str)
    assert plan_text.startswith("-> ")
    assert "plan cache" not in plan_text
    with pytest.deprecated_call():
        rendered = micro_db.explain("SELECT * FROM micro WHERE c2 < 500")
    assert rendered.startswith("-> ")
    assert "plan cache" not in rendered


def test_database_sql_explicit_catalog_bypasses_cache(micro_db):
    from repro.optimizer.statistics import StatisticsCatalog
    stale = StatisticsCatalog()
    entries0 = len(micro_db.plan_cache)
    with pytest.deprecated_call():
        result = micro_db.sql("SELECT * FROM micro WHERE c2 < 999",
                              keep_rows=False, catalog=stale)
    assert result.row_count > 0
    assert len(micro_db.plan_cache) == entries0  # nothing cached


# -- connection lifecycle: cursors close with the session ---------------------

def _fresh_db(num_tuples=12_000):
    db = Database()
    build_micro_table(db, num_tuples=num_tuples, seed=11)
    db.analyze()
    return db


def test_cursor_context_manager_closes(conn):
    with conn.cursor() as cur:
        cur.execute("SELECT c1 FROM micro WHERE c2 < 200")
        assert cur.fetchone() is not None
    with pytest.raises(InterfaceError, match="cursor is closed"):
        cur.fetchall()


def test_connection_close_closes_live_streaming_cursors():
    db = _fresh_db()
    session = db.connect(cold=False)
    first = session.execute("SELECT * FROM micro WHERE c2 < 50000")
    second = session.execute("SELECT * FROM micro WHERE c2 >= 50000")
    first.fetchmany(100)
    assert len(session.open_cursors) == 2
    session.close()
    # Both runs were abandoned mid-stream, not leaked: the engine
    # accepts a cold start again (which refuses while streams live).
    assert first.stream.closed and second.stream.closed
    assert not first.stream.exhausted
    db.cold_run()
    with pytest.raises(InterfaceError, match="cursor is closed"):
        first.fetchall()


def test_connection_close_finalizes_ledgers_exactly():
    from repro.runtime import CostLedger

    db = _fresh_db()
    session = db.connect(cold=False)
    cursors = [session.execute("SELECT * FROM micro WHERE c2 < 50000"),
               session.execute("SELECT * FROM micro WHERE c2 >= 50000")]
    for cur in cursors:
        cur.fetchmany(100)
    ledgers = [cur.stream.ledger for cur in cursors]
    session.close()
    # Even for half-drained streams, every charge the session caused
    # is attributed to exactly one cursor ledger: their sum reproduces
    # the runtime totals (exact integer counters, 1e-9 ms).
    summed = CostLedger()
    for ledger in ledgers:
        summed.add(ledger)
    assert summed.matches(db.runtime.totals())


def test_open_cursors_prunes_closed_and_dropped_handles():
    import gc

    db = _fresh_db()
    session = db.connect(cold=False)
    keep = session.cursor()
    done = session.cursor()
    session.cursor()  # dropped without ever being closed
    gc.collect()
    done.close()
    assert session.open_cursors == (keep,)
    session.close()
    assert session.open_cursors == ()


def test_connection_close_is_idempotent_with_cursors():
    db = _fresh_db()
    session = db.connect(cold=False)
    cur = session.execute("SELECT c1 FROM micro WHERE c2 < 1000")
    session.close()
    session.close()  # second close is a no-op, not an error
    assert cur.stream.closed
