"""SQL lexer and parser: token shapes and AST structure.

Binding and execution are covered elsewhere; these tests pin the purely
syntactic layer — token positions, literal parsing, precedence, hint
extraction and the value-vs-boolean parenthesis disambiguation.
"""

import pytest

from repro.errors import SqlError
from repro.sql import ast, parse, tokenize


# -- lexer -------------------------------------------------------------------

def test_tokenize_kinds_and_positions():
    tokens = tokenize("SELECT c1\nFROM t")
    kinds = [(t.kind, t.value) for t in tokens]
    assert kinds == [
        ("KEYWORD", "SELECT"), ("IDENT", "c1"),
        ("KEYWORD", "FROM"), ("IDENT", "t"), ("EOF", None),
    ]
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[2].line, tokens[2].column) == (2, 1)


def test_tokenize_literals():
    tokens = tokenize("12 3.5 'it''s' <> <=")
    assert [t.value for t in tokens[:-1]] == [12, 3.5, "it's", "!=", "<="]
    assert isinstance(tokens[0].value, int)
    assert isinstance(tokens[1].value, float)


def test_tokenize_skips_comments_but_keeps_hints():
    tokens = tokenize(
        "SELECT -- a line comment\n/* block */ /*+ no_inlj */ c1 FROM t"
    )
    kinds = [t.kind for t in tokens]
    assert kinds == ["KEYWORD", "HINT", "IDENT", "KEYWORD", "IDENT", "EOF"]
    assert tokens[1].value == "no_inlj"


def test_tokenize_keywords_are_case_insensitive():
    tokens = tokenize("select From wHeRe")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]


# -- parser ------------------------------------------------------------------

def test_parse_minimal_select():
    sel = parse("SELECT * FROM t")
    assert sel.table == "t"
    assert len(sel.items) == 1
    assert isinstance(sel.items[0].expr, ast.Star)
    assert not sel.explain
    assert sel.where is None


def test_parse_explain_flag():
    assert parse("EXPLAIN SELECT * FROM t").explain
    assert not parse("SELECT * FROM t;").explain


def test_parse_where_precedence_or_over_and():
    sel = parse("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3")
    assert isinstance(sel.where, ast.OrExpr)
    left, right = sel.where.parts
    assert isinstance(left, ast.AndExpr)
    assert isinstance(right, ast.Compare)


def test_parse_between_in_like_not():
    sel = parse(
        "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2) "
        "AND c LIKE 'x%' AND NOT d = 4"
    )
    between, not_in, like, negated = sel.where.parts
    assert isinstance(between, ast.BetweenExpr) and not between.negated
    assert isinstance(not_in, ast.InExpr) and not_in.negated
    assert not_in.values == (1, 2)
    assert isinstance(like, ast.LikeExpr) and like.pattern == "x%"
    assert isinstance(negated, ast.NotExpr)


def test_parse_parenthesized_boolean_vs_value():
    sel = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c < (3 + 4)")
    grouped, compare = sel.where.parts
    assert isinstance(grouped, ast.OrExpr)
    assert isinstance(compare, ast.Compare)
    assert isinstance(compare.right, ast.Arith)


def test_parse_deeply_nested_boolean_parentheses():
    sel = parse("SELECT * FROM t WHERE ((a = 5))")
    assert isinstance(sel.where, ast.Compare)
    sel = parse("SELECT * FROM t WHERE ((a IN (5, 6)) OR ((b = 2)))")
    assert isinstance(sel.where, ast.OrExpr)


def test_parse_date_literal_days_since_1992():
    sel = parse("SELECT * FROM t WHERE d < DATE '1992-01-31'")
    assert sel.where.right.value == 30


def test_parse_arithmetic_precedence():
    sel = parse("SELECT sum(a + b * c) AS s FROM t GROUP BY d")
    call = sel.items[0].expr
    assert isinstance(call, ast.FuncCall)
    add = call.arg
    assert isinstance(add, ast.Arith) and add.op == "+"
    assert isinstance(add.right, ast.Arith) and add.right.op == "*"


def test_parse_case_when():
    sel = parse(
        "SELECT sum(CASE WHEN a LIKE 'x%' THEN b ELSE 0 END) AS s FROM t"
    )
    case = sel.items[0].expr.arg
    assert isinstance(case, ast.Case)
    assert isinstance(case.condition, ast.LikeExpr)
    assert isinstance(case.otherwise, ast.Literal)


def test_parse_joins_and_kinds():
    sel = parse(
        "SELECT * FROM a JOIN b ON a.x = b.y LEFT OUTER JOIN c ON x2 = y2 "
        "SEMI JOIN d ON x3 = y3 ANTI JOIN e ON x4 = y4"
    )
    kinds = [j.kind for j in sel.joins]
    assert kinds == ["inner", "left", "semi", "anti"]
    assert sel.joins[0].on_left.table == "a"
    assert sel.joins[0].on_right.name == "y"


def test_parse_group_order_limit():
    sel = parse(
        "SELECT a, count(*) AS n FROM t GROUP BY a "
        "ORDER BY n DESC, a ASC LIMIT 10"
    )
    assert [c.name for c in sel.group_by] == ["a"]
    assert [(k.column.name, k.ascending) for k in sel.order_by] == [
        ("n", False), ("a", True),
    ]
    assert sel.limit == 10


def test_parse_exists_subquery():
    sel = parse(
        "SELECT * FROM c WHERE NOT EXISTS "
        "(SELECT * FROM o WHERE o_key = c_key) AND x > 1"
    )
    exists, compare = sel.where.parts
    assert isinstance(exists, ast.ExistsExpr) and exists.negated
    assert exists.subquery.table == "o"


def test_parse_hints_attached_to_statement():
    sel = parse("SELECT /*+ force_path(smooth), no_inlj */ * FROM t")
    assert [(h.name, h.args) for h in sel.hints] == [
        ("force_path", ("smooth",)), ("no_inlj", ()),
    ]


def test_parse_rejects_trailing_garbage():
    with pytest.raises(SqlError, match="after end of statement"):
        parse("SELECT * FROM t garbage extra")


def test_parse_rejects_non_integer_limit():
    with pytest.raises(SqlError, match="LIMIT takes an integer"):
        parse("SELECT * FROM t LIMIT 2.5")


def test_parse_negative_literals():
    sel = parse("SELECT * FROM t WHERE a > -5 AND b IN (-1, 2)")
    gt, in_list = sel.where.parts
    assert gt.right.value == -5
    assert in_list.values == (-1, 2)
