"""Property test pinning the scheduler's nearest-rank percentile.

``nearest_rank_ms`` feeds every latency number this repo reports —
workload p50/p99, admission queue waits — so its definition is pinned
against an independent naive implementation: sort the sample, take the
element at rank ``ceil(p/100 * n)`` (1-based), with an empty sample
reporting 0.  Nearest-rank (unlike interpolating estimators) always
returns an observed value, which keeps simulated-clock reports exact.
"""

import math

from hypothesis import given, strategies as st

from repro.exec.scheduler import nearest_rank_ms

#: Simulated latencies: non-negative, finite, spanning many magnitudes.
latencies = st.lists(
    st.floats(min_value=0.0, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    max_size=200,
)

percentiles = st.floats(min_value=0.001, max_value=100.0,
                        allow_nan=False)


def naive_nearest_rank(values, pct):
    """The textbook definition, written independently of the real one."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(pct / 100.0 * len(ordered))
    rank = min(max(rank, 1), len(ordered))
    return ordered[rank - 1]


@given(latencies, percentiles)
def test_matches_naive_sorted_list_implementation(values, pct):
    assert nearest_rank_ms(values, pct) == naive_nearest_rank(values, pct)


@given(latencies, percentiles)
def test_result_is_an_observed_sample(values, pct):
    # Nearest-rank never interpolates: the reported latency is one a
    # query actually saw (or 0 when nothing ran).
    result = nearest_rank_ms(values, pct)
    assert result in values or (not values and result == 0.0)


@given(latencies)
def test_p50_below_p99_below_max(values):
    p50 = nearest_rank_ms(values, 50)
    p99 = nearest_rank_ms(values, 99)
    assert p50 <= p99
    if values:
        assert p99 <= max(values)


@given(percentiles)
def test_empty_sample_reports_zero(pct):
    assert nearest_rank_ms([], pct) == 0.0


@given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
       percentiles)
def test_single_sample_is_every_percentile(value, pct):
    assert nearest_rank_ms([value], pct) == value


def test_two_samples_split_at_the_median():
    # The 1-based ceil rank: anything at or below p50 reports the
    # smaller sample, anything above reports the larger one.
    assert nearest_rank_ms([3.0, 7.0], 50) == 3.0
    assert nearest_rank_ms([7.0, 3.0], 50.1) == 7.0
    assert nearest_rank_ms([3.0, 7.0], 99) == 7.0
    assert nearest_rank_ms([3.0, 7.0], 1) == 3.0
