"""Property-based tests of the Chunk row/column round-trip contract.

The contract (see :mod:`repro.storage.chunk`):
``Chunk.from_rows(names, rows).to_rows() == rows`` for any well-typed
rows — including CHAR strings, NULLs, booleans, floats and integers
beyond the ``int64`` range — and every derived view (columnar rebuild,
``take``, slicing, ``concat``) exposes exactly the rows plain-Python
indexing would.  Values must come back as built-in Python types, never
NumPy scalars.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.chunk import Chunk, mask_from_bools

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# One strategy per column "shape": typed-array candidates (pure int,
# pure float) and object-fallback ones (CHAR, NULL-bearing, mixed,
# big-int, bool — bools must *not* be coerced into int64 columns).
_COLUMN_VALUE = st.one_of(
    st.integers(-2**70, 2**70),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.none(),
    st.booleans(),
)

_COLUMN_STRATEGIES = st.sampled_from([
    st.integers(-2**62, 2**62),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.one_of(st.none(), st.integers(-100, 100)),
    st.booleans(),
    _COLUMN_VALUE,
])


@st.composite
def row_batches(draw):
    """A (names, rows) pair with a per-column value strategy."""
    width = draw(st.integers(1, 4))
    height = draw(st.integers(0, 50))
    col_strats = [draw(_COLUMN_STRATEGIES) for _ in range(width)]
    rows = [
        tuple(draw(s) for s in col_strats)
        for _ in range(height)
    ]
    names = tuple(f"c{i}" for i in range(width))
    return names, rows


def _assert_plain_python(rows):
    for row in rows:
        for v in row:
            assert v is None or type(v) in (int, float, str, bool), type(v)


@SETTINGS
@given(batch=row_batches())
def test_from_rows_to_rows_round_trips(batch):
    names, rows = batch
    chunk = Chunk.from_rows(names, rows)
    assert len(chunk) == len(rows)
    assert chunk.to_rows() == rows

    # The same rows reconstructed purely from the column payloads — no
    # cached row list to fall back on — must round-trip bitwise too.
    rebuilt = Chunk.from_columns(names, chunk.columns)
    assert rebuilt.to_rows() == rows
    _assert_plain_python(rebuilt.to_rows())


@SETTINGS
@given(batch=row_batches(), data=st.data())
def test_take_and_slice_match_row_indexing(batch, data):
    names, rows = batch
    chunk = Chunk.from_columns(names, Chunk.from_rows(names, rows).columns)

    indices = data.draw(st.lists(
        st.integers(0, max(0, len(rows) - 1)),
        max_size=len(rows), unique=True,
    ).map(sorted)) if rows else []
    taken = chunk.take(indices)
    assert taken.to_rows() == [rows[i] for i in indices]

    lo = data.draw(st.integers(0, len(rows)))
    hi = data.draw(st.integers(lo, len(rows)))
    assert chunk[lo:hi].to_rows() == rows[lo:hi]

    # A second narrowing composes selection vectors.
    if indices:
        sub = data.draw(st.lists(
            st.integers(0, len(indices) - 1),
            max_size=len(indices), unique=True,
        ).map(sorted))
        assert taken.take(sub).to_rows() == [rows[indices[j]] for j in sub]


@SETTINGS
@given(batch=row_batches(), data=st.data())
def test_filter_and_concat_match_python(batch, data):
    names, rows = batch
    chunk = Chunk.from_columns(names, Chunk.from_rows(names, rows).columns)

    bools = [data.draw(st.booleans()) for _ in rows]
    kept = chunk.filter(mask_from_bools(iter(bools), len(rows)))
    expected = [r for r, b in zip(rows, bools, strict=False) if b]
    assert (kept.to_rows() if kept is not None else []) == expected

    if rows:
        cut = data.draw(st.integers(0, len(rows)))
        left = Chunk.from_rows(names, rows[:cut])
        right = Chunk.from_rows(names, rows[cut:])
        assert Chunk.concat([left, right]).to_rows() == rows
