"""Report rendering of every experiment result type.

The benches print these for humans; a regression that breaks formatting
would silently corrupt EXPERIMENTS.md regeneration, so the strings are
tested explicitly (at tiny scale).
"""

import pytest

from repro.experiments import (
    run_competitive,
    run_fig11,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig8,
    run_fig9,
)
from repro.experiments.common import make_micro_db

GRID = (0.0, 1.0, 100.0)


@pytest.fixture(scope="module")
def tiny():
    return make_micro_db(12_000)


def test_fig5_report(tiny):
    r = run_fig5(order_by=False, selectivities_pct=GRID, setup=tiny)
    text = r.report()
    assert "Figure 5b" in text
    assert "full" in text and "smooth" in text
    assert len(text.splitlines()) == 3 + len(GRID)
    r2 = run_fig5(order_by=True, selectivities_pct=(1.0,), setup=tiny)
    assert "Figure 5a" in r2.report()


def test_fig6_report(tiny):
    r = run_fig6(selectivities_pct=GRID, setup=tiny)
    assert "mode sensitivity" in r.report()


def test_fig7a_report(tiny):
    r = run_fig7a(selectivities_pct=(1.0,), setup=tiny)
    text = r.report()
    assert "greedy" in text and "elastic" in text


def test_fig8_report():
    r = run_fig8(num_tuples=60_000)
    text = r.report()
    assert "skewed distribution" in text
    assert "elastic_smooth" in text


def test_fig9_report(tiny):
    r = run_fig9(selectivities_pct=(1.0, 100.0), setup=tiny)
    text = r.report()
    assert "cache_overhead_%" in text
    assert "morphing_accuracy_%" in text


def test_fig11_report(tiny):
    r = run_fig11(selectivities_pct=(0.01, 100.0), setup=tiny)
    text = r.report()
    assert "Switch Scan cliff" in text
    assert "threshold" in text


def test_competitive_report(tiny):
    r = run_competitive(num_tuples=12_000, adversarial_pages=100,
                        selectivities_pct=(1.0,), setup=tiny)
    text = r.report()
    assert "Competitive ratio sweep" in text
    assert "strict elastic" in text
