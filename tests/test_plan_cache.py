"""Plan-cache semantics: hits, catalog-version invalidation, LRU.

The satellite contract: ``create_index`` / ``drop_index`` / ``load_table``
must bump the catalog version and force a re-plan (observable through
cache stats *and* a changed PlanDecision trail), while same-text +
same-catalog lookups hit and replay measurement-identically.
"""

import pytest

from repro.database import Database
from repro.optimizer.plan_cache import (
    PlanCache,
    options_fingerprint,
)
from repro.optimizer.planner import AccessPin, PlannerOptions, PlanRecipe
from repro.storage.types import Schema
from repro.workloads.micro import build_micro_table


@pytest.fixture()
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=12_000, seed=3,
                      index_columns=("c1",))
    db.analyze()
    return db


RANGE_SQL = "SELECT * FROM micro WHERE c2 >= 0 AND c2 < 80"


# -- catalog-version bumps ----------------------------------------------------

def test_schema_and_stats_operations_bump_version(micro_db):
    v = micro_db.catalog_version
    micro_db.create_index("micro", "c2")
    assert micro_db.catalog_version == v + 1
    micro_db.drop_index("micro", "c2")
    assert micro_db.catalog_version == v + 2
    micro_db.load_table("extra", Schema.of_ints(["x"]), [(1,), (2,)])
    assert micro_db.catalog_version == v + 3
    micro_db.analyze("extra")
    assert micro_db.catalog_version == v + 4


def test_create_index_invalidates_and_changes_decision_trail(micro_db):
    session = micro_db.connect()
    stats = micro_db.plan_cache.stats

    before = session.run(RANGE_SQL, keep_rows=False)
    # c2 is unindexed in this fixture: the only viable path is a full
    # scan, and no anchor column is available.
    assert before.decisions[0].path == "full"
    assert before.decisions[0].column is None
    assert stats.misses == 1 and stats.hits == 0

    micro_db.create_index("micro", "c2")
    micro_db.analyze()  # fresh stats for the new index's column

    after = session.run(RANGE_SQL, keep_rows=False)
    # The entry was invalidated (not served stale) and the re-plan sees
    # the new index: the decision trail changes.
    assert stats.invalidations == 1
    assert stats.hits == 0
    assert after.decisions[0].column == "c2"
    assert after.decisions[0].path in ("index", "sort")
    assert after.decisions[0].path != before.decisions[0].path
    assert before.rows == after.rows == []


def test_drop_index_invalidates_cached_index_plan(micro_db):
    micro_db.create_index("micro", "c2")
    micro_db.analyze()
    session = micro_db.connect()
    stats = micro_db.plan_cache.stats

    indexed = session.run(RANGE_SQL, keep_rows=False)
    assert indexed.decisions[0].column == "c2"

    micro_db.drop_index("micro", "c2")
    invalidations0 = stats.invalidations
    replanned = session.run(RANGE_SQL, keep_rows=False)
    assert stats.invalidations == invalidations0 + 1
    assert replanned.decisions[0].path == "full"
    assert replanned.decisions[0].column is None
    assert replanned.row_count == indexed.row_count


def test_load_table_invalidates(micro_db):
    session = micro_db.connect()
    stats = micro_db.plan_cache.stats
    session.run(RANGE_SQL, keep_rows=False)
    micro_db.load_table("late", Schema.of_ints(["x"]), [(i,) for i in range(5)])
    session.run(RANGE_SQL, keep_rows=False)
    assert stats.invalidations == 1
    assert stats.hits == 0


# -- the negative case: same text + same catalog → hit ------------------------

def test_same_text_same_catalog_hits_measurement_identical(micro_db):
    session = micro_db.connect()
    stats = micro_db.plan_cache.stats
    miss = session.run("SELECT * FROM micro WHERE c2 < 4000")
    hit = session.run("SELECT * FROM micro WHERE c2 < 4000")
    assert (stats.misses, stats.hits, stats.invalidations) == (1, 1, 0)
    assert miss.rows == hit.rows
    assert miss.total_ms == hit.total_ms
    assert miss.io_ms == hit.io_ms
    assert miss.cpu_ms == hit.cpu_ms
    assert miss.disk.requests == hit.disk.requests
    assert miss.disk.bytes_read == hit.disk.bytes_read
    assert miss.plan.render() == hit.plan.render()
    # Whitespace/comment/case differences still hit (normalized keys).
    also_hit = session.run(
        "select  *  from micro -- note\n WHERE c2 < 4000"
    )
    assert stats.hits == 2
    assert also_hit.rows == miss.rows


def test_explain_and_repl_surface_stats(micro_db, capsys):
    session = micro_db.connect()
    session.run(RANGE_SQL, keep_rows=False)
    cur = session.execute("EXPLAIN " + RANGE_SQL)
    last = cur.fetchall()[-1][0]
    assert last.startswith("plan cache: miss (hits=")

    from repro.sql.repl import Repl
    import io
    out = io.StringIO()
    Repl(micro_db, out=out).run(io.StringIO("\\analyze\n").readlines())
    text = out.getvalue()
    assert "statistics refreshed" in text
    assert "plan cache:" in text and "invalidations=" in text


# -- the cache object itself --------------------------------------------------

def test_lru_eviction_and_capacity():
    cache = PlanCache(capacity=2)
    recipe = PlanRecipe(base=AccessPin("full", None))
    cache.store(("a", ()), recipe, 0)
    cache.store(("b", ()), recipe, 0)
    assert cache.lookup(("a", ()), 0) is recipe  # refresh 'a'
    cache.store(("c", ()), recipe, 0)            # evicts 'b'
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.lookup(("b", ()), 0) is None
    assert cache.lookup(("c", ()), 0) is recipe


def test_version_mismatch_counts_invalidation_and_miss():
    cache = PlanCache()
    recipe = PlanRecipe(base=AccessPin("index", "c2"))
    cache.store(("k", ()), recipe, 7)
    assert cache.lookup(("k", ()), 8) is None
    assert cache.stats.invalidations == 1
    assert cache.stats.misses == 1
    assert len(cache) == 0


def test_clear_keeps_cumulative_stats():
    cache = PlanCache()
    cache.store(("k", ()), PlanRecipe(base=AccessPin("full", None)), 0)
    cache.lookup(("k", ()), 0)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_options_fingerprint_distinguishes_and_normalizes():
    default = options_fingerprint(None)
    assert default == options_fingerprint(PlannerOptions())
    smooth = options_fingerprint(PlannerOptions(enable_smooth=True))
    forced = options_fingerprint(PlannerOptions(force_path="full"))
    assert len({default, smooth, forced}) == 3
