"""The NDJSON frame vocabulary: codec, validation, structured errors."""

import pytest

from repro.server import protocol
from repro.server.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    rows_payload,
    validate_request,
)


def test_encode_decode_round_trip():
    frame = {"op": "execute", "id": 7, "sql": "SELECT 1", "params": [1, 2]}
    assert decode_frame(encode_frame(frame)) == frame


def test_encoding_is_deterministic_bytes():
    # Sorted keys + compact separators: the byte encoding of a frame
    # is independent of dict insertion order.
    a = encode_frame({"op": "stats", "id": 1})
    b = encode_frame({"id": 1, "op": "stats"})
    assert a == b
    assert a.endswith(b"\n")


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError) as exc:
        decode_frame(b"not json\n")
    assert exc.value.code == protocol.ERR_BAD_FRAME
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\xfe\n")
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]\n")  # a frame must be an object


def test_validate_accepts_every_documented_op():
    frames = [
        {"op": "prepare", "id": 1, "sql": "SELECT 1"},
        {"op": "execute", "id": "a", "statement": 0, "params": [1]},
        {"op": "execute", "id": 2, "sql": "SELECT 1", "params": None},
        {"op": "query", "id": 3, "sql": "SELECT 1",
         "params": {"lo": 1}},
        {"op": "fetch", "id": 4, "cursor": 0, "n": 16},
        {"op": "fetch", "id": 5, "cursor": 0},
        {"op": "close", "id": 6, "cursor": 0},
        {"op": "stats", "id": 7},
        {"op": "shutdown", "id": 8},
    ]
    assert [validate_request(f) for f in frames] == \
        [f["op"] for f in frames]


@pytest.mark.parametrize("frame,code", [
    ({}, protocol.ERR_BAD_FRAME),
    ({"op": 7, "id": 1}, protocol.ERR_BAD_FRAME),
    ({"op": "mystery", "id": 1}, protocol.ERR_UNKNOWN_OP),
    ({"op": "stats"}, protocol.ERR_BAD_FRAME),              # no id
    ({"op": "stats", "id": True}, protocol.ERR_BAD_FRAME),  # bool id
    ({"op": "stats", "id": [1]}, protocol.ERR_BAD_FRAME),
    ({"op": "prepare", "id": 1}, protocol.ERR_BAD_FRAME),   # no sql
    ({"op": "prepare", "id": 1, "sql": 5}, protocol.ERR_BAD_FRAME),
    ({"op": "execute", "id": 1}, protocol.ERR_BAD_FRAME),
    ({"op": "execute", "id": 1, "statement": "x"},
     protocol.ERR_BAD_FRAME),
    ({"op": "execute", "id": 1, "statement": True},
     protocol.ERR_BAD_FRAME),
    ({"op": "execute", "id": 1, "sql": "SELECT 1", "params": "x"},
     protocol.ERR_BAD_FRAME),
    ({"op": "fetch", "id": 1}, protocol.ERR_BAD_FRAME),
    ({"op": "fetch", "id": 1, "cursor": 0, "n": 0},
     protocol.ERR_BAD_FRAME),
    ({"op": "fetch", "id": 1, "cursor": 0, "n": True},
     protocol.ERR_BAD_FRAME),
    ({"op": "close", "id": 1}, protocol.ERR_BAD_FRAME),
])
def test_validate_rejects_malformed_frames(frame, code):
    with pytest.raises(ProtocolError) as exc:
        validate_request(frame)
    assert exc.value.code == code


def test_error_frame_shape():
    frame = error_frame(9, protocol.ERR_REJECTED, "over budget",
                        detail={"estimated_cost": 500.0, "budget": 200.0})
    assert frame == {"op": "error", "id": 9, "code": "rejected",
                     "message": "over budget",
                     "detail": {"estimated_cost": 500.0, "budget": 200.0}}
    # No detail field when there is no detail.
    assert "detail" not in error_frame(None, protocol.ERR_SQL, "boom")


def test_rows_payload_is_json_ready():
    assert rows_payload([(1, 2), (3, 4)]) == [[1, 2], [3, 4]]
