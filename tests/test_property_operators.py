"""Property-based tests of executor operators against Python ground truth."""

import operator
from collections import defaultdict

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.database import Database
from repro.exec.aggregates import AggSpec, HashAggregate
from repro.exec.expressions import KeyRange
from repro.exec.joins import HashJoin, MergeJoin
from repro.exec.scans import FullTableScan
from repro.exec.sort import Sort
from repro.exec.stats import measure
from repro.storage.types import Schema

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

pairs = st.lists(
    st.tuples(st.integers(0, 20), st.integers(-50, 50)),
    min_size=0, max_size=200,
)


def load(db, name, columns, rows):
    return db.load_table(name, Schema.of_ints(columns), rows)


@SETTINGS
@given(rows=pairs)
def test_sort_matches_python_sorted(rows):
    db = Database()
    table = load(db, "t", ["k", "v"], rows)
    got = measure(db, Sort(FullTableScan(table), [("k", True),
                                                  ("v", False)])).rows
    expected = sorted(rows, key=lambda r: (r[0], -r[1]))
    assert got == expected


@SETTINGS
@given(left=pairs, right=pairs)
def test_hash_join_matches_python(left, right):
    db = Database()
    lt = load(db, "l", ["lk", "lv"], left)
    rt = load(db, "r", ["rk", "rv"], right)
    got = sorted(measure(db, HashJoin(
        FullTableScan(lt), FullTableScan(rt), ["lk"], ["rk"])).rows)
    expected = sorted(
        lr + rr for lr in left for rr in right if lr[0] == rr[0]
    )
    assert got == expected


@SETTINGS
@given(left=pairs, right=pairs)
def test_merge_join_matches_hash_join(left, right):
    db = Database()
    lt = load(db, "l", ["lk", "lv"], left)
    rt = load(db, "r", ["rk", "rv"], right)
    hash_rows = sorted(measure(db, HashJoin(
        FullTableScan(lt), FullTableScan(rt), ["lk"], ["rk"])).rows)
    merge_rows = sorted(measure(db, MergeJoin(
        Sort(FullTableScan(lt), ["lk"]),
        Sort(FullTableScan(rt), ["rk"]),
        "lk", "rk")).rows)
    assert merge_rows == hash_rows


@SETTINGS
@given(left=pairs, right=pairs)
def test_semi_plus_anti_partition_left(left, right):
    """Semi and anti joins partition the left input exactly."""
    db = Database()
    lt = load(db, "l", ["lk", "lv"], left)
    rt = load(db, "r", ["rk", "rv"], right)
    semi = measure(db, HashJoin(FullTableScan(lt), FullTableScan(rt),
                                ["lk"], ["rk"], join_type="semi")).rows
    anti = measure(db, HashJoin(FullTableScan(lt), FullTableScan(rt),
                                ["lk"], ["rk"], join_type="anti")).rows
    assert sorted(semi + anti) == sorted(left)
    right_keys = {r[0] for r in right}
    assert all(row[0] in right_keys for row in semi)
    assert all(row[0] not in right_keys for row in anti)


@SETTINGS
@given(rows=pairs)
def test_aggregate_matches_python(rows):
    db = Database()
    table = load(db, "t", ["k", "v"], rows)
    agg = HashAggregate(FullTableScan(table), ["k"], [
        AggSpec("sum", "s", column="v"),
        AggSpec("count", "n"),
        AggSpec("min", "lo", column="v"),
        AggSpec("max", "hi", column="v"),
    ])
    got = {r[0]: r[1:] for r in measure(db, agg).rows}
    expected = defaultdict(list)
    for k, v in rows:
        expected[k].append(v)
    assert set(got) == set(expected)
    for k, values in expected.items():
        s, n, lo, hi = got[k]
        assert s == sum(values)
        assert n == len(values)
        assert lo == min(values) and hi == max(values)


@SETTINGS
@given(
    lo1=st.integers(-10, 10), hi1=st.integers(-10, 10),
    lo2=st.integers(-10, 10), hi2=st.integers(-10, 10),
    probe=st.integers(-12, 12),
)
def test_key_range_intersection_property(lo1, hi1, lo2, hi2, probe):
    """x ∈ (A ∩ B)  ⇔  x ∈ A and x ∈ B."""
    a = KeyRange(lo1, hi1)
    b = KeyRange(lo2, hi2)
    merged = a.intersect(b)
    assert merged.contains(probe) == (a.contains(probe) and b.contains(probe))
