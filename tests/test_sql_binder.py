"""Binder lowering: SQL text → QuerySpec → plans and results.

The load-bearing guarantee mirrors the fluent API's: a bound SQL query
plans and executes through exactly the same ``plan_query`` machinery, so
these tests compare bound specs (and, where cheap, executed results)
against their hand-built fluent equivalents.
"""

import pytest

from repro.database import Database
from repro.errors import SqlError
from repro.exec.aggregates import AggSpec
from repro.exec.expressions import (
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    StringMatch,
    TruePredicate,
)
from repro.sql import compile_statement
from repro.storage.types import Column, ColumnType, Schema


@pytest.fixture(scope="module")
def shop():
    """Two small joined tables: customers and orders."""
    db = Database()
    db.load_table(
        "cust",
        Schema([Column("c_id"), Column("c_nation"),
                Column("c_name", ColumnType.CHAR, 8)]),
        [(i, i % 5, f"name{i:03d}") for i in range(200)],
    )
    db.load_table(
        "ord",
        Schema([Column("o_id"), Column("o_cust"), Column("o_total")]),
        [(i, (i * 7) % 170, i % 90) for i in range(400)],
    )
    db.create_index("ord", "o_cust")
    db.analyze()
    return db


def spec_of(db, text):
    return compile_statement(db, text).spec


# -- WHERE lowering ----------------------------------------------------------

def test_where_lowering_shapes(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust
        WHERE c_id BETWEEN 10 AND 20 AND c_nation IN (1, 2)
          AND c_name LIKE 'name0%' AND NOT c_id = 13
    """)
    parts = spec.predicate.parts
    assert parts[0] == Between("c_id", 10, 20, True, True)
    assert parts[1] == InList("c_nation", (1, 2))
    assert parts[2] == StringMatch("c_name", "prefix", "name0")
    assert isinstance(parts[3], Not)


def test_where_bounds_merge_into_between(shop):
    spec = spec_of(shop,
                   "SELECT * FROM cust WHERE c_id >= 10 AND c_id < 20")
    assert spec.predicate == Between("c_id", 10, 20, True, False)


def test_where_merge_keeps_other_conjuncts_in_place(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust
        WHERE c_id > 10 AND c_nation = 2 AND c_id <= 90
    """)
    assert spec.predicate.parts == (
        Between("c_id", 10, 90, False, True),
        Comparison("c_nation", CompareOp.EQ, 2),
    )


def test_where_flipped_literal_comparison(shop):
    spec = spec_of(shop, "SELECT * FROM cust WHERE 10 < c_id")
    assert spec.predicate == Comparison("c_id", CompareOp.GT, 10)


def test_where_column_vs_column(shop):
    spec = spec_of(shop, "SELECT * FROM ord WHERE o_total > o_cust")
    assert spec.predicate == ColumnComparison("o_total", CompareOp.GT,
                                              "o_cust")


def test_where_or_and_literal_like_equality(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust WHERE c_nation = 1 OR c_name LIKE 'name007'
    """)
    assert isinstance(spec.predicate, Or)
    assert spec.predicate.parts[1] == Comparison(
        "c_name", CompareOp.EQ, "name007"
    )


def test_where_like_suffix_and_contains(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust
        WHERE c_name LIKE '%07' AND c_name LIKE '%me0%'
    """)
    assert spec.predicate.parts == (
        StringMatch("c_name", "suffix", "07"),
        StringMatch("c_name", "contains", "me0"),
    )


def test_no_where_is_true_predicate(shop):
    assert isinstance(spec_of(shop, "SELECT * FROM cust").predicate,
                      TruePredicate)


# -- joins -------------------------------------------------------------------

def test_inner_join_orientation_is_membership_based(shop):
    for text in (
        "SELECT * FROM cust JOIN ord ON c_id = o_cust",
        "SELECT * FROM cust JOIN ord ON o_cust = c_id",
        "SELECT * FROM cust JOIN ord ON cust.c_id = ord.o_cust",
    ):
        spec = spec_of(shop, text)
        join = spec.joins[0]
        assert (join.table, join.left_key, join.right_key, join.how) == \
            ("ord", "c_id", "o_cust", "inner")


def test_left_join_kind(shop):
    spec = spec_of(shop,
                   "SELECT * FROM cust LEFT JOIN ord ON c_id = o_cust")
    assert spec.joins[0].how == "left"


def test_exists_becomes_semi_join(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust
        WHERE EXISTS (SELECT * FROM ord WHERE o_cust = c_id
                      AND o_total > 50)
    """)
    join = spec.joins[0]
    assert (join.table, join.left_key, join.right_key, join.how) == \
        ("ord", "c_id", "o_cust", "semi")
    # The uncorrelated conjunct is pushed into the main predicate.
    assert spec.predicate == Comparison("o_total", CompareOp.GT, 50)


def test_qualified_shared_names_refused_everywhere(db):
    # Predicates execute by bare name, so a qualifier cannot pick one
    # of two same-named columns — the binder must refuse rather than
    # let the planner re-aim the filter at the visible owner.
    db.load_table("cst2", Schema([Column("c_id"), Column("total")]),
                  [(1, 120), (2, 80), (3, 60)])
    db.load_table("orr2", Schema([Column("o_id"), Column("o_cust"),
                                  Column("total")]),
                  [(10, 1, 55), (11, 2, 10), (12, 3, 70)])
    for text in (
        "SELECT c_id FROM cst2 SEMI JOIN orr2 ON o_cust = c_id "
        "WHERE orr2.total >= 50",
        "SELECT c_id FROM cst2 SEMI JOIN orr2 ON o_cust = c_id "
        "WHERE cst2.total = orr2.total",
    ):
        with pytest.raises(SqlError, match="rename columns"):
            compile_statement(db, text)


def test_min_max_output_schema_keeps_source_type(shop):
    result = shop.sql(
        "SELECT min(c_name) AS lo, max(c_id) AS hi FROM cust"
    )
    lo, hi = result.plan.root.schema.columns
    assert lo.ctype == ColumnType.CHAR and lo.length == 8
    assert hi.ctype == ColumnType.INT
    assert result.rows == [("name000", 199)]


def test_exists_pushdown_refuses_shared_column_names(db):
    # A pushed inner conjunct travels by bare name; if the outer side
    # also has that column the planner would re-aim the filter, so the
    # binder must refuse instead of running the wrong query.
    db.load_table("cst", Schema([Column("c_id"), Column("total")]),
                  [(1, 120), (2, 80), (3, 60)])
    db.load_table("orr", Schema([Column("o_id"), Column("o_cust"),
                                 Column("total")]),
                  [(10, 1, 55), (11, 2, 10), (12, 3, 70)])
    with pytest.raises(SqlError,
                       match=r"\['total'\] inside EXISTS also exist"):
        compile_statement(db, """
            SELECT * FROM cst WHERE EXISTS
                (SELECT * FROM orr WHERE o_cust = c_id AND total >= 50)
        """)


def test_like_on_numeric_column_rejected_at_bind_time(shop):
    with pytest.raises(SqlError, match="LIKE needs a string column"):
        spec_of(shop, "SELECT * FROM cust WHERE c_id LIKE '1%'")


def test_exists_correlation_with_bogus_qualifier_errors(shop):
    with pytest.raises(SqlError, match="unknown table 'bogus'"):
        spec_of(shop, "SELECT * FROM cust WHERE EXISTS "
                      "(SELECT * FROM ord WHERE bogus.o_cust = c_id)")


def test_hint_inside_exists_subquery_rejected(shop):
    with pytest.raises(SqlError, match="not inside subqueries"):
        spec_of(shop, "SELECT * FROM cust WHERE EXISTS "
                      "(SELECT /*+ no_inlj */ * FROM ord "
                      "WHERE o_cust = c_id)")


def test_like_percent_matches_everything(shop):
    spec = spec_of(shop, "SELECT * FROM cust WHERE c_name LIKE '%'")
    assert isinstance(spec.predicate, TruePredicate)
    n = shop.sql("SELECT count(*) AS n FROM cust WHERE c_name LIKE '%'")
    assert n.rows == [(200,)]


def test_sum_over_char_column_rejected_at_bind_time(shop):
    with pytest.raises(SqlError, match="needs a numeric argument"):
        spec_of(shop, "SELECT sum(c_name) AS s FROM cust")
    with pytest.raises(SqlError, match="needs a numeric argument"):
        spec_of(shop, "SELECT avg(CASE WHEN c_id = 1 THEN c_name "
                      "ELSE c_name END) AS s FROM cust")
    # min/max over strings is fine.
    result = shop.sql("SELECT min(c_name) AS lo FROM cust")
    assert result.rows == [("name000",)]


def test_exists_inner_columns_do_not_leak_into_where(shop):
    # Outside the subquery, inner-only columns are unknown — and the
    # answer must not depend on where the conjunct is written.
    for text in (
        "SELECT * FROM cust WHERE EXISTS "
        "(SELECT * FROM ord WHERE o_cust = c_id) AND o_total > 5",
        "SELECT * FROM cust WHERE o_total > 5 AND EXISTS "
        "(SELECT * FROM ord WHERE o_cust = c_id)",
    ):
        with pytest.raises(SqlError, match="unknown column 'o_total'"):
            spec_of(shop, text)


def test_exists_select_list_is_validated(shop):
    with pytest.raises(SqlError, match="unknown column 'totally_bogus'"):
        spec_of(shop, "SELECT * FROM cust WHERE EXISTS "
                      "(SELECT totally_bogus FROM ord WHERE o_cust = c_id)")
    # '*', literals and real inner columns are all fine.
    spec = spec_of(shop, "SELECT * FROM cust WHERE EXISTS "
                         "(SELECT 1 FROM ord WHERE o_cust = c_id)")
    assert spec.joins[0].how == "semi"


def test_binder_aggregate_schema_matches_operator(shop):
    # The binder's predicted aggregate layout and the executor's actual
    # HashAggregate schema come from one shared rule — including the
    # min/max source-type preservation.
    spec = spec_of(shop, """
        SELECT c_nation, min(c_name) AS first_name,
               100.0 * count(*) AS pct
        FROM cust GROUP BY c_nation
    """)
    planned = shop.plan(spec)
    agg_op = next(op for op in planned.operators()
                  if op.__class__.__name__ == "HashAggregate")
    name_col = agg_op.schema.columns[agg_op.schema.index_of("first_name")]
    assert name_col.ctype == ColumnType.CHAR and name_col.length == 8


def test_not_exists_becomes_anti_join(shop):
    spec = spec_of(shop, """
        SELECT * FROM cust WHERE NOT EXISTS
            (SELECT * FROM ord WHERE o_cust = c_id)
    """)
    assert spec.joins[0].how == "anti"


def test_semi_join_sql_results_match_fluent(shop):
    sql = shop.sql("""
        SELECT * FROM cust
        WHERE EXISTS (SELECT * FROM ord WHERE o_cust = c_id
                      AND o_total > 50)
        ORDER BY c_id
    """)
    fluent = (
        shop.query("cust")
        .where(Comparison("o_total", CompareOp.GT, 50))
        .join("ord", on=("c_id", "o_cust"), how="semi")
        .order_by("c_id")
        .run()
    )
    assert sql.rows == fluent.rows
    assert sql.io_ms == fluent.io_ms and sql.cpu_ms == fluent.cpu_ms


# -- select list / aggregation ----------------------------------------------

def test_star_means_no_projection(shop):
    assert spec_of(shop, "SELECT * FROM cust").select == ()


def test_plain_columns_project(shop):
    spec = spec_of(shop, "SELECT c_name, c_id FROM cust")
    assert spec.select == ("c_name", "c_id")


def test_aggregates_simple_and_computed(shop):
    spec = spec_of(shop, """
        SELECT c_nation, count(*) AS n, sum(c_id) AS total,
               sum(c_id * 2) AS doubled
        FROM cust GROUP BY c_nation
    """)
    assert spec.group_by == ("c_nation",)
    assert spec.select == ()  # natural layout: no trailing projection
    n, total, doubled = spec.aggregates
    assert n == AggSpec("count", "n")
    assert total == AggSpec("sum", "total", column="c_id")
    assert doubled.func == "sum" and doubled.value is not None
    assert doubled.value((7, 0, "x")) == 14


def test_aggregate_reordered_items_project(shop):
    spec = spec_of(shop, """
        SELECT count(*) AS n, c_nation FROM cust GROUP BY c_nation
    """)
    assert spec.select == ("n", "c_nation")


def test_composite_select_item_becomes_map(shop):
    spec = spec_of(shop, """
        SELECT 100.0 * sum(c_id) / count(*) AS avg_pct
        FROM cust
    """)
    assert len(spec.aggregates) == 2
    assert len(spec.maps) == 1
    assert spec.maps[0].schema.column_names == ("avg_pct",)
    result = shop.execute(spec)
    total = sum(i for i in range(200))
    assert result.rows == [(100.0 * total / 200,)]


def test_scalar_aggregate_without_group(shop):
    result = shop.sql("SELECT count(*) AS n, max(o_total) AS m FROM ord")
    assert result.rows == [(400, 89)]


def test_duplicate_output_columns_rejected(shop):
    with pytest.raises(SqlError, match="duplicate select column 'c_id'"):
        spec_of(shop, "SELECT c_id, c_id FROM cust")
    with pytest.raises(SqlError, match="duplicate output column 's'"):
        spec_of(shop, "SELECT sum(c_id) AS s, sum(c_nation) AS s FROM cust")
    with pytest.raises(SqlError, match="duplicate output column"):
        spec_of(shop, "SELECT c_nation, count(*) AS c_nation FROM cust "
                      "GROUP BY c_nation")


def test_underscored_number_literal_rejected(shop):
    with pytest.raises(SqlError, match="malformed number"):
        spec_of(shop, "SELECT * FROM cust WHERE c_id < 120_000")


def test_group_key_must_be_grouped(shop):
    with pytest.raises(SqlError, match="must appear in GROUP BY"):
        spec_of(shop, "SELECT c_name, count(*) AS n FROM cust "
                      "GROUP BY c_nation")


# -- ORDER BY / LIMIT / hints ------------------------------------------------

def test_order_by_and_limit(shop):
    spec = spec_of(shop, """
        SELECT c_nation, count(*) AS n FROM cust GROUP BY c_nation
        ORDER BY n DESC, c_nation LIMIT 3
    """)
    assert [(o.column, o.ascending) for o in spec.order_by] == [
        ("n", False), ("c_nation", True),
    ]
    assert spec.limit == 3


def test_order_by_unknown_output_column(shop):
    with pytest.raises(SqlError, match="not in the query output"):
        spec_of(shop, "SELECT c_nation, count(*) AS n FROM cust "
                      "GROUP BY c_nation ORDER BY c_name")


def test_order_by_validates_table_qualifier(shop):
    spec = spec_of(shop, "SELECT c_id FROM cust ORDER BY cust.c_id")
    assert spec.order_by[0].column == "c_id"
    with pytest.raises(SqlError, match="unknown table 'bogus'"):
        spec_of(shop, "SELECT c_id FROM cust ORDER BY bogus.c_id")


def test_hints_map_to_planner_options(shop):
    bound = compile_statement(shop, """
        SELECT /*+ force_path(full), no_inlj, smooth */ * FROM cust
    """)
    options = bound.planner_options()
    assert options.force_path == "full"
    assert options.enable_inlj is False
    assert options.enable_smooth is True


def test_hints_layer_over_base_options(shop):
    from repro.optimizer.planner import PlannerOptions
    bound = compile_statement(
        shop, "SELECT /*+ no_inlj */ * FROM cust"
    )
    base = PlannerOptions(enable_smooth=True)
    merged = bound.planner_options(base)
    assert merged.enable_smooth is True      # kept from base
    assert merged.enable_inlj is False       # set by hint
    assert base.enable_inlj is True          # base not mutated


def test_sql_results_match_fluent_on_join_aggregate(shop):
    sql = shop.sql("""
        SELECT c_nation, count(*) AS n, sum(o_total) AS revenue
        FROM cust JOIN ord ON c_id = o_cust
        WHERE o_total >= 10
        GROUP BY c_nation
        ORDER BY c_nation
    """)
    fluent = (
        shop.query("cust")
        .where(Comparison("o_total", CompareOp.GE, 10))
        .join("ord", on=("c_id", "o_cust"))
        .group_by("c_nation")
        .aggregate(AggSpec("count", "n"),
                   AggSpec("sum", "revenue", column="o_total"))
        .order_by("c_nation")
        .run()
    )
    assert sql.rows == fluent.rows
    assert sql.io_ms == fluent.io_ms and sql.cpu_ms == fluent.cpu_ms
    assert sql.disk.requests == fluent.disk.requests
