"""Bind parameters through the SQL front end: lexer → parser → binder.

The contract: ``?`` and ``:name`` placeholders lex as PARAM tokens, parse
into ``ParamRef`` nodes carrying statement-order slots, and bind into
``ParamMarker``-carrying predicates that :meth:`BoundStatement.bind_params`
turns into exactly the spec a literal statement would have produced.
"""

import pytest

from repro.database import Database
from repro.errors import PlanningError, SqlError
from repro.exec.expressions import Between, Comparison, InList
from repro.optimizer.params import (
    ParamMarker,
    resolve_params,
    substitute_predicate,
    unbound_params,
)
from repro.sql import compile_statement, normalize_statement, parse, tokenize
from repro.storage.types import Column, ColumnType, Schema


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load_table(
        "t",
        Schema([Column("a"), Column("b"),
                Column("tag", ColumnType.CHAR, 4)]),
        [(i, i * 2, f"t{i:03d}") for i in range(200)],
    )
    database.create_index("t", "a")
    return database


# -- lexer -------------------------------------------------------------------

def test_param_tokens():
    kinds = [(t.kind, t.value, t.text) for t in tokenize("? :lo :h_i2")]
    assert kinds == [
        ("PARAM", None, "?"),
        ("PARAM", "lo", ":lo"),
        ("PARAM", "h_i2", ":h_i2"),
        ("EOF", None, ""),
    ]


def test_param_token_describe():
    q, named = tokenize("? :hi")[:2]
    assert q.describe() == "parameter ?"
    assert named.describe() == "parameter :hi"


# -- parser ------------------------------------------------------------------

def test_positional_params_indexed_in_statement_order():
    select = parse("SELECT * FROM t WHERE a >= ? AND a < ? LIMIT ?")
    assert [p.index for p in select.params] == [0, 1, 2]
    assert [p.name for p in select.params] == [None, None, None]
    assert select.limit is select.params[2]


def test_named_params_may_repeat():
    select = parse("SELECT * FROM t WHERE a = :x OR b = :x")
    assert [(p.index, p.name) for p in select.params] == [(0, "x"), (1, "x")]


def test_params_in_in_lists_and_aggregates():
    select = parse("SELECT sum(b * ?) AS s FROM t WHERE a IN (?, ?, 7)")
    assert len(select.params) == 3


# -- binder ------------------------------------------------------------------

def test_comparison_param_binds_to_marker(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE a < ?")
    pred = bound.spec.predicate
    assert isinstance(pred, Comparison)
    assert pred.value == ParamMarker(0)
    assert bound.param_count == 1
    concrete = bound.bind_params((42,))
    assert concrete.predicate == Comparison(pred.column, pred.op, 42)


def test_flipped_literal_param_comparison(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE ? <= a")
    concrete = bound.bind_params((10,))
    # '? <= a' flips to 'a >= ?'.
    assert repr(concrete.predicate) == "a >= 10"


def test_merged_between_with_param_bounds(db):
    # The lo/hi merge canonicalization must survive parameterization:
    # 'a >= ? AND a < ?' becomes one Between carrying two markers.
    bound = compile_statement(db, "SELECT * FROM t WHERE a >= ? AND a < ?")
    pred = bound.spec.predicate
    assert isinstance(pred, Between)
    assert (pred.lo, pred.hi) == (ParamMarker(0), ParamMarker(1))
    concrete = bound.bind_params((5, 50)).predicate
    assert (concrete.lo, concrete.hi) == (5, 50)
    assert (concrete.lo_inclusive, concrete.hi_inclusive) == (True, False)


def test_explicit_between_params(db):
    bound = compile_statement(db,
                              "SELECT * FROM t WHERE a BETWEEN :lo AND :hi")
    concrete = bound.bind_params({"lo": 3, "hi": 9}).predicate
    assert (concrete.lo, concrete.hi) == (3, 9)
    assert concrete.lo_inclusive and concrete.hi_inclusive


def test_in_list_params(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE a IN (?, 7, ?)")
    concrete = bound.bind_params((1, 9)).predicate
    assert isinstance(concrete, InList)
    assert concrete.values == (1, 7, 9)


def test_limit_param(db):
    bound = compile_statement(db, "SELECT * FROM t LIMIT :n")
    assert bound.spec.limit == ParamMarker(0, "n")
    assert bound.bind_params({"n": 5}).limit == 5
    with pytest.raises(SqlError, match="non-negative integer"):
        bound.bind_params({"n": -1})
    with pytest.raises(SqlError, match="non-negative integer"):
        bound.bind_params({"n": 2.5})


def test_aggregate_argument_param_uses_slots(db):
    bound = compile_statement(db, "SELECT sum(b * :f) AS s FROM t")
    spec = bound.bind_params({"f": 10.0})
    result = db.execute(spec, cold=False)
    assert result.rows == [(sum(i * 2 for i in range(200)) * 10.0,)]


def test_aggregate_param_must_be_numeric(db):
    # The literal twin (sum('abc')) is rejected at bind time; the
    # parameterized form is rejected when the value arrives, not as a
    # TypeError deep inside the aggregate.
    bound = compile_statement(db, "SELECT sum(:s) AS s FROM t")
    with pytest.raises(SqlError, match=":s is an argument of sum"):
        bound.bind_params({"s": "abc"})
    assert bound.bind_params({"s": 2.5}) is not None
    bound_q = compile_statement(db, "SELECT avg(b * ?) AS s FROM t")
    with pytest.raises(SqlError, match="parameter 1 is an argument"):
        bound_q.bind_params(("x",))
    with pytest.raises(SqlError, match="must be numeric, got True"):
        bound_q.bind_params((True,))
    # count()/min()/max() stay permissive (strings aggregate fine).
    bound_min = compile_statement(db, "SELECT min(tag) AS m, count(*) "
                                      "AS n FROM t WHERE a < ?")
    assert bound_min.numeric_params == frozenset()


def test_case_condition_param_rejected(db):
    with pytest.raises(SqlError,
                       match="parameters inside CASE conditions"):
        compile_statement(
            db,
            "SELECT sum(CASE WHEN a < ? THEN b ELSE 0 END) AS s FROM t",
        )


def test_literal_vs_param_comparison_rejected(db):
    with pytest.raises(SqlError,
                       match="comparison of two literals"):
        compile_statement(db, "SELECT * FROM t WHERE ? = 3")


# -- resolve_params ----------------------------------------------------------

def test_positional_count_mismatch(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE a < ?")
    with pytest.raises(SqlError, match="takes 1 parameter, got 2"):
        bound.bind_params((1, 2))
    with pytest.raises(SqlError, match="takes 1 parameter, got none"):
        bound.bind_params(None)


def test_positional_rejects_mapping_and_strings(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE a < ?")
    with pytest.raises(SqlError, match="pass a sequence"):
        bound.bind_params({"a": 1})
    with pytest.raises(SqlError, match="not a bare string"):
        bound.bind_params("1")


def test_named_missing_and_extra_keys(db):
    bound = compile_statement(db,
                              "SELECT * FROM t WHERE a BETWEEN :lo AND :hi")
    with pytest.raises(SqlError, match="missing parameter values for: hi"):
        bound.bind_params({"lo": 1})
    with pytest.raises(SqlError, match="unknown parameter names: typo"):
        bound.bind_params({"lo": 1, "hi": 2, "typo": 3})
    with pytest.raises(SqlError, match="pass a mapping"):
        bound.bind_params((1, 2))


def test_parameterless_statement_rejects_params(db):
    bound = compile_statement(db, "SELECT * FROM t")
    with pytest.raises(SqlError, match="takes no parameters"):
        bound.bind_params((1,))
    assert bound.bind_params(None) is bound.spec  # no-op substitution


def test_resolve_params_orders_repeated_names():
    assert resolve_params(("x", "y", "x"), {"x": 1, "y": 2}) == [1, 2, 1]


# -- substitution and the planner guard --------------------------------------

def test_substitute_preserves_identity_when_unparameterized():
    pred = Between("a", 1, 2)
    assert substitute_predicate(pred, []) is pred


def test_unbound_spec_refuses_to_plan(db):
    bound = compile_statement(db, "SELECT * FROM t WHERE a < ?")
    assert [m.index for m in unbound_params(bound.spec)] == [0]
    with pytest.raises(PlanningError, match="unbound parameter"):
        db.plan(bound.spec)


# -- normalization -----------------------------------------------------------

def test_normalize_ignores_whitespace_comments_and_case():
    a = normalize_statement(
        "select * from t  where a >= ? -- c\n AND a < :hi"
    )
    b = normalize_statement(
        "SELECT *\nFROM t WHERE a >= ? /* x */ AND a < :hi"
    )
    assert a == b == "SELECT * FROM t WHERE a >= ? AND a < :hi"


def test_normalize_keeps_hints_and_literals_distinct():
    plain = normalize_statement("SELECT * FROM t WHERE a < 5")
    hinted = normalize_statement("SELECT /*+ smooth */ * FROM t WHERE a < 5")
    other = normalize_statement("SELECT * FROM t WHERE a < 6")
    assert len({plain, hinted, other}) == 3


def test_normalize_canonicalizes_strings():
    a = normalize_statement("SELECT * FROM t WHERE tag = 'x''y'")
    assert "'x''y'" in a
