"""Eqs. (3)-(9): layout math, validated against the paper's numbers."""

import pytest

from repro.errors import BTreeError
from repro.index import layout


def test_paper_micro_geometry():
    # 400M 64-byte tuples, 8KB pages: the numbers quoted in Section VI.
    tpp = layout.tuples_per_page(8192, 512, 64)
    assert tpp == 120
    assert layout.num_pages(400_000_000, tpp) == 3_333_334
    f = layout.fanout(8192, 4)
    assert f == 1706
    leaves = layout.num_leaves(400_000_000, f)
    assert leaves == 234_467
    assert layout.height(leaves, f) == 3


def test_tuples_per_page_errors():
    with pytest.raises(BTreeError):
        layout.tuples_per_page(8192, 512, 0)
    with pytest.raises(BTreeError):
        layout.tuples_per_page(8192, 8000, 500)


def test_num_pages_rounds_up():
    assert layout.num_pages(121, 120) == 2
    assert layout.num_pages(120, 120) == 1
    assert layout.num_pages(0, 120) == 0


def test_fanout_includes_pointer_overhead():
    # floor(8192 / (1.2 * 8)) = 853
    assert layout.fanout(8192, 8) == 853
    with pytest.raises(BTreeError):
        layout.fanout(8192, 0)
    with pytest.raises(BTreeError):
        layout.fanout(10, 8)


def test_height_edge_cases():
    assert layout.height(0, 100) == 1
    assert layout.height(1, 100) == 1
    assert layout.height(2, 100) == 2
    assert layout.height(100, 100) == 2
    assert layout.height(101, 100) == 3


def test_result_cardinality():
    assert layout.result_cardinality(0.5, 100) == 50
    assert layout.result_cardinality(0.0, 100) == 0
    assert layout.result_cardinality(1.0, 100) == 100
    with pytest.raises(BTreeError):
        layout.result_cardinality(1.5, 100)


def test_leaves_with_results():
    assert layout.leaves_with_results(0, 100) == 0
    assert layout.leaves_with_results(1, 100) == 1
    assert layout.leaves_with_results(101, 100) == 2


def test_level_sizes():
    assert layout.level_sizes(1, 10) == [1]
    assert layout.level_sizes(10, 10) == [10, 1]
    assert layout.level_sizes(100, 10) == [100, 10, 1]
    assert layout.level_sizes(0, 10) == [1]
