"""The sans-IO serving session: frames in, frames out, slots rationed.

Everything here drives :meth:`ServerSession.handle` with plain dict
frames — exactly what both transports (asyncio sockets and the
in-process benchmark loop) do — so the protocol behavior asserted here
is the serving behavior everywhere.
"""

import pytest

from repro.database import Database
from repro.experiments.concurrency import CLASSIC_OPTIONS
from repro.runtime import CostLedger
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.protocol import ProtocolError
from repro.server.session import ServerFront
from repro.workloads.micro import build_micro_table

NUM_TUPLES = 12_000

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"


@pytest.fixture()
def db():
    db = Database()
    build_micro_table(db, num_tuples=NUM_TUPLES, seed=7)
    db.analyze()
    return db


def make_front(db, max_inflight=4, **kwargs):
    return ServerFront(
        db, options=CLASSIC_OPTIONS,
        admission=AdmissionController(db, max_inflight=max_inflight),
        **kwargs,
    )


def one(frames):
    assert len(frames) == 1, frames
    return frames[0]


def test_hello_announces_protocol_and_limits(db):
    front = make_front(db)
    session = front.session()
    hello = session.hello()
    assert hello["op"] == "hello"
    assert hello["protocol"] == protocol.PROTOCOL_VERSION
    assert hello["max_inflight"] == 4
    assert front.sessions == 1


def test_prepare_execute_fetch_close_round_trip(db):
    front = make_front(db, rows_per_frame=64)
    session = front.session()
    prepared = one(session.handle({"op": "prepare", "id": 1, "sql": SQL}))
    assert prepared["op"] == "prepared"
    assert prepared["params"] == 2
    assert sorted(prepared["param_names"]) == ["hi", "lo"]

    executing = one(session.handle(
        {"op": "execute", "id": 2, "statement": prepared["statement"],
         "params": {"lo": 0, "hi": 100}}))
    assert executing["op"] == "executing"
    assert executing["admission"]["action"] == "admit"
    assert executing["admission"]["queued_ms"] == 0.0
    assert [name for name, _type in executing["description"]] == \
        ["c1", "c2"]
    assert front.inflight == 1

    rows, done_frame = [], None
    while done_frame is None:
        frame = one(session.handle(
            {"op": "fetch", "id": 3, "cursor": executing["cursor"]}))
        assert frame["op"] == "rows"
        rows.extend(frame["rows"])
        if frame["done"]:
            done_frame = frame
    assert all(0 <= c2 < 100 for _c1, c2 in rows)
    summary = done_frame["summary"]
    assert summary["rows"] == len(rows)
    assert summary["partial"] is False
    # The measurement travels as a full ledger: a client can rebuild
    # it and the charges reproduce the engine's accounting.
    rebuilt = CostLedger.from_dict(summary["ledger"])
    assert rebuilt.matches(db.runtime.totals())
    # The slot came back when the stream finished.
    assert front.inflight == 0


def test_query_is_execute_plus_drain(db):
    front = make_front(db, rows_per_frame=64)
    session = front.session()
    frames = session.handle(
        {"op": "query", "id": 1, "sql": SQL,
         "params": {"lo": 0, "hi": 300}})
    assert frames[0]["op"] == "executing"
    assert all(f["op"] == "rows" for f in frames[1:])
    assert frames[-1]["done"] and "summary" in frames[-1]
    assert sum(len(f["rows"]) for f in frames[1:]) == \
        frames[-1]["summary"]["rows"]


def test_close_reports_partial_summary_and_frees_slot(db):
    front = make_front(db, rows_per_frame=16)
    session = front.session()
    executing = one(session.handle(
        {"op": "execute", "id": 1, "sql": SQL,
         "params": {"lo": 0, "hi": 50_000}}))
    one(session.handle(
        {"op": "fetch", "id": 2, "cursor": executing["cursor"], "n": 16}))
    closed = one(session.handle(
        {"op": "close", "id": 3, "cursor": executing["cursor"]}))
    assert closed["op"] == "closed"
    assert closed["summary"]["partial"] is True
    assert closed["summary"]["rows"] >= 16
    assert front.inflight == 0


def test_explain_runs_without_admission_or_slot(db):
    front = make_front(db)
    session = front.session()
    frames = session.handle(
        {"op": "query", "id": 1, "sql": "EXPLAIN " + SQL,
         "params": {"lo": 0, "hi": 100}})
    assert frames[0]["admission"] is None
    assert front.inflight == 0
    assert front.admission.stats.decided == 0
    assert frames[-1]["summary"] == {
        "rows": frames[-1]["summary"]["rows"], "partial": False}
    assert frames[-1]["summary"]["rows"] > 0


def test_structured_errors_do_not_kill_the_session(db):
    front = make_front(db)
    session = front.session()
    bad_sql = one(session.handle(
        {"op": "query", "id": 1, "sql": "SELEKT zilch"}))
    assert (bad_sql["op"], bad_sql["code"]) == ("error", "sql_error")
    missing_stmt = one(session.handle(
        {"op": "execute", "id": 2, "statement": 99}))
    assert missing_stmt["code"] == protocol.ERR_STATEMENT_MISSING
    missing_cursor = one(session.handle(
        {"op": "fetch", "id": 3, "cursor": 99}))
    assert missing_cursor["code"] == protocol.ERR_CURSOR_MISSING
    malformed = one(session.handle({"op": "fetch", "id": 4}))
    assert malformed["code"] == protocol.ERR_BAD_FRAME
    unknown = one(session.handle({"op": "mystery", "id": 5}))
    assert unknown["code"] == protocol.ERR_UNKNOWN_OP
    # After all of that the session still serves queries.
    frames = session.handle({"op": "query", "id": 6, "sql": SQL,
                             "params": {"lo": 0, "hi": 100}})
    assert frames[-1]["done"]


def test_rejection_carries_the_priced_decision(db):
    front = make_front(db)
    session = front.session()
    error = one(session.handle(
        {"op": "query", "id": 1,
         "sql": "SELECT /*+ force_path(index) */ * FROM micro "
                "WHERE c2 < 50000"}))
    assert (error["op"], error["code"]) == ("error", "rejected")
    detail = error["detail"]
    assert detail["action"] == "reject"
    assert detail["estimated_cost"] > detail["budget"]
    assert front.admission.stats.rejected == 1
    assert front.inflight == 0


def test_saturated_front_parks_then_pumps_fifo(db):
    front = make_front(db, max_inflight=1, rows_per_frame=32)
    granted = []
    first = front.session()
    second = front.session(sink=granted.append)
    third = front.session(sink=granted.append)

    running = one(first.handle(
        {"op": "execute", "id": "a", "sql": SQL,
         "params": {"lo": 0, "hi": 2_000}}))
    assert running["op"] == "executing"
    # The engine is saturated: the next two admitted requests park (no
    # response frames yet), FIFO order.
    assert second.handle({"op": "execute", "id": "b", "sql": SQL,
                          "params": {"lo": 0, "hi": 100}}) == []
    assert third.handle({"op": "execute", "id": "c", "sql": SQL,
                         "params": {"lo": 0, "hi": 100}}) == []
    assert front.queued == 2
    assert granted == []

    # Draining the running cursor releases the slot; the front pumps
    # the queue head (and only it — one slot) through the sink.
    while True:
        frame = one(first.handle(
            {"op": "fetch", "id": "a2", "cursor": running["cursor"]}))
        if frame["done"]:
            break
    assert [f["id"] for f in granted if f["op"] == "executing"] == ["b"]
    grant = granted[0]
    assert grant["admission"]["queued_ms"] > 0.0
    assert front.queued == 1

    # Closing the granted cursor cascades to the last queued request.
    second.handle({"op": "close", "id": "b2", "cursor": grant["cursor"]})
    assert [f["id"] for f in granted if f["op"] == "executing"] == \
        ["b", "c"]
    stats = front.admission.stats
    assert stats.queued == 2
    assert stats.queue_wait_p99_ms > 0.0


def test_cancel_parked_withdraws_exactly_once(db):
    front = make_front(db, max_inflight=1)
    session = front.session()
    running = one(session.handle(
        {"op": "execute", "id": 1, "sql": SQL,
         "params": {"lo": 0, "hi": 2_000}}))
    assert session.handle({"op": "execute", "id": 2, "sql": SQL,
                           "params": {"lo": 0, "hi": 100}}) == []
    assert front.cancel_parked(session, 2) is True
    assert front.cancel_parked(session, 2) is False  # already withdrawn
    assert front.queued == 0
    # The freed slot does not start the cancelled request.
    session.handle({"op": "close", "id": 3, "cursor": running["cursor"]})
    assert front.inflight == 0


def test_shutdown_flushes_queue_and_refuses_new_work(db):
    front = make_front(db, max_inflight=1)
    flushed = []
    busy = front.session()
    waiting = front.session(sink=flushed.append)
    running = one(busy.handle(
        {"op": "execute", "id": 1, "sql": SQL,
         "params": {"lo": 0, "hi": 2_000}}))
    assert waiting.handle({"op": "execute", "id": 2, "sql": SQL,
                           "params": {"lo": 0, "hi": 100}}) == []

    ack = one(busy.handle({"op": "shutdown", "id": 3}))
    assert ack["op"] == "shutting_down"
    assert front.draining
    # The parked request was flushed with a structured error...
    assert [f["code"] for f in flushed] == [protocol.ERR_SHUTTING_DOWN]
    # ...new statements are refused...
    refused = one(waiting.handle({"op": "execute", "id": 4, "sql": SQL,
                                  "params": {"lo": 0, "hi": 100}}))
    assert refused["code"] == protocol.ERR_SHUTTING_DOWN
    # ...but the in-flight cursor still drains gracefully.
    frame = one(busy.handle(
        {"op": "fetch", "id": 5, "cursor": running["cursor"], "n": 10}))
    assert frame["op"] == "rows"


def test_session_close_releases_slots_and_pumps_others(db):
    front = make_front(db, max_inflight=1)
    granted = []
    leaving = front.session()
    staying = front.session(sink=granted.append)
    one(leaving.handle({"op": "execute", "id": 1, "sql": SQL,
                        "params": {"lo": 0, "hi": 2_000}}))
    assert staying.handle({"op": "execute", "id": 2, "sql": SQL,
                           "params": {"lo": 0, "hi": 100}}) == []
    leaving.close()
    # The dropped client's slot went straight to the queued request.
    assert [f["op"] for f in granted] == ["executing"]
    assert front.sessions == 1
    with pytest.raises(ProtocolError):
        leaving.handle({"op": "stats", "id": 3})


def test_stats_frame_reports_front_state(db):
    front = make_front(db)
    session = front.session()
    session.handle({"op": "query", "id": 1, "sql": SQL,
                    "params": {"lo": 0, "hi": 100}})
    stats = one(session.handle({"op": "stats", "id": 2}))
    assert stats["admission"]["admitted"] == 1
    engine = stats["engine"]
    assert engine["sessions"] == 1
    assert engine["inflight"] == 0
    assert engine["queued"] == 0
    assert engine["draining"] is False
    assert engine["clock_ms"] > 0.0


def test_degraded_statements_share_one_connection(db):
    front = make_front(db)
    session = front.session()
    # Seed the cached recipe at tiny selectivity, then replay drifted:
    # both drifted replays degrade and run on the front's one shared
    # degraded connection (one plan-cache entry for all of them).
    session.handle({"op": "query", "id": 1, "sql": SQL,
                    "params": {"lo": 0, "hi": 50}})
    for rid, hi in ((2, 8_000), (3, 9_000)):
        frames = session.handle({"op": "query", "id": rid, "sql": SQL,
                                 "params": {"lo": 0, "hi": hi}})
        assert frames[0]["admission"]["action"] == "degrade"
        assert frames[-1]["done"]
    assert front.admission.stats.degraded == 2
    conn = front.degraded_connection("micro")
    assert front.degraded_connection("micro") is conn


def test_closed_connection_answers_interface_on_every_frame_type(db):
    """Satellite guarantee: session-layer misuse surfaces as the
    structured ``interface`` code for every request op — a client
    racing a connection close never sees ``internal``."""
    front = make_front(db)
    session = front.session()
    prepared = one(session.handle({"op": "prepare", "id": 1, "sql": SQL}))
    executing = session.handle({"op": "execute", "id": 2, "sql": SQL,
                                "params": {"lo": 0, "hi": 100}})[0]
    cid = executing["cursor"]
    session.conn.close()  # the engine connection dies under the session
    for _rid, frame in enumerate((
        {"op": "prepare", "id": 10, "sql": SQL},
        {"op": "execute", "id": 11, "sql": SQL,
         "params": {"lo": 0, "hi": 100}},
        {"op": "execute", "id": 12, "statement": prepared["statement"],
         "params": {"lo": 0, "hi": 100}},
        {"op": "query", "id": 13, "sql": SQL,
         "params": {"lo": 0, "hi": 100}},
        {"op": "fetch", "id": 14, "cursor": cid},
    )):
        response = one(session.handle(frame))
        assert response["op"] == "error", frame
        assert response["code"] == protocol.ERR_INTERFACE, frame
        assert "closed" in response["message"], frame
    # The session itself survives: stats still answers.
    assert one(session.handle({"op": "stats", "id": 20}))["op"] == "stats"


def test_closed_cursor_fetch_is_an_interface_error(db):
    front = make_front(db)
    session = front.session()
    executing = session.handle({"op": "execute", "id": 1, "sql": SQL,
                                "params": {"lo": 0, "hi": 100}})[0]
    cid = executing["cursor"]
    state = session._cursors[cid]
    state.cursor.close()  # underlying cursor dies, handle still live
    response = one(session.handle({"op": "fetch", "id": 2,
                                   "cursor": cid}))
    assert response["op"] == "error"
    assert response["code"] == protocol.ERR_INTERFACE


def test_stats_frame_carries_telemetry_and_plan_cache_gauges(db):
    db.tracer.enable()
    front = make_front(db)
    session = front.session()
    session.handle({"op": "query", "id": 1, "sql": SQL,
                    "params": {"lo": 0, "hi": 100}})
    stats = one(session.handle({"op": "stats", "id": 2}))
    telemetry = stats["telemetry"]
    assert telemetry["enabled"] is True
    assert telemetry["events_buffered"] > 0
    counters = telemetry["metrics"]["counters"]
    assert counters["queries_total"] == 1
    assert counters["admission_admits_total"] == 1
    gauges = telemetry["metrics"]["gauges"]
    # One source of truth: the gauges mirror PlanCache.stats_dict().
    for name, value in db.plan_cache.stats_dict().items():
        assert gauges[f"plan_cache_{name}"] == value


def test_admission_events_attribute_client_and_query_span(db):
    db.tracer.enable()
    front = make_front(db)
    session = front.session()
    session.handle({"op": "query", "id": 1, "sql": SQL,
                    "params": {"lo": 0, "hi": 50}})
    session.handle({"op": "query", "id": 2, "sql": SQL,
                    "params": {"lo": 0, "hi": 9_000}})  # drifted: degrades
    events = db.tracer.drain()
    admit = next(e for e in events if e.kind == "admission.admit")
    degrade = next(e for e in events if e.kind == "admission.degrade")
    assert admit.attrs["action"] == "admit"
    assert degrade.attrs["action"] == "degrade"
    for event in (admit, degrade):
        assert event.query_id >= 0
        start = next(e for e in events
                     if e.kind == "query.start"
                     and e.query_id == event.query_id)
        assert start.attrs["client"] == f"session-{session.id}"
        assert start.attrs["sql"] == SQL


def test_rejected_statement_emits_a_priced_trace_event(db):
    db.tracer.enable()
    front = make_front(db)
    session = front.session()
    error = one(session.handle(
        {"op": "query", "id": 1,
         "sql": "SELECT /*+ force_path(index) */ * FROM micro "
                "WHERE c2 < 50000"}))
    assert (error["op"], error["code"]) == ("error", "rejected")
    reject = next(e for e in db.tracer.drain()
                  if e.kind == "admission.reject")
    assert reject.attrs["action"] == "reject"
    assert reject.value == reject.attrs["estimated_cost"]
    assert reject.attrs["estimated_cost"] > reject.attrs["budget"]
