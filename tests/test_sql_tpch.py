"""SQL TPC-H queries are measurement-identical to their fluent twins.

The acceptance bar for the SQL front end: Q1, Q6 and Q14 written as SQL
text must lower to plans that charge the same simulated cost and produce
the same rows as the ``FLUENT_QUERIES`` definitions, in every Figure-1
execution mode.  Also covers the EXPLAIN rendering and the requirement
that a hint comment demonstrably changes the chosen access path.
"""

import pytest

from repro.experiments.fig1 import make_tuned_tpch
from repro.sql import compile_statement
from repro.workloads.tpch.queries import (
    FLUENT_QUERIES,
    SQL_QUERIES,
    mode_options,
)

MODES = ("original", "tuned", "smooth")


@pytest.fixture(scope="module")
def setup():
    return make_tuned_tpch(scale_factor=0.002)


def run_fluent(setup, name, mode):
    return setup.db.execute(
        FLUENT_QUERIES[name](setup.db), cold=True,
        options=mode_options(mode), catalog=setup.catalog,
    )


def run_sql(setup, name, mode):
    bound = compile_statement(setup.db, SQL_QUERIES[name])
    return setup.db.execute(
        bound.spec, cold=True,
        options=bound.planner_options(mode_options(mode)),
        catalog=setup.catalog,
    )


@pytest.mark.parametrize("name", sorted(SQL_QUERIES))
@pytest.mark.parametrize("mode", MODES)
def test_sql_measurement_identical_to_fluent(setup, name, mode):
    fluent = run_fluent(setup, name, mode)
    sql = run_sql(setup, name, mode)
    assert sql.rows == fluent.rows                      # byte-identical
    assert sql.io_ms == fluent.io_ms
    assert sql.cpu_ms == fluent.cpu_ms
    assert sql.disk.requests == fluent.disk.requests
    assert sql.disk.bytes_read == fluent.disk.bytes_read
    # Same access-path decisions, in the same plan order.
    assert [d.path for d in sql.decisions] == \
        [d.path for d in fluent.decisions]


def test_sql_queries_cover_the_fluent_set():
    assert sorted(SQL_QUERIES) == sorted(FLUENT_QUERIES)


def test_explain_renders_estimated_and_actual(setup):
    db = setup.db
    text = db.sql("EXPLAIN " + SQL_QUERIES["Q6"],
                  options=mode_options("tuned"), catalog=setup.catalog)
    assert isinstance(text, str)
    assert "rows est=" in text and "act=?" in text
    # After execution the same plan object reports actuals; via the
    # one-shot facade we at least verify the executed result's tree.
    result = run_sql(setup, "Q6", "tuned")
    executed = result.explain()
    assert "act=?" not in executed.splitlines()[0]


def test_database_explain_accepts_plain_select(setup):
    text = setup.db.explain(SQL_QUERIES["Q1"], catalog=setup.catalog)
    assert "HashAggregate" in text and "lineitem" in text


def test_hint_changes_chosen_access_path(setup):
    db = setup.db
    base = "SELECT count(*) AS n FROM lineitem WHERE l_quantity < 24"
    hinted = ("SELECT /*+ force_path(smooth) */ count(*) AS n "
              "FROM lineitem WHERE l_quantity < 24")
    plain = db.sql(base, keep_rows=False, catalog=setup.catalog)
    smooth = db.sql(hinted, keep_rows=False, catalog=setup.catalog)
    assert plain.decisions[0].path != "smooth"
    assert smooth.decisions[0].path == "smooth"
    assert smooth.row_count == plain.row_count
    assert "SmoothScan" in smooth.explain()


def test_no_inlj_hint_switches_join_method(setup):
    db = setup.db
    base = """
        SELECT count(*) AS n
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-10-01'
    """
    hinted = base.replace("SELECT", "SELECT /*+ no_inlj */", 1)
    plain = db.sql(base, keep_rows=False, catalog=setup.catalog)
    no_inlj = db.sql(hinted, keep_rows=False, catalog=setup.catalog)
    plain_paths = [d.path for d in plain.decisions]
    hinted_paths = [d.path for d in no_inlj.decisions]
    assert "inlj" in plain_paths          # tuned Q14 probes part via INLJ
    assert "inlj" not in hinted_paths
    assert "hash" in hinted_paths
    assert no_inlj.row_count == plain.row_count
