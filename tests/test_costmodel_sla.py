"""The SLA machinery (Sections III-C and VI-D) in isolation.

These pin the *contract* the serving front's admission controller
builds on: budgets scale linearly with the full-scan cost, the
worst-case total is monotone in the trigger cardinality, and
``trigger_cardinality`` returns the exact fence post — the largest
Mode-0 prefix whose 100%-selectivity surprise still fits the bound.
"""

import doctest

import pytest

from repro.costmodel import sla
from repro.costmodel.formulas import full_scan_cost
from repro.costmodel.params import CostParams
from repro.costmodel.sla import (
    sla_bound_for_full_scans,
    trigger_cardinality,
    worst_case_total_cost,
)
from repro.errors import ConfigError

#: The paper's micro-benchmark geometry (400M 64-byte tuples).
PAPER = CostParams(tuple_size=64, num_tuples=400_000_000, key_size=4)

#: The serving experiment's geometry: 100 pages, 12,000 tuples.
SMALL = CostParams(tuple_size=64, num_tuples=12_000)


def test_docstring_examples():
    results = doctest.testmod(sla)
    assert results.attempted > 0
    assert results.failed == 0


def test_bound_is_linear_in_multiple():
    full = full_scan_cost(SMALL.at_selectivity(1.0))
    assert sla_bound_for_full_scans(SMALL, 1.0) == full
    assert sla_bound_for_full_scans(SMALL, 2.5) == 2.5 * full
    # The paper's default: two full scans.
    assert sla_bound_for_full_scans(SMALL) == 2.0 * full


def test_bound_rejects_non_positive_multiple():
    with pytest.raises(ConfigError):
        sla_bound_for_full_scans(SMALL, 0.0)
    with pytest.raises(ConfigError):
        sla_bound_for_full_scans(SMALL, -1.0)


def test_worst_case_monotone_in_trigger():
    # Every extra Mode-0 tuple is an extra random access in the
    # 100%-selectivity worst case, so later morphs only cost more.
    costs = [worst_case_total_cost(SMALL, card)
             for card in (0, 1, 10, 100, 1_000)]
    assert costs == sorted(costs)
    assert costs[0] < costs[-1]


def test_worst_case_eager_is_bounded_by_two_full_scans():
    # The morphing guarantee the admission controller leans on: an
    # eager morph on this geometry fits inside two full scans.
    full = full_scan_cost(SMALL.at_selectivity(1.0))
    assert worst_case_total_cost(SMALL, 0) < 2.0 * full


def test_trigger_is_the_exact_fence_post():
    bound = sla_bound_for_full_scans(SMALL, 2.0)
    card = trigger_cardinality(SMALL, bound)
    assert worst_case_total_cost(SMALL, card) <= bound
    assert worst_case_total_cost(SMALL, card + 1) > bound


def test_trigger_zero_when_eager_just_fits():
    # A bound right at the eager worst case admits only an immediate
    # morph: the largest safe Mode-0 prefix is empty.
    eager = worst_case_total_cost(SMALL, 0)
    assert trigger_cardinality(SMALL, eager) == 0


def test_trigger_unachievable_raises():
    eager = worst_case_total_cost(SMALL, 0)
    with pytest.raises(ConfigError, match="eager worst case"):
        trigger_cardinality(SMALL, eager - 1.0)


def test_trigger_saturates_at_table_size():
    # A bound beyond the all-Mode-0 worst case cannot ask for more
    # than the table holds.
    everything = worst_case_total_cost(SMALL, SMALL.num_tuples)
    assert trigger_cardinality(SMALL, everything * 2) == SMALL.num_tuples


def test_paper_scale_trigger_is_tiny_fraction_of_table():
    # Section VI-D's shape at the 400M-tuple micro-benchmark scale: a
    # two-full-scans SLA pins the traditional prefix to a tiny slice
    # of the table (the paper reports 32K tuples on its hardware; this
    # model's HDD constants give ~310K — still under 0.1% selectivity,
    # vs the 4M tuples that 1% would be).
    bound = sla_bound_for_full_scans(PAPER, 2.0)
    card = trigger_cardinality(PAPER, bound)
    assert card < 0.001 * PAPER.num_tuples
    assert worst_case_total_cost(PAPER, card) <= bound
