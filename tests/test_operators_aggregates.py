"""Hash aggregation: grouping, functions, NULL handling, scalar form."""

import pytest

from repro.errors import PlanningError
from repro.exec.aggregates import AggSpec, HashAggregate, scalar_aggregate
from repro.exec.scans import FullTableScan
from repro.exec.stats import measure
from repro.storage.types import Schema


@pytest.fixture()
def agg_db(db):
    table = db.load_table(
        "t", Schema.of_ints(["g", "v"]),
        [(i % 3, i) for i in range(12)],  # groups 0,1,2 with 4 rows each
    )
    return db, FullTableScan(table)


def test_group_by_sum_count(agg_db):
    db, scan = agg_db
    agg = HashAggregate(scan, ["g"], [
        AggSpec("sum", "total", column="v"),
        AggSpec("count", "n"),
    ])
    rows = {r[0]: (r[1], r[2]) for r in measure(db, agg).rows}
    assert rows[0] == (0 + 3 + 6 + 9, 4)
    assert rows[1] == (1 + 4 + 7 + 10, 4)
    assert rows[2] == (2 + 5 + 8 + 11, 4)


def test_min_max_avg(agg_db):
    db, scan = agg_db
    agg = HashAggregate(scan, ["g"], [
        AggSpec("min", "lo", column="v"),
        AggSpec("max", "hi", column="v"),
        AggSpec("avg", "mean", column="v"),
    ])
    rows = {r[0]: r[1:] for r in measure(db, agg).rows}
    assert rows[0] == (0, 9, 4.5)


def test_value_callable(agg_db):
    db, scan = agg_db
    agg = HashAggregate(scan, [], [
        AggSpec("sum", "double", value=lambda r: r[1] * 2),
    ])
    assert measure(db, agg).rows == [(2 * sum(range(12)),)]


def test_scalar_aggregate_on_empty_input(db):
    table = db.load_table("e", Schema.of_ints(["a"]), [])
    agg = scalar_aggregate(FullTableScan(table), [
        AggSpec("count", "n"),
        AggSpec("sum", "s", column="a"),
        AggSpec("min", "lo", column="a"),
    ])
    rows = measure(db, agg).rows
    assert len(rows) == 1
    n, s, lo = rows[0]
    assert n == 0 and s == 0.0 and lo is None


def test_group_by_empty_input_yields_no_groups(db):
    table = db.load_table("e", Schema.of_ints(["a"]), [])
    agg = HashAggregate(FullTableScan(table), ["a"],
                        [AggSpec("count", "n")])
    assert measure(db, agg).rows == []


def test_nulls_skipped(db):
    from repro.exec.misc import MapProject
    from repro.storage.types import Column, ColumnType
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(1,), (2,), (3,), (4,)])
    nullify = MapProject(
        FullTableScan(table),
        Schema([Column("a", ColumnType.INT)]),
        lambda r: (None,) if r[0] % 2 == 0 else r,
    )
    agg = scalar_aggregate(nullify, [
        AggSpec("count", "n", column="a"),
        AggSpec("sum", "s", column="a"),
    ])
    n, s = measure(db, agg).rows[0]
    assert n == 2  # SQL count(col) skips NULLs
    assert s == 4.0


def test_count_star_counts_nulls(db):
    from repro.exec.misc import MapProject
    from repro.storage.types import Column, ColumnType
    table = db.load_table("t", Schema.of_ints(["a"]), [(1,), (2,)])
    nullify = MapProject(
        FullTableScan(table),
        Schema([Column("a", ColumnType.INT)]),
        lambda r: (None,),
    )
    agg = scalar_aggregate(nullify, [AggSpec("count", "n")])
    assert measure(db, agg).rows[0] == (2,)


def test_output_schema(agg_db):
    _db, scan = agg_db
    agg = HashAggregate(scan, ["g"], [AggSpec("sum", "total", column="v"),
                                      AggSpec("count", "n")])
    assert agg.schema.column_names == ("g", "total", "n")


def test_invalid_specs(agg_db):
    _db, scan = agg_db
    with pytest.raises(PlanningError):
        AggSpec("median", "m", column="v")
    with pytest.raises(PlanningError):
        AggSpec("sum", "s")  # sum needs a column or value
    with pytest.raises(PlanningError):
        HashAggregate(scan, [], [])
