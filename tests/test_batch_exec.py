"""The batch execution protocol: shims, vectorized predicates, and
row/batch equivalence across the whole operator zoo.

The contract under test: for every operator, concatenating ``batches()``
must equal ``rows()`` — same rows, same order — and both paths must charge
the same simulated costs.  SmoothScan gets the full configuration grid
(policy × trigger × ordered), including the morph-boundary interplay of
the Tuple ID cache and Result Cache under non-eager triggers.
"""

import pytest

from repro.core.morph_join import MorphingIndexJoin
from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    SelectivityIncreasePolicy,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.switch_scan import SwitchScan
from repro.core.trigger import (
    EagerTrigger,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
)
from repro.exec.aggregates import AggSpec, HashAggregate
from repro.exec.expressions import (
    And,
    Between,
    Comparison,
    CompareOp,
    InList,
    KeyRange,
    Not,
    Or,
    StringMatch,
    TruePredicate,
    range_filter,
    range_selector,
)
from repro.exec.iterator import DEFAULT_BATCH_SIZE, Operator
from repro.exec.joins import HashJoin, MergeJoin, NestedLoopJoin
from repro.exec.misc import Filter, Limit, Materialize, Project
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.storage.types import Schema

ALL_POLICIES = [GreedyPolicy(), SelectivityIncreasePolicy(), ElasticPolicy()]
TRIGGERS = {
    "eager": EagerTrigger,
    "optimizer": lambda: OptimizerDrivenTrigger(10),
    "sla": lambda: SLADrivenTrigger(25),
}


def drain_rows(db, plan):
    ctx = db.cold_run()
    out = list(plan.rows(ctx))
    return out, db.clock.total_ms

def drain_batches(db, plan):
    ctx = db.cold_run()
    batches = list(plan.batches(ctx))
    for batch in batches:
        assert batch, "operators must not yield empty batches"
    return [row for batch in batches for row in batch], db.clock.total_ms


def assert_paths_equal(db, plan_factory):
    """Both protocols produce identical rows and simulated costs."""
    rows, row_ms = drain_rows(db, plan_factory())
    flat, batch_ms = drain_batches(db, plan_factory())
    assert flat == rows
    assert batch_ms == pytest.approx(row_ms, rel=1e-9)
    return rows


# -- protocol shims ------------------------------------------------------


class _RowsOnly(Operator):
    def __init__(self, data):
        self.schema = Schema.of_ints(["a"])
        self._data = data

    def rows(self, ctx):
        yield from self._data


class _BatchesOnly(Operator):
    def __init__(self, data):
        self.schema = Schema.of_ints(["a"])
        self._data = data

    def batches(self, ctx):
        if self._data:
            yield list(self._data)


# repro: allow[RPL106] -- negative fixture: proves the runtime shim
# raises for protocol-less operators
class _Neither(Operator):
    schema = Schema.of_ints(["a"])


def test_rows_only_operator_gets_batches_shim(db):
    data = [(i,) for i in range(2_500)]
    op = _RowsOnly(data)
    batches = list(op.batches(db.context()))
    assert [r for b in batches for r in b] == data
    # The shim chunks at DEFAULT_BATCH_SIZE.
    assert all(len(b) <= DEFAULT_BATCH_SIZE for b in batches)
    assert len(batches) == 3


def test_batches_only_operator_gets_rows_shim(db):
    data = [(i,) for i in range(10)]
    op = _BatchesOnly(data)
    assert list(op.rows(db.context())) == data


def test_operator_with_neither_protocol_raises(db):
    op = _Neither()
    with pytest.raises(NotImplementedError):
        next(op.rows(db.context()))
    with pytest.raises(NotImplementedError):
        next(op.batches(db.context()))


# -- vectorized predicates ----------------------------------------------


PREDICATES = [
    TruePredicate(),
    Comparison("c2", CompareOp.LT, 300),
    Comparison("c2", CompareOp.EQ, 42),
    Comparison("c2", CompareOp.NE, 42),
    Between("c2", 100, 500),
    Between("c2", 100, 500, lo_inclusive=False, hi_inclusive=True),
    InList("c3", (1, 3, 5)),
    And([Between("c2", 0, 700), InList("c3", (0, 2, 4, 6, 8))]),
    Or([Comparison("c2", CompareOp.LT, 50),
        Comparison("c2", CompareOp.GE, 900)]),
    Not(Between("c2", 200, 800)),
    And([]),
    Or([]),
]


@pytest.mark.parametrize("predicate", PREDICATES, ids=repr)
def test_bind_batch_and_filter_match_bind(small_table, predicate):
    _db, table = small_table
    rows = [row for _tid, row in table.heap.iter_rows()][:600]
    schema = table.schema
    fn = predicate.bind(schema)
    expected_idx = [i for i, row in enumerate(rows) if fn(row)]
    expected_rows = [row for row in rows if fn(row)]

    assert predicate.bind_batch(schema)(rows) == expected_idx
    assert list(predicate.bind_filter(schema)(rows)) == expected_rows

    # Candidate-restricted selection: only even indices offered.
    candidates = list(range(0, len(rows), 2))
    want = [i for i in candidates if fn(rows[i])]
    assert predicate.bind_batch(schema)(rows, candidates) == want


def test_string_match_batch_falls_back_to_default(db):
    from repro.storage.types import Column, ColumnType
    schema = Schema([Column("s", ColumnType.CHAR, 16)])
    rows = [("apple",), ("banana",), ("apricot",), ("cherry",)]
    pred = StringMatch("s", "prefix", "ap")
    assert pred.bind_batch(schema)(rows) == [0, 2]
    assert pred.bind_filter(schema)(rows) == [("apple",), ("apricot",)]


@pytest.mark.parametrize("rng", [
    KeyRange.all(),
    KeyRange(100, None),
    KeyRange(None, 500),
    KeyRange(100, 500),
    KeyRange(100, 500, lo_inclusive=False, hi_inclusive=True),
    KeyRange.equal(250),
], ids=lambda r: f"[{r.lo},{r.hi},{r.lo_inclusive},{r.hi_inclusive}]")
def test_range_selector_and_filter_match_contains(small_table, rng):
    _db, table = small_table
    rows = [row for _tid, row in table.heap.iter_rows()][:600]
    col = 1
    expected_idx = [i for i, row in enumerate(rows) if rng.contains(row[col])]
    expected_rows = [row for row in rows if rng.contains(row[col])]
    assert range_selector(rng, col)(rows) == expected_idx
    assert list(range_filter(rng, col)(rows)) == expected_rows
    candidates = list(range(1, len(rows), 3))
    want = [i for i in candidates if rng.contains(rows[i][col])]
    assert range_selector(rng, col)(rows, candidates) == want


# -- SmoothScan: the full configuration grid -----------------------------


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("trigger_name", list(TRIGGERS))
@pytest.mark.parametrize("ordered", [False, True], ids=["unord", "ord"])
def test_smooth_scan_batch_equals_rows(small_table, policy, trigger_name,
                                       ordered):
    db, table = small_table
    def factory():
        return SmoothScan(
            table, "c2", KeyRange(0, 400),
            residual=Between("c3", 0, 5),
            policy=policy, trigger=TRIGGERS[trigger_name](), ordered=ordered,
        )
    rows = assert_paths_equal(db, factory)
    assert rows  # the grid point actually produces data


def test_smooth_scan_batch_stats_match_row_stats(small_table):
    db, table = small_table
    row_scan = SmoothScan(table, "c2", KeyRange(0, 700), ordered=True,
                          trigger=OptimizerDrivenTrigger(15))
    list(row_scan.rows(db.cold_run()))
    batch_scan = SmoothScan(table, "c2", KeyRange(0, 700), ordered=True,
                            trigger=OptimizerDrivenTrigger(15))
    list(batch_scan.batches(db.cold_run()))
    s1, s2 = row_scan.last_stats, batch_scan.last_stats
    assert s1.probes == s2.probes
    assert s1.produced == s2.produced
    assert s1.pages_fetched == s2.pages_fetched
    assert s1.morphed_at == s2.morphed_at
    assert s1.region_trace == s2.region_trace
    assert s1.result_cache.inserts == s2.result_cache.inserts
    assert s1.result_cache.hits == s2.result_cache.hits


@pytest.mark.parametrize("trigger_name", ["optimizer", "sla"])
@pytest.mark.parametrize("use_batches", [False, True], ids=["rows", "batches"])
def test_ordered_non_eager_no_duplicates(small_table, trigger_name,
                                         use_batches):
    """Tuple ID cache × Result Cache across the morph boundary.

    Under a non-eager trigger an ordered Smooth Scan produces tuples in
    mode 0 (recorded in the Tuple ID cache), then morphs; post-morph page
    probes must both skip already-produced tuples and keep parking future
    ones in the Result Cache — no tuple may come out twice.
    """
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 500),
                      trigger=TRIGGERS[trigger_name](), ordered=True)
    ctx = db.cold_run()
    if use_batches:
        rows = [r for b in scan.batches(ctx) for r in b]
    else:
        rows = list(scan.rows(ctx))
    assert scan.last_stats.morphed_at is not None  # it did morph
    # No duplicates: row identity is the unique c1 primary key.
    c1s = [r[0] for r in rows]
    assert len(c1s) == len(set(c1s))
    # Exactly the qualifying tuples, in key order after the morph point.
    expected = sorted(
        (row for _tid, row in table.heap.iter_rows() if 0 <= row[1] < 500),
        key=lambda r: r[0],
    )
    assert sorted(rows, key=lambda r: r[0]) == expected
    keys = [r[1] for r in rows[scan.last_stats.morphed_at:]]
    assert keys == sorted(keys)


def test_smooth_scan_stats_current_when_batch_run_abandoned(small_table):
    """Early termination (e.g. Limit) must not leave stale internals.

    A generator can only be abandoned while suspended at a yield, and
    every yield site syncs the local probe ordinal back to the stats.
    """
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000))
    plan = Limit(scan, 5)
    rows = [r for b in plan.batches(db.cold_run()) for r in b]
    assert len(rows) == 5
    # The probes that produced the emitted batch are recorded, not a
    # stale zero from before the first policy update.
    assert scan.last_stats.probes > 0
    assert scan.last_stats.produced >= 5


def test_smooth_scan_spill_parity(small_table):
    db, table = small_table
    def factory():
        return SmoothScan(table, "c2", KeyRange(0, 1000), ordered=True,
                          result_cache_memory_limit=2_000)
    assert_paths_equal(db, factory)


# -- the rest of the operator zoo ----------------------------------------


def test_scans_batch_equals_rows(small_table):
    db, table = small_table
    pred = Between("c2", 0, 650)
    rng = KeyRange(0, 650)
    for factory in (
        lambda: FullTableScan(table, pred),
        lambda: IndexScan(table, "c2", rng),  # shim-provided batches
        lambda: SortScan(table, "c2", rng, residual=InList("c3", (1, 2, 3))),
        lambda: SwitchScan(table, "c2", rng, threshold=40),
    ):
        assert assert_paths_equal(db, factory)


def test_scan_fast_paths_yield_chunks(small_table):
    """The columnar fast paths hand out Chunk batches, not row lists.

    Full scans always; SortScan on dense runs (its sparse runs gather
    rows directly by design); SmoothScan whenever no auxiliary cache
    consumes TIDs (eager trigger, unordered).  This pins the tentpole:
    batches stay columnar from the heap pages to the operator boundary
    instead of being rowified in the scan.
    """
    from repro.storage.chunk import Chunk

    db, table = small_table
    dense = KeyRange(0, 1000)  # every tuple qualifies: dense page runs
    for plan in (
        FullTableScan(table, Between("c2", 0, 650)),
        SortScan(table, "c2", dense),
        SmoothScan(table, "c2", dense),  # eager + unordered
    ):
        batches = list(plan.batches(db.cold_run()))
        assert batches, plan.name()
        assert all(isinstance(b, Chunk) for b in batches), plan.name()


def test_pipeline_batch_equals_rows(small_table):
    db, table = small_table
    def factory():
        scanned = FullTableScan(table, Between("c2", 0, 800))
        filtered = Filter(scanned, InList("c3", (0, 1, 2, 3, 4)))
        projected = Project(filtered, ["c2", "c3"])
        return Sort(projected, ["c2", "c3"])
    assert assert_paths_equal(db, factory)


def test_limit_batch_equals_rows(small_table):
    db, table = small_table
    for n in (0, 1, 37, 10_000):
        def factory(n=n):
            return Limit(FullTableScan(table), n)
        rows, _ = drain_rows(db, factory())
        flat, _ = drain_batches(db, factory())
        assert flat == rows
        assert len(rows) == min(n, table.row_count)


def test_joins_batch_equals_rows(small_table):
    from repro.exec.misc import Rename
    db, table = small_table
    def left():
        return Project(FullTableScan(table, Between("c2", 0, 90)),
                       ["c1", "c2"])

    for join_type in ("inner", "left", "semi", "anti"):
        def factory(join_type=join_type):
            rn = Rename(
                Project(FullTableScan(table, Between("c2", 0, 60)), ["c2"]),
                {"c2": "d2"},
            )
            return HashJoin(left(), rn, ["c2"], ["d2"], join_type=join_type)
        assert_paths_equal(db, factory)

    def nlj_factory():
        return NestedLoopJoin(
            Project(FullTableScan(table, Between("c2", 0, 25)), ["c1"]),
            Project(Filter(FullTableScan(table), InList("c3", (1, 2))),
                    ["c3"]),
            predicate=Comparison("c3", CompareOp.GT, 1),
        )
    assert_paths_equal(db, nlj_factory)

    def merge_factory():  # MergeJoin uses the shim both ways
        lhs = Sort(Project(FullTableScan(table, Between("c2", 0, 80)),
                           ["c2"]), ["c2"])
        rhs = Sort(
            Rename(Project(FullTableScan(table, Between("c2", 40, 120)),
                           ["c2"]), {"c2": "d2"}),
            ["d2"],
        )
        return MergeJoin(lhs, rhs, "c2", "d2")
    assert_paths_equal(db, merge_factory)


def test_aggregate_batch_equals_rows(small_table):
    db, table = small_table
    def factory():
        return HashAggregate(
            FullTableScan(table, Between("c2", 0, 900)),
            group_by=["c3"],
            aggs=[AggSpec("count", "n", column=None),
                  AggSpec("sum", "total", column="c2"),
                  AggSpec("max", "hi", column="c2",
                          ctype=table.schema.columns[1].ctype)],
        )
    assert assert_paths_equal(db, factory)


def test_materialize_batch_replay(small_table):
    db, table = small_table
    op = Materialize(FullTableScan(table, Between("c2", 0, 300)))
    ctx = db.cold_run()
    first = [r for b in op.batches(ctx) for r in b]
    replay = [r for b in op.batches(ctx) for r in b]
    assert replay == first
    assert list(op.rows(ctx)) == first


def test_materialize_caches_fully_under_partial_batch_drain(small_table):
    """A Limit above a Materialize must not poison the cache.

    The first (partial) drain materializes the child completely — like
    rows() — so the second execution replays instead of re-running the
    child and re-paying its simulated I/O.
    """
    db, table = small_table
    mat = Materialize(FullTableScan(table, Between("c2", 0, 300)))
    plan = Limit(mat, 10)
    ctx = db.cold_run()
    first = [r for b in plan.batches(ctx) for r in b]
    assert len(first) == 10
    io_after_first = db.clock.io_ms
    again = [r for b in plan.batches(ctx) for r in b]
    assert again == first
    assert db.clock.io_ms == io_after_first  # replay: no new disk I/O


def test_buffer_get_run_keeps_strict_lru_capacity(db):
    """A run larger than the pool must not transiently over-hold pages.

    With capacity 4 and page 8 resident but oldest, fetching pages 0-9
    evicts 8 before the run reaches it: 10 honest misses, one read run.
    """
    from repro.storage.heap import HeapFile
    heap = HeapFile(file_id=0, schema=Schema.of_ints(["a"]),
                    tuples_per_page=2)
    for i in range(40):
        heap.append((i,))
    pool = db.buffer
    pool.capacity_pages = 4
    pool.get_page(heap, 8)
    pool.stats.reset()
    db.disk.reset()
    pool.get_run(heap, 0, 10)
    assert pool.stats.misses == 10
    assert pool.stats.hits == 0
    assert db.disk.stats.pages_read == 10
    assert len(pool) <= 4


def test_morphing_join_batch_equals_rows(small_table):
    db, table = small_table
    def factory():
        outer = Project(FullTableScan(table, Between("c1", 0, 300)), ["c1"])
        return MorphingIndexJoin(Rename_outer(outer), table, "c2", "o_key")
    def Rename_outer(op):
        from repro.exec.misc import Rename
        return Rename(op, {"c1": "o_key"})
    rows, row_ms = drain_rows(db, factory())
    flat, batch_ms = drain_batches(db, factory())
    assert flat == rows
    assert batch_ms == pytest.approx(row_ms, rel=1e-9)
