"""The repro-lint CLI: exit codes, text and JSON output, --explain."""

import io
import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


def test_clean_file_exits_zero_with_summary():
    status, out = run_cli(str(FIXTURES / "rpl101_good.py"))
    assert status == 0
    assert out.startswith("ok: 0 finding(s)")


def test_findings_exit_one_with_rendered_lines():
    status, out = run_cli(str(FIXTURES / "rpl101_bad.py"))
    assert status == 1
    assert "RPL101" in out
    assert "rpl101_bad.py:" in out
    assert out.rstrip().splitlines()[-1].startswith("FAIL:")


def test_json_output_is_machine_readable():
    status, out = run_cli("--format", "json",
                          str(FIXTURES / "rpl105_bad.py"))
    assert status == 1
    payload = json.loads(out)
    assert payload["clean"] is False
    assert payload["files_checked"] == 1
    diag = payload["diagnostics"][0]
    assert diag["code"] == "RPL105"
    assert diag["file"].endswith("rpl105_bad.py")
    assert isinstance(diag["line"], int)


def test_json_output_clean_tree():
    status, out = run_cli("--format", "json",
                          str(FIXTURES / "rpl105_good.py"))
    assert status == 0
    assert json.loads(out)["clean"] is True


def test_select_restricts_rules():
    status, out = run_cli("--select", "RPL105",
                          str(FIXTURES / "rpl101_bad.py"))
    assert status == 0  # only RPL105 ran; the RPL101 findings are unselected


def test_select_unknown_code_is_usage_error():
    status, out = run_cli("--select", "RPL999", str(FIXTURES))
    assert status == 2
    assert "unknown rule code" in out


def test_explain_prints_rationale():
    status, out = run_cli("--explain", "RPL103")
    assert status == 0
    assert "RPL103" in out
    assert "finally" in out


def test_explain_unknown_code_is_usage_error():
    status, out = run_cli("--explain", "RPL999")
    assert status == 2


def test_list_rules():
    status, out = run_cli("--list-rules")
    assert status == 0
    lines = out.strip().splitlines()
    assert len(lines) == 6
    assert lines[0].startswith("RPL101")
    assert lines[-1].startswith("RPL106")


def test_unused_suppression_fails_the_gate():
    status, out = run_cli(str(FIXTURES / "suppress_unused.py"))
    assert status == 1
    assert "RPL100" in out
