"""Schemas, columns, TIDs."""

import pytest

from repro.errors import StorageError
from repro.storage.types import TID, Column, ColumnType, Schema


def test_column_sizes():
    assert Column("a", ColumnType.INT).byte_size == 4
    assert Column("a", ColumnType.BIGINT).byte_size == 8
    assert Column("a", ColumnType.FLOAT).byte_size == 8
    assert Column("a", ColumnType.DATE).byte_size == 4
    assert Column("a", ColumnType.CHAR, 25).byte_size == 25


def test_char_requires_length():
    with pytest.raises(StorageError):
        Column("a", ColumnType.CHAR).byte_size


def test_schema_of_ints_and_payload():
    schema = Schema.of_ints(["a", "b", "c"])
    assert schema.payload_bytes() == 12
    assert schema.tuple_size(tuple_header=24) == 36


def test_micro_tuple_is_64_bytes():
    schema = Schema.of_ints([f"c{i}" for i in range(1, 11)])
    assert schema.tuple_size(tuple_header=24) == 64


def test_schema_rejects_empty_and_duplicates():
    with pytest.raises(StorageError):
        Schema([])
    with pytest.raises(StorageError):
        Schema([Column("x"), Column("x")])


def test_index_of_and_has_column():
    schema = Schema.of_ints(["a", "b"])
    assert schema.index_of("b") == 1
    assert schema.has_column("a")
    assert not schema.has_column("z")
    with pytest.raises(StorageError):
        schema.index_of("z")


def test_validate_row_arity():
    schema = Schema.of_ints(["a", "b"])
    schema.validate_row((1, 2))
    with pytest.raises(StorageError):
        schema.validate_row((1, 2, 3))


def test_schema_equality_and_hash():
    s1 = Schema.of_ints(["a", "b"])
    s2 = Schema.of_ints(["a", "b"])
    assert s1 == s2
    assert hash(s1) == hash(s2)


def test_tid_orders_by_physical_placement():
    assert TID(0, 5) < TID(1, 0)
    assert TID(2, 1) < TID(2, 3)
    assert sorted([TID(3, 0), TID(0, 7), TID(0, 2)]) == [
        TID(0, 2), TID(0, 7), TID(3, 0)
    ]
