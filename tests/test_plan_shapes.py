"""Structural assertions on the TPC-H plans each mode produces.

Figures 1/4 are only meaningful if the modes actually differ in plan
*structure*: original must stay on full scans + hash joins, tuned must
walk into index paths/INLJ where the stale estimates point, and smooth
must replace exactly the access paths while keeping the upper layers.
"""

import pytest

from repro.exec.iterator import explain
from repro.experiments.fig1 import make_tuned_tpch
from repro.workloads.tpch import TpchPlanBuilder, build_query


@pytest.fixture(scope="module")
def setup():
    return make_tuned_tpch(scale_factor=0.002)


def plan_text(setup, mode, query):
    builder = TpchPlanBuilder(setup.db, setup.catalog, mode)
    return explain(build_query(query, builder))


def test_original_mode_uses_only_full_scans(setup):
    for query in ("Q1", "Q6", "Q12", "Q14", "Q19"):
        text = plan_text(setup, "original", query)
        assert "IndexScan" not in text
        assert "SmoothScan" not in text
        assert "IndexNestedLoopJoin" not in text
        assert "FullTableScan" in text


def test_tuned_mode_falls_into_the_traps(setup):
    # Q6/Q12: the stale-stats date ranges push the planner onto the
    # lineitem tuning indexes.
    q6 = plan_text(setup, "tuned", "Q6")
    assert "IndexScan(lineitem" in q6 or "SortScan(lineitem" in q6
    q12 = plan_text(setup, "tuned", "Q12")
    assert "IndexScan(lineitem" in q12 or "SortScan(lineitem" in q12
    # Q1 (98%): no trap — the full scan stays.
    assert "FullTableScan(lineitem)" in plan_text(setup, "tuned", "Q1")


def test_smooth_mode_replaces_access_paths_only(setup):
    q6 = plan_text(setup, "smooth", "Q6")
    assert "SmoothScan(lineitem" in q6
    assert "IndexScan" not in q6
    # The aggregation layer above is identical in shape.
    tuned_top = plan_text(setup, "tuned", "Q6").splitlines()[0]
    smooth_top = q6.splitlines()[0]
    assert tuned_top == smooth_top


def test_smooth_mode_inlj_uses_smooth_inner(setup):
    q12 = plan_text(setup, "smooth", "Q12")
    if "IndexNestedLoopJoin" in q12:
        assert "smooth" in q12  # the inner access is the smooth variant


def test_q19_join_direction(setup):
    """Q19 probes lineitem from the filtered part side in tuned mode."""
    q19 = plan_text(setup, "tuned", "Q19")
    assert "lineitem" in q19
    assert "part" in q19


def test_plans_are_trees_with_scans_at_leaves(setup):
    for query in ("Q3", "Q5", "Q10"):
        text = plan_text(setup, "tuned", query)
        lines = text.splitlines()
        assert lines[0].startswith("-> ")
        assert any("Scan" in line for line in lines)
        # Deeper lines are indented more (a well-formed tree).
        assert any(line.startswith("  ") for line in lines[1:])
