"""Join operators: hash (all types), merge, NLJ, and index NLJ."""

import pytest

from repro.errors import PlanningError
from repro.exec.expressions import ColumnComparison, CompareOp, Comparison
from repro.exec.joins import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    NestedLoopJoin,
)
from repro.exec.scans import FullTableScan
from repro.exec.sort import Sort
from repro.exec.stats import measure
from repro.storage.types import Schema


@pytest.fixture()
def join_db(db):
    left = db.load_table(
        "left", Schema.of_ints(["l_id", "l_key"]),
        [(i, i % 20) for i in range(200)],
    )
    right = db.load_table(
        "right", Schema.of_ints(["r_key", "r_val"]),
        [(k, k * 100) for k in range(15)],  # keys 15..19 unmatched
    )
    db.create_index("right", "r_key")
    return db, left, right


def expected_inner(left_rows, right_rows):
    out = []
    for lrow in left_rows:
        for rrow in right_rows:
            if lrow[1] == rrow[0]:
                out.append(lrow + rrow)
    return sorted(out)


def test_hash_join_inner(join_db):
    db, left, right = join_db
    join = HashJoin(FullTableScan(left), FullTableScan(right),
                    ["l_key"], ["r_key"])
    rows = sorted(measure(db, join).rows)
    left_rows = [tuple(r) for _t, r in left.heap.iter_rows()]
    right_rows = [tuple(r) for _t, r in right.heap.iter_rows()]
    assert rows == expected_inner(left_rows, right_rows)


def test_hash_join_left_pads_with_none(join_db):
    db, left, right = join_db
    join = HashJoin(FullTableScan(left), FullTableScan(right),
                    ["l_key"], ["r_key"], join_type="left")
    rows = measure(db, join).rows
    assert len(rows) == 200
    unmatched = [r for r in rows if r[2] is None]
    assert len(unmatched) == 200 // 20 * 5  # keys 15..19


def test_hash_join_semi(join_db):
    db, left, right = join_db
    join = HashJoin(FullTableScan(left), FullTableScan(right),
                    ["l_key"], ["r_key"], join_type="semi")
    rows = measure(db, join).rows
    assert len(rows) == 150
    assert all(len(r) == 2 for r in rows)  # left schema only
    assert all(r[1] < 15 for r in rows)


def test_hash_join_anti(join_db):
    db, left, right = join_db
    join = HashJoin(FullTableScan(left), FullTableScan(right),
                    ["l_key"], ["r_key"], join_type="anti")
    rows = measure(db, join).rows
    assert len(rows) == 50
    assert all(r[1] >= 15 for r in rows)


def test_hash_join_validations(join_db):
    _db, left, right = join_db
    with pytest.raises(PlanningError):
        HashJoin(FullTableScan(left), FullTableScan(right), [], [])
    with pytest.raises(PlanningError):
        HashJoin(FullTableScan(left), FullTableScan(right),
                 ["l_key"], ["r_key"], join_type="outer")
    with pytest.raises(PlanningError):  # duplicate output names
        HashJoin(FullTableScan(left), FullTableScan(left),
                 ["l_key"], ["l_key"])


def test_merge_join_matches_hash(join_db):
    db, left, right = join_db
    merge = MergeJoin(
        Sort(FullTableScan(left), ["l_key"]),
        Sort(FullTableScan(right), ["r_key"]),
        "l_key", "r_key",
    )
    hash_join = HashJoin(FullTableScan(left), FullTableScan(right),
                         ["l_key"], ["r_key"])
    assert sorted(measure(db, merge).rows) == \
        sorted(measure(db, hash_join).rows)


def test_merge_join_duplicate_groups(db):
    left = db.load_table("l", Schema.of_ints(["lk"]),
                         [(1,), (1,), (2,)])
    right = db.load_table("r", Schema.of_ints(["rk"]),
                          [(1,), (1,), (1,), (3,)])
    join = MergeJoin(FullTableScan(left), FullTableScan(right), "lk", "rk")
    rows = measure(db, join).rows
    assert len(rows) == 6  # 2 x 3 matches for key 1


def test_nested_loop_join_with_predicate(join_db):
    db, left, right = join_db
    join = NestedLoopJoin(
        FullTableScan(left), FullTableScan(right),
        predicate=ColumnComparison("l_key", CompareOp.EQ, "r_key"),
    )
    hash_join = HashJoin(FullTableScan(left), FullTableScan(right),
                         ["l_key"], ["r_key"])
    assert sorted(measure(db, join).rows) == \
        sorted(measure(db, hash_join).rows)


@pytest.mark.parametrize("inner_access", ["classic", "smooth"])
def test_inlj_matches_hash(join_db, inner_access):
    db, left, right = join_db
    inlj = IndexNestedLoopJoin(
        FullTableScan(left), right, "r_key", "l_key",
        inner_access=inner_access,
    )
    hash_join = HashJoin(FullTableScan(left), FullTableScan(right),
                         ["l_key"], ["r_key"])
    assert sorted(measure(db, inlj).rows) == \
        sorted(measure(db, hash_join).rows)


def test_inlj_residual_on_joined_schema(join_db):
    db, left, right = join_db
    inlj = IndexNestedLoopJoin(
        FullTableScan(left), right, "r_key", "l_key",
        residual=Comparison("r_val", CompareOp.GE, 500),
    )
    rows = measure(db, inlj).rows
    assert rows and all(r[3] >= 500 for r in rows)


def test_inlj_smooth_handles_multimatch(db):
    # Many inner matches per key, spread over pages: the per-key morphing
    # case of Section IV-B.
    outer = db.load_table("o", Schema.of_ints(["ok"]), [(3,), (5,)])
    inner = db.load_table(
        "i", Schema.of_ints(["ik", "iv"]),
        [((i * 13) % 8, i) for i in range(4_000)],
    )
    db.create_index("i", "ik")
    classic = IndexNestedLoopJoin(FullTableScan(outer), inner, "ik", "ok",
                                  inner_access="classic")
    smooth = IndexNestedLoopJoin(FullTableScan(outer), inner, "ik", "ok",
                                 inner_access="smooth")
    classic_res = measure(db, classic)
    smooth_res = measure(db, smooth)
    assert sorted(classic_res.rows) == sorted(smooth_res.rows)
    # Per-key page dedup: smooth touches each inner page at most once per key.
    assert smooth_res.disk.pages_read <= classic_res.disk.pages_read


def test_inlj_invalid_access(join_db):
    _db, left, right = join_db
    with pytest.raises(PlanningError):
        IndexNestedLoopJoin(FullTableScan(left), right, "r_key", "l_key",
                            inner_access="magic")


def test_inlj_unmatched_outer_rows_dropped(join_db):
    db, left, right = join_db
    inlj = IndexNestedLoopJoin(FullTableScan(left), right, "r_key", "l_key")
    rows = measure(db, inlj).rows
    assert all(r[1] < 15 for r in rows)
