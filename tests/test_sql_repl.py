"""The SQL shell: scripted sessions over a loaded workload.

Drives :class:`repro.sql.repl.Repl` with the same piped-transcript shape
the CI smoke step uses — statements, EXPLAIN, meta commands, errors —
and asserts on the captured output.
"""

import io

import pytest

from repro.database import Database
from repro.sql.repl import Repl, load_database, main
from repro.storage.types import Schema


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load_table(
        "nums", Schema.of_ints(["a", "b"]),
        [(i, (i * 13) % 50) for i in range(3_000)],
    )
    database.create_index("nums", "b")
    database.analyze()
    return database


def run_session(db, script, mode="tuned"):
    out = io.StringIO()
    Repl(db, out=out, mode=mode).run(io.StringIO(script).readlines())
    return out.getvalue()


def test_select_prints_table_and_summary(db):
    output = run_session(db, "SELECT count(*) AS n FROM nums WHERE b < 10;\n")
    assert "n" in output
    assert "600" in output
    assert "(1 row," in output
    assert "simulated" in output and "I/O requests" in output


def test_explain_prints_plan_tree(db):
    output = run_session(db, "EXPLAIN SELECT * FROM nums WHERE b < 10;\n")
    assert "rows est=" in output and "act=?" in output


def test_multiline_statement_and_display_cap(db):
    output = run_session(
        db, "SELECT a, b FROM nums\nWHERE b < 40\nLIMIT 30;\n"
    )
    assert "(30 rows," in output
    assert "... (10 more)" in output  # 20 displayed of 30


def test_meta_commands(db):
    output = run_session(
        db, "\\tables\n\\schema nums\n\\mode smooth\n\\help\n"
    )
    assert "nums" in output and "indexes: b" in output
    assert "[indexed]" in output
    assert "planner mode: smooth" in output
    assert "\\quit" in output


def test_mode_switch_changes_plan(db):
    output = run_session(
        db, "\\mode smooth\nEXPLAIN SELECT * FROM nums WHERE b < 10;\n"
    )
    assert "SmoothScan" in output


def test_errors_are_reported_not_raised(db):
    output = run_session(
        db,
        "SELECT * FROM nope;\nSELECT zzz FROM nums;\nSELCT;\n\\bogus\n",
    )
    assert "unknown table 'nope'" in output
    assert "unknown column 'zzz'" in output
    assert "expected keyword SELECT" in output
    assert "unknown command" in output


def test_quit_stops_processing(db):
    output = run_session(db, "\\q\nSELECT count(*) AS n FROM nums;\n")
    assert "row" not in output


def test_blank_lines_do_not_swallow_meta_commands(db):
    output = run_session(
        db, "\n\n\\q\nSELECT count(*) AS n FROM nums;\n"
    )
    assert "row" not in output          # \q still quit
    assert "error" not in output


def test_mixed_type_in_list_reports_not_crashes(db):
    output = run_session(
        db, "SELECT count(*) AS n FROM nums WHERE b IN (5, 'x');\n"
    )
    # Unorderable IN values stay off index paths but still execute.
    assert "(1 row," in output


def test_semicolon_inside_multiline_string_does_not_split(db):
    output = run_session(
        db,
        "SELECT count(*) AS n FROM nums WHERE b IN (5, 'x;\ny');\n",
    )
    assert "unterminated" not in output
    assert "(1 row," in output  # one statement, executed once


def test_multiline_error_positions_use_user_line_numbers(db):
    output = run_session(
        db, "SELECT\n  bogus_col\nFROM nums;\n"
    )
    assert "at line 2" in output  # where the user actually typed it


def test_runtime_type_errors_do_not_kill_the_shell(db):
    output = run_session(
        db,
        "SELECT count(*) AS n FROM nums WHERE a < 'zz';\n"
        "SELECT count(*) AS n FROM nums;\n",
    )
    assert "error: TypeError" in output
    assert "3000" in output  # the next statement still ran


def test_main_entry_point_with_piped_stdin(monkeypatch, capsys):
    monkeypatch.setattr(
        "sys.stdin",
        io.StringIO("SELECT count(*) AS n FROM micro;\n\\q\n"),
    )
    assert main(["--rows", "2000"]) == 0
    captured = capsys.readouterr().out
    assert "2000" in captured
    assert "sql>" not in captured  # no prompt when stdin is not a TTY


def test_load_database_micro_defaults():
    import argparse
    args = argparse.Namespace(rows=1_000, tpch=None)
    database, mode = load_database(args)
    assert mode == "tuned"
    assert database.table("micro").row_count == 1_000


def test_analyze_prints_per_query_ledger(db):
    output = run_session(
        db,
        "SELECT count(*) AS n FROM nums WHERE b < 10;\n\\analyze\n",
    )
    assert "statistics refreshed" in output
    assert "last query ledger:" in output
    assert "pages read" in output and "buffer" in output
    # Before any statement has run there is no ledger to print.
    fresh = run_session(db, "\\analyze\n")
    assert "last query ledger:" not in fresh


def test_clients_meta_replays_last_statement_interleaved(db):
    output = run_session(
        db,
        "SELECT count(*) AS n FROM nums WHERE b < 25;\n\\clients 3\n",
    )
    assert "3 interleaved clients" in output
    assert "ledgers sum to runtime totals: ok" in output
    for client in ("c1", "c2", "c3"):
        assert client in output
    # Every client produced the same single aggregate row.
    assert output.count("1 rows") == 3


def test_clients_meta_rejects_bad_input(db):
    output = run_session(
        db,
        "\\clients 2\n"                     # nothing to replay yet
        "SELECT a FROM nums LIMIT 1;\n"
        "\\clients zero\n\\clients 0\n",    # not a count / out of range
    )
    assert "no statement to replay" in output
    assert "takes a client count" in output
    assert "between 1 and 32" in output


def test_metrics_meta_prints_deterministic_exposition():
    # A private database: the module fixture's tracer state is shared
    # across tests, this assertion wants exact counter values.
    database = Database()
    database.load_table(
        "nums", Schema.of_ints(["a", "b"]),
        [(i, (i * 13) % 50) for i in range(3_000)],
    )
    database.create_index("nums", "b")
    database.analyze()
    script = ("SELECT count(*) AS n FROM nums WHERE b < 10;\n"
              "SELECT count(*) AS n FROM nums WHERE b < 10;\n"
              "\\metrics\n")
    output = run_session(database, script)
    assert "# repro telemetry metrics v1" in output
    assert "counter queries_total 2" in output
    assert "counter plan_cache_hits_total 1" in output
    assert "counter plan_cache_misses_total 1" in output
    # Plan-cache gauges fold in from the same structured stats dict.
    assert "gauge plan_cache_entries 1" in output
    assert "histogram query_io_ms count=2" in output


def test_metrics_meta_listed_in_help(db):
    output = run_session(db, "\\help\n")
    assert "\\metrics" in output
