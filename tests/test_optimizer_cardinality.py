"""Selectivity estimation: histogram use, AVI, and the blind defaults."""

import pytest

from repro.exec.expressions import (
    And,
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    StringMatch,
    TruePredicate,
)
from repro.optimizer.cardinality import (
    DEFAULT_COLUMN_COMPARE_SELECTIVITY,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_MATCH_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    estimate_cardinality,
    estimate_selectivity,
)
from repro.optimizer.statistics import StatisticsCatalog
from repro.storage.types import Schema


@pytest.fixture()
def cat(db):
    table = db.load_table(
        "t", Schema.of_ints(["a", "b"]),
        [(i % 1000, (i * 7) % 10) for i in range(10_000)],
    )
    catalog = StatisticsCatalog()
    catalog.analyze(table)
    return db, table, catalog


def test_true_predicate_is_one(cat):
    _db, _t, catalog = cat
    assert estimate_selectivity(catalog, "t", TruePredicate()) == 1.0


def test_equality_uses_ndv(cat):
    _db, _t, catalog = cat
    sel = estimate_selectivity(catalog, "t", Comparison("b", CompareOp.EQ, 3))
    assert sel == pytest.approx(0.1)


def test_range_uses_histogram(cat):
    _db, _t, catalog = cat
    sel = estimate_selectivity(catalog, "t", Between("a", 0, 500))
    assert sel == pytest.approx(0.5, abs=0.05)


def test_open_ranges(cat):
    _db, _t, catalog = cat
    lt = estimate_selectivity(catalog, "t",
                              Comparison("a", CompareOp.LT, 250))
    gt = estimate_selectivity(catalog, "t",
                              Comparison("a", CompareOp.GE, 750))
    assert lt == pytest.approx(0.25, abs=0.05)
    assert gt == pytest.approx(0.25, abs=0.05)


def test_avi_multiplies_conjuncts(cat):
    _db, _t, catalog = cat
    a = Between("a", 0, 500)
    b = Comparison("b", CompareOp.EQ, 3)
    joint = estimate_selectivity(catalog, "t", And([a, b]))
    expected = (estimate_selectivity(catalog, "t", a)
                * estimate_selectivity(catalog, "t", b))
    assert joint == pytest.approx(expected)


def test_or_union(cat):
    _db, _t, catalog = cat
    p1 = Comparison("b", CompareOp.EQ, 1)
    p2 = Comparison("b", CompareOp.EQ, 2)
    sel = estimate_selectivity(catalog, "t", Or([p1, p2]))
    assert sel == pytest.approx(0.1 + 0.1 - 0.01)


def test_not_complements(cat):
    _db, _t, catalog = cat
    sel = estimate_selectivity(catalog, "t",
                               Not(Comparison("b", CompareOp.EQ, 3)))
    assert sel == pytest.approx(0.9)


def test_ne(cat):
    _db, _t, catalog = cat
    sel = estimate_selectivity(catalog, "t",
                               Comparison("b", CompareOp.NE, 3))
    assert sel == pytest.approx(0.9)


def test_in_list(cat):
    _db, _t, catalog = cat
    sel = estimate_selectivity(catalog, "t", InList("b", (1, 2, 3)))
    assert sel == pytest.approx(0.3)


def test_defaults_without_stats():
    catalog = StatisticsCatalog()
    assert estimate_selectivity(
        catalog, "ghost", Comparison("x", CompareOp.EQ, 1)
    ) == DEFAULT_EQ_SELECTIVITY
    assert estimate_selectivity(
        catalog, "ghost", Between("x", 1, 2)
    ) == DEFAULT_RANGE_SELECTIVITY
    assert estimate_selectivity(
        catalog, "ghost", StringMatch("x", "prefix", "a")
    ) == DEFAULT_MATCH_SELECTIVITY


def test_column_comparison_is_blind(cat):
    """No statistic helps col-vs-col: the Q12 trap (§VI-B)."""
    _db, _t, catalog = cat
    sel = estimate_selectivity(
        catalog, "t", ColumnComparison("a", CompareOp.LT, "b")
    )
    assert sel == DEFAULT_COLUMN_COMPARE_SELECTIVITY
    eq = estimate_selectivity(
        catalog, "t", ColumnComparison("a", CompareOp.EQ, "b")
    )
    assert eq == DEFAULT_EQ_SELECTIVITY


def test_estimate_cardinality_uses_catalog_rows(cat):
    _db, _t, catalog = cat
    card = estimate_cardinality(catalog, "t",
                                Comparison("b", CompareOp.EQ, 3))
    assert card == pytest.approx(1_000, rel=0.05)


def test_estimate_cardinality_fallback_rows():
    catalog = StatisticsCatalog()
    card = estimate_cardinality(catalog, "ghost", TruePredicate(),
                                fallback_rows=500)
    assert card == 500
    assert estimate_cardinality(catalog, "ghost", TruePredicate()) == 0


def test_stale_rowcount_underestimates(cat):
    _db, _t, catalog = cat
    catalog.scale_row_count("t", 0.1)
    card = estimate_cardinality(catalog, "t", TruePredicate())
    assert card == 1_000  # believes the table is 10x smaller
