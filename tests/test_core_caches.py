"""Smooth Scan's auxiliary structures: bitmaps and the Result Cache."""

import pytest

from repro.core.caches import PageIdCache, ResultCache, TupleIdCache
from repro.errors import ExecutionError
from repro.storage.disk import DiskProfile, SimClock, SimulatedDisk
from repro.storage.types import TID


def test_page_id_cache_marks_once():
    cache = PageIdCache(100)
    assert not cache.is_seen(5)
    assert cache.mark(5) is True
    assert cache.is_seen(5)
    assert cache.mark(5) is False
    assert cache.pages_seen == 1


def test_page_id_cache_bounds():
    cache = PageIdCache(10)
    with pytest.raises(ExecutionError):
        cache.mark(10)
    with pytest.raises(ExecutionError):
        cache.mark(-1)


def test_page_id_cache_memory_is_bitmap_sized():
    # One bit per page: 1M pages -> 125KB (the paper quotes 140KB).
    cache = PageIdCache(1_000_000)
    assert cache.memory_bytes == 125_000


def test_tuple_id_cache():
    cache = TupleIdCache(num_pages=10, tuples_per_page=8)
    tid = TID(3, 4)
    assert not cache.contains(tid)
    cache.add(tid)
    assert cache.contains(tid)
    cache.add(tid)
    assert cache.recorded == 1
    assert not cache.contains(TID(3, 5))


def test_tuple_id_cache_distinct_positions():
    cache = TupleIdCache(num_pages=4, tuples_per_page=4)
    cache.add(TID(1, 0))
    assert not cache.contains(TID(0, 3))
    assert not cache.contains(TID(1, 1))
    assert not cache.contains(TID(2, 0))


@pytest.fixture()
def rc():
    return ResultCache(separators=[10, 20, 30], bytes_per_entry=64)


def test_result_cache_partition_of(rc):
    assert rc.partition_of(5) == 0
    assert rc.partition_of(10) == 1
    assert rc.partition_of(25) == 2
    assert rc.partition_of(99) == 3
    assert rc.num_partitions == 4


def test_result_cache_insert_take(rc):
    tid = TID(1, 1)
    rc.insert(5, tid, ("row",))
    assert rc.take(5, tid) == ("row",)
    assert rc.take(5, TID(9, 9)) is None
    assert rc.stats.hits == 1
    assert rc.stats.probes == 2


def test_result_cache_advance_bulk_evicts(rc):
    rc.insert(5, TID(0, 0), ("a",))
    rc.insert(15, TID(0, 1), ("b",))
    rc.insert(35, TID(0, 2), ("c",))
    assert rc.entries == 3
    evicted = rc.advance(20)  # partitions below 20 fully passed
    assert evicted == 2
    assert rc.entries == 1
    assert rc.take(35, TID(0, 2)) == ("c",)


def test_result_cache_advance_keeps_current_key_partition(rc):
    rc.insert(10, TID(0, 0), ("edge",))  # partition 1 ([10, 20))
    rc.advance(10)
    assert rc.take(10, TID(0, 0)) == ("edge",)


def test_result_cache_peak_tracking(rc):
    for i in range(5):
        rc.insert(5, TID(0, i), (i,))
    rc.advance(50)
    assert rc.stats.peak_entries == 5
    assert rc.stats.peak_bytes == 5 * 64
    assert rc.entries == 0


def test_result_cache_hit_rate(rc):
    rc.insert(5, TID(0, 0), ("a",))
    rc.take(5, TID(0, 0))
    rc.take(5, TID(0, 1))
    assert rc.stats.hit_rate == pytest.approx(0.5)


def test_result_cache_spill_and_unspill():
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    cache = ResultCache(separators=[100], bytes_per_entry=1000,
                        memory_limit_bytes=3000, page_bytes=8192)
    # Fill the far partition (keys >= 100) past the limit while probing
    # near the low one.
    for i in range(5):
        cache.insert(200, TID(1, i), (i,), disk=disk)
    assert cache.stats.spills >= 1
    assert disk.stats.requests > 0
    # Probing the spilled partition reads it back.
    row = cache.take(200, TID(1, 0), disk=disk)
    assert row == (0,)
    assert cache.stats.unspills == 1


def test_result_cache_no_separators_single_partition():
    cache = ResultCache(separators=[], bytes_per_entry=10)
    cache.insert(1, TID(0, 0), ("x",))
    assert cache.num_partitions == 1
    assert cache.take(999, TID(0, 0)) == ("x",)


def test_page_id_cache_rejects_marks_on_empty_table():
    # Regression: the bounds check used max(1, num_pages), accepting page
    # 0 of a zero-page table.
    cache = PageIdCache(0)
    with pytest.raises(ExecutionError):
        cache.mark(0)
    assert not cache.is_seen(0)
    assert cache.pages_seen == 0


def test_result_cache_advance_counts_spilled_evictions():
    # Regression: spilled partitions were dropped without counting their
    # entries in evicted_entries.
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    cache = ResultCache(separators=[100, 200, 300], bytes_per_entry=1000,
                        memory_limit_bytes=3000, page_bytes=8192)
    for i in range(5):  # partition [200, 300): spills past the limit
        cache.insert(250, TID(1, i), (i,), disk=disk)
    assert cache.stats.spills >= 1
    spilled_entries = 5 - cache.entries
    assert spilled_entries > 0
    cache.insert(50, TID(0, 0), ("low",), disk=disk)
    in_memory = cache.entries
    evicted = cache.advance(300)  # passes every separator
    assert evicted == in_memory + spilled_entries
    assert cache.stats.evicted_entries == evicted
    assert cache.entries == 0


def test_result_cache_advance_is_incremental():
    # advance() must not rescan separators already passed: once a
    # partition is evicted, re-advancing with the same key is a no-op
    # and later separators are still honored.
    cache = ResultCache(separators=[10, 20, 30], bytes_per_entry=64)
    cache.insert(5, TID(0, 0), ("a",))
    cache.insert(15, TID(0, 1), ("b",))
    cache.insert(35, TID(0, 2), ("c",))
    assert cache.advance(12) == 1     # partition [.., 10) dropped
    assert cache.advance(12) == 0     # same key again: nothing new
    assert cache.advance(5) == 0      # keys never move backwards in a scan
    assert cache.advance(30) == 1     # partitions [10,20) and [20,30)
    assert cache.take(35, TID(0, 2)) == ("c",)


def test_result_cache_unspill_charges_read_not_spill():
    # Regression: _unspill charged disk.spill() — a write-plus-read —
    # when reading an overflow file back.
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    cache = ResultCache(separators=[100], bytes_per_entry=1000,
                        memory_limit_bytes=3000, page_bytes=8192)
    for i in range(5):
        cache.insert(200, TID(1, i), (i,), disk=disk)
    assert cache.stats.spills == 1
    spill_pages = cache.stats.spill_pages_written
    assert spill_pages >= 1
    assert disk.stats.pages_written == spill_pages
    assert disk.stats.pages_read == 0  # the write is not a read

    before_io = disk.clock.io_ms
    read_before = disk.stats.pages_read
    cache.take(200, TID(1, 0), disk=disk)
    assert cache.stats.unspills == 1
    assert cache.stats.unspill_pages_read == spill_pages
    assert disk.stats.pages_read - read_before == spill_pages
    # The read-back costs one sequential pass, not the 2x of a spill.
    expected = disk.profile.page_ms(True) * spill_pages
    assert disk.clock.io_ms - before_io == pytest.approx(expected)


def test_result_cache_insert_below_advanced_position_raises():
    # The probe never moves backwards; parking a tuple whose probe has
    # already passed would leak it forever, so insert() refuses loudly.
    cache = ResultCache(separators=[10, 20, 30], bytes_per_entry=64)
    cache.advance(15)  # partitions below 10 are gone
    with pytest.raises(ExecutionError):
        cache.insert(5, TID(0, 0), ("late",))
    cache.insert(15, TID(0, 1), ("ok",))  # current partition still fine


def test_result_cache_insert_into_spilled_partition_counts_on_advance():
    disk = SimulatedDisk(profile=DiskProfile.hdd(), clock=SimClock())
    cache = ResultCache(separators=[100, 400], bytes_per_entry=1000,
                        memory_limit_bytes=3000, page_bytes=8192)
    for i in range(5):  # partition [100, 400): spills past the limit
        cache.insert(200, TID(1, i), (i,), disk=disk)
    assert cache.stats.spills == 1
    # A new insert lands in the overflow file, and advance still counts it.
    cache.insert(300, TID(2, 0), ("late",), disk=disk)
    assert cache.advance(400) == 6
