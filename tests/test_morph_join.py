"""The §IV-B morphable join extension: INLJ morphing toward a hash join."""

import random

import pytest

from repro.core.morph_join import MorphingIndexJoin
from repro.exec.expressions import Comparison, CompareOp
from repro.exec.joins import HashJoin, IndexNestedLoopJoin
from repro.exec.scans import FullTableScan
from repro.exec.stats import measure
from repro.storage.types import Schema


@pytest.fixture()
def join_db(db):
    rng = random.Random(77)
    outer = db.load_table(
        "outer_t", Schema.of_ints(["o_id", "o_key"]),
        [(i, rng.randrange(40)) for i in range(2_000)],  # heavy key reuse
    )
    inner = db.load_table(
        "inner_t", Schema.of_ints(["i_key", "i_val"]),
        [((i * 11) % 40, i) for i in range(800)],
    )
    db.create_index("inner_t", "i_key")
    return db, outer, inner


def test_results_match_hash_join(join_db):
    db, outer, inner = join_db
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "i_key", "o_key")
    hj = HashJoin(FullTableScan(outer), FullTableScan(inner),
                  ["o_key"], ["i_key"])
    assert sorted(measure(db, morph).rows) == sorted(measure(db, hj).rows)


def test_results_match_classic_inlj(join_db):
    db, outer, inner = join_db
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "i_key", "o_key")
    inlj = IndexNestedLoopJoin(FullTableScan(outer), inner,
                               "i_key", "o_key")
    assert sorted(measure(db, morph).rows) == \
        sorted(measure(db, inlj).rows)


def test_morphs_toward_hash_join(join_db):
    """With 40 distinct keys and 2000 outer rows, the index is consulted
    at most once per key — everything else is a cache hit."""
    db, outer, inner = join_db
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "i_key", "o_key")
    measure(db, morph)
    stats = morph.last_stats
    assert stats.index_probes <= 40
    assert stats.cache_hits >= 2_000 - 40
    assert stats.cache_hit_rate > 0.9


def test_inner_pages_fetched_at_most_once(join_db):
    db, outer, inner = join_db
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "i_key", "o_key")
    measure(db, morph)
    assert morph.last_stats.pages_fetched <= inner.num_pages


def test_cheaper_than_classic_inlj_with_key_reuse(join_db):
    db, outer, inner = join_db
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "i_key", "o_key")
    inlj = IndexNestedLoopJoin(FullTableScan(outer), inner,
                               "i_key", "o_key")
    morph_t = measure(db, morph).total_ms
    inlj_t = measure(db, inlj).total_ms
    assert morph_t < inlj_t


def test_residual_applied(join_db):
    db, outer, inner = join_db
    morph = MorphingIndexJoin(
        FullTableScan(outer), inner, "i_key", "o_key",
        residual=Comparison("i_val", CompareOp.GE, 400),
    )
    rows = measure(db, morph).rows
    assert rows and all(r[3] >= 400 for r in rows)


def test_unmatched_outer_keys(db):
    outer = db.load_table("o", Schema.of_ints(["ok"]), [(99,), (1,)])
    inner = db.load_table("i", Schema.of_ints(["ik", "iv"]), [(1, 10)])
    db.create_index("i", "ik")
    morph = MorphingIndexJoin(FullTableScan(outer), inner, "ik", "ok")
    rows = measure(db, morph).rows
    assert rows == [(1, 1, 10)]
    # The unmatched key is remembered as complete: probing it again later
    # would be a cache hit, not an index descent.
    assert morph.last_stats.index_probes == 2
