"""RPL102 golden-bad fixture: order-sensitive consumption of sets."""


def report(names):
    chosen = {n for n in names if n}
    lines = []
    for name in chosen:
        lines.append(name)
    return "\n".join(lines)


def materialize(a, b):
    merged = set(a) | set(b)
    return list(merged)


def render(tags):
    tags = set(tags)
    return ", ".join(tags)
