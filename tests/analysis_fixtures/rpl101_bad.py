"""RPL101 golden-bad fixture: wall-clock and entropy reads."""

import random
import time
import uuid
from datetime import datetime


def stamp():
    return time.time()


def elapsed():
    start = time.perf_counter()
    return time.perf_counter() - start


def label():
    return f"{datetime.now()}-{uuid.uuid4()}"


def jitter():
    rng = random.Random()
    return rng.random() + random.random()
