"""RPL104 golden-good fixture: telemetry that only observes."""


def snapshot(runtime):
    return {
        "total_ms": runtime.clock.total_ms,
        "pages_read": runtime.disk.stats.pages_read,
    }
