"""RPL104 golden-bad fixture: a telemetry module that charges."""


def snapshot(ctx, page_id):
    page = ctx.get_page(page_id)
    ctx.charge_inspect(1)
    return page


def tax(clock):
    clock.charge_cpu(0.5)
