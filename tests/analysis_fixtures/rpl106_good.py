"""RPL106 golden-good fixture: operators honouring the protocol."""

import abc


class Operator:
    def rows(self, ctx):
        raise NotImplementedError

    def batches(self, ctx):
        raise NotImplementedError


class Scan(Operator):
    def batches(self, ctx):
        yield []


class Narrow(Scan):
    pass  # inherits batches() from Scan


class Sketch(Operator, abc.ABC):
    @abc.abstractmethod
    def estimate(self):
        ...
