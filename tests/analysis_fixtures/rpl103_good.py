"""RPL103 golden-good fixture: both accepted finally shapes."""


def opener_inside_try(runtime, ledger, plan):
    try:
        runtime.begin_attribution(ledger)
        return list(plan)
    finally:
        runtime.end_attribution()


def opener_before_try(runtime, ledger, plan):
    runtime.begin_attribution(ledger)
    try:
        return list(plan)
    finally:
        runtime.end_attribution()


def annotated_lifecycle(tracer, cold):
    return tracer.begin_query(cold)  # repro: allow[RPL103] -- fixture: cross-method lifecycle


def annotated_above(tracer, cold):
    # repro: allow[RPL103] -- fixture: standalone annotation covers
    # the next code line, across continuation comments
    return tracer.begin_query(cold)
