"""RPL000 fixture: deliberately does not parse."""

def broken(:
    pass
