"""RPL106 golden-bad fixture: an Operator without the batch protocol."""


class Operator:
    def rows(self, ctx):
        raise NotImplementedError

    def batches(self, ctx):
        raise NotImplementedError


class Silent(Operator):
    schema = None


class SilentChild(Silent):
    pass
