"""Suppression fixture: a stale allow that no longer fires."""


def quiet():
    return 42  # repro: allow[RPL101] -- fixture: stale, nothing fires here
