"""Suppression fixture: a justified allow that actually fires."""

import time


def sidecar_probe():
    return time.perf_counter()  # repro: allow[RPL101] -- fixture: justified wall-clock read
