"""RPL101 golden-good fixture: seeded randomness, simulated time only."""

import random


def jitter(seed):
    rng = random.Random(seed)
    return rng.random()


def simulated_elapsed(clock):
    return clock.total_ms
