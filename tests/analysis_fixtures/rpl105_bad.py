"""RPL105 golden-bad fixture: floats leaking into integer counters."""


def account(stats, n, extent):
    stats.pages_read += n / extent
    stats.bytes_read = float(n) * 4096
    stats.hits += 1.0
