"""RPL102 golden-good fixture: sets consumed order-insensitively."""


def report(names):
    chosen = {n for n in names if n}
    return "\n".join(sorted(chosen))


def count(a, b):
    merged = set(a) | set(b)
    return len(merged), max(merged)


def contains(tags, wanted):
    tags = set(tags)
    return wanted in tags
