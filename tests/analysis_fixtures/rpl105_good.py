"""RPL105 golden-good fixture: integer arithmetic on counters."""


def account(stats, n, extent):
    stats.pages_read += -(-n // extent)
    stats.bytes_read = n * 4096
    stats.hits += 1
    stats.total_ms = n / extent  # not a tracked integer counter
