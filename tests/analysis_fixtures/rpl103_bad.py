"""RPL103 golden-bad fixture: unguarded window open/close."""


def unguarded(runtime, ledger, plan):
    runtime.begin_attribution(ledger)
    rows = list(plan)
    runtime.end_attribution()
    return rows


def never_closed(tracer, cold):
    return tracer.begin_query(cold)
