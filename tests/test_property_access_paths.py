"""Property-based equivalence of ALL access paths — the paper's contract.

For arbitrary data distributions, key ranges and residuals, every access
path (Full, Index, Sort, Switch, Smooth × {policies} × {triggers} ×
{ordered}) must produce exactly the same multiset of rows.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    SelectivityIncreasePolicy,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.switch_scan import SwitchScan
from repro.core.trigger import OptimizerDrivenTrigger
from repro.database import Database
from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.stats import measure
from repro.storage.types import Schema

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_db(values):
    db = Database()
    schema = Schema.of_ints(["c1", "c2"])
    db.load_table("t", schema, ((i, v) for i, v in enumerate(values)))
    db.create_index("t", "c2")
    return db, db.table("t")


values_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=600
)


@SETTINGS
@given(values=values_strategy, lo=st.integers(0, 60), span=st.integers(0, 60))
def test_all_access_paths_equivalent(values, lo, span):
    db, table = build_db(values)
    hi = lo + span
    key_range = KeyRange(lo, hi)
    predicate = Between("c2", lo, hi)
    expected = sorted(measure(db, FullTableScan(table, predicate)).rows)

    plans = [
        IndexScan(table, "c2", key_range),
        SortScan(table, "c2", key_range),
        SwitchScan(table, "c2", key_range, threshold=max(1, len(values) // 10)),
        SmoothScan(table, "c2", key_range, policy=GreedyPolicy()),
        SmoothScan(table, "c2", key_range, policy=SelectivityIncreasePolicy()),
        SmoothScan(table, "c2", key_range, policy=ElasticPolicy()),
        SmoothScan(table, "c2", key_range, ordered=True),
        SmoothScan(table, "c2", key_range, max_mode=1),
        SmoothScan(table, "c2", key_range,
                   trigger=OptimizerDrivenTrigger(max(1, len(values) // 20))),
        SmoothScan(table, "c2", key_range, ordered=True,
                   trigger=OptimizerDrivenTrigger(max(1, len(values) // 20))),
    ]
    for plan in plans:
        got = sorted(measure(db, plan).rows)
        assert got == expected, plan.name()


@SETTINGS
@given(values=values_strategy, lo=st.integers(0, 60), span=st.integers(0, 60))
def test_ordered_smooth_scan_emits_key_order(values, lo, span):
    db, table = build_db(values)
    scan = SmoothScan(table, "c2", KeyRange(lo, lo + span), ordered=True)
    rows = measure(db, scan).rows
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)


@SETTINGS
@given(values=values_strategy)
def test_smooth_scan_never_refetches_heap_pages(values):
    db, table = build_db(values)
    scan = SmoothScan(table, "c2", KeyRange.all())
    measure(db, scan)
    assert scan.last_stats.pages_fetched <= table.num_pages


@SETTINGS
@given(values=values_strategy, lo=st.integers(0, 60), span=st.integers(0, 60))
def test_smooth_scan_no_duplicate_tids(values, lo, span):
    """Emitted rows, tagged by identity, must be unique."""
    db, table = build_db(values)
    scan = SmoothScan(table, "c2", KeyRange(lo, lo + span))
    rows = measure(db, scan).rows
    ids = [r[0] for r in rows]  # c1 is unique by construction
    assert len(ids) == len(set(ids))


@SETTINGS
@given(values=values_strategy, threshold=st.integers(0, 50))
def test_switch_scan_no_duplicates_any_threshold(values, threshold):
    db, table = build_db(values)
    scan = SwitchScan(table, "c2", KeyRange.all(), threshold=threshold)
    rows = measure(db, scan).rows
    ids = [r[0] for r in rows]
    assert len(ids) == len(set(ids))
    assert len(rows) == len(values)
