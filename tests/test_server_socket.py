"""The asyncio transport end-to-end: NDJSON frames over real sockets.

Starts a :class:`~repro.server.server.ReproServer` on an ephemeral port
inside the test's event loop and speaks the protocol through
``asyncio.open_connection`` — covering what the sans-IO tests cannot:
the hello banner on connect, interleaved streaming drains, parked
requests granted through the sink, and graceful shutdown.
"""

import asyncio

import pytest

from repro.database import Database
from repro.experiments.concurrency import CLASSIC_OPTIONS
from repro.server import protocol
from repro.server.server import ReproServer
from repro.workloads.micro import build_micro_table

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"


@pytest.fixture(scope="module")
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=12_000, seed=7)
    db.analyze()
    return db


class AsyncClient:
    """A tiny NDJSON peer for the test's event loop."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        client = cls(reader, writer)
        client.hello = await client.recv()
        return client

    async def send(self, frame):
        self.writer.write(protocol.encode_frame(frame))
        await self.writer.drain()

    async def recv(self):
        line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        assert line, "server closed the connection"
        return protocol.decode_frame(line)

    async def roundtrip(self, frame):
        await self.send(frame)
        response = await self.recv()
        assert response["id"] == frame["id"]
        return response

    async def drain_rows(self, rid):
        """Collect ``rows`` frames for ``rid`` until done/error."""
        rows = []
        while True:
            frame = await self.recv()
            if frame["id"] != rid:
                continue
            if frame["op"] == "error":
                return rows, frame
            if frame["op"] == "rows":
                rows.extend(frame["rows"])
                if frame["done"]:
                    return rows, frame

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run(coro):
    asyncio.run(coro)


async def start_server(db, **kwargs):
    server = ReproServer(db, port=0, options=CLASSIC_OPTIONS, **kwargs)
    await server.start()
    return server


def test_prepare_execute_fetch_over_sockets(micro_db):
    async def scenario():
        server = await start_server(micro_db)
        client = await AsyncClient.connect(server.port)
        assert client.hello["op"] == "hello"
        assert client.hello["protocol"] == protocol.PROTOCOL_VERSION

        prepared = await client.roundtrip(
            {"op": "prepare", "id": 1, "sql": SQL})
        assert prepared["op"] == "prepared"
        executing = await client.roundtrip(
            {"op": "execute", "id": 2,
             "statement": prepared["statement"],
             "params": {"lo": 0, "hi": 200}})
        assert executing["op"] == "executing"
        assert executing["admission"]["action"] == "admit"
        rows = []
        while True:
            frame = await client.roundtrip(
                {"op": "fetch", "id": 3, "cursor": executing["cursor"],
                 "n": 32})
            rows.extend(frame["rows"])
            if frame["done"]:
                break
        assert frame["summary"]["rows"] == len(rows)
        assert "ledger" in frame["summary"]
        await client.close()
        await server.shutdown()

    run(scenario())


def test_query_streams_and_interleaves(micro_db):
    async def scenario():
        server = await start_server(micro_db)
        first = await AsyncClient.connect(server.port)
        second = await AsyncClient.connect(server.port)
        # Two queries streaming concurrently on one engine: both
        # complete, each sees only its own frames.
        await first.send({"op": "query", "id": "q1", "sql": SQL,
                          "params": {"lo": 0, "hi": 3_000}})
        await second.send({"op": "query", "id": "q2", "sql": SQL,
                           "params": {"lo": 3_000, "hi": 6_000}})
        rows1, done1 = await first.drain_rows("q1")
        rows2, done2 = await second.drain_rows("q2")
        assert done1["op"] == "rows" and done2["op"] == "rows"
        assert all(0 <= c2 < 3_000 for _c1, c2 in rows1)
        assert all(3_000 <= c2 < 6_000 for _c1, c2 in rows2)
        assert len(rows1) == done1["summary"]["rows"]
        await first.close()
        await second.close()
        await server.shutdown()

    run(scenario())


def test_rejected_statement_over_sockets(micro_db):
    async def scenario():
        # Half a full scan: the probe admits, the full scan cannot be
        # bounded and is rejected with the priced decision.
        server = await start_server(micro_db, sla_multiple=0.5)
        client = await AsyncClient.connect(server.port)
        await client.send({"op": "query", "id": 1,
                           "sql": "SELECT * FROM micro"})
        _rows, error = await client.drain_rows(1)
        assert error["op"] == "error"
        assert error["code"] == protocol.ERR_REJECTED
        assert error["detail"]["estimated_cost"] > \
            error["detail"]["budget"]
        await client.close()
        await server.shutdown()

    run(scenario())


def test_graceful_shutdown_via_frame(micro_db):
    async def scenario():
        server = await start_server(micro_db)
        client = await AsyncClient.connect(server.port)
        ack = await client.roundtrip({"op": "shutdown", "id": 1})
        assert ack["op"] == "shutting_down"
        # The server tears the connection down after the grace drain.
        line = await asyncio.wait_for(client.reader.readline(),
                                      timeout=30)
        assert line == b""
        await client.close()
        await asyncio.wait_for(server.serve_forever(), timeout=30)

    run(scenario())


def test_malformed_line_gets_error_then_disconnect(micro_db):
    async def scenario():
        server = await start_server(micro_db)
        client = await AsyncClient.connect(server.port)
        client.writer.write(b"this is not json\n")
        await client.writer.drain()
        error = await client.recv()
        assert error["op"] == "error"
        assert error["code"] == protocol.ERR_BAD_FRAME
        line = await asyncio.wait_for(client.reader.readline(),
                                      timeout=30)
        assert line == b""  # unparseable lines desync: connection ends
        await client.close()
        await server.shutdown()

    run(scenario())
