"""Heap pages and heap files."""

import pytest

from repro.errors import PageFullError, StorageError, UnknownPageError
from repro.storage.heap import HeapFile
from repro.storage.page import HeapPage
from repro.storage.types import Schema, TID


def test_page_insert_and_get():
    page = HeapPage(page_id=0, capacity=3)
    assert page.insert((1,)) == 0
    assert page.insert((2,)) == 1
    assert page.get(1) == (2,)
    assert len(page) == 2
    assert not page.is_full


def test_page_full_raises():
    page = HeapPage(page_id=0, capacity=1)
    page.insert((1,))
    assert page.is_full
    with pytest.raises(PageFullError):
        page.insert((2,))


def test_page_bad_slot():
    page = HeapPage(page_id=0, capacity=2)
    page.insert((1,))
    with pytest.raises(StorageError):
        page.get(1)


def test_page_rejects_zero_capacity():
    with pytest.raises(StorageError):
        HeapPage(page_id=0, capacity=0)


@pytest.fixture()
def heap():
    return HeapFile(file_id=0, schema=Schema.of_ints(["a"]),
                    tuples_per_page=4)


def test_heap_append_assigns_sequential_tids(heap):
    tids = [heap.append((i,)) for i in range(10)]
    assert tids[0] == TID(0, 0)
    assert tids[4] == TID(1, 0)
    assert tids[9] == TID(2, 1)
    assert heap.num_pages == 3
    assert heap.row_count == 10


def test_heap_fetch_roundtrip(heap):
    tid = heap.append((42,))
    assert heap.fetch(tid) == (42,)


def test_heap_page_bounds(heap):
    heap.append((1,))
    with pytest.raises(UnknownPageError):
        heap.page(5)


def test_heap_validates_arity(heap):
    with pytest.raises(StorageError):
        heap.append((1, 2))


def test_heap_iter_rows_in_physical_order(heap):
    for i in range(9):
        heap.append((i,))
    rows = list(heap.iter_rows())
    assert [r for _t, r in rows] == [(i,) for i in range(9)]
    assert rows[0][0] == TID(0, 0)
    assert rows[-1][0] == TID(2, 0)


def test_heap_iter_pages_order(heap):
    for i in range(6):
        heap.append((i,))
    assert [p.page_id for p in heap.iter_pages()] == [0, 1]
