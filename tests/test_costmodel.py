"""Section V formulas, SLA trigger math, and competitive analysis."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import (
    CostParams,
    ModeSplit,
    elastic_cr_adversarial,
    elastic_cr_bound,
    full_scan_cost,
    greedy_cr_curve,
    index_scan_cost,
    max_cr,
    optimal_cost,
    smooth_cost_mode1,
    smooth_cost_mode2,
    smooth_model_cr_curve,
    smooth_scan_cost,
    sla_bound_for_full_scans,
    sort_scan_cost,
    trigger_cardinality,
    worst_case_total_cost,
)
from repro.errors import ConfigError

PAPER = CostParams(tuple_size=64, num_tuples=400_000_000, key_size=4)


def test_paper_geometry():
    assert PAPER.tuples_per_page == 120
    assert PAPER.num_pages == 3_333_334
    assert PAPER.fanout == 1706
    assert PAPER.height == 3


def test_full_scan_cost_selectivity_independent():
    assert full_scan_cost(PAPER) == full_scan_cost(PAPER.at_selectivity(1.0))
    assert full_scan_cost(PAPER) == PAPER.num_pages


def test_index_scan_cost_linear_in_cardinality():
    lo = index_scan_cost(PAPER.at_selectivity(0.001))
    hi = index_scan_cost(PAPER.at_selectivity(0.01))
    assert hi / lo == pytest.approx(10.0, rel=0.01)


def test_index_vs_full_tipping_point_is_tiny():
    """The knife's edge of Section I: way below 1% on a 10:1 device."""
    sel = 0.001
    while index_scan_cost(PAPER.at_selectivity(sel)) > \
            full_scan_cost(PAPER) and sel > 1e-7:
        sel /= 2
    assert sel < 0.001  # tipping point below 0.1% selectivity


def test_mode_split_validation():
    split = ModeSplit(card_m0=10, card_m1=20, card_m2=30)
    assert split.total == 60
    with pytest.raises(ConfigError):
        ModeSplit(card_m0=-1)


def test_mode1_cost_is_random_per_page():
    p = PAPER.at_selectivity(0.0001)
    split = ModeSplit(card_m1=p.cardinality)
    assert smooth_cost_mode1(p, split) == \
        min(p.cardinality, p.num_pages) * p.rand_cost


def test_mode2_jump_bounds():
    p = PAPER.at_selectivity(0.5)
    split = ModeSplit(card_m2=p.cardinality)
    min_cost = smooth_cost_mode2(p, split, jumps="min")
    max_cost = smooth_cost_mode2(p, split, jumps="max")
    conv = smooth_cost_mode2(p, split, jumps="converged")
    assert min_cost <= conv <= max_cost + 1e-9
    with pytest.raises(ConfigError):
        smooth_cost_mode2(p, split, jumps="banana")


def test_smooth_cost_between_extremes_at_high_selectivity():
    p = PAPER.at_selectivity(1.0)
    ss = smooth_scan_cost(p)
    assert ss < index_scan_cost(p) / 50
    assert ss < full_scan_cost(p) * 1.5  # near-sequential


def test_smooth_scan_cost_zero_selectivity():
    p = PAPER.at_selectivity(0.0)
    # Just the descent plus nothing.
    assert smooth_scan_cost(p) == pytest.approx(p.height * p.rand_cost)


def test_sort_scan_cost_between_index_and_full_mid_range():
    p = PAPER.at_selectivity(0.001)
    assert sort_scan_cost(p) < index_scan_cost(p)


def test_elastic_cr_matches_paper():
    # Paper: CR ≈ 5.5 on HDD (bound 11).
    assert elastic_cr_bound(PAPER) == 11.0
    assert 4.0 < elastic_cr_adversarial(PAPER) < 6.0


def test_elastic_cr_ssd_bound():
    ssd = CostParams(tuple_size=64, num_tuples=400_000_000, key_size=4,
                     rand_cost=2.0, seq_cost=1.0)
    assert elastic_cr_bound(ssd) == 3.0
    assert elastic_cr_adversarial(ssd) < elastic_cr_adversarial(PAPER)


def test_greedy_cr_sublinear_in_table_size():
    """Greedy's soft bound: CR grows with #P but slower than linearly."""
    small = CostParams(tuple_size=64, num_tuples=1_000_000, key_size=4)
    big = CostParams(tuple_size=64, num_tuples=100_000_000, key_size=4)
    grid = [1e-7, 1e-6, 1e-5]
    cr_small = max_cr(greedy_cr_curve(small, grid)).ratio
    cr_big = max_cr(greedy_cr_curve(big, grid)).ratio
    assert cr_big > cr_small
    assert cr_big / cr_small < 100  # sublinear in the 100x size gap


def test_smooth_model_cr_curve_bounded():
    points = smooth_model_cr_curve(
        PAPER, [1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0]
    )
    worst = max_cr(points)
    assert worst.ratio < 3.0  # the model's Smooth Scan stays near-optimal


def test_sla_trigger_monotone_in_bound():
    sla2 = sla_bound_for_full_scans(PAPER, 2.0)
    sla3 = sla_bound_for_full_scans(PAPER, 3.0)
    assert trigger_cardinality(PAPER, sla3) > \
        trigger_cardinality(PAPER, sla2)


def test_sla_trigger_guarantee():
    sla = sla_bound_for_full_scans(PAPER, 2.0)
    card = trigger_cardinality(PAPER, sla)
    assert worst_case_total_cost(PAPER, card) <= sla
    assert worst_case_total_cost(PAPER, card + 1) > sla


def test_sla_unachievable_raises():
    with pytest.raises(ConfigError):
        trigger_cardinality(PAPER, 1.0)  # below even the eager worst case


def test_sla_bound_validation():
    with pytest.raises(ConfigError):
        sla_bound_for_full_scans(PAPER, 0)


def test_params_validation():
    with pytest.raises(ConfigError):
        CostParams(tuple_size=64, num_tuples=100, selectivity=2.0)
    with pytest.raises(ConfigError):
        CostParams(tuple_size=64, num_tuples=-1)
    with pytest.raises(ConfigError):
        CostParams(tuple_size=64, num_tuples=100, rand_cost=0)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1_000, max_value=10_000_000))
def test_property_costs_nonnegative_and_full_constant(sel, tuples):
    p = CostParams(tuple_size=64, num_tuples=tuples, selectivity=sel)
    assert full_scan_cost(p) >= 0
    assert index_scan_cost(p) >= 0
    assert smooth_scan_cost(p) >= 0
    assert optimal_cost(p) <= full_scan_cost(p)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000))
def test_property_mode_split_conserves_cardinality(m0, m1, m2):
    split = ModeSplit(card_m0=m0, card_m1=m1, card_m2=m2)
    assert split.total == m0 + m1 + m2  # Eq. (12)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1e-6, max_value=1.0))
def test_property_index_cost_monotone_in_selectivity(sel):
    lower = index_scan_cost(PAPER.at_selectivity(sel / 2))
    higher = index_scan_cost(PAPER.at_selectivity(sel))
    assert higher >= lower
