"""Shared fixtures: small databases reused across the test suite."""

from __future__ import annotations

import random

import pytest

from repro.database import Database
from repro.storage.types import Schema
from repro.workloads.micro import build_micro_table


@pytest.fixture()
def db() -> Database:
    """A fresh default-config database."""
    return Database()


@pytest.fixture(scope="session")
def micro_setup():
    """A session-shared micro-benchmark table (12K rows = 100 pages).

    Queries only read; ``measure`` resets caches per run, so sharing is
    safe and saves rebuild time across the suite.
    """
    database = Database()
    table = build_micro_table(database, num_tuples=12_000, seed=7)
    return database, table


@pytest.fixture()
def small_table(db):
    """A 3-column table with deterministic values and an index on c2."""
    rng = random.Random(123)
    schema = Schema.of_ints(["c1", "c2", "c3"])
    rows = [
        (i, rng.randrange(0, 1000), rng.randrange(0, 10))
        for i in range(5_000)
    ]
    table = db.load_table("t", schema, rows)
    db.create_index("t", "c2")
    return db, table
