"""Runtime sanitizers: planted defects are caught, clean runs pass."""

import pytest

from repro.analysis.sanitizers import (
    DeterminismSanitizer,
    LedgerSanitizer,
    SanitizerError,
)
from repro.database import Database
from repro.storage.types import Schema

# These tests install their own sanitizers and plant deliberate
# violations; the suite-wide --sanitize=ledger arming must stay out.
pytestmark = pytest.mark.no_suite_sanitizer

ROWS = [(i, i % 10) for i in range(3_000)]
SQL = "SELECT a FROM t WHERE b = :b"


def make_db():
    db = Database()
    db.load_table("t", Schema.of_ints(["a", "b"]), ROWS)
    return db


def run_query(db, b=3):
    with db.connect() as conn:
        return conn.run(SQL, {"b": b}, keep_rows=True)


# -- LedgerSanitizer ----------------------------------------------------------


def test_clean_run_passes_under_sanitizer():
    db = make_db()
    with LedgerSanitizer(db.runtime) as sanitizer:
        run_query(db)
        assert sanitizer.armed
    assert sanitizer.violations == []


def test_setup_phase_before_first_window_is_exempt():
    db = Database()
    sanitizer = LedgerSanitizer(db.runtime).install()
    # Bulk load charges plenty of simulated cost — legitimately outside
    # any window, because no query has run yet (the sanitizer is unarmed).
    db.load_table("t", Schema.of_ints(["a", "b"]), ROWS)
    assert not sanitizer.armed
    run_query(db)
    sanitizer.check()
    sanitizer.uninstall()
    assert sanitizer.violations == []


def test_planted_unattributed_charge_is_caught():
    db = make_db()
    sanitizer = LedgerSanitizer(db.runtime).install()
    run_query(db)
    with pytest.raises(SanitizerError, match="outside any attribution"):
        db.clock.charge_io(5.0)  # the planted defect
    assert sanitizer.violations[0].kind == "unattributed-charge"
    assert "charge_io" in sanitizer.violations[0].detail
    sanitizer.uninstall()


def test_planted_counter_drift_is_caught_at_check():
    db = make_db()
    sanitizer = LedgerSanitizer(db.runtime).install()
    run_query(db)
    db.disk.stats.pages_read += 3  # the planted defect
    with pytest.raises(SanitizerError, match="pages_read\\+3"):
        sanitizer.check()
    assert sanitizer.violations[0].kind == "unattributed-counters"
    sanitizer.uninstall()


def test_planted_counter_drift_is_caught_at_next_window():
    db = make_db()
    sanitizer = LedgerSanitizer(db.runtime).install()
    run_query(db)
    db.buffer.stats.hits += 1  # the planted defect
    with pytest.raises(SanitizerError, match="buffer_hits\\+1"):
        run_query(db)
    sanitizer.uninstall()


def test_cold_start_reset_is_not_a_violation():
    db = make_db()
    with LedgerSanitizer(db.runtime):
        run_query(db)
        db.runtime.cold_start()
        run_query(db)


def test_non_strict_collects_instead_of_raising():
    db = make_db()
    sanitizer = LedgerSanitizer(db.runtime, strict=False).install()
    run_query(db)
    db.clock.charge_cpu(1.0)
    db.clock.charge_cpu(1.0)
    sanitizer.check()
    sanitizer.uninstall()
    assert len(sanitizer.violations) == 2
    assert all("charge_cpu" in v.detail for v in sanitizer.violations)
    assert all(v.where for v in sanitizer.violations)


def test_uninstall_restores_the_runtime():
    db = make_db()
    sanitizer = LedgerSanitizer(db.runtime).install()
    run_query(db)
    sanitizer.uninstall()
    db.clock.charge_io(5.0)  # no window, no sanitizer: must not raise
    before = len(sanitizer.violations)
    assert before == 0


# -- DeterminismSanitizer -----------------------------------------------------


def test_identical_runs_hash_identically():
    sanitizer = DeterminismSanitizer()

    def factory():
        db = make_db()
        return repr(sorted(run_query(db).rows))

    report = sanitizer.check(factory, label="query-double-run")
    assert report.identical
    assert len(report.hashes) == 2


def test_planted_nondeterminism_is_caught():
    sanitizer = DeterminismSanitizer()
    counter = iter(range(10))

    def factory():
        return f"result-{next(counter)}"  # the planted defect

    with pytest.raises(SanitizerError, match="diverged"):
        sanitizer.check(factory, label="drifting")


def test_non_strict_reports_divergence():
    sanitizer = DeterminismSanitizer(strict=False)
    counter = iter(range(10))
    report = sanitizer.check(lambda: str(next(counter)), label="d")
    assert not report.identical


def test_hash_stream_canonicalizes_dicts_and_to_dict_objects():
    h = DeterminismSanitizer.hash_stream
    assert h([{"a": 1, "b": 2}]) == h([{"b": 2, "a": 1}])
    assert h("x") != h("y")
    assert h(b"x") == h(b"x")

    class Event:
        def __init__(self, kind):
            self.kind = kind

        def to_dict(self):
            return {"kind": self.kind}

    assert h([Event("scan")]) == h([Event("scan")])
    assert h([Event("scan")]) != h([Event("probe")])


# -- the CI double-run (armed via --sanitize=determinism) ---------------------


def test_trace_event_stream_is_deterministic(sanitizers_enabled):
    """Double-runs a traced workload and hashes the full event stream."""
    if "determinism" not in sanitizers_enabled:
        pytest.skip("enable with --sanitize=determinism (CI runs this)")

    def factory():
        db = make_db()
        db.tracer.enable()
        run_query(db, b=3)
        run_query(db, b=7)
        return db.tracer.events

    DeterminismSanitizer().check(factory, label="trace-events")
