"""Experiment modules at reduced scale: run, and check the paper's shapes.

These are the executable versions of EXPERIMENTS.md's claims.  Scales are
small so the suite stays fast; the benchmarks run the full defaults.
"""

import pytest

from repro.experiments import (
    make_tuned_tpch,
    run_competitive,
    run_fig1,
    run_fig10,
    run_fig11,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig9,
)
from repro.experiments.common import make_micro_db

GRID = (0.0, 0.01, 1.0, 20.0, 100.0)


@pytest.fixture(scope="module")
def micro48k():
    return make_micro_db(48_000)


@pytest.fixture(scope="module")
def tpch_setup():
    return make_tuned_tpch(scale_factor=0.004)


def test_fig5b_shapes(micro48k):
    r = run_fig5(order_by=False, selectivities_pct=GRID, setup=micro48k)
    i100 = r.selectivities_pct.index(100.0)
    # Index scan melts at 100%; smooth stays within 2x of the full scan.
    assert r.seconds["index"][i100] > 20 * r.seconds["full"][i100]
    assert r.seconds["smooth"][i100] < 2.0 * r.seconds["full"][i100]
    # At 0.01% the index-driven paths all beat the full scan.
    i_low = r.selectivities_pct.index(0.01)
    assert r.seconds["index"][i_low] < r.seconds["full"][i_low]
    assert r.seconds["smooth"][i_low] < r.seconds["full"][i_low]
    assert r.report().startswith("Figure 5b")


def test_fig5a_order_by_penalizes_blocking_paths(micro48k):
    r = run_fig5(order_by=True, selectivities_pct=(20.0,), setup=micro48k)
    # Under ORDER BY, smooth needs no posterior sort and wins at 20%.
    assert r.seconds["smooth"][0] < r.seconds["full"][0]
    assert r.seconds["smooth"][0] < r.seconds["sort"][0]


def test_fig6_mode_ordering(micro48k):
    r = run_fig6(selectivities_pct=(100.0,), setup=micro48k)
    full = r.seconds["full"][0]
    page_probe = r.seconds["smooth_mode1"][0]
    flattening = r.seconds["smooth_flattening"][0]
    index = r.seconds["index"][0]
    assert index > page_probe > flattening  # Fig 6's vertical ordering
    assert flattening < 2.0 * full
    assert page_probe > 3.0 * full  # mode 1 alone stays random-bound


def test_fig7a_greedy_overpays_at_low_selectivity(micro48k):
    r = run_fig7a(selectivities_pct=(0.05, 100.0), setup=micro48k)
    assert r.seconds["greedy"][0] > 1.5 * r.seconds["elastic"][0]
    # All policies converge near the high end.
    assert r.seconds["greedy"][1] < 2.0 * r.seconds["elastic"][1]


def test_fig7b_sla_respected(micro48k):
    r = run_fig7b(selectivities_pct=(0.005, 100.0), setup=micro48k)
    assert r.sla_trigger_cardinality > 0
    for label in ("eager", "optimizer", "sla"):
        assert r.seconds[label][1] <= r.sla_bound_seconds * 1.05


def test_fig8_si_overshoots_elastic_adapts():
    r = run_fig8(num_tuples=240_000)
    assert r.pages_read["si_smooth"] > 3 * r.pages_read["elastic_smooth"]
    assert r.seconds["si_smooth"] > r.seconds["elastic_smooth"]
    # Elastic lands near the index scan's page count, far below full.
    assert r.pages_read["elastic_smooth"] < r.pages_read["full"] / 4
    assert len({r.result_rows[k] for k in r.result_rows}) == 1


def test_fig9_cache_metrics(micro48k):
    r = run_fig9(selectivities_pct=(1.0, 100.0), setup=micro48k)
    assert r.cache_hit_rate_pct[1] > 95.0        # →100% when dense
    assert r.morphing_accuracy_pct[1] == 100.0
    assert max(r.cache_overhead_pct) < 25.0      # paper: ≤14%


def test_fig10_ssd_narrows_the_gap():
    hdd = run_fig5(order_by=False, num_tuples=48_000,
                   selectivities_pct=(100.0,))
    ssd = run_fig10(num_tuples=48_000, selectivities_pct=(100.0,))
    gap_hdd = hdd.seconds["index"][0] / hdd.seconds["full"][0]
    gap_ssd = ssd.seconds["index"][0] / ssd.seconds["full"][0]
    assert gap_ssd < gap_hdd  # 2:1 vs 10:1 random cost
    assert ssd.seconds["smooth"][0] < 1.5 * ssd.seconds["full"][0]


def test_fig11_cliff(micro48k):
    r = run_fig11(selectivities_pct=(0.001, 0.05, 100.0), setup=micro48k)
    assert r.switched == [False, True, True]
    # Before the cliff, switch ≈ index behaviour (cheap); after, ≈ full.
    assert r.seconds["switch"][0] < r.seconds["full"][0] / 2
    assert r.seconds["switch"][1] >= r.seconds["full"][1]
    assert r.seconds["smooth"][1] < r.seconds["switch"][1]


def test_competitive_ratios():
    r = run_competitive(num_tuples=24_000, adversarial_pages=400)
    # Default elastic on a prefetching disk: the paper's empirical CR ≈ 2.
    assert 1.2 < r.adversarial_cr < 3.5
    # Strict elastic, prefetching disabled: the analysis regime (≈5.5);
    # per-tuple CPU dilutes the pure-I/O ratio somewhat.
    assert 3.0 < r.adversarial_cr_strict < 7.0
    assert r.adversarial_cr_strict > r.adversarial_cr
    assert r.sweep_max_cr < 4.0
    assert "adversarial" in r.report()


def test_fig1_tuning_regressions_and_smooth_repair(tpch_setup):
    r = run_fig1(setup=tpch_setup,
                 queries=["Q1", "Q6", "Q7", "Q12", "Q14", "Q19"])
    # Tuning must hurt at least one query badly...
    worst = max(r.normalized(q) for q in r.queries)
    assert worst > 3.0
    # ...while smooth stays within a small factor of original everywhere.
    for q in r.queries:
        assert r.smooth_s[q] < 3.0 * max(r.original_s[q], r.tuned_s[q])
    assert "Figure 1" in r.report()


def test_fig4_smooth_fixes_bad_choices(tpch_setup):
    r = run_fig4(setup=tpch_setup)
    psql_q7 = r.data[("Q7", "pSQL")]
    smooth_q7 = r.data[("Q7", "pSQL+SmoothScan")]
    assert smooth_q7.total_s < psql_q7.total_s  # the paper's 7x win
    # Q1 (98%, already optimal): smooth adds only bounded overhead.
    psql_q1 = r.data[("Q1", "pSQL")]
    smooth_q1 = r.data[("Q1", "pSQL+SmoothScan")]
    assert smooth_q1.total_s < 1.6 * psql_q1.total_s
    # Breakdown components add up.
    assert psql_q1.total_s == pytest.approx(psql_q1.cpu_s + psql_q1.io_wait_s)
    assert "Table II" in r.report_table2()


def test_fig1_workload_factor_degrades(tpch_setup):
    r = run_fig1(setup=tpch_setup, include_smooth=False)
    assert r.workload_factor() > 1.5  # paper: 22x at full scale
