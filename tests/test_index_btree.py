"""B+-tree behaviour: ordering, ranges, charging, and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BTreeError
from repro.index.btree import BTreeIndex
from repro.storage.types import Schema, TID


def make_index(pairs, key_size=4):
    index = BTreeIndex("idx", file_id=9, key_size=key_size)
    index.bulk_load(pairs)
    return index


@pytest.fixture()
def ctx_and_index(db):
    table = db.load_table(
        "t", Schema.of_ints(["a", "b"]),
        ((i, (i * 37) % 100) for i in range(2_000)),
    )
    index = db.create_index("t", "b")
    return db, db.context(), table, index


def test_bulk_load_sorts(ctx_and_index):
    _db, ctx, _table, index = ctx_and_index
    keys = [k for k, _t in index.scan(ctx)]
    assert keys == sorted(keys)
    assert len(keys) == 2_000


def test_strict_key_tid_order(ctx_and_index):
    _db, ctx, _table, index = ctx_and_index
    entries = list(index.scan(ctx))
    assert entries == sorted(entries, key=lambda e: (e[0], e[1]))


def test_range_scan_bounds(ctx_and_index):
    _db, ctx, _table, index = ctx_and_index
    keys = [k for k, _t in index.scan(ctx, lo=10, hi=20)]
    assert keys and all(10 <= k < 20 for k in keys)
    keys_inc = [k for k, _t in index.scan(ctx, lo=10, hi=20,
                                          hi_inclusive=True)]
    assert max(keys_inc) == 20
    keys_exc = [k for k, _t in index.scan(ctx, lo=10, hi=20,
                                          lo_inclusive=False)]
    assert min(keys_exc) > 10


def test_empty_range_yields_nothing(ctx_and_index):
    _db, ctx, _table, index = ctx_and_index
    assert list(index.scan(ctx, lo=500, hi=600)) == []


def test_lookup_point(ctx_and_index):
    db, ctx, table, index = ctx_and_index
    tids = list(index.lookup(ctx, 0))
    rows = [table.heap.fetch(t) for t in tids]
    assert rows and all(r[1] == 0 for r in rows)


def test_scan_charges_descent_and_leaf_io(ctx_and_index):
    db, ctx, _table, index = ctx_and_index
    db.cold_run()
    ctx = db.context()
    list(index.scan(ctx))
    # At least the root-to-leaf path plus every leaf page was read.
    assert db.disk.stats.pages_read >= index.num_leaves


def test_insert_preserves_order():
    index = make_index([])
    rng = random.Random(5)
    values = [rng.randrange(100) for _ in range(300)]
    for i, v in enumerate(values):
        index.insert(v, TID(i // 10, i % 10))
    keys = [index.entry_at(i)[0] for i in range(len(index))]
    assert keys == sorted(keys)
    assert len(index) == 300


def test_insert_equal_keys_ordered_by_tid():
    index = make_index([])
    index.insert(5, TID(3, 0))
    index.insert(5, TID(1, 0))
    index.insert(5, TID(2, 0))
    tids = [index.entry_at(i)[1] for i in range(3)]
    assert tids == [TID(1, 0), TID(2, 0), TID(3, 0)]


def test_min_max_key():
    index = make_index([(5, TID(0, 0)), (2, TID(0, 1)), (9, TID(0, 2))])
    assert index.min_key() == 2
    assert index.max_key() == 9
    empty = make_index([])
    with pytest.raises(BTreeError):
        empty.min_key()


def test_geometry_consistency():
    index = make_index([(i, TID(i // 100, i % 100)) for i in range(20_000)])
    sizes = index.level_sizes
    assert sizes[0] == index.num_leaves
    assert sizes[-1] == 1
    assert index.num_pages == sum(sizes)
    assert index.height == len(sizes)


def test_page_bounds():
    index = make_index([(i, TID(0, i)) for i in range(10)])
    index.page(0)
    with pytest.raises(BTreeError):
        index.page(index.num_pages)


def test_path_page_ids_root_first():
    index = make_index([(i, TID(i, 0)) for i in range(20_000)])
    path = index._path_page_ids(0)
    assert len(path) == index.height
    assert path[-1] == 0  # leaf 0 last
    assert path[0] == index.num_pages - 1  # root is the last page id


def test_root_key_separators_sorted_unique():
    index = make_index([(i % 50, TID(i // 10, i % 10)) for i in range(500)])
    seps = index.root_key_separators(8)
    assert seps == sorted(seps)
    assert len(seps) == len(set(seps))
    assert len(seps) <= 7


def test_root_key_separators_empty_cases():
    assert make_index([]).root_key_separators(8) == []
    index = make_index([(1, TID(0, 0))])
    assert index.root_key_separators(1) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300))
def test_property_bulk_load_matches_sorted(keys):
    pairs = [(k, TID(i // 8, i % 8)) for i, k in enumerate(keys)]
    index = make_index(pairs)
    stored = [index.entry_at(i) for i in range(len(index))]
    assert stored == sorted(pairs, key=lambda p: (p[0], p[1]))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=200),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_property_range_positions_match_filter(keys, lo, hi):
    pairs = [(k, TID(i // 8, i % 8)) for i, k in enumerate(keys)]
    index = make_index(pairs)
    start, end = index.range_positions(lo, hi)
    via_positions = [index.entry_at(i)[0] for i in range(start, end)]
    expected = sorted(k for k in keys if lo <= k < hi)
    assert via_positions == expected
