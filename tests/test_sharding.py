"""The shard catalog, exchange operators and the split admission verdict.

Unit-level coverage for the shard-parallel subsystem: partitioning
decisions (balanced buckets, quantile range bounds, validation),
catalog registration semantics (shards invisible to FROM, re-shard and
unshard life cycle), the planner's exchange decision trail, and the
admission controller's ``split`` verdict — over-budget statements
re-priced at N shards and admitted as parallel plans.
"""

import pytest

from repro.database import Database
from repro.errors import ExecutionError, StorageError
from repro.exec.exchange import Exchange, ShardedScan, UnionAll
from repro.optimizer.planner import PlannerOptions
from repro.server.admission import ADMIT, SPLIT, AdmissionController
from repro.storage.sharding import (
    range_split_keys,
    shard_table_name,
    validate_sharding,
)
from repro.workloads.micro import VALUE_DOMAIN, build_micro_table


@pytest.fixture()
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=6_000, seed=5)
    db.analyze()
    return db


# -- partitioning decisions ---------------------------------------------------


def test_validate_sharding_rejects_bad_inputs():
    with pytest.raises(StorageError, match=">= 1"):
        validate_sharding(0, "round_robin")
    with pytest.raises(StorageError, match="unknown sharding scheme"):
        validate_sharding(4, "hash")
    validate_sharding(4, "range")  # fine


def test_range_split_keys_balance_under_skew():
    values = [0] * 90 + list(range(10))  # 90% of rows share one key
    keys = range_split_keys(values, 4)
    assert len(keys) == 3
    assert keys == tuple(sorted(keys))
    # Quantile splits put the boundary inside the hot key run, not at
    # equal key widths (which would leave three shards nearly empty).
    assert keys[0] == 0


def test_shard_names_cannot_collide_with_sql_identifiers():
    assert shard_table_name("micro", 3) == "micro#3"


# -- catalog registration -----------------------------------------------------


def test_shard_tables_balanced_and_invisible(micro_db):
    shard_set = micro_db.shard_table("micro", 4)
    counts = [shard.row_count for shard in shard_set.shards]
    assert sum(counts) == 6_000
    assert max(counts) - min(counts) <= 1  # round-robin balance
    # Shards carry the parent's indexes and fresh statistics.
    parent = micro_db.table("micro")
    for shard in shard_set.shards:
        assert set(shard.indexes) == set(parent.indexes)
    # Invisible to FROM: the shard is not a user table.
    conn = micro_db.connect(cold=False)
    with pytest.raises(Exception):
        conn.run("SELECT * FROM micro#0")


def test_reshard_and_unshard_lifecycle(micro_db):
    micro_db.shard_table("micro", 2)
    shard_set = micro_db.shard_table("micro", 3, scheme="range",
                                     column="c2")
    assert shard_set.num_shards == 3
    assert len(shard_set.bounds) == 2
    # Range shards hold disjoint key intervals in bound order.
    col = micro_db.table("micro").schema.index_of("c2")
    lo_max = max(r[col] for _tid, r in
                 shard_set.shards[0].heap.iter_rows())
    hi_min = min(r[col] for _tid, r in
                 shard_set.shards[2].heap.iter_rows())
    assert lo_max < shard_set.bounds[0] <= shard_set.bounds[1] <= hi_min
    with pytest.raises(StorageError, match="itself a shard"):
        micro_db.shard_table("micro#0", 2)
    micro_db.unshard_table("micro")
    assert micro_db.shard_set("micro") is None
    with pytest.raises(StorageError, match="not partitioned"):
        micro_db.unshard_table("micro")


# -- planning and the decision trail -----------------------------------------


def test_exchange_plan_shape_and_decisions(micro_db):
    micro_db.shard_table("micro", 4)
    micro_db.analyze()
    conn = micro_db.connect(cold=False)
    result = conn.run("SELECT * FROM micro WHERE c2 >= 0 AND c2 < "
                      f"{VALUE_DOMAIN}", cold=True, keep_rows=False)
    ops = list(result.plan.operators())
    exchange = next(op for op in ops if isinstance(op, Exchange))
    assert len([op for op in ops if isinstance(op, ShardedScan)]) == 4
    assert len(exchange.shard_ledgers) == 4
    decisions = result.plan.decisions()
    root = next(d for d in decisions if d.path == "exchange")
    assert {"exchange", "serial", "serial-union"} <= set(
        root.alternatives)
    shard_decisions = [d for d in decisions if d.shard is not None]
    assert sorted(d.shard for d in shard_decisions) == [
        f"micro#{i}" for i in range(4)
    ]
    # The cheaper-only guard: an exchange only exists because the model
    # priced it under the serial plan (and the serial union baseline is
    # reported alongside for the scaling experiments).
    assert root.alternatives["exchange"] < root.alternatives["serial"]


def test_planner_keeps_serial_plan_when_model_prefers_it(micro_db):
    micro_db.shard_table("micro", 4)
    micro_db.analyze()
    # Forcing a path or ordering the output always stays serial: a
    # forced sweep pins one exact plan, and a posterior Sort would
    # charge above the exchange, breaking shard-ledger conservation.
    for sql, options in (
        ("SELECT * FROM micro WHERE c2 >= 0 AND c2 < 99999",
         PlannerOptions(force_path="full")),
        ("SELECT * FROM micro WHERE c2 >= 0 AND c2 < 99999 "
         "ORDER BY c2", None),
    ):
        res = micro_db.connect(options=options, cold=False).run(
            sql, cold=True, keep_rows=False)
        assert not any(isinstance(op, Exchange)
                       for op in res.plan.operators())


def test_exchange_and_union_require_children():
    with pytest.raises(ExecutionError, match="at least one"):
        Exchange([])
    with pytest.raises(ExecutionError, match="at least one"):
        UnionAll([])


# -- the split admission verdict ---------------------------------------------


def test_split_verdict_rescues_over_budget_statements(micro_db):
    micro_db.shard_table("micro", 4)
    micro_db.analyze()
    options = PlannerOptions(enable_sort_scan=False,
                             shard_parallel=False)
    conn = micro_db.connect(options=options, cold=False)
    statement = conn.prepare(
        "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi")
    statement.run({"lo": 0, "hi": 50}, cold=True, keep_rows=False)
    controller = AdmissionController(micro_db, sla_multiple=2.0,
                                     max_inflight=8)
    decision = controller.decide(
        conn, statement, {"lo": 0, "hi": round(0.6 * VALUE_DOMAIN)})
    assert decision.action == SPLIT
    assert decision.estimated_cost > decision.budget
    assert decision.split_estimate is not None
    assert decision.split_estimate <= decision.budget
    assert decision.admitted
    # The split connection is shared and prices == executes: the same
    # cached connection instance comes back for the same base options.
    first = controller.split_connection("micro", options)
    assert controller.split_connection("micro", options) is first


def test_no_split_without_a_shard_set(micro_db):
    options = PlannerOptions(enable_sort_scan=False,
                             shard_parallel=False)
    conn = micro_db.connect(options=options, cold=False)
    statement = conn.prepare(
        "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi")
    statement.run({"lo": 0, "hi": 50}, cold=True, keep_rows=False)
    controller = AdmissionController(micro_db, sla_multiple=2.0,
                                     max_inflight=8)
    assert controller.split_connection("micro", options) is None
    decision = controller.decide(
        conn, statement, {"lo": 0, "hi": round(0.6 * VALUE_DOMAIN)})
    assert decision.action != SPLIT  # degraded or rejected, never split
    assert decision.action != ADMIT
