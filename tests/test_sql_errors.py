"""Golden tests for SQL error reporting.

Error messages are part of the front end's contract: every failure names
what went wrong, where (line, column, caret), and — for unknown names —
what *would* have been accepted.  These tests pin exact message text, so
format changes are deliberate.
"""

import pytest

from repro.database import Database
from repro.errors import SqlError, StorageError
from repro.sql import compile_statement, parse
from repro.storage.types import Column, ColumnType, Schema


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load_table(
        "micro",
        Schema([Column("c1"), Column("c2"),
                Column("tag", ColumnType.CHAR, 4)]),
        [(i, i * 2, f"t{i:03d}") for i in range(100)],
    )
    return database


def message_of(callable_, *args):
    with pytest.raises(SqlError) as excinfo:
        callable_(*args)
    return str(excinfo.value)


# -- lexer -------------------------------------------------------------------

def test_unterminated_string_golden(db):
    # The caret points at end of input — where the closing quote is
    # missing — and the message names where the literal opened.
    message = message_of(parse, "SELECT * FROM micro WHERE c1 = 'abc")
    assert message == (
        "unterminated string literal (opened at line 1, column 32) "
        "at line 1, column 36\n"
        "  SELECT * FROM micro WHERE c1 = 'abc\n"
        "                                     ^"
    )


def test_unterminated_string_multiline_caret_at_eof(db):
    message = message_of(parse, "SELECT *\nFROM micro\nWHERE tag = 'ab")
    assert message == (
        "unterminated string literal (opened at line 3, column 13) "
        "at line 3, column 16\n"
        "  WHERE tag = 'ab\n"
        "                 ^"
    )


def test_unterminated_comment(db):
    message = message_of(parse, "SELECT * /* oops FROM micro")
    assert ("unterminated comment (opened at line 1, column 10) "
            "at line 1, column 28") in message


def test_unterminated_hint_golden(db):
    message = message_of(parse, "SELECT /*+ smooth * FROM micro")
    assert message == (
        "unterminated hint comment (opened at line 1, column 8) "
        "at line 1, column 31\n"
        "  SELECT /*+ smooth * FROM micro\n"
        "                                ^"
    )


def test_bare_colon_is_not_a_parameter(db):
    message = message_of(parse, "SELECT * FROM micro WHERE c1 = :")
    assert message == (
        "expected a parameter name after ':' at line 1, column 32\n"
        "  SELECT * FROM micro WHERE c1 = :\n"
        "                                 ^"
    )


# -- parser ------------------------------------------------------------------

def test_misspelled_select_golden(db):
    message = message_of(parse, "SELCT * FROM micro")
    assert message == (
        "expected keyword SELECT, got identifier 'SELCT' "
        "at line 1, column 1\n"
        "  SELCT * FROM micro\n"
        "  ^"
    )


def test_misspelled_from_golden(db):
    message = message_of(parse, "SELECT * FORM micro")
    assert message == (
        "expected keyword FROM, got identifier 'FORM' "
        "at line 1, column 10\n"
        "  SELECT * FORM micro\n"
        "           ^"
    )


def test_position_tracks_multiline_statements(db):
    message = message_of(parse, "SELECT *\nFROM micro\nWHERE c1 == 1")
    assert "at line 3, column 11" in message
    assert message.endswith("  WHERE c1 == 1\n            ^")


def test_mixed_parameter_styles_golden(db):
    message = message_of(
        parse, "SELECT * FROM micro WHERE c1 = ? AND c2 = :hi"
    )
    assert ("cannot mix '?' and ':name' parameter styles in one "
            "statement at line 1, column 43") in message


# -- binder ------------------------------------------------------------------

def test_unknown_table_lists_known(db):
    message = message_of(compile_statement, db, "SELECT * FROM macro")
    assert "unknown table 'macro'; known tables: micro" in message
    assert "at line 1, column 1" in message


def test_unknown_column_golden(db):
    message = message_of(compile_statement, db,
                         "SELECT * FROM micro WHERE c9 = 1")
    assert message == (
        "unknown column 'c9'; known columns: micro(c1, c2, tag) "
        "at line 1, column 27\n"
        "  SELECT * FROM micro WHERE c9 = 1\n"
        "                            ^"
    )


def test_unknown_select_column_lists_known(db):
    message = message_of(compile_statement, db, "SELECT nope FROM micro")
    assert "unknown column 'nope'; known columns: micro(c1, c2, tag)" in message


def test_bad_hint_name_golden(db):
    message = message_of(compile_statement, db,
                         "SELECT /*+ no_such_hint */ * FROM micro")
    assert ("unknown hint 'no_such_hint'; valid hints: force_path, "
            "no_inlj, no_index, no_sort_scan, smooth") in message
    assert "at line 1, column 8" in message


def test_bad_force_path_argument(db):
    message = message_of(compile_statement, db,
                         "SELECT /*+ force_path(warp) */ * FROM micro")
    assert "force_path takes one of ('full', 'index', 'sort', 'smooth')" \
        in message


def test_malformed_hint_missing_paren(db):
    message = message_of(compile_statement, db,
                         "SELECT /*+ force_path(smooth */ * FROM micro")
    assert "malformed hint" in message


def test_unsupported_like_pattern(db):
    message = message_of(
        compile_statement, db,
        "SELECT * FROM micro WHERE tag LIKE 'a%b%c'",
    )
    assert "unsupported LIKE pattern 'a%b%c'" in message


# -- Database.table (non-SQL path shares the listing behaviour) --------------

def test_database_table_error_lists_known(db):
    with pytest.raises(StorageError) as excinfo:
        db.table("macro")
    assert str(excinfo.value) == \
        "no table named 'macro'; known tables: micro"


def test_database_table_error_when_empty():
    with pytest.raises(StorageError) as excinfo:
        Database().table("anything")
    assert "known tables: (no tables loaded)" in str(excinfo.value)
