"""The trace layer: zero simulated cost, correct spans, live metrics."""

from repro.database import Database
from repro.optimizer.planner import PlannerOptions
from repro.workloads.micro import build_micro_table

NUM_TUPLES = 12_000

SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"

SMOOTH = PlannerOptions(enable_sort_scan=False, enable_smooth=True)


def make_db():
    db = Database()
    build_micro_table(db, num_tuples=NUM_TUPLES, seed=7)
    db.analyze()
    return db


def run_workload(db):
    conn = db.connect(options=SMOOTH, cold=False)
    first = conn.run(SQL, {"lo": 0, "hi": 5_000}, cold=True,
                     keep_rows=False)
    second = conn.run(SQL, {"lo": 0, "hi": 20_000}, cold=True,
                      keep_rows=False)
    return first, second


def kinds(events):
    return [e.kind for e in events]


def test_tracer_disabled_by_default_and_emit_is_noop():
    db = make_db()
    assert db.tracer.enabled is False
    run_workload(db)
    db.tracer.emit("anything", value=1.0)
    assert db.tracer.events == []
    assert db.tracer.metrics.counter("events_total").value == 0


def test_tracing_charges_zero_simulated_cost():
    """The headline invariant: traced and untraced runs measure alike.

    Two identically-built databases run the identical workload; the one
    difference is tracing.  Every measured number — simulated times,
    I/O accounting, buffer behavior, the shared clock itself — must be
    bitwise equal.
    """
    plain_db, traced_db = make_db(), make_db()
    traced_db.tracer.enable()
    plain = run_workload(plain_db)
    traced = run_workload(traced_db)
    for p, t in zip(plain, traced, strict=False):
        assert p.run.io_ms == t.run.io_ms
        assert p.run.cpu_ms == t.run.cpu_ms
        assert p.run.disk == t.run.disk
        assert p.run.buffer_hits == t.run.buffer_hits
        assert p.run.buffer_misses == t.run.buffer_misses
        assert p.row_count == t.row_count
    assert plain_db.runtime.clock.total_ms == traced_db.runtime.clock.total_ms
    # ...and the traced run actually recorded something.
    assert len(traced_db.tracer.events) > 0


def test_query_span_carries_statement_and_ledger():
    db = make_db()
    db.tracer.enable()
    result, _ = run_workload(db)
    events = db.tracer.drain()
    starts = [e for e in events if e.kind == "query.start"]
    finishes = [e for e in events if e.kind == "query.finish"]
    assert len(starts) == len(finishes) == 2
    start, finish = starts[0], finishes[0]
    assert start.query_id == finish.query_id
    assert start.attrs["sql"] == SQL
    assert start.attrs["params"] == {"lo": 0, "hi": 5_000}
    assert start.attrs["cold"] is True
    assert start.attrs["options"]["enable_smooth"] is True
    assert finish.attrs["rows"] == result.row_count
    assert finish.attrs["partial"] is False
    assert finish.attrs["io_ms"] == result.run.io_ms
    assert finish.attrs["ledger"]["disk"]["pages_read"] \
        == result.run.disk.pages_read


def test_smooth_scan_emits_morph_events_attributed_to_the_span():
    db = make_db()
    db.tracer.enable()
    conn = db.connect(options=SMOOTH, cold=False)
    conn.run(SQL, {"lo": 0, "hi": 50_000}, cold=True, keep_rows=False)
    events = db.tracer.drain()
    qid = next(e.query_id for e in events if e.kind == "query.start")
    morph = [e for e in events if e.kind.startswith("morph.")]
    assert [e.kind for e in morph][0] == "morph.start"
    assert "morph.finish" in [e.kind for e in morph]
    assert all(e.query_id == qid for e in morph)
    finish = next(e for e in morph if e.kind == "morph.finish")
    assert finish.attrs["pages_fetched"] > 0


def test_plan_cache_events_hit_miss_invalidation():
    db = make_db()
    db.tracer.enable()
    conn = db.connect(options=SMOOTH, cold=False)
    conn.run(SQL, {"lo": 0, "hi": 100}, cold=True, keep_rows=False)
    conn.run(SQL, {"lo": 0, "hi": 200}, cold=True, keep_rows=False)
    db.analyze()  # bumps the catalog version: cached plans die
    conn.run(SQL, {"lo": 0, "hi": 300}, cold=True, keep_rows=False)
    cache_kinds = [k for k in kinds(db.tracer.drain())
                   if k.startswith("plan_cache.")]
    assert cache_kinds == ["plan_cache.miss", "plan_cache.hit",
                           "plan_cache.invalidation", "plan_cache.miss"]
    counters = db.tracer.metrics
    assert counters.counter("plan_cache_misses_total").value == 2
    assert counters.counter("plan_cache_hits_total").value == 1
    assert counters.counter("plan_cache_invalidations_total").value == 1


def test_note_client_attributes_next_span():
    db = make_db()
    db.tracer.enable()
    db.tracer.note_client("session-7")
    conn = db.connect(options=SMOOTH, cold=False)
    conn.run(SQL, {"lo": 0, "hi": 100}, cold=True, keep_rows=False)
    start = next(e for e in db.tracer.drain()
                 if e.kind == "query.start")
    assert start.attrs["client"] == "session-7"


def test_drain_clears_and_disable_resets_pending():
    db = make_db()
    tracer = db.tracer
    tracer.enable()
    tracer.note_statement(SQL, None, None, cold=True)
    tracer.note_client("x")
    tracer.emit("touch")
    assert len(tracer.events) == 1
    assert tracer.drain() != []
    assert tracer.events == []
    tracer.disable()
    assert tracer._pending_statement is None
    assert tracer._pending_client is None
    assert tracer.current_query_id == -1
    tracer.enable()
    conn = db.connect(options=SMOOTH, cold=False)
    conn.run(SQL, {"lo": 0, "hi": 100}, cold=True, keep_rows=False)
    start = next(e for e in tracer.drain() if e.kind == "query.start")
    assert "client" not in start.attrs  # the noted client did not leak


def test_metrics_follow_events_and_exposition_is_deterministic():
    texts = []
    for _ in range(2):
        db = make_db()
        db.tracer.enable()
        run_workload(db)
        metrics = db.tracer.metrics
        assert metrics.counter("queries_total").value == 2
        assert metrics.histogram("query_io_ms").count == 2
        texts.append(metrics.exposition())
    assert texts[0] == texts[1]
    assert texts[0].startswith("# repro telemetry metrics v1")
    assert "counter queries_total 2" in texts[0]


def test_plan_cache_stats_dict_is_the_single_source_of_truth():
    db = make_db()
    conn = db.connect(options=SMOOTH, cold=False)
    conn.run(SQL, {"lo": 0, "hi": 100}, cold=True, keep_rows=False)
    conn.run(SQL, {"lo": 0, "hi": 200}, cold=True, keep_rows=False)
    stats = db.plan_cache.stats_dict()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["lookups"] == 2
    assert set(stats) == {"entries", "capacity", "hits", "misses",
                          "invalidations", "evictions", "lookups"}
    # EXPLAIN's plan-cache line formats from the same dict (the EXPLAIN
    # text is its own cache key, so this lookup is one more miss).
    cursor = conn.cursor().execute("EXPLAIN " + SQL, {"lo": 0, "hi": 100})
    line = cursor.fetchall()[-1][0]
    assert line == (
        f"plan cache: miss (hits={stats['hits']} "
        f"misses={stats['misses'] + 1} "
        f"invalidations={stats['invalidations']})"
    )


def test_partial_span_closes_on_cursor_close():
    db = make_db()
    db.tracer.enable()
    conn = db.connect(options=SMOOTH, cold=False)
    cursor = conn.cursor().execute(SQL, {"lo": 0, "hi": 90_000})
    cursor.fetchmany(10)
    cursor.close()
    finish = next(e for e in db.tracer.drain()
                  if e.kind == "query.finish")
    assert finish.attrs["partial"] is True
    assert finish.attrs["rows"] >= 10
