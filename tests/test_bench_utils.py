"""Reporting and runner utilities."""

import os

from repro.bench.reporting import (
    format_series,
    format_table,
    format_value,
    save_report,
)
from repro.bench.runner import normalized, run_cold, sweep
from repro.exec.scans import FullTableScan


def test_format_value():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(0.0) == "0"
    assert format_value(1234567.0) == "1,234,567"
    assert format_value(0.123456) == "0.123"
    assert format_value(42) == "42"
    assert format_value(123456) == "123,456"


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5


def test_format_series():
    assert format_series("s", [1, 2], [3.0, 4.0]) == "s: (1, 3), (2, 4)"


def test_save_report(tmp_path):
    path = save_report("unit", "hello", root=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert fh.read() == "hello\n"


def test_normalized():
    assert normalized(10.0, 5.0) == 2.0
    assert normalized(0.0, 0.0) == 1.0
    assert normalized(5.0, 0.0) == float("inf")


def test_run_cold_and_sweep(small_table):
    db, table = small_table
    m = run_cold(db, "fs", FullTableScan(table), note="x")
    assert m.label == "fs"
    assert m.seconds > 0
    assert m.extras == {"note": "x"}
    results = sweep(db, {"a": lambda: FullTableScan(table),
                         "b": lambda: FullTableScan(table)})
    assert set(results) == {"a", "b"}
    assert results["a"].seconds == results["b"].seconds
