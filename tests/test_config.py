"""EngineConfig validation and geometry."""

import pytest

from repro.config import CpuCosts, DEFAULT_CONFIG, EngineConfig
from repro.errors import ConfigError


def test_default_geometry_matches_paper():
    # 64-byte tuples in 8KB pages with a 512B header -> 120 tuples/page.
    assert DEFAULT_CONFIG.tuples_per_page(64) == 120


def test_usable_page_bytes():
    cfg = EngineConfig(page_size=8192, page_header=512)
    assert cfg.usable_page_bytes == 7680


def test_page_header_must_fit():
    with pytest.raises(ConfigError):
        EngineConfig(page_size=100, page_header=100)


def test_tuples_per_page_rejects_oversized_tuple():
    with pytest.raises(ConfigError):
        DEFAULT_CONFIG.tuples_per_page(10_000)


def test_tuples_per_page_rejects_nonpositive():
    with pytest.raises(ConfigError):
        DEFAULT_CONFIG.tuples_per_page(0)


@pytest.mark.parametrize("field,value", [
    ("extent_pages", 0),
    ("max_region_pages", 0),
    ("work_mem_pages", 0),
    ("buffer_pool_pages", 0),
])
def test_invalid_knobs_rejected(field, value):
    with pytest.raises(ConfigError):
        EngineConfig(**{field: value})


def test_with_overrides_returns_new_config():
    cfg = DEFAULT_CONFIG.with_overrides(extent_pages=32)
    assert cfg.extent_pages == 32
    assert DEFAULT_CONFIG.extent_pages == 16
    assert cfg.page_size == DEFAULT_CONFIG.page_size


def test_cpu_costs_are_small_relative_to_io():
    # The guiding ratio: one random I/O >> one tuple inspection.
    cpu = CpuCosts()
    assert cpu.tuple_inspect < 0.01
    assert cpu.cache_probe < cpu.tuple_inspect
