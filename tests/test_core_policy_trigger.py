"""Morphing policies and triggering points."""

import pytest

from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    SelectivityIncreasePolicy,
    policy_by_name,
)
from repro.core.trigger import (
    EagerTrigger,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
)


def test_greedy_always_doubles():
    p = GreedyPolicy()
    assert p.next_region(1, 0.0, 1.0) == 2
    assert p.next_region(8, 0.0, 1.0) == 16


def test_si_doubles_on_increase_keeps_otherwise():
    p = SelectivityIncreasePolicy()
    assert p.next_region(4, 0.9, 0.5) == 8
    assert p.next_region(4, 0.2, 0.5) == 4  # never shrinks


def test_elastic_two_way():
    p = ElasticPolicy()
    assert p.next_region(4, 0.9, 0.5) == 8
    assert p.next_region(4, 0.2, 0.5) == 2
    assert p.next_region(1, 0.0, 0.5) == 1  # floor at one page


def test_default_comparison_is_non_strict():
    # local == global counts as "not lower" and grows (see policy module
    # docstring for the reconciliation of Fig. 5b with the CR analysis).
    assert ElasticPolicy().next_region(2, 0.5, 0.5) == 4
    assert ElasticPolicy(strict=True).next_region(2, 0.5, 0.5) == 1
    assert SelectivityIncreasePolicy(strict=True).next_region(2, 0.5, 0.5) == 2


def test_initial_region_is_entire_page_probe():
    for policy in (GreedyPolicy(), SelectivityIncreasePolicy(),
                   ElasticPolicy()):
        assert policy.initial_region() == 1


def test_policy_by_name():
    assert isinstance(policy_by_name("greedy"), GreedyPolicy)
    assert isinstance(policy_by_name("elastic"), ElasticPolicy)
    assert isinstance(policy_by_name("selectivity-increase"),
                      SelectivityIncreasePolicy)
    with pytest.raises(ValueError):
        policy_by_name("nope")


def test_policy_by_name_defaults_to_non_strict():
    for name in ("greedy", "elastic", "selectivity-increase"):
        assert policy_by_name(name).strict is False


@pytest.mark.parametrize("name", ["elastic", "selectivity-increase", "greedy"])
def test_policy_by_name_passes_strict_through(name):
    # Regression: the strict flag was silently discarded — lookup always
    # constructed with defaults.
    policy = policy_by_name(name, strict=True)
    assert policy.strict is True


@pytest.mark.parametrize("strict,expected_elastic,expected_si", [
    # Eq. (1) == Eq. (2): the >= default reads "not lower" and doubles;
    # the strict > literal reading treats equality as no increase.
    (False, 8, 8),
    (True, 2, 4),
])
def test_both_readings_of_eq1_eq2_comparison(strict, expected_elastic,
                                             expected_si):
    local = global_ = 0.75
    elastic = policy_by_name("elastic", strict=strict)
    si = policy_by_name("selectivity-increase", strict=strict)
    assert elastic.next_region(4, local, global_) == expected_elastic
    assert si.next_region(4, local, global_) == expected_si


def test_eager_trigger():
    t = EagerTrigger()
    assert t.eager
    assert t.should_morph(0)
    assert t.post_morph_policy() is None


def test_optimizer_trigger_fires_past_estimate():
    t = OptimizerDrivenTrigger(estimated_cardinality=100)
    assert not t.eager
    assert not t.should_morph(100)
    assert t.should_morph(101)
    with pytest.raises(ValueError):
        OptimizerDrivenTrigger(-1)


def test_sla_trigger_switches_to_greedy():
    t = SLADrivenTrigger(trigger_cardinality=50)
    assert not t.eager
    assert not t.should_morph(49)
    assert t.should_morph(50)
    assert isinstance(t.post_morph_policy(), GreedyPolicy)
    with pytest.raises(ValueError):
        SLADrivenTrigger(-5)
