"""Failure injection: the engine under hostile configurations.

Every stressor here is a situation a production engine must survive:
pathologically small buffers, one-page sort memory, tight result-cache
limits mid-ordered-scan, string keys, and degenerate tables.
"""

import random

from repro.config import EngineConfig
from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import OptimizerDrivenTrigger
from repro.database import Database
from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.exec.stats import measure
from repro.storage.types import Column, ColumnType, Schema


def build(config=None, rows=5_000, seed=3):
    db = Database(config=config)
    rng = random.Random(seed)
    table = db.load_table(
        "t", Schema.of_ints(["c1", "c2", "c3"]),
        [(i, rng.randrange(1_000), rng.randrange(10)) for i in range(rows)],
    )
    db.create_index("t", "c2")
    return db, table


def test_one_page_buffer_pool_still_correct():
    db, table = build(EngineConfig(buffer_pool_pages=1))
    expected = sorted(measure(db, FullTableScan(
        table, Between("c2", 0, 500))).rows)
    for plan in (IndexScan(table, "c2", KeyRange(0, 500)),
                 SortScan(table, "c2", KeyRange(0, 500)),
                 SmoothScan(table, "c2", KeyRange(0, 500))):
        assert sorted(measure(db, plan).rows) == expected


def test_one_page_work_mem_sorts_correctly():
    db, table = build(EngineConfig(work_mem_pages=1))
    rows = measure(db, Sort(FullTableScan(table), ["c2"])).rows
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)
    assert len(rows) == table.row_count


def test_tiny_result_cache_limit_under_ordered_scan():
    db, table = build()
    scan = SmoothScan(table, "c2", KeyRange(0, 1000), ordered=True,
                      result_cache_memory_limit=500)
    rows = measure(db, scan).rows
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)
    assert len(rows) == table.row_count
    assert scan.last_stats.result_cache.spills > 0
    assert scan.last_stats.result_cache.unspills > 0


def test_tiny_result_cache_with_non_eager_trigger():
    db, table = build()
    scan = SmoothScan(table, "c2", KeyRange(0, 1000), ordered=True,
                      trigger=OptimizerDrivenTrigger(25),
                      result_cache_memory_limit=500)
    rows = measure(db, scan).rows
    ids = [r[0] for r in rows]
    assert len(ids) == len(set(ids)) == table.row_count


def test_single_row_table():
    db = Database()
    table = db.load_table("t", Schema.of_ints(["a", "b"]), [(1, 5)])
    db.create_index("t", "b")
    for plan in (FullTableScan(table),
                 IndexScan(table, "b", KeyRange(0, 10)),
                 SmoothScan(table, "b", KeyRange(0, 10))):
        assert measure(db, plan).rows == [(1, 5)]


def test_single_distinct_key_ordered_smooth():
    """Result-cache partitioning degenerates to one partition."""
    db = Database()
    table = db.load_table("t", Schema.of_ints(["a", "b"]),
                          [(i, 42) for i in range(3_000)])
    db.create_index("t", "b")
    scan = SmoothScan(table, "b", KeyRange.equal(42), ordered=True)
    rows = measure(db, scan).rows
    assert len(rows) == 3_000


def test_string_keyed_index():
    db = Database()
    schema = Schema([Column("id", ColumnType.INT),
                     Column("name", ColumnType.CHAR, 10)])
    names = ["ant", "bee", "cat", "dog", "eel", "fox"]
    table = db.load_table(
        "t", schema, [(i, names[i % 6]) for i in range(1_200)]
    )
    db.create_index("t", "name")
    scan = SmoothScan(table, "name", KeyRange("bee", "dog",
                                              hi_inclusive=True))
    rows = measure(db, scan).rows
    assert len(rows) == 600  # bee, cat, dog
    assert {r[1] for r in rows} == {"bee", "cat", "dog"}
    ordered = SmoothScan(table, "name",
                         KeyRange("ant", "fox", hi_inclusive=True),
                         ordered=True)
    keys = [r[1] for r in measure(db, ordered).rows]
    assert keys == sorted(keys)


def test_max_region_one_page_table():
    db = Database()
    table = db.load_table("t", Schema.of_ints(["a", "b"]),
                          [(i, i) for i in range(50)])
    db.create_index("t", "b")
    scan = SmoothScan(table, "b", KeyRange.all())
    assert len(measure(db, scan).rows) == 50
    assert scan.last_stats.pages_fetched == 1


def test_trigger_on_last_tuple():
    """Morph exactly at the final qualifying tuple: nothing remains."""
    db, table = build(rows=1_000)
    total = measure(db, FullTableScan(
        table, Between("c2", 0, 1000))).row_count
    scan = SmoothScan(table, "c2", KeyRange(0, 1000),
                      trigger=OptimizerDrivenTrigger(total - 1))
    rows = measure(db, scan).rows
    assert len(rows) == total


def test_smooth_scan_region_larger_than_table():
    db, table = build(rows=2_000)
    scan = SmoothScan(table, "c2", KeyRange(0, 1000),
                      max_region_pages=10_000)
    rows = measure(db, scan).rows
    assert len(rows) == 2_000
    assert scan.last_stats.pages_fetched == table.num_pages
