"""Property tests for shard-parallel execution.

Two laws the exchange must obey under *any* partitioning and any
interleaving of concurrent sharded queries:

1. **Answer preservation** — for every scheme and shard count, the
   union of the per-shard scans returns exactly the serial plan's
   multiset of rows (order may differ: the exchange merges round-robin).
2. **Ledger conservation** — the per-shard attribution windows' ledgers
   sum to each query's own ledger with integer counters (pages, buffer
   hits/misses) exactly equal and the millisecond floats within 1e-9
   relative tolerance, however concurrent sharded cursors interleave;
   and the per-query ledgers still sum to the shared runtime totals.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.database import Database
from repro.exec.exchange import Exchange
from repro.optimizer.planner import PlannerOptions
from repro.runtime import CostLedger
from repro.storage.sharding import SHARD_SCHEMES
from repro.workloads.micro import VALUE_DOMAIN, build_micro_table

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_DB = None


def _micro_db() -> Database:
    """One shared 6,000-tuple micro database, re-sharded per example.

    Partitioning never mutates the base table (shards are separate
    heap/index copies dropped by ``unshard_table``), so reuse across
    hypothesis examples is sound and keeps the suite fast.
    """
    global _DB
    if _DB is None:
        db = Database()
        build_micro_table(db, num_tuples=6_000, seed=11)
        db.analyze()
        _DB = db
    return _DB


def _exchange_of(cursor) -> Exchange | None:
    return next((op for op in cursor._planned.operators()
                 if isinstance(op, Exchange)), None)


def _ledger_of(run) -> CostLedger:
    return run.ledger


SQL = "SELECT c1, c2 FROM micro WHERE c2 >= :lo AND c2 < :hi"


@given(
    num_shards=st.integers(min_value=2, max_value=6),
    scheme=st.sampled_from(SHARD_SCHEMES),
    lo_pct=st.floats(min_value=0.0, max_value=0.7),
    width_pct=st.floats(min_value=0.02, max_value=1.0),
)
@SETTINGS
def test_union_of_shards_matches_serial(num_shards, scheme, lo_pct,
                                        width_pct):
    db = _micro_db()
    db.shard_table("micro", num_shards, scheme=scheme, column="c2")
    try:
        lo = round(lo_pct * VALUE_DOMAIN)
        hi = round(min(1.0, lo_pct + width_pct) * VALUE_DOMAIN)
        params = {"lo": lo, "hi": hi}
        serial = db.connect(
            options=PlannerOptions(shard_parallel=False), cold=False
        ).run(SQL, params, cold=True)
        sharded = db.connect(cold=False).run(SQL, params, cold=True)
        assert Counter(serial.rows) == Counter(sharded.rows)
        assert serial.row_count == sharded.row_count
    finally:
        db.unshard_table("micro")


@given(
    num_shards=st.integers(min_value=2, max_value=5),
    scheme=st.sampled_from(SHARD_SCHEMES),
    order=st.lists(st.integers(min_value=0, max_value=1),
                   min_size=2, max_size=40),
)
@SETTINGS
def test_shard_ledgers_conserved_under_interleaving(num_shards, scheme,
                                                    order):
    """However two sharded cursors interleave, each query's summed
    shard ledgers reproduce its own ledger, and the query ledgers sum
    to the runtime totals — no charge lost or double-attributed."""
    db = _micro_db()
    db.shard_table("micro", num_shards, scheme=scheme, column="c2")
    try:
        db.runtime.cold_start()
        conn = db.connect(cold=False)
        cursors = [
            conn.cursor().execute(
                SQL, {"lo": 0, "hi": round(0.6 * VALUE_DOMAIN)}),
            conn.cursor().execute(
                SQL, {"lo": round(0.3 * VALUE_DOMAIN), "hi": VALUE_DOMAIN}),
        ]
        # Drain in the hypothesis-chosen interleave order, then finish.
        for pick in order:
            cursors[pick].fetchmany(64)
        for cursor in cursors:
            cursor.fetchall()
        summed_queries = CostLedger()
        for cursor in cursors:
            query_ledger = _ledger_of(cursor._run)
            summed_queries.add(query_ledger)
            exchange = _exchange_of(cursor)
            assert exchange is not None  # 60%+ ranges must go wide
            shard_sum = CostLedger()
            for ledger in exchange.shard_ledgers:
                shard_sum.add(ledger)
            # Integer counters exactly; millisecond floats within 1e-9.
            assert shard_sum.disk == query_ledger.disk
            assert shard_sum.buffer_hits == query_ledger.buffer_hits
            assert shard_sum.buffer_misses == query_ledger.buffer_misses
            assert shard_sum.matches(query_ledger, rel_tol=1e-9,
                                     abs_tol=1e-9)
        totals = db.runtime.totals()
        assert summed_queries.matches(totals)
        assert totals.disk.pages_read > 0  # the property is not vacuous
    finally:
        db.unshard_table("micro")
