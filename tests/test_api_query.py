"""Declarative query API: fluent builder → plan_query → operators.

The load-bearing guarantees: lowering a Query through the planner yields
byte-identical rows and identical simulated costs to the equivalent
hand-built operator tree (single-table, across the policy×trigger grid
and all four forced access paths), and explain() reports estimated vs.
actual cardinalities per plan node.
"""

import random

import pytest

from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    SelectivityIncreasePolicy,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import (
    EagerTrigger,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
)
from repro.database import Database
from repro.errors import PlanningError, StorageError
from repro.exec.aggregates import AggSpec, HashAggregate
from repro.exec.expressions import (
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
)
from repro.exec.joins import HashJoin
from repro.exec.scans import FullTableScan
from repro.exec.stats import measure
from repro.experiments.common import access_path_plan
from repro.optimizer.planner import PlannerOptions
from repro.storage.types import Schema

POLICIES = {
    "greedy": GreedyPolicy,
    "si": SelectivityIncreasePolicy,
    "elastic": ElasticPolicy,
}
TRIGGERS = {
    "eager": lambda est: EagerTrigger(),
    "optimizer": lambda est: OptimizerDrivenTrigger(est),
    "sla": lambda est: SLADrivenTrigger(max(1, est // 2)),
}


def _same_measurement(a, b) -> bool:
    return (a.io_ms == b.io_ms and a.cpu_ms == b.cpu_ms
            and a.disk.requests == b.disk.requests
            and a.disk.bytes_read == b.disk.bytes_read)


@pytest.fixture(scope="module")
def micro():
    from repro.workloads.micro import build_micro_table
    db = Database()
    table = build_micro_table(db, num_tuples=12_000, seed=7)
    return db, table


# -- acceptance: single-table identity ---------------------------------------

@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("trigger_name", sorted(TRIGGERS))
@pytest.mark.parametrize("ordered", [False, True])
def test_smooth_grid_identity(micro, policy_name, trigger_name, ordered):
    """Query→plan_query→SmoothScan ≡ the hand-built operator, for every
    policy×trigger×ordered combination: same rows, same simulated costs."""
    db, table = micro
    sel = 0.2
    est = int(sel * table.row_count)
    from repro.workloads.micro import selectivity_predicate

    hand = access_path_plan(
        "smooth", table, sel, order_by=ordered,
        policy=POLICIES[policy_name](),
        trigger=TRIGGERS[trigger_name](est),
    )
    expected = measure(db, hand)

    query = db.query("micro").where(selectivity_predicate(sel))
    if ordered:
        query = query.order_by("c2")
    result = db.execute(query, options=PlannerOptions(
        force_path="smooth",
        smooth_policy=POLICIES[policy_name](),
        smooth_trigger=TRIGGERS[trigger_name](est),
    ))
    assert result.rows == expected.rows  # byte-identical
    assert _same_measurement(result, expected)
    assert result.decisions[0].path == "smooth"


@pytest.mark.parametrize("path", ["full", "index", "sort", "smooth"])
@pytest.mark.parametrize("ordered", [False, True])
@pytest.mark.parametrize("sel", [0.0, 0.01, 0.5])
def test_forced_path_identity(micro, path, ordered, sel):
    """Each forced access path lowers to the identical physical plan the
    experiments hand-build (rows and all simulated costs equal)."""
    db, table = micro
    from repro.workloads.micro import selectivity_predicate

    expected = measure(db, access_path_plan(path, table, sel,
                                            order_by=ordered))
    query = db.query("micro").where(selectivity_predicate(sel))
    if ordered:
        query = query.order_by("c2")
    result = db.execute(query, options=PlannerOptions(force_path=path))
    assert result.rows == expected.rows
    assert _same_measurement(result, expected)


def test_cost_based_plan_matches_plan_scan(micro):
    """Without forcing, plan_query on a bare scan mirrors plan_scan."""
    db, table = micro
    from repro.optimizer.planner import Planner
    pred = Between("c2", 0, 500)
    planner = Planner(db, db.catalog)
    op, decision = planner.plan_scan("micro", pred, order_by="c2")
    expected = measure(db, op)
    result = db.execute(db.query("micro").where(pred).order_by("c2"))
    assert result.rows == expected.rows
    assert _same_measurement(result, expected)
    assert result.decisions[0].path == decision.path


# -- acceptance: explain() on a join with aggregation ------------------------

@pytest.fixture(scope="module")
def sales_db():
    db = Database()
    rng = random.Random(31)
    db.load_table(
        "sales", Schema.of_ints(["s_id", "s_cust", "s_amount"]),
        [(i, rng.randrange(200), rng.randrange(1_000))
         for i in range(8_000)],
    )
    db.create_index("sales", "s_amount")
    db.load_table(
        "customers", Schema.of_ints(["c_id", "c_region"]),
        [(i, i % 11) for i in range(200)],
    )
    db.create_index("customers", "c_id")
    db.analyze()
    return db


def test_explain_two_table_join_with_aggregation(sales_db):
    db = sales_db
    query = (
        db.query("sales")
        .where(Comparison("s_amount", CompareOp.LT, 700))
        .join("customers", on=("s_cust", "c_id"))
        .group_by("c_region")
        .aggregate(("count", "*", "n"), ("sum", "s_amount", "total"))
        .order_by("c_region")
    )
    # Before execution the tree renders estimates with unknown actuals.
    pre = query.explain()
    assert "act=?" in pre and "rows est=" in pre
    result = db.execute(query)
    text = result.explain()
    assert "HashAggregate" in text
    assert "Join" in text  # hash or index-nested-loop
    assert "act=?" not in text  # every node saw its actual cardinality
    # The root's actual cardinality equals the produced row count.
    assert result.plan.tree.actual_rows == result.row_count == 11
    # Scan node records estimated rows and the costed alternatives.
    scan_decisions = [d for d in result.decisions
                     if d.path in ("full", "index", "sort", "smooth")]
    assert scan_decisions and scan_decisions[0].estimated_cardinality > 0


def test_join_rows_match_hand_built(sales_db):
    db = sales_db
    pred = Comparison("s_amount", CompareOp.LT, 700)
    hand = HashJoin(
        FullTableScan(db.table("sales"), pred),
        FullTableScan(db.table("customers")),
        ["s_cust"], ["c_id"],
    )
    expected = sorted(measure(db, hand).rows)
    result = db.execute(
        db.query("sales").where(pred).join("customers", on=("s_cust", "c_id"))
    )
    assert sorted(result.rows) == expected


def test_aggregate_rows_match_hand_built(sales_db):
    db = sales_db
    hand = HashAggregate(
        FullTableScan(db.table("sales")), ["s_cust"],
        [AggSpec("sum", "total", column="s_amount")],
    )
    expected = sorted(measure(db, hand).rows)
    result = db.execute(
        db.query("sales").group_by("s_cust")
        .aggregate(AggSpec("sum", "total", column="s_amount"))
    )
    assert sorted(result.rows) == expected


# -- lowering behaviour ------------------------------------------------------

def test_cross_table_predicate_becomes_filter(sales_db):
    db = sales_db
    # s_cust vs. c_region spans both tables: must survive as a post-join
    # residual, not be lost or pushed anywhere.
    query = (
        db.query("sales")
        .join("customers", on=("s_cust", "c_id"))
        .where(ColumnComparison("s_cust", CompareOp.GT, "c_region"))
    )
    result = db.execute(query)
    assert result.row_count > 0
    for row in result.rows:
        assert row[1] > row[4]  # s_cust > c_region on the joined schema
    assert "Filter" in result.explain()


@pytest.fixture()
def left_join_db():
    """Orders 0..99 but only even customers exist: real null padding."""
    db = Database()
    db.load_table("orders", Schema.of_ints(["o_id", "o_cust"]),
                  [(i, i % 100) for i in range(300)])
    db.load_table("cust", Schema.of_ints(["k_id", "k_tier"]),
                  [(i, i % 4) for i in range(0, 100, 2)])
    return db


def test_left_join_keeps_unmatched_rows(left_join_db):
    db = left_join_db
    result = db.execute(
        db.query("orders").join("cust", on=("o_cust", "k_id"), how="left")
    )
    assert result.row_count == 300  # every left row survives
    padded = [r for r in result.rows if r[2] is None]
    assert len(padded) == 150  # odd customers are null-padded


def test_left_join_filter_on_inner_is_not_pushed_below(left_join_db):
    db = left_join_db
    # WHERE on the nullable side of a LEFT JOIN must filter the *joined*
    # rows (dropping null-padded ones), not be pushed into the inner
    # scan (which would null-pad instead of dropping).
    query = (
        db.query("orders")
        .join("cust", on=("o_cust", "k_id"), how="left")
        .where(Comparison("k_tier", CompareOp.EQ, 2))
    )
    result = db.execute(query)
    assert result.row_count > 0
    assert all(row[3] == 2 for row in result.rows)  # no null padding


def test_left_join_cross_filter_rejects_null_padded_rows(left_join_db):
    db = left_join_db
    # A residual comparing across tables after a LEFT JOIN hits
    # null-padded rows: SQL WHERE semantics drop them (no crash).
    query = (
        db.query("orders")
        .join("cust", on=("o_cust", "k_id"), how="left")
        .where(ColumnComparison("o_id", CompareOp.GT, "k_tier"))
    )
    result = db.execute(query)
    assert result.row_count > 0
    assert all(row[3] is not None and row[0] > row[3]
               for row in result.rows)


def test_left_join_disjunctive_residual_keeps_true_or_unknown(left_join_db):
    db = left_join_db
    from repro.exec.expressions import Or
    # TRUE OR UNKNOWN keeps the row: o_id < 5 matches rows whose cust
    # side may be null-padded; those must survive the OR residual.
    query = (
        db.query("orders")
        .join("cust", on=("o_cust", "k_id"), how="left")
        .where(Or([Comparison("o_id", CompareOp.LT, 5),
                   ColumnComparison("o_id", CompareOp.LT, "k_tier")]))
    )
    rows = db.execute(query).rows
    # o_id 1 and 3 pair with odd (missing) customers: padded, yet kept.
    assert [r for r in rows if r[0] in (1, 3) and r[2] is None]
    # And no row with a NULL k_tier passes via the comparison branch.
    assert all(r[0] < 5 or (r[3] is not None and r[0] < r[3]) for r in rows)


def test_order_by_direction_validation(sales_db):
    db = sales_db
    q = db.query("sales").order_by(("s_amount", "desc"), ("s_id", "asc"))
    assert [o.ascending for o in q.spec.order_by] == [False, True]
    with pytest.raises(PlanningError):
        db.query("sales").order_by(("s_amount", "descending"))


def test_left_join_negated_composite_follows_three_valued_logic(left_join_db):
    db = left_join_db
    from repro.exec.expressions import And, Not
    # NOT(FALSE AND UNKNOWN) = TRUE: null-padded rows where the first
    # conjunct is false must be KEPT (De Morgan distribution).
    query = (
        db.query("orders")
        .join("cust", on=("o_cust", "k_id"), how="left")
        .where(Not(And([Comparison("o_id", CompareOp.LT, 0),   # always false
                        Comparison("k_tier", CompareOp.EQ, 1)])))
    )
    result = db.execute(query)
    assert result.row_count == 300  # every row survives, padded or not


def test_semi_join(sales_db):
    db = sales_db
    # Customers 0..49 only: semi join keeps sales rows with a match.
    query = (
        db.query("sales")
        .join("customers", on=("s_cust", "c_id"), how="semi")
        .where(Comparison("c_id", CompareOp.LT, 50))
    )
    result = db.execute(query)
    assert result.rows  # output keeps the left schema
    assert all(len(r) == 3 and r[1] < 50 for r in result.rows)


def test_select_order_limit(sales_db):
    db = sales_db
    query = (
        db.query("sales")
        .select("s_id", "s_amount")
        .order_by(("s_amount", False), "s_id")
        .limit(5)
    )
    result = db.execute(query)
    assert len(result.rows) == 5
    amounts = [r[1] for r in result.rows]
    assert amounts == sorted(amounts, reverse=True)
    assert all(len(r) == 2 for r in result.rows)


def test_three_table_join_greedy_order(sales_db):
    db = sales_db
    # A third tiny table joined through customers; both join orders must
    # produce the same rows and resolve keys transitively.
    if "regions" not in db.tables:
        db.load_table("regions", Schema.of_ints(["r_id", "r_code"]),
                      [(i, 100 + i) for i in range(11)])
        db.analyze("regions")
    q = (
        db.query("sales")
        .where(Comparison("s_amount", CompareOp.LT, 100))
        .join("customers", on=("s_cust", "c_id"))
        .join("regions", on=("c_region", "r_id"))
    )
    rows = sorted(db.execute(q).rows)
    assert rows and all(row[6] == 100 + row[4] for row in rows)


def test_join_reordering_keeps_declared_column_layout():
    db = Database()
    db.load_table("a", Schema.of_ints(["ak", "av"]),
                  [(i, i + 10) for i in range(100)])
    db.load_table("b", Schema.of_ints(["bk", "bv"]),
                  [(i, i + 20) for i in range(100)])
    db.load_table("c", Schema.of_ints(["ck", "cv"]),
                  [(i, i + 30) for i in range(5)])
    q = (db.query("a").join("b", on=("ak", "bk"))
         .join("c", on=("ak", "ck")))
    before = db.execute(q)
    db.analyze()  # statistics may flip the greedy join order...
    after = db.execute(q)
    # ...but the output layout must stay the declared a+b+c order.
    declared = ["ak", "av", "bk", "bv", "ck", "cv"]
    assert list(before.plan.root.schema.column_names) == declared
    assert list(after.plan.root.schema.column_names) == declared
    assert sorted(before.rows) == sorted(after.rows)


def test_semi_join_hidden_column_error_names_the_cause():
    db = Database()
    db.load_table("a", Schema.of_ints(["ak", "av"]), [(i, i) for i in range(5)])
    db.load_table("b", Schema.of_ints(["bk", "bv"]), [(i, i) for i in range(5)])
    q = (db.query("a").join("b", on=("ak", "bk"), how="semi")
         .where(ColumnComparison("av", CompareOp.GT, "bv")))
    with pytest.raises(PlanningError, match="semi/anti"):
        db.execute(q)


def test_force_path_overrides_enable_flags(micro):
    db, _table = micro
    from repro.workloads.micro import selectivity_predicate
    res = db.execute(
        db.query("micro").where(selectivity_predicate(0.01)),
        options=PlannerOptions(enable_index=False, force_path="index"),
    )
    decision = res.decisions[0]
    assert decision.path == "index"
    # The decision reports the full comparison, forced path included.
    assert decision.alternatives["index"] == decision.estimated_cost


def test_unresolvable_join_key_raises(sales_db):
    db = sales_db
    q = db.query("customers").join("sales", on=("nope", "s_cust"))
    with pytest.raises(PlanningError):
        db.execute(q)


def test_single_string_join_key_rejected_for_inner(sales_db):
    db = sales_db
    # on="col" means the same column name on both sides, which only
    # semi/anti joins can output; inner joins must fail at the builder.
    with pytest.raises(PlanningError, match="duplicate"):
        db.query("sales").join("customers", on="c_id")


def test_unknown_table_raises(sales_db):
    with pytest.raises(StorageError):
        sales_db.query("missing")


def test_unknown_predicate_column_raises(sales_db):
    db = sales_db
    q = db.query("sales").where(Comparison("bogus", CompareOp.EQ, 1))
    with pytest.raises(PlanningError):
        db.execute(q)


def test_force_index_without_index_raises(sales_db):
    db = sales_db
    q = db.query("customers").where(Comparison("c_region", CompareOp.EQ, 3))
    with pytest.raises(PlanningError):
        db.execute(q, options=PlannerOptions(force_path="index"))


def test_force_path_applies_to_base_scan_only(sales_db):
    db = sales_db
    # Forcing a path must not leak into the join's inner side (whose
    # TruePredicate offers no range for index/sort/smooth paths).
    q = (db.query("sales")
         .where(Comparison("s_amount", CompareOp.LT, 300))
         .join("customers", on=("s_cust", "c_id")))
    baseline = sorted(db.execute(q).rows)
    for path in ("full", "index", "sort", "smooth"):
        res = db.execute(q, options=PlannerOptions(force_path=path))
        assert sorted(res.rows) == baseline
        # First scan decision in preorder is the base table's: pinned.
        scans = [d.path for d in res.decisions
                 if d.path in ("full", "index", "sort", "smooth")]
        assert scans[0] == path
    # full additionally forbids INLJ and forces inner scans sequential:
    # the whole plan is scans + hash joins.
    res = db.execute(q, options=PlannerOptions(force_path="full"))
    assert all(d.path in ("full", "hash") for d in res.decisions)


def test_shared_column_resolves_to_visible_side_of_semi_join():
    db = Database()
    db.load_table("a", Schema.of_ints(["k", "tag"]), [(i, i) for i in range(10)])
    db.load_table("b", Schema.of_ints(["k2", "tag"]),
                  [(i, 99) for i in range(5)])
    # b's tag is hidden behind the semi join, so "tag" means a.tag —
    # the same scoping SQL applies to the outer query block.
    q = (db.query("a").join("b", on=("k", "k2"), how="semi")
         .where(Comparison("tag", CompareOp.EQ, 3)))
    assert db.execute(q).rows == [(3, 3)]
    # Filtering the shared join key itself works the same way.
    db.load_table("c", Schema.of_ints(["k", "other"]),
                  [(i, 0) for i in range(5)])
    q2 = (db.query("a").join("c", on="k", how="semi")
          .where(Comparison("k", CompareOp.LT, 2)))
    assert db.execute(q2).rows == [(0, 0), (1, 1)]


def test_zero_column_predicate_pushes_to_base(sales_db):
    from repro.exec.expressions import Predicate

    class ConstFalse(Predicate):
        def bind(self, schema):
            return lambda row: False

        def columns(self):
            return set()

    db = sales_db
    q = (db.query("sales").join("customers", on=("s_cust", "c_id"))
         .where(ConstFalse()))
    assert db.execute(q).row_count == 0  # evaluable, not "ambiguous"


def test_ambiguous_column_rejected():
    db = Database()
    db.load_table("a", Schema.of_ints(["k", "tag"]), [(i, i) for i in range(10)])
    db.load_table("b", Schema.of_ints(["k2", "tag"]), [(i, i) for i in range(10)])
    # Both sides of a left join stay visible: "tag" is truly ambiguous.
    q = (db.query("a").join("b", on=("k", "k2"), how="left")
         .where(Comparison("tag", CompareOp.EQ, 5)))
    with pytest.raises(PlanningError, match="ambiguous"):
        db.execute(q)


def test_reexecution_resets_actual_counts(sales_db):
    db = sales_db
    planned = db.plan(db.query("sales").limit(1))
    from repro.exec.stats import measure
    measure(db, planned.root)
    assert planned.tree.actual_rows == 1
    planned.reset_counters()
    assert planned.tree.actual_rows is None
    assert "act=?" in planned.render()


def test_null_rejecting_does_not_mask_type_errors(left_join_db):
    db = left_join_db
    # A genuinely mistyped predicate (str constant vs int column) must
    # still raise loudly, not silently drop every row.
    q = (db.query("orders")
         .join("cust", on=("o_cust", "k_id"), how="left")
         .where(Comparison("k_tier", CompareOp.LT, "2")))
    with pytest.raises(TypeError):
        db.execute(q)


def test_bad_force_path_rejected():
    with pytest.raises(PlanningError):
        PlannerOptions(force_path="bitmap")


# -- builder ergonomics ------------------------------------------------------

def test_query_is_immutable(sales_db):
    db = sales_db
    base = db.query("sales")
    filtered = base.where(Comparison("s_amount", CompareOp.LT, 10))
    limited = filtered.limit(3)
    assert base.spec.predicate is not filtered.spec.predicate
    assert base.spec.limit is None and limited.spec.limit == 3
    assert filtered.spec.limit is None  # branching does not mutate


def test_chained_where_flattens_for_pushdown(sales_db):
    db = sales_db
    from repro.exec.expressions import And
    chained = (db.query("sales")
               .join("customers", on=("s_cust", "c_id"), how="semi")
               .where(Comparison("s_amount", CompareOp.LT, 100))
               .where(Comparison("c_region", CompareOp.EQ, 1))
               .where(Comparison("s_id", CompareOp.LT, 4000)))
    # Conjuncts stay top-level (no nested And), so each is pushable.
    assert all(not isinstance(p, And)
               for p in chained.spec.predicate.parts)
    single = (db.query("sales")
              .join("customers", on=("s_cust", "c_id"), how="semi")
              .where(Comparison("s_amount", CompareOp.LT, 100),
                     Comparison("c_region", CompareOp.EQ, 1),
                     Comparison("s_id", CompareOp.LT, 4000)))
    assert sorted(db.execute(chained).rows) == sorted(db.execute(single).rows)


def test_where_rejects_non_predicates(sales_db):
    with pytest.raises(PlanningError):
        sales_db.query("sales").where("s_amount < 10")


def test_aggregate_shorthand_normalization(sales_db):
    q = sales_db.query("sales").aggregate(
        ("count", "*"), ("sum", "s_amount"), ("avg", "s_amount", "mean"),
    )
    outputs = [a.output for a in q.spec.aggregates]
    assert outputs == ["count", "sum_s_amount", "mean"]
    with pytest.raises(PlanningError):
        sales_db.query("sales").aggregate(("median", "s_amount"))


def test_run_convenience_and_repr(sales_db):
    db = sales_db
    q = (db.query("sales").where(Comparison("s_amount", CompareOp.LT, 50))
         .limit(2).using(PlannerOptions(force_path="full")))
    res = q.run(keep_rows=False)
    assert res.row_count == 2
    assert "full" in [d.path for d in res.decisions]
    assert "Query('sales'" in repr(q)
    assert "QueryResult" in repr(res)


def test_database_analyze_populates_catalog(sales_db):
    db = sales_db
    assert db.catalog.has_table("sales")
    # Estimates flow from the analyzed histogram: a range estimate within
    # 2x of truth (the uniform data makes the histogram accurate).
    res = db.execute(db.query("sales")
                     .where(Comparison("s_amount", CompareOp.LT, 500)))
    est = res.decisions[0].estimated_cardinality
    assert 0.5 < est / max(1, res.row_count) < 2.0
