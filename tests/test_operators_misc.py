"""Filter, Project, MapProject, Rename, Limit, Materialize, Sort."""

import pytest

from repro.errors import PlanningError, StorageError
from repro.exec.expressions import Comparison, CompareOp
from repro.exec.misc import Filter, Limit, MapProject, Materialize, Project, Rename
from repro.exec.scans import FullTableScan
from repro.exec.sort import Sort
from repro.exec.stats import measure
from repro.exec.iterator import explain
from repro.storage.types import Column, ColumnType, Schema


@pytest.fixture()
def base(db):
    table = db.load_table(
        "t", Schema.of_ints(["a", "b"]),
        [(i, (7 * i) % 10) for i in range(100)],
    )
    return db, FullTableScan(table)


def test_filter(base):
    db, scan = base
    rows = measure(db, Filter(scan, Comparison("b", CompareOp.EQ, 3))).rows
    assert rows and all(r[1] == 3 for r in rows)


def test_project_subset_and_schema(base):
    db, scan = base
    proj = Project(scan, ["b"])
    assert proj.schema.column_names == ("b",)
    rows = measure(db, proj).rows
    assert all(len(r) == 1 for r in rows)


def test_project_reorders(base):
    db, scan = base
    proj = Project(scan, ["b", "a"])
    first = measure(db, proj).rows[0]
    assert first == ((7 * 0) % 10, 0)


def test_project_requires_columns(base):
    _db, scan = base
    with pytest.raises(PlanningError):
        Project(scan, [])
    with pytest.raises(StorageError):
        Project(scan, ["zz"])


def test_map_project(base):
    db, scan = base
    out = Schema([Column("total", ColumnType.INT)])
    mp = MapProject(scan, out, lambda r: (r[0] + r[1],))
    rows = measure(db, mp).rows
    assert rows[3] == (3 + (21 % 10),)


def test_rename(base):
    db, scan = base
    renamed = Rename(scan, {"a": "x"})
    assert renamed.schema.column_names == ("x", "b")
    assert measure(db, renamed).rows[0] == (0, 0)


def test_limit(base):
    db, scan = base
    assert len(measure(db, Limit(scan, 7)).rows) == 7
    assert measure(db, Limit(scan, 0)).rows == []
    with pytest.raises(PlanningError):
        Limit(scan, -1)


def test_limit_larger_than_input(base):
    db, scan = base
    assert len(measure(db, Limit(scan, 1000)).rows) == 100


def test_materialize_replays_without_io(base):
    db, scan = base
    mat = Materialize(scan)
    ctx = db.cold_run()
    first = list(mat.rows(ctx))
    io_after_first = db.clock.io_ms
    second = list(mat.rows(ctx))
    assert first == second
    assert db.clock.io_ms == io_after_first  # replay is I/O-free
    mat.invalidate()
    third = list(mat.rows(ctx))
    assert third == first


def test_sort_single_key(base):
    db, scan = base
    rows = measure(db, Sort(scan, ["b"])).rows
    assert [r[1] for r in rows] == sorted(r[1] for r in rows)


def test_sort_descending(base):
    db, scan = base
    rows = measure(db, Sort(scan, [("b", False)])).rows
    values = [r[1] for r in rows]
    assert values == sorted(values, reverse=True)


def test_sort_multi_key_stable(base):
    db, scan = base
    rows = measure(db, Sort(scan, [("b", True), ("a", False)])).rows
    for r1, r2 in zip(rows, rows[1:], strict=False):
        assert (r1[1], -r1[0]) <= (r2[1], -r2[0])


def test_sort_requires_keys(base):
    _db, scan = base
    with pytest.raises(PlanningError):
        Sort(scan, [])


def test_sort_spills_when_exceeding_work_mem():
    from repro.config import EngineConfig
    from repro.database import Database
    db2 = Database(config=EngineConfig(work_mem_pages=1))
    table = db2.load_table("t", Schema.of_ints(["a"]),
                           [(i,) for i in range(5_000)])
    result = measure(db2, Sort(FullTableScan(table), ["a"]))
    data_pages = table.num_pages
    # Spill charges 2x data pages of sequential I/O beyond the scan.
    assert result.disk.pages_read > data_pages


def test_explain_renders_tree(base):
    _db, scan = base
    plan = Limit(Sort(Filter(scan, Comparison("b", CompareOp.EQ, 1)),
                      ["a"]), 5)
    text = explain(plan)
    assert "Limit(5)" in text
    assert "Sort(a)" in text
    assert "FullTableScan(t)" in text
