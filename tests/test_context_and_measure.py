"""ExecutionContext charging and the measure() harness."""

import pytest

from repro.exec.scans import FullTableScan
from repro.exec.stats import count_rows, measure
from repro.storage.types import Schema


@pytest.fixture()
def ctx_db(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i,) for i in range(1_000)])
    return db, table, db.context()


def test_cpu_charges_accumulate(ctx_db):
    db, _table, ctx = ctx_db
    cpu = db.config.cpu
    charges = [
        (ctx.charge_inspect, cpu.tuple_inspect),
        (ctx.charge_emit, cpu.tuple_emit),
        (ctx.charge_compare, cpu.compare),
        (ctx.charge_hash, cpu.hash_op),
        (ctx.charge_cache_probe, cpu.cache_probe),
        (ctx.charge_cache_insert, cpu.cache_insert),
        (ctx.charge_index_entry, cpu.index_entry),
    ]
    expected = 0.0
    for fn, unit in charges:
        fn()
        expected += unit
        fn(3)
        expected += 3 * unit
    assert db.clock.cpu_ms == pytest.approx(expected)
    assert db.clock.io_ms == 0.0


def test_page_access_charges_io(ctx_db):
    db, table, ctx = ctx_db
    ctx.get_page(table.heap, 0)
    assert db.clock.io_ms > 0
    io_before = db.clock.io_ms
    ctx.get_run(table.heap, 1, 2)
    assert db.clock.io_ms > io_before


def test_measure_cold_resets_between_runs(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i,) for i in range(5_000)])
    first = measure(db, FullTableScan(table))
    second = measure(db, FullTableScan(table))
    # Cold runs are reproducible: identical accounting both times.
    assert first.total_ms == pytest.approx(second.total_ms)
    assert first.disk.requests == second.disk.requests
    assert first.buffer_misses == second.buffer_misses


def test_measure_warm_run_is_cheaper(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i,) for i in range(500)])
    cold = measure(db, FullTableScan(table), cold=True)
    warm = measure(db, FullTableScan(table), cold=False)
    assert warm.io_ms < cold.io_ms  # pages still buffered


def test_measure_keep_rows_false(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i,) for i in range(100)])
    result = measure(db, FullTableScan(table), keep_rows=False)
    assert result.rows == []
    assert result.row_count == 100


def test_run_result_reprs_and_units(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i,) for i in range(100)])
    result = measure(db, FullTableScan(table))
    assert result.total_seconds == pytest.approx(result.total_ms / 1000)
    assert result.read_gb == pytest.approx(result.disk.bytes_read / 1e9)
    assert "RunResult" in repr(result)


def test_count_rows():
    assert count_rows(iter([1, 2, 3])) == 3
    assert count_rows(iter([])) == 0
