"""Corroborating the cost model against execution (tech report §).

The CPU-extended predictions must land within a small factor of the
measured execution across paths and selectivities — the same validation
the paper's technical report performs for its detailed model.
"""

import pytest

from repro.costmodel import CostParams
from repro.costmodel.calibration import predict_ms
from repro.exec.stats import measure
from repro.experiments.common import access_path_plan


@pytest.mark.parametrize("path,selectivities", [
    ("full", (0.001, 0.2, 1.0)),
    ("index", (0.0005, 0.01)),
    ("smooth", (0.2, 1.0)),
])
def test_predictions_track_measurements(micro_setup, path, selectivities):
    db, table = micro_setup
    for sel in selectivities:
        params = CostParams.from_table(
            table, db.config, db.profile, "c2", selectivity=sel
        )
        predicted = predict_ms(path, params, db.config,
                               db.profile.ms_per_unit)
        plan = access_path_plan(path, table, sel)
        measured = measure(db, plan, keep_rows=False).total_ms
        # Within a factor of 3 across four orders of magnitude of cost:
        # buffering and morphing dynamics are not in the analytic model.
        assert predicted == pytest.approx(measured, rel=2.0), (
            f"{path}@{sel}: predicted {predicted:.2f}ms, "
            f"measured {measured:.2f}ms"
        )


def test_full_scan_prediction_is_tight(micro_setup):
    """The full scan has no adaptive dynamics: prediction within 25%."""
    db, table = micro_setup
    params = CostParams.from_table(table, db.config, db.profile, "c2",
                                   selectivity=1.0)
    predicted = predict_ms("full", params, db.config,
                           db.profile.ms_per_unit)
    measured = measure(db, access_path_plan("full", table, 1.0),
                       keep_rows=False).total_ms
    assert predicted == pytest.approx(measured, rel=0.25)


def test_prediction_order_matches_execution_order(micro_setup):
    """At 100% selectivity the model must rank paths like execution:
    full < smooth << index."""
    db, table = micro_setup
    params = CostParams.from_table(table, db.config, db.profile, "c2",
                                   selectivity=1.0)
    ms = {p: predict_ms(p, params, db.config, db.profile.ms_per_unit)
          for p in ("full", "index", "smooth")}
    assert ms["full"] < ms["smooth"] < ms["index"]


def test_unknown_path_rejected(micro_setup):
    db, table = micro_setup
    params = CostParams.from_table(table, db.config, db.profile, "c2")
    with pytest.raises(KeyError):
        predict_ms("teleport", params, db.config, db.profile.ms_per_unit)
