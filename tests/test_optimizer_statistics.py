"""Histograms, the statistics catalog, and staleness injection."""

import pytest

from repro.errors import StatisticsError
from repro.optimizer.statistics import ColumnStats, Histogram, StatisticsCatalog
from repro.storage.types import Schema


@pytest.fixture()
def analyzed(db):
    table = db.load_table(
        "t", Schema.of_ints(["a", "b"]),
        [(i, i % 100) for i in range(10_000)],
    )
    catalog = StatisticsCatalog()
    catalog.analyze(table)
    return db, table, catalog


def test_histogram_uniform_range_fraction():
    hist = Histogram(lo=0.0, hi=100.0, counts=[10] * 100)
    assert hist.range_fraction(0, 50) == pytest.approx(0.5, abs=0.02)
    assert hist.range_fraction(25, 75) == pytest.approx(0.5, abs=0.02)
    assert hist.range_fraction(None, None) == pytest.approx(1.0)
    assert hist.range_fraction(200, 300) == 0.0
    assert hist.range_fraction(-50, -10) == 0.0


def test_histogram_empty_and_degenerate():
    assert Histogram(0.0, 1.0, []).range_fraction(0, 1) == 0.0
    point = Histogram(5.0, 5.0, [10])
    assert point.range_fraction(0, 10) == 1.0


def test_histogram_skew_detected():
    counts = [1000] + [1] * 99
    hist = Histogram(lo=0.0, hi=100.0, counts=counts)
    assert hist.range_fraction(0, 1) > 0.8
    assert hist.range_fraction(50, 100) < 0.1


def test_analyze_collects_all_columns(analyzed):
    _db, table, catalog = analyzed
    stats = catalog.table_stats("t")
    assert stats.row_count == 10_000
    assert set(stats.columns) == {"a", "b"}
    b = stats.columns["b"]
    assert b.min_value == 0 and b.max_value == 99
    assert b.ndv == 100
    assert b.equality_fraction() == pytest.approx(0.01)


def test_analyze_specific_columns(db):
    table = db.load_table("t", Schema.of_ints(["a", "b"]), [(1, 2)])
    catalog = StatisticsCatalog()
    catalog.analyze(table, columns=["b"])
    assert catalog.column_stats("t", "a") is None
    assert catalog.column_stats("t", "b") is not None


def test_unknown_table_raises(analyzed):
    *_rest, catalog = analyzed
    with pytest.raises(StatisticsError):
        catalog.table_stats("missing")
    assert catalog.column_stats("missing", "a") is None


def test_sampling_approximates(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          [(i % 50,) for i in range(20_000)])
    catalog = StatisticsCatalog(seed=3)
    stats = catalog.analyze(table, sample_rate=0.1)
    hist = stats.columns["a"].histogram
    assert hist.range_fraction(0, 25) == pytest.approx(0.5, abs=0.05)


def test_sample_rate_validation(analyzed):
    db, table, catalog = analyzed
    with pytest.raises(StatisticsError):
        catalog.analyze(table, sample_rate=0.0)
    with pytest.raises(StatisticsError):
        catalog.analyze(table, prefix_fraction=1.5)


def test_prefix_analysis_misses_recent_values(db):
    # Chronological load: the second half carries values 100..199.
    rows = [(i,) for i in range(100)] + [(100 + i,) for i in range(100)]
    table = db.load_table("t", Schema.of_ints(["a"]), rows)
    catalog = StatisticsCatalog()
    stats = catalog.analyze(table, prefix_fraction=0.5)
    assert stats.row_count == 100
    hist = stats.columns["a"].histogram
    assert hist.hi <= 99
    assert hist.range_fraction(150, 200) == 0.0  # invisible future


def test_scale_row_count(analyzed):
    _db, _table, catalog = analyzed
    catalog.scale_row_count("t", 0.1)
    assert catalog.table_stats("t").row_count == 1_000


def test_override_and_forget(analyzed):
    _db, _table, catalog = analyzed
    catalog.override_column("t", "b", ColumnStats(
        column="b", row_count=10, min_value=0, max_value=1, ndv=2))
    assert catalog.column_stats("t", "b").ndv == 2
    catalog.forget("t")
    assert not catalog.has_table("t")
