"""Direct tests of the costing adapters the planner and advisor share."""

import pytest

from repro.costmodel.params import CostParams
from repro.database import Database
from repro.optimizer import costing
from repro.storage.disk import DiskProfile
from repro.storage.types import Schema


@pytest.fixture()
def costed_table():
    db = Database()
    table = db.load_table(
        "t", Schema.of_ints(["a", "b"]),
        ((i, i % 100) for i in range(50_000)),
    )
    db.create_index("t", "b")
    return db, table


def test_candidate_paths_full_only_without_index(costed_table):
    db, table = costed_table
    paths = costing.candidate_paths(
        table, db.config, db.profile, None, selectivity=0.5
    )
    assert [p.path for p in paths] == ["full"]


def test_candidate_paths_with_index(costed_table):
    db, table = costed_table
    paths = costing.candidate_paths(
        table, db.config, db.profile, "b", selectivity=0.01
    )
    assert {p.path for p in paths} == {"full", "index", "sort"}


def test_candidate_paths_assume_index(costed_table):
    db, table = costed_table
    paths = costing.candidate_paths(
        table, db.config, db.profile, "a", selectivity=0.01,
        assume_index=True,
    )
    assert {p.path for p in paths} >= {"index", "sort"}


def test_candidate_paths_smooth_flag(costed_table):
    db, table = costed_table
    paths = costing.candidate_paths(
        table, db.config, db.profile, "b", selectivity=0.01,
        enable_smooth=True,
    )
    assert "smooth" in {p.path for p in paths}


def test_full_scan_cost_independent_of_selectivity(costed_table):
    db, table = costed_table
    lo = costing.candidate_paths(table, db.config, db.profile, "b", 0.001)
    hi = costing.candidate_paths(table, db.config, db.profile, "b", 0.9)
    full_lo = next(p.cost for p in lo if p.path == "full")
    full_hi = next(p.cost for p in hi if p.path == "full")
    assert full_lo == full_hi


def test_order_requirement_penalizes_unordered_paths(costed_table):
    db, table = costed_table
    plain = costing.candidate_paths(table, db.config, db.profile, "b", 0.3)
    ordered = costing.candidate_paths(table, db.config, db.profile, "b",
                                      0.3, require_order=True)
    def cost(paths, name):
        return next(p.cost for p in paths if p.path == name)

    assert cost(ordered, "full") > cost(plain, "full")
    assert cost(ordered, "sort") > cost(plain, "sort")
    assert cost(ordered, "index") == cost(plain, "index")  # already ordered


def test_cheapest_path(costed_table):
    db, table = costed_table
    paths = costing.candidate_paths(table, db.config, db.profile, "b",
                                    0.9)
    assert costing.cheapest_path(paths).path == "full"
    paths = costing.candidate_paths(table, db.config, db.profile, "b",
                                    0.00001)
    assert costing.cheapest_path(paths).path in ("index", "sort")


def test_sort_cpu_cost_scaling():
    profile = DiskProfile.hdd()
    small = costing.sort_cpu_cost(1_000, profile, 1e-4)
    big = costing.sort_cpu_cost(100_000, profile, 1e-4)
    assert big > 100 * small  # superlinear (n log n)
    assert costing.sort_cpu_cost(1, profile, 1e-4) == 0.0


def test_inlj_cost_linear_in_outer():
    inner = CostParams(tuple_size=100, num_tuples=100_000)
    assert costing.inlj_cost(2_000, inner) == \
        pytest.approx(2 * costing.inlj_cost(1_000, inner))
    assert costing.inlj_cost(1_000, inner, matches_per_key=3.0) > \
        costing.inlj_cost(1_000, inner, matches_per_key=1.0)


def test_hash_join_cost_counts_both_sides():
    profile = DiskProfile.hdd()
    base = costing.hash_join_cost(1_000, 1_000, profile, 1.5e-4)
    bigger = costing.hash_join_cost(2_000, 1_000, profile, 1.5e-4)
    assert bigger > base


def test_index_size_estimate(costed_table):
    db, table = costed_table
    size = costing.index_size_bytes(table, db.config, "b")
    # 50K entries x (ceil(4 x 1.2) + 8) bytes = 50K x 13.
    assert size == 50_000 * 13


def test_params_for_roundtrip(costed_table):
    db, table = costed_table
    p = costing.params_for(table, db.config, db.profile, "b", 0.25)
    assert p.num_tuples == table.row_count
    assert p.selectivity == 0.25
    assert p.rand_cost == db.profile.rand_cost
