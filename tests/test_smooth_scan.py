"""SmoothScan: correctness under every configuration, plus its internals.

The correctness contract of the whole paper: Smooth Scan must return
exactly the tuples the query qualifies — no duplicates, no losses — under
any policy, trigger, mode cap or ordering requirement, at any selectivity.
"""

import pytest

from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    SelectivityIncreasePolicy,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import (
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
)
from repro.errors import PlanningError
from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan
from repro.exec.stats import measure

ALL_POLICIES = [GreedyPolicy(), SelectivityIncreasePolicy(), ElasticPolicy()]


def reference_rows(db, table, lo, hi):
    return sorted(measure(db, FullTableScan(table, Between("c2", lo, hi))).rows)


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("hi", [0, 5, 100, 500, 1000])
def test_results_match_full_scan(small_table, policy, hi):
    db, table = small_table
    expected = reference_rows(db, table, 0, hi)
    scan = SmoothScan(table, "c2", KeyRange(0, hi), policy=policy)
    assert sorted(measure(db, scan).rows) == expected


@pytest.mark.parametrize("hi", [5, 300, 1000])
def test_ordered_results_match_and_are_sorted(small_table, hi):
    db, table = small_table
    expected = reference_rows(db, table, 0, hi)
    scan = SmoothScan(table, "c2", KeyRange(0, hi), ordered=True)
    rows = measure(db, scan).rows
    assert sorted(rows) == expected
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)


@pytest.mark.parametrize("trigger_factory", [
    lambda: OptimizerDrivenTrigger(10),
    lambda: OptimizerDrivenTrigger(0),
    lambda: SLADrivenTrigger(25),
], ids=["optimizer10", "optimizer0", "sla25"])
@pytest.mark.parametrize("ordered", [False, True])
def test_non_eager_triggers_no_duplicates(small_table, trigger_factory,
                                          ordered):
    db, table = small_table
    expected = reference_rows(db, table, 0, 400)
    scan = SmoothScan(table, "c2", KeyRange(0, 400),
                      trigger=trigger_factory(), ordered=ordered)
    rows = measure(db, scan).rows
    assert len(rows) == len(expected)
    assert sorted(rows) == expected


def test_mode1_cap_matches_results(small_table):
    db, table = small_table
    expected = reference_rows(db, table, 0, 800)
    scan = SmoothScan(table, "c2", KeyRange(0, 800), max_mode=1)
    assert sorted(measure(db, scan).rows) == expected
    assert scan.last_stats.max_region_used == 1


def test_invalid_max_mode(small_table):
    _db, table = small_table
    with pytest.raises(PlanningError):
        SmoothScan(table, "c2", max_mode=3)


def test_residual_predicate(small_table):
    db, table = small_table
    residual = Between("c3", 0, 3)
    scan = SmoothScan(table, "c2", KeyRange(0, 600), residual=residual)
    rows = measure(db, scan).rows
    assert rows and all(0 <= r[2] < 3 and 0 <= r[1] < 600 for r in rows)
    full = measure(
        db, FullTableScan(table, Between("c2", 0, 600) & residual)
    ).rows
    assert sorted(rows) == sorted(full)


def test_no_heap_page_fetched_twice(small_table):
    """The Page ID cache invariant: at most #P heap page fetches."""
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000))
    result = measure(db, scan)
    index_pages = table.index_on("c2").num_pages
    assert result.disk.pages_read <= table.num_pages + index_pages
    assert scan.last_stats.pages_fetched <= table.num_pages


def test_worst_case_bounded_by_page_count(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000))
    measure(db, scan)
    stats = scan.last_stats
    assert stats.pages_fetched == table.num_pages  # 100% selectivity
    assert stats.pages_with_results == table.num_pages


def test_region_growth_on_dense_data(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000))
    measure(db, scan)
    assert scan.last_stats.max_region_used > 1
    assert scan.last_stats.region_trace  # trace recorded


def test_region_capped_by_config(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000), max_region_pages=4)
    measure(db, scan)
    assert scan.last_stats.max_region_used <= 4


def test_eager_needs_no_tuple_cache(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 100))
    measure(db, scan)
    assert scan.last_stats.tuple_cache_bytes == 0
    assert scan.last_stats.morphed_at is None


def test_optimizer_trigger_records_morph_point(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 500),
                      trigger=OptimizerDrivenTrigger(20))
    measure(db, scan)
    stats = scan.last_stats
    assert stats.morphed_at == 21
    assert stats.mode0_tuples == 21
    assert stats.tuple_cache_bytes > 0


def test_trigger_never_fires_below_estimate(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 2),
                      trigger=OptimizerDrivenTrigger(10_000))
    rows = measure(db, scan).rows
    assert scan.last_stats.morphed_at is None
    assert sorted(rows) == reference_rows(db, table, 0, 2)


def test_ordered_scan_uses_result_cache(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 500), ordered=True)
    measure(db, scan)
    cache = scan.last_stats.result_cache
    assert cache is not None
    assert cache.inserts > 0
    assert cache.hits > 0


def test_unordered_scan_has_no_result_cache(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 500))
    measure(db, scan)
    assert scan.last_stats.result_cache is None


def test_result_cache_spill_path(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000), ordered=True,
                      result_cache_memory_limit=2_000)
    rows = measure(db, scan).rows
    assert sorted(rows) == reference_rows(db, table, 0, 1000)
    assert scan.last_stats.result_cache.spills > 0
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)  # order preserved despite spilling


def test_morphing_accuracy_reaches_one_on_dense(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 1000))
    measure(db, scan)
    assert scan.last_stats.morphing_accuracy == pytest.approx(1.0)


def test_stats_summary_keys(small_table):
    db, table = small_table
    scan = SmoothScan(table, "c2", KeyRange(0, 50))
    measure(db, scan)
    summary = scan.last_stats.summary()
    for key in ("probes", "produced", "pages_fetched",
                "morphing_accuracy", "max_region_used"):
        assert key in summary


def test_faster_than_index_scan_at_high_selectivity(small_table):
    from repro.exec.scans import IndexScan
    db, table = small_table
    smooth = measure(db, SmoothScan(table, "c2", KeyRange(0, 1000)))
    index = measure(db, IndexScan(table, "c2", KeyRange(0, 1000)))
    assert smooth.total_ms < index.total_ms


def test_close_to_full_scan_at_full_selectivity(micro_setup):
    db, table = micro_setup
    smooth = measure(db, SmoothScan(table, "c2", KeyRange(0, 100_000)))
    full = measure(db, FullTableScan(table, Between("c2", 0, 100_000)))
    assert smooth.total_ms < full.total_ms * 2.0  # paper: within ~20%


def test_empty_table(db):
    from repro.storage.types import Schema
    table = db.load_table("e", Schema.of_ints(["a", "b"]), [])
    db.create_index("e", "b")
    scan = SmoothScan(table, "b", KeyRange(0, 10))
    assert measure(db, scan).rows == []


def test_all_duplicate_keys(db):
    from repro.storage.types import Schema
    table = db.load_table("dup", Schema.of_ints(["a", "b"]),
                          [(i, 7) for i in range(2_000)])
    db.create_index("dup", "b")
    for ordered in (False, True):
        scan = SmoothScan(table, "b", KeyRange.equal(7), ordered=ordered)
        rows = measure(db, scan).rows
        assert len(rows) == 2_000
        assert len(set(rows)) == 2_000
