"""Workload generators: micro, skew, and TPC-H-lite."""

import pytest

from repro.database import Database
from repro.errors import WorkloadError
from repro.exec.scans import FullTableScan
from repro.exec.stats import measure
from repro.workloads.micro import (
    build_micro_table,
    selectivity_predicate,
    selectivity_range,
)
from repro.workloads.skew import build_skew_table, skew_query_range
from repro.workloads.tpch import generate_tpch, scaled_rows
from repro.workloads.tpch.schema import CURRENTDATE, date


def test_micro_geometry(micro_setup):
    _db, table = micro_setup
    assert table.heap.tuples_per_page == 120  # the paper's number
    assert table.row_count == 12_000
    assert table.num_pages == 100
    assert table.has_index("c2") and table.has_index("c1")


def test_micro_c1_is_order_number(micro_setup):
    _db, table = micro_setup
    for i, (_tid, row) in zip(range(50), table.heap.iter_rows(), strict=False):
        assert row[0] == i


def test_micro_rejects_bad_args(db):
    with pytest.raises(WorkloadError):
        build_micro_table(db, 0)


def test_selectivity_range_hits_target(micro_setup):
    db, table = micro_setup
    for sel in (0.01, 0.1, 0.5):
        pred = selectivity_predicate(sel)
        rows = measure(db, FullTableScan(table, pred)).rows
        assert len(rows) / table.row_count == pytest.approx(sel, rel=0.25)


def test_selectivity_extremes(micro_setup):
    db, table = micro_setup
    assert measure(
        db, FullTableScan(table, selectivity_predicate(0.0))
    ).rows == []
    full = measure(db, FullTableScan(table, selectivity_predicate(1.0)))
    assert full.row_count == table.row_count
    with pytest.raises(WorkloadError):
        selectivity_range(1.5)


def test_skew_table_layout(db):
    table = build_skew_table(db, 60_000, dense_fraction=0.01,
                             sparse_fraction=1e-3)
    rng = skew_query_range()
    zeros = [i for i, (_t, row) in enumerate(table.heap.iter_rows())
             if row[1] == 0]
    head = int(60_000 * 0.01)
    assert zeros[:head] == list(range(head))      # dense head
    tail_zeros = [z for z in zeros if z >= head]  # sparse tail exists
    assert 20 < len(tail_zeros) < 200
    assert rng.contains(0) and not rng.contains(1)


def test_skew_rejects_bad_fractions(db):
    with pytest.raises(WorkloadError):
        build_skew_table(db, 100, dense_fraction=1.5)
    with pytest.raises(WorkloadError):
        build_skew_table(db, 0)


@pytest.fixture(scope="module")
def tpch():
    db = Database()
    tables = generate_tpch(db, scale_factor=0.002, seed=1)
    return db, tables


def test_tpch_row_counts(tpch):
    _db, tables = tpch
    assert tables.region.row_count == 5
    assert tables.nation.row_count == 25
    assert tables.orders.row_count == scaled_rows("orders", 0.002)
    assert tables.partsupp.row_count == 4 * tables.part.row_count
    assert tables.lineitem.row_count >= tables.orders.row_count


def test_tpch_primary_keys_unique(tpch):
    _db, tables = tpch
    keys = [row[0] for _t, row in tables.orders.heap.iter_rows()]
    assert len(keys) == len(set(keys))


def test_tpch_referential_integrity(tpch):
    _db, tables = tpch
    order_keys = {row[0] for _t, row in tables.orders.heap.iter_rows()}
    part_keys = {row[0] for _t, row in tables.part.heap.iter_rows()}
    for _t, line in tables.lineitem.heap.iter_rows():
        assert line[0] in order_keys
        assert line[1] in part_keys


def test_tpch_date_correlations(tpch):
    """The spec's correlations that break AVI (ship/commit/receipt)."""
    _db, tables = tpch
    s = tables.lineitem.schema
    sd, cd, rd = (s.index_of("l_shipdate"), s.index_of("l_commitdate"),
                  s.index_of("l_receiptdate"))
    order_dates = {row[0]: row[4]
                   for _t, row in tables.orders.heap.iter_rows()}
    for _t, line in tables.lineitem.heap.iter_rows():
        od = order_dates[line[0]]
        assert od < line[sd] <= od + 121
        assert od + 30 <= line[cd] <= od + 90
        assert line[sd] < line[rd] <= line[sd] + 30


def test_tpch_returnflag_correlated_with_receipt(tpch):
    _db, tables = tpch
    s = tables.lineitem.schema
    rd, rf = s.index_of("l_receiptdate"), s.index_of("l_returnflag")
    for _t, line in tables.lineitem.heap.iter_rows():
        if line[rd] > CURRENTDATE:
            assert line[rf] == "N"
        else:
            assert line[rf] in ("R", "A")


def test_tpch_stale_batch_partitioning():
    db = Database()
    cutoff = date(1993, 9, 2)
    tables = generate_tpch(db, scale_factor=0.002, seed=2,
                           stale_batch_cutoff=cutoff)
    n1 = tables.extras["orders_stale_rows"]
    dates = [row[4] for _t, row in tables.orders.heap.iter_rows()]
    assert all(d < cutoff for d in dates[:n1])
    assert all(d >= cutoff for d in dates[n1:])
    li_n1 = tables.extras["lineitem_stale_rows"]
    assert 0 < li_n1 < tables.lineitem.row_count


def test_tpch_rejects_bad_scale():
    with pytest.raises(WorkloadError):
        generate_tpch(Database(), scale_factor=0)


def test_tpch_pk_indexes_created(tpch):
    _db, tables = tpch
    assert tables.orders.has_index("o_orderkey")
    assert tables.lineitem.has_index("l_orderkey")
    assert tables.part.has_index("p_partkey")
