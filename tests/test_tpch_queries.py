"""TPC-H query integration: identical results under every configuration.

The executable correctness contract behind Figures 1 and 4: whatever
access paths and join methods the builder picks — original, tuned (with
whatever the advisor created), or all-Smooth-Scan — every query must
return exactly the same rows.
"""

import pytest

from repro.database import Database
from repro.exec.stats import measure
from repro.optimizer.statistics import StatisticsCatalog
from repro.workloads.tpch import (
    FIGURE1_QUERIES,
    TpchPlanBuilder,
    build_query,
    generate_tpch,
)
from repro.workloads.tpch.schema import date


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    tables = generate_tpch(db, scale_factor=0.002, seed=9,
                           stale_batch_cutoff=date(1993, 9, 2))
    catalog = StatisticsCatalog()
    for table in tables.all_tables():
        catalog.analyze(table)
    # Tuning indexes so tuned/smooth modes exercise index paths.
    for table_name, column in (("lineitem", "l_shipdate"),
                               ("lineitem", "l_receiptdate"),
                               ("orders", "o_orderdate"),
                               ("lineitem", "l_partkey")):
        db.create_index(table_name, column)
    return db, catalog


def _canon(rows):
    """Canonicalize rows: round floats so emission order does not leak
    into float-sum comparisons (sums are not associative)."""
    def canon_value(v):
        if isinstance(v, float):
            return round(v, 4)
        return v

    return sorted(tuple(canon_value(v) for v in row) for row in rows)


@pytest.mark.parametrize("name", sorted(FIGURE1_QUERIES))
def test_query_results_identical_across_modes(tpch_db, name):
    db, catalog = tpch_db
    reference = None
    for mode in ("original", "tuned", "smooth"):
        builder = TpchPlanBuilder(db, catalog, mode)
        plan = build_query(name, builder)
        rows = _canon(measure(db, plan).rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"{name} differs under {mode}"


def test_q1_aggregates_are_sensible(tpch_db):
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    rows = measure(db, build_query("Q1", builder)).rows
    assert 1 <= len(rows) <= 4  # (returnflag, linestatus) combos
    for row in rows:
        flag, status, sum_qty, sum_base, *_rest, count = row
        assert flag in ("R", "A", "N") and status in ("F", "O")
        assert sum_qty > 0 and sum_base > 0 and count > 0


def test_q6_is_scalar(tpch_db):
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    rows = measure(db, build_query("Q6", builder)).rows
    assert len(rows) == 1
    assert rows[0][0] > 0


def test_q14_is_percentage(tpch_db):
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    rows = measure(db, build_query("Q14", builder)).rows
    assert len(rows) == 1
    assert 0.0 <= rows[0][0] <= 100.0


def test_q13_distribution_covers_every_customer(tpch_db):
    """Left-join semantics: the distribution must count ALL customers,
    including any with zero orders."""
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    rows = measure(db, build_query("Q13", builder)).rows
    total_customers = sum(r[1] for r in rows)
    assert total_customers == db.table("customer").row_count
    zero_order = {row[0] for _t, row in
                  db.table("customer").heap.iter_rows()}
    ordered = {row[1] for _t, row in db.table("orders").heap.iter_rows()}
    expected_zero = len(zero_order - ordered)
    zero_bucket = next((r[1] for r in rows if r[0] == 0), 0)
    assert zero_bucket == expected_zero


def test_q22_anti_join(tpch_db):
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    rows = measure(db, build_query("Q22", builder)).rows
    for _nation, numcust, totacctbal in rows:
        assert numcust > 0
        assert totacctbal > 0


def test_unknown_query_rejected(tpch_db):
    db, catalog = tpch_db
    from repro.errors import PlanningError
    builder = TpchPlanBuilder(db, catalog, "original")
    with pytest.raises(PlanningError):
        build_query("Q99", builder)


def test_unknown_mode_rejected(tpch_db):
    db, catalog = tpch_db
    from repro.errors import PlanningError
    with pytest.raises(PlanningError):
        TpchPlanBuilder(db, catalog, "turbo")


def test_limit_queries_respect_limits(tpch_db):
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "original")
    assert len(measure(db, build_query("Q3", builder)).rows) <= 10
    assert len(measure(db, build_query("Q10", builder)).rows) <= 20


def test_tuned_mode_uses_some_index_path(tpch_db):
    """With tuning indexes + fresh stats the planner still picks index
    paths for genuinely selective scans (Q14's one-month range)."""
    db, catalog = tpch_db
    builder = TpchPlanBuilder(db, catalog, "tuned")
    plan = build_query("Q14", builder)
    from repro.exec.iterator import explain
    assert "Scan(lineitem" in explain(plan)
