"""The invariant linter: every rule fires on its bad fixture and stays
quiet on its good one; suppressions are honoured and audited."""

from pathlib import Path

from repro.analysis import analyze
from repro.analysis.rules import all_rules

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint(name, select=None):
    return analyze([str(FIXTURES / name)], select=select)


def codes(result):
    return [d.code for d in result.diagnostics]


def test_registry_has_the_six_rules():
    assert [r.code for r in all_rules()] == [
        "RPL101", "RPL102", "RPL103", "RPL104", "RPL105", "RPL106",
    ]
    for rule in all_rules():
        assert rule.name
        assert len(rule.rationale) > 40  # --explain has something to say


# -- RPL101 -------------------------------------------------------------------


def test_rpl101_flags_wallclock_and_entropy():
    result = lint("rpl101_bad.py", select={"RPL101"})
    assert not result.clean
    assert set(codes(result)) == {"RPL101"}
    messages = " ".join(d.message for d in result.diagnostics)
    assert "time.time" in messages
    assert "perf_counter" in messages
    assert "datetime.now" in messages
    assert "uuid.uuid4" in messages
    assert "without a seed" in messages
    assert "random.random" in messages
    assert len(result.diagnostics) == 7


def test_rpl101_quiet_on_seeded_randomness():
    assert lint("rpl101_good.py", select={"RPL101"}).clean


# -- RPL102 -------------------------------------------------------------------


def test_rpl102_flags_order_sensitive_set_consumption():
    result = lint("rpl102_bad.py", select={"RPL102"})
    assert codes(result) == ["RPL102"] * 3
    wheres = " ".join(d.message for d in result.diagnostics)
    assert "for loop" in wheres
    assert "list()" in wheres
    assert "str.join()" in wheres


def test_rpl102_quiet_on_sorted_and_folds():
    assert lint("rpl102_good.py", select={"RPL102"}).clean


# -- RPL103 -------------------------------------------------------------------


def test_rpl103_flags_unguarded_and_unclosed_windows():
    result = lint("rpl103_bad.py", select={"RPL103"})
    assert codes(result) == ["RPL103"] * 2
    unguarded, unclosed = result.diagnostics
    assert "not guarded by a finally" in unguarded.message
    assert "never closed" in unclosed.message


def test_rpl103_accepts_both_finally_shapes_and_allows():
    # One trailing allow and one standalone (next-line) allow.
    result = lint("rpl103_good.py", select={"RPL103"})
    assert result.clean
    assert result.suppressions_used == 2


# -- RPL104 -------------------------------------------------------------------


def test_rpl104_flags_charges_in_telemetry_modules():
    result = lint("telemetry/rpl104_bad.py", select={"RPL104"})
    assert codes(result) == ["RPL104"] * 3
    apis = " ".join(d.message for d in result.diagnostics)
    for api in ("get_page", "charge_inspect", "charge_cpu"):
        assert api in apis


def test_rpl104_quiet_on_pure_observation():
    assert lint("telemetry/rpl104_good.py", select={"RPL104"}).clean


def test_rpl104_ignores_modules_outside_telemetry():
    # The same charging code outside a telemetry/ dir is legitimate.
    result = lint("rpl103_good.py", select={"RPL104"})
    assert result.clean


# -- RPL105 -------------------------------------------------------------------


def test_rpl105_flags_float_arithmetic_on_counters():
    result = lint("rpl105_bad.py", select={"RPL105"})
    assert codes(result) == ["RPL105"] * 3
    reasons = " ".join(d.message for d in result.diagnostics)
    assert "true division" in reasons
    assert "float() cast" in reasons
    assert "float literal" in reasons


def test_rpl105_quiet_on_integer_arithmetic():
    assert lint("rpl105_good.py", select={"RPL105"}).clean


# -- RPL106 -------------------------------------------------------------------


def test_rpl106_flags_protocol_less_operators_transitively():
    result = lint("rpl106_bad.py", select={"RPL106"})
    assert codes(result) == ["RPL106"] * 2
    names = " ".join(d.message for d in result.diagnostics)
    assert "Silent" in names
    assert "SilentChild" in names


def test_rpl106_accepts_inherited_protocol_and_abstract_bases():
    assert lint("rpl106_good.py", select={"RPL106"}).clean


# -- engine mechanics ---------------------------------------------------------


def test_unused_suppression_is_reported():
    result = lint("suppress_unused.py")
    assert codes(result) == ["RPL100"]
    assert "unused suppression" in result.diagnostics[0].message


def test_used_suppression_counts_and_silences():
    result = lint("suppress_used.py")
    assert result.clean
    assert result.suppressions_used == 1


def test_suppression_for_unselected_rule_is_not_unused():
    # Only RPL105 runs; the RPL101 allow never had a chance to fire.
    result = lint("suppress_unused.py", select={"RPL105"})
    assert result.clean


def test_syntax_error_becomes_rpl000():
    result = lint("rpl000_syntax_error.py")
    assert codes(result) == ["RPL000"]
    assert "syntax error" in result.diagnostics[0].message


def test_diagnostics_sorted_and_renderable():
    result = analyze([
        str(FIXTURES / "rpl101_bad.py"),
        str(FIXTURES / "rpl105_bad.py"),
    ])
    keys = [(d.file, d.line, d.col, d.code) for d in result.diagnostics]
    assert keys == sorted(keys)
    for diag in result.diagnostics:
        rendered = diag.render()
        assert diag.code in rendered
        assert f":{diag.line}:" in rendered


def test_repo_tree_is_clean():
    """The gate this PR establishes: the whole tree lints clean."""
    root = Path(__file__).resolve().parent.parent
    targets = [str(root / d) for d in
               ("src", "tests", "benchmarks", "examples")
               if (root / d).is_dir()]
    result = analyze(targets)
    assert result.clean, "\n".join(d.render() for d in result.diagnostics)
