"""Shared runtime + per-query ledgers + the cooperative scheduler.

The contracts of the substrate split: interleaved queries report
correct isolated costs (ledgers), summed ledgers reproduce the shared
totals (conservation), cold starts refuse to reset caches under a live
cursor (the documented footgun, now guarded), cold-run reset semantics
live in one place (EngineRuntime.cold_start), and the deterministic
scheduler interleaves N clients with round-robin / weighted policies.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import BufferPressureTrigger, OptimizerDrivenTrigger
from repro.database import Database
from repro.errors import ExecutionError
from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan, IndexScan
from repro.exec.scheduler import CooperativeScheduler, WorkloadClient
from repro.exec.stats import StreamingRun, measure
from repro.runtime import CostLedger
from repro.storage.types import Schema
from repro.workloads.micro import build_micro_table

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@pytest.fixture()
def micro_db():
    db = Database()
    build_micro_table(db, num_tuples=6_000, seed=3)
    db.analyze()
    return db


def _plans(db, n):
    """n different scans over the micro table (mixed access patterns)."""
    table = db.table("micro")
    plans = []
    for i in range(n):
        if i % 2 == 0:
            plans.append(FullTableScan(
                table, Between("c2", 0, 20_000 + 7_000 * i, True, False)))
        else:
            plans.append(IndexScan(
                table, "c2", KeyRange(0, 4_000 + 2_000 * i, True, False)))
    return plans


# -- ledger isolation ---------------------------------------------------------


def test_untouched_run_ledger_stays_zero(micro_db):
    micro_db.cold_run()
    a = StreamingRun(micro_db, _plans(micro_db, 1)[0], cold=False)
    b = StreamingRun(micro_db, _plans(micro_db, 2)[1], cold=False)
    while a.next_batch() is not None:
        pass
    # b never pulled a batch: none of a's charges leaked into it.
    assert b.result().total_ms == 0.0
    assert b.result().disk.pages_read == 0
    assert a.result().total_ms > 0.0
    b.close()


def test_interleaved_cursors_isolated_and_conserved(micro_db):
    micro_db.runtime.cold_start()
    base = micro_db.runtime.totals()
    assert base.total_ms == 0.0
    conn = micro_db.connect(cold=False)
    c1 = conn.execute("SELECT * FROM micro WHERE c2 < 50000")
    c2 = conn.execute("SELECT * FROM micro WHERE c2 >= 50000")
    # Interleave fetches; both drain fully.
    while True:
        r1 = c1.fetchmany(100)
        r2 = c2.fetchmany(100)
        if not r1 and not r2:
            break
    done1, done2 = c1.result().run, c2.result().run
    assert not done1.extras["partial"] and not done2.extras["partial"]
    assert done1.row_count + done2.row_count == 6_000
    # Conservation: the two ledgers sum to the shared totals.
    summed = CostLedger()
    for run in (done1, done2):
        summed.add(CostLedger(
            io_ms=run.io_ms, cpu_ms=run.cpu_ms, disk=run.disk.snapshot(),
            buffer_hits=run.buffer_hits, buffer_misses=run.buffer_misses,
        ))
    assert summed.matches(micro_db.runtime.totals())


def test_single_query_streaming_identical_to_measure(micro_db):
    plan = _plans(micro_db, 1)[0]
    one_shot = measure(micro_db, plan, cold=True, keep_rows=False)
    run = StreamingRun(micro_db, _plans(micro_db, 1)[0], cold=True)
    while run.next_batch() is not None:
        pass
    streamed = run.result()
    assert streamed.total_ms == one_shot.total_ms
    assert streamed.io_ms == one_shot.io_ms
    assert streamed.cpu_ms == one_shot.cpu_ms
    assert streamed.disk.requests == one_shot.disk.requests
    assert streamed.buffer_misses == one_shot.buffer_misses


@given(order=st.lists(st.integers(min_value=0, max_value=3),
                      min_size=4, max_size=60))
@SETTINGS
def test_ledger_conservation_under_arbitrary_interleaving(order):
    """Property: however N queries interleave, charges are conserved.

    Sum of per-query ledgers (io_ms, cpu_ms, page reads, buffer
    hits/misses) equals the shared runtime totals — no charge lost or
    double-attributed.
    """
    db = Database()
    db.load_table("t", Schema.of_ints(["a", "b"]),
                  [(i, i % 97) for i in range(3_000)])
    db.create_index("t", "b")
    db.runtime.cold_start()
    table = db.table("t")
    runs = [
        StreamingRun(db, FullTableScan(table), cold=False),
        StreamingRun(db, IndexScan(table, "b", KeyRange(0, 50, True, False)),
                     cold=False),
        StreamingRun(db, FullTableScan(
            table, Between("b", 10, 60, True, True)), cold=False),
        StreamingRun(db, IndexScan(table, "b", KeyRange(40, 97, True, False)),
                     cold=False),
    ]
    # Drain in the hypothesis-chosen interleave order, then finish all.
    for pick in order:
        runs[pick].next_batch()
    for run in runs:
        while run.next_batch() is not None:
            pass
    summed = CostLedger()
    for run in runs:
        summed.add(run.ledger)
    totals = db.runtime.totals()
    assert summed.matches(totals)
    # And the integer counters really moved (the property is not vacuous).
    assert totals.disk.pages_read > 0
    assert summed.buffer_hits + summed.buffer_misses > 0


# -- the cold-run footgun, guarded -------------------------------------------


def test_cold_run_while_stream_live_raises(micro_db):
    conn = micro_db.connect(cold=False)
    cursor = conn.execute("SELECT * FROM micro")
    cursor.fetchmany(5)  # live, partially drained
    with pytest.raises(ExecutionError, match="still live"):
        micro_db.cold_run()
    with pytest.raises(ExecutionError, match="still live"):
        micro_db.execute(micro_db.query("micro"), cold=True)
    # Cold *cursor executions* hit the same guard through the session.
    with pytest.raises(ExecutionError, match="still live"):
        micro_db.connect(cold=True).execute("SELECT * FROM micro")
    # Warm execution is fine — that is what concurrency looks like.
    assert micro_db.execute(micro_db.query("micro").limit(3),
                            cold=False).row_count == 3
    cursor.close()
    micro_db.cold_run()  # closed: the guard is released


def test_draining_releases_the_cold_guard(micro_db):
    run = StreamingRun(micro_db, _plans(micro_db, 1)[0], cold=True)
    assert micro_db.runtime.live_streams == (run,)
    while run.next_batch() is not None:
        pass
    assert micro_db.runtime.live_streams == ()
    micro_db.cold_run()


def test_abandoned_cursor_does_not_block_cold_runs(micro_db):
    conn = micro_db.connect(cold=False)
    cursor = conn.execute("SELECT * FROM micro")
    cursor.fetchmany(5)
    del cursor  # dropped undrained, never closed — unreachable
    micro_db.cold_run()  # must not raise


def test_crashed_plan_releases_the_cold_guard(micro_db):
    class Exploding(FullTableScan):
        def batches(self, ctx):
            yield from ()
            raise RuntimeError("boom")

    run = StreamingRun(micro_db, Exploding(micro_db.table("micro")),
                       cold=True)
    with pytest.raises(RuntimeError, match="boom"):
        run.next_batch()
    assert micro_db.runtime.live_streams == ()
    micro_db.cold_run()  # a corpse must not block cold starts


# -- runtime reset semantics --------------------------------------------------


def test_cold_start_owns_all_reset_semantics(micro_db):
    ctx = micro_db.context()
    ctx.get_page(micro_db.table("micro").heap, 0)
    assert micro_db.clock.total_ms > 0
    assert len(micro_db.buffer) > 0
    # SimulatedDisk.reset() clears only the disk's own accounting.
    micro_db.disk.reset()
    assert micro_db.disk.stats.pages_read == 0
    assert micro_db.clock.total_ms > 0  # the clock is not the disk's
    # cold_start resets buffer, disk and clock together.
    micro_db.runtime.cold_start()
    assert micro_db.clock.total_ms == 0
    assert len(micro_db.buffer) == 0
    assert micro_db.buffer.stats.hits == micro_db.buffer.stats.misses == 0


def test_attribution_windows_cannot_nest(micro_db):
    runtime = micro_db.runtime
    # repro: allow[RPL103] -- deliberately left open to assert the
    # nesting/cold-start rejections; closed four lines down
    runtime.begin_attribution(CostLedger())
    with pytest.raises(ExecutionError, match="already open"):
        # repro: allow[RPL103] -- must raise, never opens
        runtime.begin_attribution(CostLedger())
    with pytest.raises(ExecutionError, match="attribution window"):
        runtime.cold_start()
    runtime.end_attribution()
    with pytest.raises(ExecutionError, match="no attribution window"):
        runtime.end_attribution()


# -- the cooperative scheduler ------------------------------------------------


def _schedule(db, statement, params_per_client, weights=None):
    scheduler = CooperativeScheduler(db)
    for i, stream in enumerate(params_per_client):
        weight = weights[i] if weights else 1
        client = WorkloadClient(f"c{i + 1}", weight=weight)
        for hi in stream:
            client.add_query(
                str(hi), lambda s=statement, p=(0, hi): s.execute(p))
        scheduler.add_client(client)
    return scheduler


@pytest.fixture()
def prepared(micro_db):
    conn = micro_db.connect(cold=False)
    return micro_db, conn.prepare(
        "SELECT * FROM micro WHERE c2 >= ? AND c2 < ?")


def test_scheduler_is_deterministic(prepared):
    db, statement = prepared
    streams = [[5_000, 60_000], [90_000], [30_000, 10_000]]
    first = _schedule(db, statement, streams).run(cold=True)
    second = _schedule(db, statement, streams).run(cold=True)
    assert [(r.client, r.label, r.rows, r.start_ms, r.finish_ms)
            for r in first.records] == \
        [(r.client, r.label, r.rows, r.start_ms, r.finish_ms)
         for r in second.records]
    assert first.p99_ms == second.p99_ms
    assert first.total_ledger().matches(second.total_ledger())


def test_scheduler_conserves_ledgers(prepared):
    db, statement = prepared
    report = _schedule(
        db, statement, [[50_000, 2_000], [80_000], [20_000]],
    ).run(cold=True)
    assert report.total_ledger().matches(db.runtime.totals())
    assert len(report.records) == 4
    assert report.throughput_qps > 0


def test_serial_and_contended_same_rows(prepared):
    db, statement = prepared
    streams = [[40_000], [70_000], [15_000]]
    serial = _schedule(db, statement, streams).run(cold=True,
                                                   interleave=False)
    contended = _schedule(db, statement, streams).run(cold=True)
    assert serial.rows == contended.rows
    assert sorted(r.label for r in serial.records) == \
        sorted(r.label for r in contended.records)
    # Serial runs client i to completion before client i+1 starts.
    assert [r.client for r in serial.records] == ["c1", "c2", "c3"]


def test_weighted_client_finishes_first(prepared):
    db, statement = prepared
    # Same query for both clients; the weight-4 client gets 4 batches
    # per round-robin visit and must drain first.
    report = _schedule(db, statement, [[80_000], [80_000]],
                       weights=[1, 4]).run(cold=True)
    finish = {r.client: r.finish_ms for r in report.records}
    assert finish["c2"] < finish["c1"]


def test_scheduler_rejects_explain_and_bad_args(prepared):
    db, statement = prepared
    scheduler = CooperativeScheduler(db)
    conn = db.connect(cold=False)
    scheduler.client("c1").add_query(
        "explain", lambda: conn.execute("EXPLAIN SELECT * FROM micro"))
    with pytest.raises(ExecutionError, match="EXPLAIN"):
        scheduler.run()
    with pytest.raises(ValueError, match="weight"):
        WorkloadClient("w", weight=0)
    with pytest.raises(ValueError, match="quantum"):
        CooperativeScheduler(db, quantum=0)


def test_add_client_rejects_non_positive_weight(prepared):
    """Registration re-validates the weight: a client whose weight was
    mutated to zero after construction would be granted zero-batch
    slices forever — run() would spin without draining its queue."""
    db, _statement = prepared
    scheduler = CooperativeScheduler(db)
    sneaky = WorkloadClient("sneaky", weight=2)
    sneaky.weight = 0
    with pytest.raises(ExecutionError, match="'sneaky'"):
        scheduler.add_client(sneaky)
    assert scheduler.run().records == []  # nothing was admitted
    negative = WorkloadClient("negative")
    negative.weight = -3
    with pytest.raises(ExecutionError, match="-3"):
        scheduler.add_client(negative)


def test_scheduler_latencies_show_contention(prepared):
    db, statement = prepared
    streams = [[80_000], [80_000], [80_000], [80_000]]
    serial = _schedule(db, statement, streams).run(cold=True,
                                                   interleave=False)
    contended = _schedule(db, statement, streams).run(cold=True)
    # Time-sharing one engine: everyone's response time includes the
    # others' interleaved work, so contended mean latency grows.
    assert contended.mean_ms > serial.mean_ms
    # ...but the *last* finisher cannot beat the serial makespan by
    # much and the makespans stay in the same regime (same total work).
    assert contended.makespan_ms == pytest.approx(serial.makespan_ms,
                                                  rel=0.5)


# -- the contention-aware trigger ---------------------------------------------


def test_buffer_pressure_trigger_matches_optimizer_when_pool_empty(micro_db):
    micro_db.runtime.cold_start()
    trigger = BufferPressureTrigger(1_000, micro_db.buffer)
    baseline = OptimizerDrivenTrigger(1_000)
    assert micro_db.buffer.occupancy == 0.0
    for produced in (0, 999, 1_000, 1_001):
        assert trigger.should_morph(produced) == \
            baseline.should_morph(produced)


def test_buffer_pressure_trigger_morphs_earlier_under_pressure(micro_db):
    micro_db.runtime.cold_start()
    trigger = BufferPressureTrigger(1_000, micro_db.buffer,
                                    sensitivity=0.5)
    assert not trigger.should_morph(900)
    # Fill the shared pool: some other query's pages are resident.
    heap = micro_db.table("micro").heap
    ctx = micro_db.context()
    ctx.get_run(heap, 0, heap.num_pages)
    occupancy = micro_db.buffer.occupancy
    assert occupancy > 0.5
    assert trigger.effective_cardinality() == \
        int(1_000 * (1.0 - 0.5 * occupancy))
    assert trigger.should_morph(900)  # the same count now morphs
    with pytest.raises(ValueError):
        BufferPressureTrigger(-1, micro_db.buffer)
    with pytest.raises(ValueError):
        BufferPressureTrigger(10, micro_db.buffer, sensitivity=1.5)


# Pre-pressurizing the pool is a deliberate bare out-of-window read.
@pytest.mark.no_suite_sanitizer
def test_buffer_pressure_trigger_drives_smooth_scan(micro_db):
    # Same plan, same data: a full pool makes the scan morph earlier,
    # which changes its I/O pattern (a genuinely contention-dependent
    # execution), while rows stay identical.
    table = micro_db.table("micro")
    key_range = KeyRange(0, 60_000, True, False)

    def scan():
        return SmoothScan(
            table, "c2", key_range,
            trigger=BufferPressureTrigger(3_000, micro_db.buffer,
                                          sensitivity=1.0),
        )

    cold = measure(micro_db, scan(), cold=True, keep_rows=False)
    # Pre-pressurize the pool, then run warm under pressure.
    micro_db.runtime.cold_start()
    ctx = micro_db.context()
    ctx.get_run(table.heap, 0, micro_db.buffer.capacity_pages)
    pressured = measure(micro_db, scan(), cold=False, keep_rows=False)
    assert pressured.row_count == cold.row_count


# -- ledger algebra -----------------------------------------------------------


def test_cost_ledger_snapshot_add_matches():
    a = CostLedger(io_ms=1.5, cpu_ms=0.5, buffer_hits=3, buffer_misses=1)
    a.disk.pages_read = 7
    b = a.snapshot()
    assert b.matches(a)
    b.add(a)
    assert b.io_ms == 3.0 and b.disk.pages_read == 14
    assert not b.matches(a)
    assert a.total_ms == 2.0
    assert "CostLedger" in repr(a)


# -- the concurrency experiment (reduced scale) -------------------------------


def test_concurrency_experiment_deterministic_and_divergent():
    from repro.experiments.concurrency import run_concurrent_workload

    first = run_concurrent_workload(num_tuples=12_000, num_clients=3)
    second = run_concurrent_workload(num_tuples=12_000, num_clients=3)
    # Fully simulated, fully deterministic: byte-identical reports.
    assert first.report() == second.report()
    assert first.conservation_ok
    # The robustness story survives the reduced scale.
    assert first.p99_divergence > 5.0
    assert first.smooth.degradation <= 3 + 1
    assert "ledger conservation: exact" in first.report()
    assert "divergence under contention" in first.report()


def test_rerunning_a_drained_schedule_raises(prepared):
    db, statement = prepared
    scheduler = _schedule(db, statement, [[10_000]])
    scheduler.run(cold=True)
    with pytest.raises(ExecutionError, match="already drained"):
        scheduler.run(cold=True, interleave=False)
    # A scheduler with no clients at all still returns an empty report.
    empty = CooperativeScheduler(db).run()
    assert empty.records == [] and empty.throughput_qps == 0.0
