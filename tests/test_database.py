"""Database facade: schema ops, cold runs, buffer autosizing."""

import pytest

from repro.config import EngineConfig
from repro.database import Database
from repro.errors import StorageError
from repro.storage.types import Schema


def test_create_and_lookup_table(db):
    table = db.create_table("t", Schema.of_ints(["a"]))
    assert db.table("t") is table
    with pytest.raises(StorageError):
        db.table("missing")


def test_duplicate_table_rejected(db):
    db.create_table("t", Schema.of_ints(["a"]))
    with pytest.raises(StorageError):
        db.create_table("t", Schema.of_ints(["a"]))


def test_load_table_counts(db):
    table = db.load_table("t", Schema.of_ints(["a", "b"]),
                          ((i, i * 2) for i in range(500)))
    assert table.row_count == 500
    assert table.num_pages > 0


def test_create_index_registers_and_fills(db):
    table = db.load_table("t", Schema.of_ints(["a", "b"]),
                          ((i, i % 7) for i in range(100)))
    index = db.create_index("t", "b")
    assert table.has_index("b")
    assert len(index) == 100
    db.drop_index("t", "b")
    assert not table.has_index("b")


def test_duplicate_index_rejected(db):
    db.load_table("t", Schema.of_ints(["a", "b"]),
                  ((i, i % 7) for i in range(100)))
    first = db.create_index("t", "b")
    with pytest.raises(StorageError):
        db.create_index("t", "b")
    # The original index stays registered and intact.
    assert db.table("t").index_on("b") is first
    assert len(first) == 100


def test_drop_missing_index_rejected(db):
    db.load_table("t", Schema.of_ints(["a", "b"]), [])
    with pytest.raises(StorageError):
        db.drop_index("t", "b")
    with pytest.raises(StorageError):
        db.drop_index("missing", "b")


def test_drop_then_recreate_index(db):
    db.load_table("t", Schema.of_ints(["a", "b"]),
                  ((i, i % 7) for i in range(50)))
    db.create_index("t", "b")
    db.drop_index("t", "b")
    rebuilt = db.create_index("t", "b")  # rebuild after drop is fine
    assert db.table("t").index_on("b") is rebuilt


def test_insert_maintains_indexes(db):
    table = db.load_table("t", Schema.of_ints(["a", "b"]), [])
    db.create_index("t", "b")
    tid = table.insert((1, 42))
    ctx = db.context()
    assert list(table.index_on("b").lookup(ctx, 42)) == [tid]


def test_cold_run_resets_everything(db):
    table = db.load_table("t", Schema.of_ints(["a"]),
                          ((i,) for i in range(1000)))
    ctx = db.context()
    ctx.get_page(table.heap, 0)
    assert db.disk.stats.pages_read == 1
    db.cold_run()
    assert db.disk.stats.pages_read == 0
    assert db.clock.total_ms == 0
    assert len(db.buffer) == 0


def test_buffer_autosizes_to_heap_fraction():
    db = Database()  # buffer_pool_pages=None -> auto
    db.load_table("t", Schema.of_ints(["a"]),
                  ((i,) for i in range(2_000_000 // 4)))
    # tuples/page for a 28-byte tuple: 7680//28 = 274 -> ~1825 pages
    assert db.buffer.capacity_pages == max(64, db.table("t").num_pages // 8)


def test_explicit_buffer_size_respected():
    db = Database(config=EngineConfig(buffer_pool_pages=33))
    db.load_table("t", Schema.of_ints(["a"]), ((i,) for i in range(10_000)))
    db.cold_run()
    assert db.buffer.capacity_pages == 33


def test_file_ids_unique(db):
    t1 = db.create_table("t1", Schema.of_ints(["a"]))
    t2 = db.create_table("t2", Schema.of_ints(["a"]))
    db.load_table("t3", Schema.of_ints(["a", "b"]), [(1, 2)])
    idx = db.create_index("t3", "b")
    ids = {t1.heap.file_id, t2.heap.file_id,
           db.table("t3").heap.file_id, idx.file_id}
    assert len(ids) == 4


def test_table_column_values(db):
    table = db.load_table("t", Schema.of_ints(["a", "b"]),
                          [(1, 10), (2, 20)])
    assert list(table.column_values("b")) == [10, 20]
