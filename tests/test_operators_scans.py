"""The three baseline access paths: results, ordering, and cost shapes."""

import pytest

from repro.exec.expressions import Between, KeyRange
from repro.exec.scans import FullTableScan, IndexScan, SortScan, _contiguous_runs
from repro.exec.stats import measure


def paths(table, lo, hi):
    return {
        "full": FullTableScan(table, Between("c2", lo, hi)),
        "index": IndexScan(table, "c2", KeyRange(lo, hi)),
        "sort": SortScan(table, "c2", KeyRange(lo, hi)),
    }


def test_all_paths_agree(small_table):
    db, table = small_table
    results = {
        name: sorted(measure(db, plan).rows)
        for name, plan in paths(table, 100, 300).items()
    }
    assert results["full"] == results["index"] == results["sort"]
    assert len(results["full"]) > 0


def test_index_scan_emits_in_key_order(small_table):
    db, table = small_table
    rows = measure(db, IndexScan(table, "c2", KeyRange(0, 500))).rows
    keys = [r[1] for r in rows]
    assert keys == sorted(keys)


def test_sort_scan_emits_in_physical_order(small_table):
    db, table = small_table
    scan = SortScan(table, "c2", KeyRange(0, 500))
    rows = measure(db, scan).rows
    ids = [r[0] for r in rows]  # c1 is the insertion order
    assert ids == sorted(ids)


def test_full_scan_cost_is_selectivity_independent(small_table):
    db, table = small_table
    narrow = measure(db, FullTableScan(table, Between("c2", 0, 1)))
    wide = measure(db, FullTableScan(table, Between("c2", 0, 999)))
    assert narrow.io_ms == pytest.approx(wide.io_ms)
    assert narrow.disk.pages_read == wide.disk.pages_read


def test_index_scan_cost_grows_with_selectivity():
    # A buffer-constrained database so repeated random I/O actually pays.
    import random
    from repro.config import EngineConfig
    from repro.database import Database
    from repro.storage.types import Schema
    db = Database(config=EngineConfig(buffer_pool_pages=8))
    rng = random.Random(1)
    table = db.load_table(
        "t", Schema.of_ints(["c1", "c2", "c3"]),
        [(i, rng.randrange(1000), 0) for i in range(5_000)],
    )
    db.create_index("t", "c2")
    narrow = measure(db, IndexScan(table, "c2", KeyRange(0, 10)))
    wide = measure(db, IndexScan(table, "c2", KeyRange(0, 500)))
    assert wide.total_ms > narrow.total_ms * 5


def test_index_scan_beats_full_at_tiny_selectivity(small_table):
    db, table = small_table
    idx = measure(db, IndexScan(table, "c2", KeyRange(0, 1)))
    full = measure(db, FullTableScan(table, Between("c2", 0, 1)))
    assert idx.total_ms < full.total_ms


def test_full_beats_index_at_high_selectivity(small_table):
    db, table = small_table
    idx = measure(db, IndexScan(table, "c2", KeyRange(0, 999)))
    full = measure(db, FullTableScan(table, Between("c2", 0, 999)))
    assert full.total_ms < idx.total_ms


def test_sort_scan_fetches_each_result_page_once(small_table):
    db, table = small_table
    scan = SortScan(table, "c2", KeyRange(0, 999))
    result = measure(db, scan)
    # Index leaves + each heap page at most once: far below index scan's
    # one-fetch-per-tuple behaviour.
    assert result.disk.pages_read <= table.num_pages + \
        table.index_on("c2").num_pages + 5


def test_index_scan_refetches_pages(small_table):
    db, table = small_table
    result = measure(db, IndexScan(table, "c2", KeyRange(0, 999)))
    assert result.disk.pages_read > table.num_pages  # repeated accesses


def test_full_scan_requests_batched_by_extent(small_table):
    db, table = small_table
    result = measure(db, FullTableScan(table))
    expected = -(-table.num_pages // db.config.extent_pages)
    assert result.disk.requests == expected


def test_empty_range(small_table):
    db, table = small_table
    for plan in paths(table, 2000, 3000).values():
        assert measure(db, plan).rows == []


def test_residual_predicate_applied(small_table):
    db, table = small_table
    residual = Between("c3", 0, 5)
    rows = measure(
        db, IndexScan(table, "c2", KeyRange(0, 500), residual=residual)
    ).rows
    assert all(0 <= r[2] < 5 for r in rows)
    sort_rows = measure(
        db, SortScan(table, "c2", KeyRange(0, 500), residual=residual)
    ).rows
    assert sorted(rows) == sorted(sort_rows)


def test_contiguous_runs_grouping():
    assert list(_contiguous_runs([1, 2, 3, 7, 8, 12])) == [
        (1, 3), (7, 2), (12, 1)
    ]
    assert list(_contiguous_runs([5])) == [(5, 1)]
    assert list(_contiguous_runs([])) == []


def test_scan_on_empty_table(db):
    from repro.storage.types import Schema
    table = db.load_table("empty", Schema.of_ints(["a", "b"]), [])
    db.create_index("empty", "b")
    assert measure(db, FullTableScan(table)).rows == []
    assert measure(db, IndexScan(table, "b", KeyRange(0, 10))).rows == []
    assert measure(db, SortScan(table, "b", KeyRange(0, 10))).rows == []
