"""Figure 10 — Smooth Scan on SSD (Section VI-E).

Paper shape: with the 2:1 (vs 10:1) random:sequential ratio, Index Scan
stays viable to ~0.1% (vs ~0.01% on HDD) yet still loses ~30× at 100%;
Smooth Scan beats Sort Scan above ~0.1% and ends within ~10% of the full
scan at 100%.
"""

from conftest import run_once

from repro.experiments.fig10 import run_fig10
from repro.experiments.fig5 import run_fig5


def test_fig10_ssd_sweep(benchmark, micro_bench_setup, report):
    result = run_once(benchmark, lambda: run_fig10())
    report("fig10_ssd", result.report())

    sel = result.selectivities_pct
    i100 = sel.index(100.0)
    # Smooth hugs the full scan at 100% (paper: within ~10%).
    assert result.seconds["smooth"][i100] < 1.5 * result.seconds["full"][i100]
    # Index scan still collapses, though less than on HDD.
    assert result.seconds["index"][i100] > 5 * result.seconds["full"][i100]

    # Cross-device comparison: the index/full gap narrows on SSD.
    hdd = run_fig5(order_by=False, setup=micro_bench_setup,
                   selectivities_pct=(100.0,))
    gap_hdd = hdd.seconds["index"][0] / hdd.seconds["full"][0]
    gap_ssd = result.seconds["index"][i100] / result.seconds["full"][i100]
    assert gap_ssd < gap_hdd
