"""Ablation — the §IV-B morphable join extension.

Sweeps outer key reuse (outer rows per distinct inner key) and compares
the classic INLJ, the MorphingIndexJoin, and a hash join.  Expected
shape: at reuse ≈ 1 the morphing join behaves like INLJ (each key probed
once); as reuse grows its Tuple Cache absorbs the probes and its cost
approaches the hash join's, while classic INLJ keeps paying per-probe
index descents.
"""

import random

from conftest import run_once

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core.morph_join import MorphingIndexJoin
from repro.database import Database
from repro.exec.joins import HashJoin, IndexNestedLoopJoin
from repro.exec.scans import FullTableScan
from repro.storage.types import Schema


def build(reuse: int, inner_rows: int = 6_000, seed: int = 3):
    """An outer of ``reuse × distinct_keys`` rows over a fixed inner."""
    rng = random.Random(seed)
    db = Database()
    distinct = 200
    inner = db.load_table(
        "inner_t", Schema.of_ints(["i_key", "i_val"]),
        [((i * 13) % distinct, i) for i in range(inner_rows)],
    )
    db.create_index("inner_t", "i_key")
    outer = db.load_table(
        "outer_t", Schema.of_ints(["o_id", "o_key"]),
        [(i, rng.randrange(distinct)) for i in range(reuse * distinct)],
    )
    return db, outer, inner


def run_sweep(reuses):
    rows = []
    for reuse in reuses:
        db, outer, inner = build(reuse)
        inlj = run_cold(db, "inlj", IndexNestedLoopJoin(
            FullTableScan(outer), inner, "i_key", "o_key"))
        morph_op = MorphingIndexJoin(FullTableScan(outer), inner,
                                     "i_key", "o_key")
        morph = run_cold(db, "morph", morph_op)
        hj = run_cold(db, "hash", HashJoin(
            FullTableScan(outer), FullTableScan(inner),
            ["o_key"], ["i_key"]))
        rows.append([reuse, inlj.seconds, morph.seconds, hj.seconds,
                     round(morph_op.last_stats.cache_hit_rate, 3)])
    return rows


def test_ablation_morph_join(benchmark, report):
    rows = run_once(benchmark, lambda: run_sweep((1, 4, 16, 64)))
    text = format_table(
        ["key_reuse", "classic_inlj_s", "morphing_s", "hash_s",
         "morph_cache_hit_rate"],
        rows,
        title="Ablation — INLJ morphing into a hash join (§IV-B)",
    )
    report("ablation_morph_join", text)

    by_reuse = {r[0]: r for r in rows}
    # High reuse: the morphing join beats classic INLJ (whose repeated
    # probes are partly absorbed by the buffer pool) and its cache hit
    # rate approaches 1.
    assert by_reuse[64][2] < 0.9 * by_reuse[64][1]
    assert by_reuse[64][4] > 0.9
    # The morph/INLJ cost ratio improves monotonically with reuse.
    ratio_low = by_reuse[1][2] / by_reuse[1][1]
    ratio_high = by_reuse[64][2] / by_reuse[64][1]
    assert ratio_high < ratio_low
    # Low reuse: morphing stays within a small factor of classic INLJ
    # (it absorbs whole pages it may never need again).
    assert by_reuse[1][2] < 3.0 * by_reuse[1][1]
