"""Figure 8 — handling skew (Section VI-D).

Paper shape: after a dense head, Selectivity-Increase keeps its inflated
morphing region and fetches ~56× more distinct pages than Elastic,
ending ~5× slower; Elastic converges back to single-page probes and
lands near Index Scan's page count.
"""

from conftest import run_once

from repro.experiments.fig8 import run_fig8


def test_fig08_skewed_distribution(benchmark, report):
    result = run_once(benchmark, lambda: run_fig8())
    report("fig08_skew", result.report())

    # SI overshoots: many more pages and clearly slower than Elastic.
    assert result.pages_read["si_smooth"] > \
        5 * result.pages_read["elastic_smooth"]
    assert result.seconds["si_smooth"] > 2 * result.seconds["elastic_smooth"]
    # Elastic stays within an order of magnitude of the index scan's
    # page count, far below the full scan.
    assert result.pages_read["elastic_smooth"] < \
        10 * result.pages_read["index"]
    assert result.pages_read["elastic_smooth"] < \
        result.pages_read["full"] / 5
    # All paths agree on the result, of course.
    assert len(set(result.result_rows.values())) == 1
