"""Figure 11 — Switch Scan's performance cliff (Section VI-F).

Paper shape: right at the threshold selectivity (0.009%: the optimizer
estimated 32K of 400M tuples) the execution time jumps by a full scan's
worth; past it, Switch Scan tracks Full Scan, bounding the worst case.
Smooth Scan provides the same bound without the cliff.
"""

from conftest import run_once

from repro.experiments.fig11 import run_fig11


def test_fig11_cliff(benchmark, micro_bench_setup, report):
    result = run_once(benchmark, lambda: run_fig11(setup=micro_bench_setup))
    report("fig11_switch_scan", result.report())

    sel = result.selectivities_pct
    # The switch decision flips exactly once along the sweep.
    flips = sum(1 for a, b in zip(result.switched, result.switched[1:], strict=False)
                if a != b)
    assert flips == 1
    first_switch = result.switched.index(True)
    # The cliff: a discrete jump at the switch point.
    assert result.seconds["switch"][first_switch] > \
        2 * result.seconds["switch"][first_switch - 1]
    # After switching, Switch Scan is bounded near Full Scan...
    i100 = sel.index(100.0)
    assert result.seconds["switch"][i100] < 2 * result.seconds["full"][i100]
    # ...while Smooth Scan never exhibits a comparable jump.
    smooth = result.seconds["smooth"]
    for a, b in zip(smooth, smooth[1:], strict=False):
        if a > 1e-6:
            assert b < a * 20  # no order-of-magnitude cliffs
