"""Figure 4 — improving TPC-H performance with Smooth Scan (Section VI-B).

Paper shape: Smooth Scan prevents the degradations of Q6 (×10), Q7 (×7)
and Q14 (×8) while adding only marginal overhead where the optimizer was
already right (Q1 +14%, Q4 <1%).  Execution time is split into CPU and
blocking I/O wait, the two bar segments of the figure.
"""

import pytest
from conftest import run_once

from repro.experiments.fig4_table2 import run_fig4


@pytest.fixture(scope="session")
def fig4_result(tuned_tpch):
    return run_fig4(setup=tuned_tpch)


def test_fig04_execution_breakdown(benchmark, tuned_tpch, report):
    result = run_once(benchmark, lambda: run_fig4(setup=tuned_tpch))
    report("fig04_tpch_smooth", result.report_fig4())

    def time_of(query, mode):
        return result.data[(query, mode)].total_s

    # Big wins where pSQL's estimates picked a bad index path.
    assert time_of("Q6", "pSQL+SmoothScan") < 0.5 * time_of("Q6", "pSQL")
    assert time_of("Q7", "pSQL+SmoothScan") < 0.5 * time_of("Q7", "pSQL")
    assert time_of("Q14", "pSQL+SmoothScan") < time_of("Q14", "pSQL")
    # Bounded overhead where pSQL was already optimal.
    assert time_of("Q1", "pSQL+SmoothScan") < 1.6 * time_of("Q1", "pSQL")
    assert time_of("Q4", "pSQL+SmoothScan") < 1.3 * time_of("Q4", "pSQL")
    # Breakdown sums to the total.
    for _key, d in result.data.items():
        assert d.total_s == pytest.approx(d.cpu_s + d.io_wait_s)
