"""Figure 1 — non-robust performance after tuning (Section I / VI-B).

Paper shape: after the tuning tool adds indexes, several TPC-H queries
degrade (Q12 by ×400 at SF10 on real hardware, the 19-query workload by
×22 overall) while most stay near 1.0.  Here the degradation factors are
smaller (buffered, scaled tables) but the distribution — a few
catastrophic queries, most untouched, an order-of-magnitude workload
factor — reproduces, and the Smooth Scan column repairs every regression.
"""

from conftest import run_once

from repro.experiments.fig1 import run_fig1


def test_fig01_normalized_execution_times(benchmark, tuned_tpch, report):
    result = run_once(benchmark, lambda: run_fig1(setup=tuned_tpch))
    report("fig01_dbmsx_motivation", result.report())

    factors = [result.normalized(q) for q in result.queries]
    # At least a few queries degrade clearly; most stay near 1.
    assert sum(1 for f in factors if f > 3.0) >= 3
    assert sum(1 for f in factors if f < 1.5) >= 8
    assert result.workload_factor() > 2.0
    # Smooth Scan repairs the regressions the tuning introduced.
    for q in result.queries:
        assert result.smooth_s[q] < 3.0 * max(result.original_s[q],
                                              result.tuned_s[q])
