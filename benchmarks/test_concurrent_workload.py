"""Concurrent serving: N clients contending on one shared runtime.

Four clients replay cached prepared plans with drifted parameters,
interleaved by the deterministic cooperative scheduler — one shared
disk head, one shared buffer pool, per-query cost ledgers.  The
mis-estimated classic plan must collapse under contention (p99 latency
and throughput orders of magnitude worse) while the cached Smooth Scan
plan degrades gracefully (bounded by its fair share of the engine).

Doubles as the ledger guardrail CI greps for: summed per-query ledgers
must reproduce the shared runtime totals — no charge lost or
double-attributed across interleaved queries.
"""

from conftest import run_once

from repro.experiments.concurrency import (
    DEFAULT_CLIENTS,
    MIX_PCT,
    run_concurrent_workload,
)


def test_concurrent_workload(benchmark, report):
    result = run_once(benchmark, run_concurrent_workload)
    report("concurrent_workload", result.report())

    queries = DEFAULT_CLIENTS * len(MIX_PCT)
    for series in (result.classic, result.smooth):
        assert len(series.serial.records) == queries
        assert len(series.contended.records) == queries
        # Same work either way: interleaving changes costs, not results.
        assert series.serial.rows == series.contended.rows

    # Conservation: across every interleaved run, per-query ledgers sum
    # exactly to the shared runtime totals.
    assert result.conservation_ok

    # The robustness claim under contention: the cached classic plan's
    # tail latency and throughput collapse, the smooth plan's do not.
    assert result.p99_divergence >= 40.0
    assert result.throughput_divergence >= 40.0

    # Graceful degradation: with N clients time-sharing one engine,
    # fair share bounds the smooth slowdown near N; a plan whose I/O
    # pattern composes badly with contention would blow past it.
    assert result.smooth.degradation <= DEFAULT_CLIENTS + 1

    # Absolute sanity: contended smooth p99 stays interactive while
    # contended classic p99 is tens of simulated seconds.
    assert result.smooth.contended.p99_ms < 1_000.0
    assert result.classic.contended.p99_ms > 10_000.0
