"""Section V-A — competitive-ratio measurements.

Paper numbers: Elastic's analysis-regime CR ≈ 5.5 on HDD (theoretical
bound 11, purely the random:sequential ratio); the empirically observed
CR is ≈ 2.  We measure both: the default policy on a prefetching disk
(empirical regime) and the strict policy with prefetching disabled
(analysis regime), plus the model-level bound.
"""

from conftest import run_once

from repro.costmodel import CostParams, elastic_cr_bound
from repro.experiments.competitive import run_competitive


def test_competitive_ratio(benchmark, report):
    result = run_once(benchmark, lambda: run_competitive())
    report("competitive_ratio", result.report())

    # Empirical regime: CR ≈ 2 (paper's observed value).
    assert 1.2 < result.adversarial_cr < 3.5
    assert result.sweep_max_cr < 4.0
    # Analysis regime: strictly-greater policy, no prefetch (≈ 5.5).
    assert 3.0 < result.adversarial_cr_strict < 7.0
    # Theoretical bound from the device ratio (paper: 11 for HDD).
    paper = CostParams(tuple_size=64, num_tuples=400_000_000, key_size=4)
    assert elastic_cr_bound(paper) == 11.0
    assert result.adversarial_cr_strict < elastic_cr_bound(paper)
