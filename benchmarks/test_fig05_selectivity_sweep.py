"""Figure 5 — Smooth Scan vs. alternatives over the selectivity range.

Paper shape (HDD): Index Scan is ~10× Full Scan already at 0.1% and
>100× at 100%; Sort Scan wins below ~1% and fades above ~2.5%; Smooth
Scan is index-like at the low end, within ~20% of Full Scan at 100%
without ORDER BY, and the best path above ~2.5% when an interesting
order is required (the others pay a posterior sort).
"""

from conftest import run_once

from repro.experiments.fig5 import run_fig5


def test_fig05a_with_order_by(benchmark, micro_bench_setup, report):
    result = run_once(
        benchmark,
        lambda: run_fig5(order_by=True, setup=micro_bench_setup),
    )
    report("fig05a_sweep_order_by", result.report())

    sel = result.selectivities_pct
    i20, i100 = sel.index(20.0), sel.index(100.0)
    # With an interesting order, Smooth Scan wins at moderate/high
    # selectivity: everyone else pays the posterior sort.
    assert result.seconds["smooth"][i20] < result.seconds["full"][i20]
    assert result.seconds["smooth"][i20] < result.seconds["sort"][i20]
    assert result.seconds["smooth"][i100] < result.seconds["index"][i100]


def test_fig05b_without_order_by(benchmark, micro_bench_setup, report):
    result = run_once(
        benchmark,
        lambda: run_fig5(order_by=False, setup=micro_bench_setup),
    )
    report("fig05b_sweep_no_order_by", result.report())

    sel = result.selectivities_pct
    i_low, i100 = sel.index(0.01), sel.index(100.0)
    # Low selectivity: index-driven paths beat the full scan.
    assert result.seconds["index"][i_low] < result.seconds["full"][i_low]
    assert result.seconds["smooth"][i_low] < result.seconds["full"][i_low]
    # High selectivity: Index Scan melts; Smooth stays near Full Scan.
    assert result.seconds["index"][i100] > 20 * result.seconds["full"][i100]
    assert result.seconds["smooth"][i100] < 1.6 * result.seconds["full"][i100]
    # Index Scan's degradation is monotone across the sweep.
    idx = result.seconds["index"]
    assert idx[i100] == max(idx)
