"""Shard-parallel scaling: partitioned Smooth Scans behind an Exchange.

Sweeps the shard count over the fig5 selectivity grid and the
1,000-client serving mix.  The guardrails CI greps for: a scan-bound
query completes >= 2x faster at 4 shards than serially, scaling is
near-linear (the serial coordinator merge is the Amdahl term the
exchange-overhead lines quantify), summed per-shard ledgers reproduce
each run's ledger exactly, and the serving fleet's over-budget replays
— degraded when the table is unsharded — are split-admitted within
their SLA budgets once it is partitioned.
"""

from conftest import run_once

from repro.experiments.shards import run_shard_scaling


def test_shard_scaling(benchmark, report):
    result = run_once(benchmark, run_shard_scaling)
    report("shard_scaling", result.report())

    # The headline: an over-budget scan-bound query completes >= 2x
    # faster at 4 shards, and adding shards keeps helping near-linearly.
    assert result.scan_bound_speedup(4) >= 2.0
    assert result.near_linear

    # Parallelism must not change answers: every shard count and the
    # serial baseline return identical row counts at every point.
    assert result.rows_ok

    # Attribution survives the fan-out: per-shard windows sum to each
    # run's own ledger (integer disk counters exactly).
    assert result.conservation_ok

    # Serving: unsharded, the drifted replays degrade; partitioned,
    # every one of them is split-admitted instead — and the contended
    # makespan improvement is what splitting buys at serving scale.
    by_n = {p.num_shards: p for p in result.serving}
    assert by_n[1].split == 0
    assert by_n[1].degraded > 0
    for n in (2, 4, 8):
        assert by_n[n].degraded == 0
        assert by_n[n].split == by_n[1].degraded
        assert by_n[n].conservation_ok
    assert by_n[1].conservation_ok
    assert result.serving_split_speedup >= 2.0
