"""Serving at scale: 1,000+ protocol clients behind admission control.

The concurrency drill's four scheduler clients become a thousand wire
clients: every query enters as a protocol frame, is priced against the
base table's two-full-scans SLA budget, and competes for 64 in-flight
slots — the overflow waits in the admission FIFO with its queue time
measured on the simulated clock.  Per-query ledgers are rebuilt from
protocol ``summary`` frames, so the conservation assertion here proves
attribution survives the wire at three orders of magnitude more
interleaving than the concurrency benchmark.

Doubles as the fairness guardrail CI greps for: each series' contended
p99 must stay within the fair-share bound of its serial p99.
"""

from conftest import run_once

from repro.experiments.serving import (
    DEFAULT_SERVING_CLIENTS,
    REJECT_EVERY,
    run_serving_workload,
)


def test_serving_workload(benchmark, report):
    result = run_once(benchmark, run_serving_workload)
    report("serving_workload", result.report())

    # The ISSUE's headline scale: 1,000+ concurrent protocol clients.
    assert result.num_clients >= 1_000

    # Every client's probe + follow-up ran except the forced-index
    # rejections; both schedules of a series return identical rows.
    rejected_clients = DEFAULT_SERVING_CLIENTS // REJECT_EVERY
    queries = 2 * DEFAULT_SERVING_CLIENTS - rejected_clients
    for series in (result.classic, result.smooth):
        assert len(series.serial.report.records) == queries
        assert len(series.contended.report.records) == queries
        assert (series.serial.report.rows
                == series.contended.report.rows)

    # Conservation through the wire: ledgers rebuilt from protocol
    # summary frames sum exactly to the shared runtime totals.
    assert result.conservation_ok

    # Admission rejects on price, never on load: exactly the
    # forced-index clients, each priced over the SLA budget.
    assert result.rejections_priced_over_budget
    assert len(result.all_rejections()) == 4 * rejected_clients
    assert all(label == "forced-index"
               for _client, label, detail in result.all_rejections())

    # The drifted classic replays are caught over budget and *split*
    # across the partitioned table's shards — admitted as exchange
    # plans within the budget instead of degraded; the smooth series'
    # bounded replays need neither splitting nor degrading.
    assert (result.classic.serial.admission.split
            == DEFAULT_SERVING_CLIENTS - rejected_clients)
    assert (result.classic.contended.admission.split
            == DEFAULT_SERVING_CLIENTS - rejected_clients)
    assert result.classic.serial.admission.degraded == 0
    assert result.smooth.serial.admission.split == 0
    assert result.smooth.serial.admission.degraded == 0
    # Splitting is a rescue, not a default: every split's serial price
    # broke the budget and its shard-parallel re-price fit it.
    assert result.splits_within_budget

    # Saturation was real: most contended requests had to queue, and
    # the tail queue wait is visible on the simulated clock.
    for series in (result.classic, result.smooth):
        assert series.contended.admission.queued > result.max_inflight
        assert series.contended.admission.queue_wait_p99_ms > 0.0
        assert series.serial.admission.queued == 0

    # Fairness under 1,000-client contention: no request's latency
    # exceeds the whole fleet's worth of fair-share (serial p99)
    # slices plus its own.
    assert result.classic.within_fair_share
    assert result.smooth.within_fair_share
