"""Batch engine guardrail — row vs. batch wall-clock throughput.

The batch-vectorized execution protocol must beat the tuple-at-a-time
pipeline by at least 5x in tuples/second over the fig5 selectivity sweep
(same plans, same simulated costs; only Python overhead differs).

Two artifacts: the committed ``batch_throughput.txt`` carries only the
deterministic simulated costs (identical on every machine — it stops
churning in commits); the wall-clock numbers this test asserts on go to
the gitignored ``batch_throughput_wallclock.txt`` sidecar.
"""

from conftest import run_once

from repro.experiments.batch_bench import run_batch_bench


def test_batch_throughput_over_row(benchmark, micro_bench_setup, report):
    result = run_once(
        benchmark,
        lambda: run_batch_bench(setup=micro_bench_setup),
    )
    report("batch_throughput", result.report())
    report("batch_throughput_wallclock", result.wallclock_report())

    # The acceptance bar: >= 5x tuples/sec overall for the batch path.
    assert result.overall_speedup >= 5.0
    # No plan with meaningful runtime may regress under batching.
    # (Sub-10ms plans are dominated by fixed setup and timer noise; the
    # 1.5x slack absorbs scheduler stalls on shared CI runners — real
    # regressions from de-vectorizing a path are far larger.)
    for label, row_s, batch_s in zip(result.labels, result.row_seconds,
                                     result.batch_seconds, strict=False):
        if row_s >= 0.01:
            assert batch_s <= row_s * 1.5, f"batch path slower on {label}"
