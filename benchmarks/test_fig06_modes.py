"""Figure 6 — sensitivity analysis of Smooth Scan's modes.

Paper shape at 100% selectivity: Entire-Page-Probe alone is ~10× better
than Index Scan (no repeated pages) yet ~14× worse than Full Scan (every
fetch random); adding Flattening Access closes the gap to ~1.2× Full
Scan.
"""

from conftest import run_once

from repro.experiments.fig6 import run_fig6


def test_fig06_mode_sensitivity(benchmark, micro_bench_setup, report):
    result = run_once(benchmark, lambda: run_fig6(setup=micro_bench_setup))
    report("fig06_modes", result.report())

    i100 = result.selectivities_pct.index(100.0)
    full = result.seconds["full"][i100]
    index = result.seconds["index"][i100]
    mode1 = result.seconds["smooth_mode1"][i100]
    flat = result.seconds["smooth_flattening"][i100]
    # The paper's vertical ordering at 100%.
    assert index > mode1 > flat
    assert index > 5 * mode1       # page probe removes repeated accesses
    assert mode1 > 3 * full        # but stays random-access bound
    assert flat < 1.6 * full       # flattening approaches the full scan
