"""The paper's serving scenario: cached prepared plans under drift.

One prepared statement, compiled once, its plan cached at a 0.05%-
selectivity first execution and replayed as the bind parameter drifts to
100%.  The cached classic (index) plan must degrade catastrophically
against a per-point fresh replan while the cached Smooth Scan plan stays
near-optimal — the robustness claim of §IV-B, expressed through the
session layer instead of hand-built operator trees.

Doubles as the prepared-statement guardrail: re-execution must skip
parse/bind/plan entirely (compile counter and plan-cache hit counter
asserted), which CI runs in the benchmark job.
"""

from conftest import run_once

from repro.experiments.prepared_drift import (
    DEFAULT_DRIFT_PCT,
    run_prepared_drift,
)


def test_prepared_drift(benchmark, report):
    result = run_once(benchmark, run_prepared_drift)
    report("prepared_drift", result.report())

    points = len(DEFAULT_DRIFT_PCT)

    # Guardrail: each of the two prepared statements compiled exactly
    # once, planned exactly once (one cache miss each), and every
    # re-execution was a pure cache hit.
    assert result.statement_compiles == 2
    assert result.cache_misses == 2
    assert result.cache_hits == 2 * points - 2
    assert result.cache_invalidations == 0

    # At the cached point the cached plan IS the fresh plan.
    assert result.cached_paths[0] == "index"
    assert result.replan_paths[0] == "index"
    # By the high-selectivity end the fresh planner has tipped to a
    # full scan while the cache still replays the index plan.
    assert result.replan_paths[-1] == "full"
    assert result.cached_paths[-1] == "index"

    # The robustness claim, in simulated time: the cached classic plan
    # blows up by orders of magnitude; the cached smooth plan does not.
    assert result.max_cached_slowdown >= 50.0
    assert result.max_smooth_slowdown <= 4.0
    assert result.max_smooth_slowdown < result.max_cached_slowdown / 10.0
