"""Telemetry workload: the concurrency drill traced end to end.

Runs the 4-client drifted-replay mix (classic and smooth serving) with
the tracer on and pins the three guarantees the telemetry warehouse
makes:

* SQL rollups over the self-hosted history store agree exactly with
  the in-memory workload reports;
* replaying the captured trace file on a fresh database reproduces
  every per-query ledger bitwise;
* tracing charges zero simulated cost — the identical untraced
  workload produces byte-identical detailed reports.

The emitted artifact embeds the equality verdict lines CI greps for,
plus the captured trace file itself (``telemetry_trace.json``).
"""

import os

from conftest import run_once

from repro.bench.reporting import results_dir
from repro.experiments.concurrency import DEFAULT_CLIENTS, MIX_PCT
from repro.experiments.telemetry import (
    RUN_IDS,
    run_telemetry_workload,
)
from repro.telemetry.rollups import totals


def test_telemetry_workload(benchmark, report):
    result = run_once(benchmark, run_telemetry_workload)
    report("telemetry_workload", result.report())
    result.trace.save(os.path.join(results_dir(),
                                   "telemetry_trace.json"))

    queries = DEFAULT_CLIENTS * len(MIX_PCT)
    for series in result.series:
        assert len(series.report.records) == queries
        # Capture found every span: the seed plus the scheduled mix.
        assert series.captured.statement_count == queries + 1
        assert len(series.captured.seeds) == 1
        assert series.conservation_ok
        # The headline guarantee: warehouse SQL == in-memory report.
        assert series.rollup_problems == []

    # The warehouse holds both series (plus their seed runs) and its
    # totals are queryable per run id.
    for _name, run_id in RUN_IDS.items():
        assert totals(result.store, run_id=run_id)["queries"] == queries

    # Replaying the trace file reproduces every per-query ledger.
    assert result.replay.ok
    assert result.replay.statements == 2 * (queries + 1)

    # Tracing is simulated-cost invisible.
    assert result.overhead_identical
