"""Ablation — the morphing-region cap (Section VI-D).

The paper: "We perform a sensitivity analysis on the maximum number of
adjacent pages up to which we perform the morphing expansion. Our
experiments show that 2K pages are optimal (translates to a block size of
16MB)."  This sweep varies the cap on the 100%-selectivity micro query;
expected shape: costs fall steeply while the cap grows (fewer random
jumps), then flatten — the curve's knee justifies the 2K default, and
tiny caps degrade toward Entire-Page-Probe behaviour.
"""

from conftest import run_once

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.experiments.common import access_path_plan


def sweep_region_caps(setup, caps, selectivity=1.0):
    seconds = {}
    for cap in caps:
        plan = access_path_plan("smooth", setup.table, selectivity,
                                max_mode=2)
        plan.max_region_pages = cap
        seconds[cap] = run_cold(setup.db, f"cap={cap}", plan).seconds
    return seconds


def test_ablation_region_cap(benchmark, micro_bench_setup, report):
    caps = (1, 4, 16, 64, 256, 1024, 2048, 8192)
    seconds = run_once(
        benchmark, lambda: sweep_region_caps(micro_bench_setup, caps)
    )
    text = format_table(
        ["max_region_pages", "time_s"],
        [[cap, seconds[cap]] for cap in caps],
        title="Ablation — morphing-region cap at 100% selectivity",
    )
    report("ablation_region_cap", text)

    # Small caps behave like Entire Page Probe: clearly slower.
    assert seconds[1] > 3 * seconds[2048]
    # Costs are (weakly) improving as the cap grows...
    assert seconds[16] <= seconds[1]
    assert seconds[256] <= seconds[16]
    # ...and the curve has flattened by the paper's 2K default.
    assert seconds[8192] > 0.8 * seconds[2048]
