"""Table II — I/O analysis of the Figure 4 queries (Section VI-B).

Paper shape: where pSQL chose a bad index path, Smooth Scan issues far
fewer I/O requests (Q6: 566K → 95K, Q14: 416K → 87K) even though it may
transfer as much or more data — its benefit is access locality, not
byte count.
"""

from conftest import run_once

from repro.experiments.fig4_table2 import run_fig4


def test_table2_io_requests_and_volume(benchmark, tuned_tpch, report):
    result = run_once(benchmark, lambda: run_fig4(setup=tuned_tpch))
    report("table2_io_analysis", result.report_table2())

    def reqs(query, mode):
        return result.data[(query, mode)].io_requests

    # The misestimated index plans issue many more requests than smooth.
    assert reqs("Q6", "pSQL") > 3 * reqs("Q6", "pSQL+SmoothScan")
    assert reqs("Q7", "pSQL") > 3 * reqs("Q7", "pSQL+SmoothScan")
    assert reqs("Q14", "pSQL") > reqs("Q14", "pSQL+SmoothScan")
    # Data volume stays in the same ballpark (locality, not bytes).
    for q in ("Q1", "Q4"):
        psql = result.data[(q, "pSQL")].read_gb
        smooth = result.data[(q, "pSQL+SmoothScan")].read_gb
        assert smooth < 2.5 * max(psql, 1e-9)
