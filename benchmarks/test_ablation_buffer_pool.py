"""Ablation — buffer-pool size vs. index-scan degradation.

EXPERIMENTS.md attributes the reduced degradation factors (relative to
the paper's ×100-400) to the buffer pool covering a proportionally larger
table fraction at laptop scale.  This ablation makes that claim
measurable: as the buffer shrinks relative to the table, the index scan's
penalty over the full scan grows toward the paper's regime, while Smooth
Scan stays flat — its Page ID cache never re-reads a page, so it does not
care how small the buffer is.
"""

import random

from conftest import run_once

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.config import EngineConfig
from repro.database import Database
from repro.experiments.common import access_path_plan
from repro.storage.types import Schema

TUPLES = 120_000  # 1,000 pages


def build_db(buffer_pages: int):
    db = Database(config=EngineConfig(buffer_pool_pages=buffer_pages))
    rng = random.Random(21)
    table = db.load_table(
        "t", Schema.of_ints([f"c{i}" for i in range(1, 11)]),
        (tuple([i] + [rng.randrange(100_000) for _ in range(9)])
         for i in range(TUPLES)),
    )
    db.create_index("t", "c2")
    return db, table


def run_sweep(fractions):
    rows = []
    for fraction in fractions:
        buffer_pages = max(8, int(1_000 * fraction))
        db, table = build_db(buffer_pages)
        full = run_cold(db, "full",
                        access_path_plan("full", table, 0.5))
        index = run_cold(db, "index",
                         access_path_plan("index", table, 0.5))
        smooth = run_cold(db, "smooth",
                          access_path_plan("smooth", table, 0.5))
        rows.append([
            f"{fraction:.2f}",
            round(index.seconds / full.seconds, 1),
            round(smooth.seconds / full.seconds, 2),
        ])
    return rows


def test_ablation_buffer_pool(benchmark, report):
    rows = run_once(benchmark, lambda: run_sweep((1.0, 0.5, 0.12, 0.03)))
    text = format_table(
        ["buffer/table", "index_vs_full", "smooth_vs_full"],
        rows,
        title="Ablation — buffer size vs degradation (50% selectivity)",
    )
    report("ablation_buffer_pool", text)

    # The index scan's penalty grows as the buffer shrinks...
    penalties = [float(r[1]) for r in rows]
    assert penalties[-1] > 3 * penalties[0]
    # ...while Smooth Scan stays flat regardless of buffer size.
    smooth = [float(r[2]) for r in rows]
    assert max(smooth) < 2.0
    assert max(smooth) - min(smooth) < 0.5
