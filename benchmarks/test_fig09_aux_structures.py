"""Figure 9 — the auxiliary data structures (Section VI-D).

Paper shape: the Result Cache costs at most ~14% of execution time while
its hit rate reaches 100% by ~1% selectivity (9a); morphing accuracy
climbs to 100% by ~2.5% selectivity (9b).
"""

from conftest import run_once

from repro.experiments.fig9 import run_fig9


def test_fig09_result_cache_and_accuracy(benchmark, micro_bench_setup,
                                         report):
    result = run_once(benchmark, lambda: run_fig9(setup=micro_bench_setup))
    report("fig09_aux_structures", result.report())

    # 9a: bounded bookkeeping overhead, hit rate saturating.
    assert max(result.cache_overhead_pct) < 25.0
    i_hi = result.selectivities_pct.index(20.0)
    assert result.cache_hit_rate_pct[i_hi] > 95.0
    # Hit rate grows with selectivity up to saturation.
    i_1 = result.selectivities_pct.index(1.0)
    assert result.cache_hit_rate_pct[i_1] > \
        result.cache_hit_rate_pct[0] - 1e-9
    # 9b: morphing accuracy reaches 100% once every page holds results.
    assert result.morphing_accuracy_pct[-1] == 100.0
    assert result.morphing_accuracy_pct[0] < 100.0
