"""Figure 7 — morphing policies (7a) and triggering points (7b).

Paper shape: Greedy converges fastest and overpays at low selectivity;
Elastic adapts best.  The Optimizer/SLA triggers are cheaper below their
trigger points, pay a step right above them, and the SLA run stays below
the bound (set to two full scans) everywhere.
"""

from conftest import run_once

from repro.experiments.fig7 import run_fig7a, run_fig7b


def test_fig07a_policies(benchmark, micro_bench_setup, report):
    result = run_once(benchmark,
                      lambda: run_fig7a(setup=micro_bench_setup))
    report("fig07a_policies", result.report())

    sel = result.selectivities_pct
    i_low = sel.index(0.01)
    i100 = sel.index(100.0)
    # Greedy's eager expansion costs more at the low end.
    assert result.seconds["greedy"][i_low] >= result.seconds["elastic"][i_low]
    # All policies converge once everything must be read anyway.
    assert result.seconds["greedy"][i100] < 1.5 * result.seconds["elastic"][i100]


def test_fig07b_triggers(benchmark, micro_bench_setup, report):
    result = run_once(benchmark,
                      lambda: run_fig7b(setup=micro_bench_setup))
    report("fig07b_triggers", result.report())

    assert result.sla_trigger_cardinality > result.optimizer_estimate
    sel = result.selectivities_pct
    i100 = sel.index(100.0)
    # Every strategy respects the SLA bound at the worst point (the SLA
    # strategy lands "just slightly below" it, as in the paper).
    for label in ("eager", "optimizer", "sla"):
        assert result.seconds[label][i100] <= result.sla_bound_seconds
    # Below their trigger points, the lazy strategies are no slower than
    # eager (they run a plain index scan).
    i_tiny = sel.index(0.001)
    assert result.seconds["optimizer"][i_tiny] <= \
        1.2 * result.seconds["eager"][i_tiny]
