"""Benchmark harness plumbing.

Each benchmark regenerates one paper table/figure at the default
(reduced-but-shape-preserving) scale, prints the same rows/series the
paper reports, and tees them into ``bench_results/`` for EXPERIMENTS.md.
Expensive setups (the tuned TPC-H database) are shared session-wide.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import save_report
from repro.experiments.common import make_micro_db
from repro.experiments.fig1 import make_tuned_tpch

#: Scale used by the TPC-H benchmarks (Fig 1, Fig 4, Table II).
TPCH_SCALE = 0.01


@pytest.fixture(scope="session")
def micro_bench_setup():
    """The default 240K-tuple (2,000-page) micro-benchmark database."""
    return make_micro_db()


@pytest.fixture(scope="session")
def tuned_tpch():
    """The advisor-tuned, stale-statistics TPC-H database."""
    return make_tuned_tpch(scale_factor=TPCH_SCALE)


@pytest.fixture()
def report():
    """Print one experiment report and tee it to bench_results/."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        path = save_report(name, text)
        print(f"[saved to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
