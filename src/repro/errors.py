"""Exception hierarchy for the Smooth Scan reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at their boundary while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An :class:`~repro.config.EngineConfig` value is invalid."""


class StorageError(ReproError):
    """A storage-layer invariant was violated."""


class PageFullError(StorageError):
    """An insert was attempted on a heap page with no free slot."""


class UnknownPageError(StorageError):
    """A page id outside the file was requested."""


class BTreeError(ReproError):
    """A B+-tree invariant was violated or misused."""


class ExecutionError(ReproError):
    """A physical operator was driven through an illegal state transition."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for the request."""


class SqlError(PlanningError):
    """A SQL statement failed to lex, parse or bind.

    Messages are position-annotated (line, column, and a caret under the
    offending token) so REPL users see *where* the statement broke.
    Subclassing :class:`PlanningError` keeps the contract that everything
    between query text and physical plan raises through one family.
    """


class InterfaceError(ReproError):
    """The session API (Connection/Cursor) was misused.

    Raised for driver-level mistakes — fetching before ``execute()``,
    using a closed cursor or connection, executing a statement prepared
    against a *different database* (sharing across connections of one
    database is allowed) — as distinct from errors *in* the statement
    (:class:`SqlError`) or its planning (:class:`PlanningError`).
    """


class StatisticsError(ReproError):
    """Statistics were requested for an unknown table or column."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
