"""Shared engine runtime + per-query cost ledgers.

One :class:`EngineRuntime` is the *physical* substrate a
:class:`~repro.database.Database` owns exactly once and every query it
executes shares: the simulated clock, the simulated disk (one head
position, one aggregate :class:`~repro.storage.disk.DiskStats`), the
buffer pool (one set of resident pages) and the physical catalog of
tables and file ids.  Concurrent queries genuinely contend on it — one
client's random index probes seek the shared disk head away from
another's sequential run, and evictions land on whoever is resident.

What each query *measures*, by contrast, is private: a
:class:`CostLedger` accumulates exactly the charges incurred while that
query was running.  Attribution happens through *windows*: a
:class:`~repro.exec.stats.StreamingRun` opens a window around every
batch it pulls (:meth:`EngineRuntime.begin_attribution` /
:meth:`EngineRuntime.end_attribution`), the clock routes millisecond
charges into the active ledger as they happen, and the integer I/O and
buffer counters are diffed into the ledger when the window closes.
Summing the ledgers of every query therefore reproduces the shared
totals — no charge is lost or double-attributed — while interleaved
queries report correct isolated costs.

Reset responsibilities live in one place: :meth:`EngineRuntime.
cold_start` (and only it) implements the paper's cold-run discipline —
buffer pool contents *and* stats, disk head *and* stats, and the clock,
together.  ``SimulatedDisk.reset()`` deliberately does not touch the
clock: the clock belongs to the runtime, not to the disk.  A cold start
while another query still streams would silently corrupt that query's
execution, so it raises instead (the guard behind
``Database.cold_run``).
"""

from __future__ import annotations

import dataclasses
import math
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import EngineConfig
from repro.errors import ExecutionError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskProfile, DiskStats, SimClock, SimulatedDisk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.stats import StreamingRun
    from repro.storage.table import Table

#: Smallest buffer pool an auto-sized runtime will use.
MIN_AUTO_BUFFER_PAGES = 64

#: shared_buffers ≈ total heap size / this fraction (auto-sizing).
AUTO_BUFFER_FRACTION = 8


@dataclass
class CostLedger:
    """Every simulated cost one query incurred, isolated from the rest.

    The per-query counterpart of the shared runtime's aggregate
    counters: simulated I/O-wait and CPU milliseconds, the Table-II
    I/O accounting, and buffer hit/miss counts — attributed through
    the runtime's attribution windows, so ledgers of interleaved
    queries never bleed into each other.
    """

    io_ms: float = 0.0
    cpu_ms: float = 0.0
    disk: DiskStats = field(default_factory=DiskStats)
    buffer_hits: int = 0
    buffer_misses: int = 0

    @property
    def total_ms(self) -> float:
        """Total simulated time this query spent (I/O wait + CPU)."""
        return self.io_ms + self.cpu_ms

    def snapshot(self) -> "CostLedger":
        """An independent copy of the current state."""
        return CostLedger(
            io_ms=self.io_ms,
            cpu_ms=self.cpu_ms,
            disk=self.disk.snapshot(),
            buffer_hits=self.buffer_hits,
            buffer_misses=self.buffer_misses,
        )

    def add(self, other: "CostLedger") -> None:
        """Fold ``other``'s charges into this ledger (aggregation)."""
        self.io_ms += other.io_ms
        self.cpu_ms += other.cpu_ms
        self.disk.add(other.disk)
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses

    def to_dict(self) -> dict:
        """JSON-ready shape (wire-protocol ``summary`` frames).

        Integer counters stay integers and the millisecond floats
        round-trip exactly through JSON, so a ledger shipped over the
        serving protocol still satisfies :meth:`matches` against the
        runtime totals — the conservation checks survive the wire.
        """
        return {
            "io_ms": self.io_ms,
            "cpu_ms": self.cpu_ms,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "disk": dataclasses.asdict(self.disk),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        return cls(
            io_ms=data["io_ms"],
            cpu_ms=data["cpu_ms"],
            disk=DiskStats(**data["disk"]),
            buffer_hits=data["buffer_hits"],
            buffer_misses=data["buffer_misses"],
        )

    def matches(self, other: "CostLedger",
                rel_tol: float = 1e-9, abs_tol: float = 1e-6) -> bool:
        """True when both ledgers account the same charges.

        Integer counters must match exactly (``DiskStats`` dataclass
        equality covers every field, present and future); the
        millisecond floats are compared with ``math.isclose`` because
        summing per-query ledgers reorders floating-point additions
        relative to the shared totals.
        """
        return (
            self.disk == other.disk
            and self.buffer_hits == other.buffer_hits
            and self.buffer_misses == other.buffer_misses
            and math.isclose(self.io_ms, other.io_ms,
                             rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.cpu_ms, other.cpu_ms,
                             rel_tol=rel_tol, abs_tol=abs_tol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostLedger(io={self.io_ms / 1000:.3f}s "
            f"cpu={self.cpu_ms / 1000:.3f}s "
            f"reads={self.disk.pages_read} "
            f"buffer={self.buffer_hits}h/{self.buffer_misses}m)"
        )


class EngineRuntime:
    """The shared physical substrate of one engine instance.

    Owns the pieces every concurrently-executing query contends on —
    :class:`~repro.storage.disk.SimClock`,
    :class:`~repro.storage.disk.SimulatedDisk`,
    :class:`~repro.storage.buffer.BufferPool` and the physical catalog
    (tables, file-id allocation) — plus the attribution machinery that
    routes charges into per-query :class:`CostLedger`\\ s and the
    registry of live streaming runs that guards cold starts.
    """

    def __init__(self, config: EngineConfig, profile: DiskProfile):
        self.config = config
        self.profile = profile
        self.clock = SimClock()
        self.disk = SimulatedDisk(
            profile=profile,
            clock=self.clock,
            page_size=config.page_size,
            extent_pages=config.extent_pages,
        )
        self.buffer = BufferPool(
            disk=self.disk,
            capacity_pages=config.buffer_pool_pages
            or MIN_AUTO_BUFFER_PAGES,
            hit_cpu_ms=config.cpu.buffer_hit,
        )
        # Deferred import: the tracer reads this runtime's clock, so
        # the telemetry package sits above this module.
        from repro.telemetry.tracer import Tracer
        #: Structured trace emission (disabled by default, zero
        #: simulated cost — reads the clock, never charges it).
        self.tracer = Tracer(self.clock)
        #: Physical catalog: every table (heap + indexes) of the engine.
        self.tables: dict[str, "Table"] = {}
        self._next_file_id = 0
        self._active: CostLedger | None = None
        self._window_disk = DiskStats()
        self._window_hits = 0
        self._window_misses = 0
        self._shard_active: CostLedger | None = None
        self._shard_clock = (0.0, 0.0)
        self._shard_disk = DiskStats()
        self._shard_hits = 0
        self._shard_misses = 0
        # Weak refs: a stream nobody can reach anymore (its cursor was
        # dropped undrained) cannot observe a cache reset, so it stops
        # guarding cold starts the moment it becomes unreachable.
        self._live: list[weakref.ref["StreamingRun"]] = []

    # -- physical catalog -------------------------------------------------

    def allocate_file_id(self) -> int:
        """A fresh engine-unique file id (heaps, index files)."""
        fid = self._next_file_id
        self._next_file_id += 1
        return fid

    def autosize_buffer(self) -> None:
        """Size an auto buffer pool to 1/8 of total heap pages."""
        if self.config.buffer_pool_pages is not None:
            return
        total = sum(t.num_pages for t in self.tables.values())
        self.buffer.capacity_pages = max(
            MIN_AUTO_BUFFER_PAGES, total // AUTO_BUFFER_FRACTION
        )

    # -- per-query cost attribution ---------------------------------------

    def begin_attribution(self, ledger: CostLedger) -> None:
        """Open an attribution window: charges now belong to ``ledger``.

        Windows must not nest — concurrent queries interleave at batch
        boundaries (each pull wrapped in its own window), they do not
        run inside one another.  Millisecond charges are routed into
        the ledger as the clock accrues them; the integer disk/buffer
        counters are snapshotted here and diffed in at
        :meth:`end_attribution`.
        """
        if self._active is not None:
            raise ExecutionError(
                "an attribution window is already open; interleave "
                "queries at batch boundaries instead of nesting them"
            )
        self._active = ledger
        self._window_disk = self.disk.stats.snapshot()
        self._window_hits = self.buffer.stats.hits
        self._window_misses = self.buffer.stats.misses
        self.clock.ledger = ledger

    def end_attribution(self) -> None:
        """Close the open window, folding counter deltas into its ledger."""
        ledger = self._active
        if ledger is None:
            raise ExecutionError("no attribution window is open")
        self.clock.ledger = None
        self._active = None
        ledger.disk.add(self.disk.stats.diff(self._window_disk))
        ledger.buffer_hits += self.buffer.stats.hits - self._window_hits
        ledger.buffer_misses += (self.buffer.stats.misses
                                 - self._window_misses)

    def begin_shard_attribution(self, ledger: CostLedger) -> None:
        """Open a *nested* per-shard window inside the query's window.

        Shard-parallel execution decomposes one query's charges by
        shard: the Exchange operator wraps each shard slice in one of
        these windows so per-shard ledgers tile the parent ledger.
        Unlike :meth:`begin_attribution` this is purely diff-based — it
        snapshots the clock and the integer counters here and folds the
        deltas in at :meth:`end_shard_attribution`, never touching
        ``clock.ledger`` or the outer window — so the parent ledger
        keeps receiving every charge while the shard ledger records its
        share.  Shard windows must not nest in each other.
        """
        if self._shard_active is not None:
            raise ExecutionError(
                "a shard attribution window is already open; shard "
                "slices interleave at batch boundaries, they do not nest"
            )
        self._shard_active = ledger
        self._shard_clock = self.clock.snapshot()
        self._shard_disk = self.disk.stats.snapshot()
        self._shard_hits = self.buffer.stats.hits
        self._shard_misses = self.buffer.stats.misses

    def end_shard_attribution(self) -> None:
        """Close the open shard window, folding deltas into its ledger."""
        ledger = self._shard_active
        if ledger is None:
            raise ExecutionError("no shard attribution window is open")
        self._shard_active = None
        io_before, cpu_before = self._shard_clock
        ledger.io_ms += self.clock.io_ms - io_before
        ledger.cpu_ms += self.clock.cpu_ms - cpu_before
        ledger.disk.add(self.disk.stats.diff(self._shard_disk))
        ledger.buffer_hits += self.buffer.stats.hits - self._shard_hits
        ledger.buffer_misses += (self.buffer.stats.misses
                                 - self._shard_misses)

    def totals(self) -> CostLedger:
        """The shared aggregate counters, as a ledger-shaped snapshot.

        Summing every query's ledger since the last cold start must
        reproduce this (see :meth:`CostLedger.matches`) — the
        conservation property the test suite asserts.
        """
        return CostLedger(
            io_ms=self.clock.io_ms,
            cpu_ms=self.clock.cpu_ms,
            disk=self.disk.stats.snapshot(),
            buffer_hits=self.buffer.stats.hits,
            buffer_misses=self.buffer.stats.misses,
        )

    # -- live streams and cold-start semantics -----------------------------

    def register_stream(self, run: "StreamingRun") -> None:
        """Track a streaming run whose plan is live on this runtime."""
        self._live.append(weakref.ref(run))

    def unregister_stream(self, run: "StreamingRun") -> None:
        """Forget a drained/closed streaming run (idempotent)."""
        self._live = [ref for ref in self._live
                      if ref() is not None and ref() is not run]

    @property
    def live_streams(self) -> tuple["StreamingRun", ...]:
        """Reachable streaming runs started but not yet drained/closed."""
        runs = tuple(run for ref in self._live
                     if (run := ref()) is not None)
        self._live = [weakref.ref(run) for run in runs]
        return runs

    def cold_start(self) -> None:
        """Reset the whole substrate for a measured cold run.

        THE single owner of cold-run semantics: re-sizes an auto buffer
        pool, then resets the buffer (contents and stats), the disk
        (head position and stats) and the clock, reproducing the
        paper's "we clear database buffer caches as well as OS file
        system caches before each query execution".

        Raises :class:`~repro.errors.ExecutionError` when any streaming
        run is still live — resetting caches under a draining cursor
        would silently corrupt its execution and its measurement.
        Drain or close live cursors first.
        """
        if self._active is not None:
            raise ExecutionError(
                "cold start requested inside an attribution window"
            )
        live = self.live_streams
        if live:
            raise ExecutionError(
                f"cold start requested while {len(live)} streaming "
                "run(s) are still live; drain or close them first"
            )
        self.autosize_buffer()
        self.buffer.reset()
        self.disk.reset()
        self.clock.reset()
