"""Execution context: the one handle operators use to touch the substrate.

An :class:`ExecutionContext` binds the shared
:class:`~repro.runtime.EngineRuntime` (clock, disk, buffer pool — the
physical state every concurrent query contends on) to one query's
private :class:`~repro.runtime.CostLedger` (what *this* execution is
charged), so physical operators (and B+-tree scans) charge costs through
a single narrow interface.  Keeping it separate from both the storage
and executor packages breaks what would otherwise be an import cycle.

Operators themselves never see the ledger: they charge the shared clock
and pull pages through the shared pool exactly as before, and the
runtime's attribution windows (opened around every batch pull by
:class:`~repro.exec.stats.StreamingRun`) route those charges into the
context's ledger.
"""

from __future__ import annotations

from repro.config import EngineConfig
from repro.runtime import CostLedger, EngineRuntime
from repro.storage.buffer import PagedFile
from repro.storage.page import HeapPage


class ExecutionContext:
    """Charging surface shared by all operators in one query execution."""

    def __init__(self, config: EngineConfig, runtime: EngineRuntime,
                 ledger: CostLedger | None = None):
        self.config = config
        self.runtime = runtime
        #: This query's private accounting (see EngineRuntime windows).
        self.ledger = ledger if ledger is not None else CostLedger()
        # Hot-path aliases: the runtime's clock/disk/buffer objects are
        # stable for its lifetime (cold starts reset them in place), so
        # operators keep attribute-level access without indirection.
        self.clock = runtime.clock
        self.disk = runtime.disk
        self.buffer = runtime.buffer

    # -- page access ------------------------------------------------------

    def get_page(self, file: PagedFile, page_id: int) -> HeapPage:
        """Fetch one page through the buffer pool."""
        return self.buffer.get_page(file, page_id)

    def get_run(self, file: PagedFile, start_page: int,
                n_pages: int) -> list[HeapPage]:
        """Fetch a contiguous run of pages through the buffer pool."""
        return self.buffer.get_run(file, start_page, n_pages)

    # -- CPU charging -----------------------------------------------------

    def charge_inspect(self, n: int = 1) -> None:
        """Charge predicate evaluation on ``n`` tuples."""
        self.clock.charge_cpu(self.config.cpu.tuple_inspect * n)

    def charge_emit(self, n: int = 1) -> None:
        """Charge emission of ``n`` tuples to the parent operator."""
        self.clock.charge_cpu(self.config.cpu.tuple_emit * n)

    def charge_compare(self, n: int = 1) -> None:
        """Charge ``n`` sort comparisons."""
        self.clock.charge_cpu(self.config.cpu.compare * n)

    def charge_hash(self, n: int = 1) -> None:
        """Charge ``n`` hash operations."""
        self.clock.charge_cpu(self.config.cpu.hash_op * n)

    def charge_cache_probe(self, n: int = 1) -> None:
        """Charge ``n`` auxiliary-cache probes (Smooth Scan bookkeeping)."""
        self.clock.charge_cpu(self.config.cpu.cache_probe * n)

    def charge_cache_insert(self, n: int = 1) -> None:
        """Charge ``n`` auxiliary-cache inserts (Smooth Scan bookkeeping)."""
        self.clock.charge_cpu(self.config.cpu.cache_insert * n)

    def charge_index_entry(self, n: int = 1) -> None:
        """Charge advancing ``n`` entries along a B+-tree leaf chain."""
        self.clock.charge_cpu(self.config.cpu.index_entry * n)

    def charge_exchange(self, n: int = 1) -> None:
        """Charge moving ``n`` rows through an exchange merge."""
        self.clock.charge_cpu(self.config.cpu.exchange_row * n)
