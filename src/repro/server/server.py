"""The asyncio serving front: NDJSON frames over TCP.

``python -m repro.server --tpch 0.1`` starts one engine and serves it
to any number of concurrent clients.  Each connection runs one
:class:`~repro.server.session.ServerSession`; all of them share one
:class:`~repro.runtime.EngineRuntime` through the admission
controller's in-flight slots, so the serving behavior — admit, degrade
to a bounded Smooth Scan, reject, or queue — is exactly what the
deterministic in-process benchmark measures.

Concurrency model: everything engine-side is synchronous and runs on
the event-loop thread, so protocol handling is atomic per frame.  Long
results never monopolize the loop — a ``query``'s drain pulls one
``rows`` frame per quantum and yields, so many streaming results
interleave on the shared substrate at batch granularity, the asyncio
rendering of the cooperative scheduler's round-robin quanta.

Flow control is two-layered: each connection buffers outbound frames in
an outbox drained by a writer task (``await writer.drain()`` propagates
TCP backpressure), and a drain task stops pulling rows from the engine
while its client's outbox is over the high-water mark — a slow reader
throttles its own queries, never the server.

Per-request wall-clock timeouts cover the two unbounded waits: a
``query`` streaming its result (the cursor is closed and a ``timeout``
error reports the partial measurement) and an execute parked in the
admission queue (the request is withdrawn).  Graceful shutdown —
``shutdown`` frame or SIGINT — stops accepting, flushes the admission
queue with ``shutting_down`` errors, lets in-flight statements drain
for a grace period, then disconnects whoever remains.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from collections import deque

from repro.server import protocol
from repro.server.admission import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_SLA_MULTIPLE,
    AdmissionController,
)
from repro.server.protocol import ProtocolError, error_frame
from repro.server.session import ServerFront, ServerSession

#: Default TCP port (no registered service; high and memorable).
DEFAULT_PORT = 7421

#: Default per-request wall-clock timeout (seconds).
DEFAULT_TIMEOUT_S = 30.0

#: Outbox frames above which a connection's drains stop pulling rows.
DEFAULT_OUTBOX_LIMIT = 256

#: Grace period for in-flight statements during shutdown (seconds).
DEFAULT_GRACE_S = 5.0


class ClientConnection:
    """One TCP client: reader loop, writer loop, drain tasks."""

    def __init__(self, server: "ReproServer",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.session: ServerSession = server.front.session(sink=self._sink)
        self._outbox: deque[dict] = deque()
        self._wakeup = asyncio.Event()
        self._can_buffer = asyncio.Event()
        self._can_buffer.set()
        #: ids of ``query`` requests whose drain has not started yet
        #: (parked in the admission queue; the grant arrives via sink).
        self._query_rids: set = set()
        self._tasks: set[asyncio.Task] = set()
        self._writer_task: asyncio.Task | None = None

    # -- outbound plumbing ---------------------------------------------------

    def _push(self, frame: dict) -> None:
        self._outbox.append(frame)
        self._wakeup.set()
        if len(self._outbox) >= self.server.outbox_limit:
            self._can_buffer.clear()

    def _sink(self, frame: dict) -> None:
        """Frames the front produces outside a request/response call."""
        rid = frame.get("id")
        self._push(frame)
        if (frame.get("op") == "executing" and rid in self._query_rids):
            # A parked query got its slot: stream it out.
            self._query_rids.discard(rid)
            self._spawn(self._drain_cursor(rid, frame["cursor"]))

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _writer_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._outbox:
                frame = self._outbox.popleft()
                self.writer.write(protocol.encode_frame(frame))
                if len(self._outbox) < self.server.outbox_limit:
                    self._can_buffer.set()
                await self.writer.drain()
            self._can_buffer.set()

    # -- the connection ------------------------------------------------------

    async def run(self) -> None:
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        self._push(self.session.hello())
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                except ProtocolError as exc:
                    # Unparseable *lines* close the connection (the
                    # stream may be desynchronized); frame-shaped
                    # mistakes get structured errors instead.
                    self._push(error_frame(None, exc.code, exc.message))
                    break
                await self._dispatch(frame)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._teardown()

    async def _dispatch(self, frame: dict) -> None:
        op = frame.get("op")
        rid = frame.get("id")
        hashable_rid = isinstance(rid, (str, int))
        if op == "query" and hashable_rid:
            # Decompose: start as a plain execute, then stream the rows
            # quantum-by-quantum so other clients interleave.
            started = self.session.handle(dict(frame, op="execute"))
            for response in started:
                self._push(response)
            executing = next((f for f in started
                              if f.get("op") == "executing"), None)
            if executing is not None:
                self._spawn(self._drain_cursor(rid, executing["cursor"]))
            elif not started:  # parked: the sink starts the drain later
                self._query_rids.add(rid)
                self._spawn(self._parked_timeout(rid))
            return
        responses = self.session.handle(frame)
        for response in responses:
            self._push(response)
        if op == "execute" and not responses and hashable_rid:
            self._spawn(self._parked_timeout(rid))
        if any(f.get("op") == "shutting_down" for f in responses):
            asyncio.ensure_future(self.server.shutdown())

    async def _drain_cursor(self, rid, cid: int) -> None:
        try:
            await asyncio.wait_for(self._drain_inner(rid, cid),
                                   self.server.request_timeout_s)
        except asyncio.TimeoutError:
            closed = self.session.handle(
                {"op": "close", "id": rid, "cursor": cid})
            summary = closed[0].get("summary") if closed else None
            self._push(error_frame(
                rid, protocol.ERR_TIMEOUT,
                "query timed out mid-stream; cursor closed",
                detail=summary,
            ))

    async def _drain_inner(self, rid, cid: int) -> None:
        while True:
            await self._can_buffer.wait()      # outbox backpressure
            frame = self.session.drain_step(rid, cid)
            if frame is None:
                return
            self._push(frame)
            if frame.get("done"):
                return
            await asyncio.sleep(0)             # yield one quantum

    async def _parked_timeout(self, rid) -> None:
        await asyncio.sleep(self.server.request_timeout_s)
        if self.session.front.cancel_parked(self.session, rid):
            self._query_rids.discard(rid)
            self._push(error_frame(
                rid, protocol.ERR_TIMEOUT,
                "request timed out waiting for an in-flight slot",
            ))

    async def _teardown(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        self.session.close()
        if self._writer_task is not None:
            self._writer_task.cancel()
        with contextlib.suppress(Exception):
            while self._outbox:
                self.writer.write(
                    protocol.encode_frame(self._outbox.popleft()))
            await self.writer.drain()
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()
        self.server._conns.discard(self)


class ReproServer:
    """The serving endpoint: one engine, one admission front, N sockets."""

    def __init__(self, db, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 options=None,
                 sla_multiple: float = DEFAULT_SLA_MULTIPLE,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 request_timeout_s: float = DEFAULT_TIMEOUT_S,
                 outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
                 grace_s: float = DEFAULT_GRACE_S):
        self.front = ServerFront(
            db, options=options,
            admission=AdmissionController(db, sla_multiple=sla_multiple,
                                          max_inflight=max_inflight),
        )
        self.host = host
        self.port = port
        self.request_timeout_s = request_timeout_s
        self.outbox_limit = outbox_limit
        self.grace_s = grace_s
        self._conns: set[ClientConnection] = set()
        self._tcp: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._shutting_down = False

    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port."""
        self._tcp = await asyncio.start_server(self._accept,
                                               self.host, self.port)
        self.port = self._tcp.sockets[0].getsockname()[1]

    def _accept(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        conn = ClientConnection(self, reader, writer)
        self._conns.add(conn)
        asyncio.ensure_future(conn.run())

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight work, then disconnect."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self.front.begin_drain()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        deadline = asyncio.get_event_loop().time() + self.grace_s
        while (self.front.inflight > 0
               and asyncio.get_event_loop().time() < deadline):
            await asyncio.sleep(0.01)
        for conn in list(self._conns):
            await conn._teardown()
        self._stopped.set()


async def _serve(server: ReproServer) -> None:
    await server.start()
    # The readiness line scripted clients (and the CI smoke) wait for.
    print(f"repro server listening on {server.host}:{server.port}",
          flush=True)
    await server.serve_forever()
    print("repro server stopped", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a simulated engine over NDJSON/TCP with "
                    "SLA-aware admission control.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port (0 picks a free one; default "
                             f"{DEFAULT_PORT})")
    parser.add_argument("--rows", type=int, default=60_000,
                        help="micro-table size (default 60000)")
    parser.add_argument("--tpch", type=float, default=None, metavar="SF",
                        help="serve tuned TPC-H-lite at this scale factor "
                             "instead of the micro table")
    parser.add_argument("--mode", default="tuned",
                        choices=("original", "tuned", "smooth"),
                        help="planner mode for served statements")
    parser.add_argument("--sla", type=float, default=DEFAULT_SLA_MULTIPLE,
                        help="SLA budget as a multiple of the full-scan "
                             f"cost (default {DEFAULT_SLA_MULTIPLE})")
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="concurrently executing statements before "
                             "the admission queue engages")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                        help="per-request wall-clock timeout (seconds)")
    args = parser.parse_args(argv)
    from repro.sql.repl import load_database
    from repro.workloads.tpch.queries import mode_options
    db, _default_mode = load_database(args)
    server = ReproServer(
        db, host=args.host, port=args.port,
        options=mode_options(args.mode),
        sla_multiple=args.sla, max_inflight=args.max_inflight,
        request_timeout_s=args.timeout,
    )
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    sys.exit(main())
