"""``python -m repro.server`` — start the asyncio serving front."""

import sys

from repro.server.server import main

sys.exit(main())
