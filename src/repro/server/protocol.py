"""The wire protocol: newline-delimited JSON frames.

One frame per line, each frame a JSON object.  Every request carries a
client-chosen ``id`` (string or integer); every response echoes it, so
clients may pipeline requests and match replies out of order.  The
protocol is deliberately transport-agnostic: the asyncio socket server
(:mod:`repro.server.server`) encodes frames as ``utf-8`` lines, while
the deterministic in-process transport
(:mod:`repro.server.inprocess`) passes the same dict frames directly —
both drive one sans-IO :class:`~repro.server.session.ServerSession`.

Request frames (client → server)::

    {"op": "prepare",  "id": 1, "sql": "SELECT ... WHERE c2 < ?"}
    {"op": "execute",  "id": 2, "statement": 0, "params": [100]}
    {"op": "execute",  "id": 2, "sql": "SELECT ...", "params": null}
    {"op": "fetch",    "id": 3, "cursor": 0, "n": 256}
    {"op": "close",    "id": 4, "cursor": 0}
    {"op": "query",    "id": 5, "sql": "SELECT ...", "params": [7]}
    {"op": "stats",    "id": 6}
    {"op": "shutdown", "id": 7}

Response frames (server → client)::

    {"op": "hello",     "protocol": 1, ...}          # on connect
    {"op": "prepared",  "id": 1, "statement": 0, "params": 1, ...}
    {"op": "executing", "id": 2, "cursor": 0, "description": [...],
     "admission": {"action": "admit", "estimated_cost": ..., ...}}
    {"op": "rows",      "id": 3, "cursor": 0, "rows": [[...], ...],
     "done": false}                                  # + "summary" when done
    {"op": "closed",    "id": 4, "cursor": 0, "summary": {...}}
    {"op": "stats",     "id": 6, "admission": {...}, "engine": {...}}
    {"op": "error",     "id": 2, "code": "rejected", "message": "...",
     "detail": {"estimated_cost": ..., "budget": ...}}

A ``query`` request is sugar for execute-plus-drain: the server answers
with ``executing``, then streams ``rows`` frames until the final one
carries ``done: true`` and the measurement ``summary``.  Structured
errors never close the connection — only unparseable *lines* do.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import ReproError

#: Protocol version announced in the server's ``hello`` frame.
PROTOCOL_VERSION = 1

#: Request operations a server accepts.
REQUEST_OPS = (
    "prepare", "execute", "fetch", "close", "query", "stats", "shutdown",
)

#: Structured error codes (the ``code`` field of ``error`` frames).
ERR_BAD_FRAME = "bad_frame"            # malformed frame / missing fields
ERR_UNKNOWN_OP = "unknown_op"          # op outside REQUEST_OPS
ERR_SQL = "sql_error"                  # statement failed to lex/parse/bind
ERR_REJECTED = "rejected"              # admission: estimate exceeds budget
ERR_STATEMENT_MISSING = "statement_missing"
ERR_CURSOR_MISSING = "cursor_missing"
ERR_SHUTTING_DOWN = "shutting_down"    # server is draining, no new work
ERR_TIMEOUT = "timeout"                # per-request timeout expired
ERR_INTERFACE = "interface"            # session-layer misuse (closed
                                       # connection/cursor, bad fetch size)
ERR_INTERNAL = "internal"              # unexpected engine error


class ProtocolError(ReproError):
    """A frame violated the protocol; carries the structured error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(frame: Mapping) -> bytes:
    """One frame as a newline-terminated JSON line (sorted keys, so the
    byte encoding of a frame is deterministic)."""
    return (json.dumps(frame, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: "bytes | str") -> dict:
    """Parse one line into a frame dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(ERR_BAD_FRAME,
                                f"frame is not utf-8: {exc}") from None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERR_BAD_FRAME,
                            f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(ERR_BAD_FRAME,
                            "frame must be a JSON object")
    return frame


#: Required fields per request op: name → (type check, description).
_FIELD_CHECKS = {
    "sql": (str, "a string"),
    "statement": (int, "an integer statement handle"),
    "cursor": (int, "an integer cursor handle"),
}


def _check_field(frame: dict, name: str) -> None:
    value = frame.get(name)
    ctype, what = _FIELD_CHECKS[name]
    if not isinstance(value, ctype) or isinstance(value, bool):
        raise ProtocolError(
            ERR_BAD_FRAME, f"{frame['op']!r} frame needs {name!r}: {what}"
        )


def validate_request(frame: dict) -> str:
    """Check a request frame's shape; returns its ``op``.

    Raises :class:`ProtocolError` with the structured code a server
    should answer with.  ``id`` may be any JSON string or integer; it
    is only echoed, never interpreted.
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERR_BAD_FRAME, "frame needs a string 'op'")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP,
            f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}"
        )
    rid = frame.get("id")
    if not isinstance(rid, (str, int)) or isinstance(rid, bool):
        raise ProtocolError(ERR_BAD_FRAME,
                            f"{op!r} frame needs an 'id' (string or int)")
    if op == "prepare":
        _check_field(frame, "sql")
    elif op in ("execute", "query"):
        if "statement" in frame:
            _check_field(frame, "statement")
        else:
            _check_field(frame, "sql")
        params = frame.get("params")
        if params is not None and not isinstance(params, (list, dict)):
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"{op!r} params must be an array, an object, or null"
            )
    elif op in ("fetch", "close"):
        _check_field(frame, "cursor")
        if op == "fetch":
            n = frame.get("n")
            if n is not None and (not isinstance(n, int)
                                  or isinstance(n, bool) or n <= 0):
                raise ProtocolError(ERR_BAD_FRAME,
                                    "'fetch' n must be a positive integer")
    return op


def error_frame(rid: object, code: str, message: str,
                detail: dict | None = None) -> dict:
    """A structured error response (never closes the connection)."""
    frame = {"op": "error", "id": rid, "code": code, "message": message}
    if detail:
        frame["detail"] = detail
    return frame


def rows_payload(rows: list) -> list[list]:
    """Result rows as JSON-encodable lists (tuples become arrays)."""
    return [list(row) for row in rows]
