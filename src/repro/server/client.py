"""A minimal blocking NDJSON client, plus the CI smoke script.

:class:`SocketClient` is deliberately tiny — a line-buffered socket and
frame helpers — because the protocol does the work: requests carry ids,
responses echo them, rows stream until ``done``.  ``python -m
repro.server.client --port N --expect-reject`` runs the scripted smoke
the CI job uses against a live server: prepare, execute with
parameters, fetch to completion, verify an over-budget statement is
rejected with the priced estimate, and (optionally) shut the server
down — exiting non-zero on any protocol surprise.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.server import protocol
from repro.server.protocol import ProtocolError


class SocketClient:
    """One blocking connection to a repro server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 timeout_s: float = 30.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout_s)
        self._file = self.sock.makefile("rb")
        self._next_id = 0
        self.hello = self.recv()

    def send(self, frame: dict) -> object:
        """Send one request frame, stamping a fresh id; returns the id."""
        frame = dict(frame)
        frame.setdefault("id", self._next_id)
        self._next_id += 1
        self.sock.sendall(protocol.encode_frame(frame))
        return frame["id"]

    def recv(self) -> dict:
        """Read one response frame (blocking)."""
        line = self._file.readline()
        if not line:
            raise ProtocolError(protocol.ERR_BAD_FRAME,
                                "server closed the connection")
        return protocol.decode_frame(line)

    def roundtrip(self, frame: dict) -> dict:
        """Send one request and read its single response."""
        rid = self.send(frame)
        response = self.recv()
        if response.get("id") != rid:
            raise ProtocolError(
                protocol.ERR_BAD_FRAME,
                f"response id {response.get('id')!r} does not echo "
                f"request id {rid!r}"
            )
        return response

    def query(self, sql: str, params: object = None) -> tuple[list, dict]:
        """Run one statement to completion; returns (rows, last frame).

        The last frame is the final ``rows`` frame (carrying the
        measurement ``summary``) — or the ``error`` frame when the
        statement was rejected or failed.
        """
        rid = self.send({"op": "query", "sql": sql, "params": params})
        rows: list = []
        while True:
            frame = self.recv()
            if frame.get("id") != rid:
                continue  # frames of other in-flight requests
            if frame["op"] == "error":
                return rows, frame
            if frame["op"] == "rows":
                rows.extend(frame["rows"])
                if frame["done"]:
                    return rows, frame

    def close(self) -> None:
        self._file.close()
        self.sock.close()


def _fail(message: str) -> int:
    print(f"server smoke FAILED: {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    """The scripted smoke run the CI server job drives."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.client",
        description="Scripted smoke client for a running repro server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--expect-reject", action="store_true",
                        help="require the full-table statement to be "
                             "admission-rejected (server started with a "
                             "sub-full-scan --sla)")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down at the end")
    args = parser.parse_args(argv)

    client = SocketClient(args.host, args.port)
    if client.hello.get("op") != "hello" \
            or client.hello.get("protocol") != protocol.PROTOCOL_VERSION:
        return _fail(f"bad hello frame: {client.hello}")

    # prepare + execute + fetch: the positive round-trip.  The probe is
    # selective enough that its index plan prices under the budget even
    # when the server runs a deliberately tight --sla for the rejection
    # half of this smoke.
    probe_hi = 25
    prepared = client.roundtrip(
        {"op": "prepare", "sql": "SELECT c1, c2 FROM micro WHERE c2 < ?"})
    if prepared.get("op") != "prepared" or prepared.get("params") != 1:
        return _fail(f"bad prepared frame: {prepared}")
    executing = client.roundtrip(
        {"op": "execute", "statement": prepared["statement"],
         "params": [probe_hi]})
    if executing.get("op") != "executing":
        return _fail(f"selective probe not admitted: {executing}")
    admission = executing.get("admission") or {}
    if admission.get("action") != "admit":
        return _fail(f"expected a plain admit, got: {admission}")
    rows: list = []
    while True:
        frame = client.roundtrip(
            {"op": "fetch", "cursor": executing["cursor"], "n": 64})
        if frame.get("op") != "rows":
            return _fail(f"bad fetch response: {frame}")
        rows.extend(frame["rows"])
        if frame["done"]:
            summary = frame.get("summary") or {}
            break
    if not rows or any(row[1] >= probe_hi for row in rows):
        return _fail(f"probe returned wrong rows ({len(rows)})")
    if summary.get("rows") != len(rows) or "ledger" not in summary:
        return _fail(f"bad summary: {summary}")

    # The over-budget statement: a full-table scan.
    _rows, last = client.query("SELECT * FROM micro")
    if args.expect_reject:
        if last.get("op") != "error" or last.get("code") != "rejected":
            return _fail(f"full scan was not rejected: {last}")
        detail = last.get("detail") or {}
        if not detail.get("estimated_cost", 0) > detail.get("budget", 0):
            return _fail(f"rejection not priced over budget: {detail}")
    elif last.get("op") == "error":
        return _fail(f"unexpected error: {last}")

    stats = client.roundtrip({"op": "stats"})
    admission_stats = stats.get("admission") or {}
    if admission_stats.get("admitted", 0) < 1:
        return _fail(f"stats missing admits: {stats}")
    if args.expect_reject and admission_stats.get("rejected", 0) < 1:
        return _fail(f"stats missing rejections: {stats}")

    if args.shutdown:
        ack = client.roundtrip({"op": "shutdown"})
        if ack.get("op") != "shutting_down":
            return _fail(f"bad shutdown ack: {ack}")
    client.close()
    print(f"server smoke ok: {len(rows)} rows fetched, "
          f"admission={admission_stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    sys.exit(main())
