"""The serving front: wire protocol, admission control, transports.

Layered so the deterministic benchmark and the real socket server share
every serving decision:

* :mod:`repro.server.protocol` — the NDJSON frame vocabulary.
* :mod:`repro.server.admission` — SLA pricing: admit / degrade / reject,
  plus in-flight slots and queue-wait accounting.
* :mod:`repro.server.session` — the sans-IO request handler
  (:class:`~repro.server.session.ServerFront` /
  :class:`~repro.server.session.ServerSession`).
* :mod:`repro.server.inprocess` — deterministic dict-frame transport
  (the 1,000-client benchmark's wire).
* :mod:`repro.server.server` — the asyncio TCP server
  (``python -m repro.server``).
* :mod:`repro.server.client` — a blocking socket client and the CI
  smoke script (``python -m repro.server.client``).
"""

from repro.server.admission import (
    ADMIT,
    DEGRADE,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.session import ServerFront, ServerSession

__all__ = [
    "ADMIT",
    "DEGRADE",
    "REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerFront",
    "ServerSession",
]
