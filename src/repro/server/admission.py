"""SLA-aware admission control: price first, then admit, degrade or reject.

The paper's promise is a *guarantee*: Smooth Scan bounds the worst-case
cost of a scan, so an operator can offer an SLA expressed as a multiple
of the full-scan cost (:func:`repro.costmodel.sla.sla_bound_for_full_scans`)
and keep it no matter how wrong the statistics are.  This module is
where that guarantee becomes a live gatekeeping decision instead of an
offline number: every statement entering the serving front is priced
with the planner's own estimate — the cost of the plan that *would
run*, pinned recipe and all — and checked against the base table's SLA
budget.

Four outcomes:

* **admit** — the estimate fits the budget; run the plan as planned.
* **split** — the serial estimate breaks the budget but the statement's
  base table is partitioned (:meth:`repro.database.Database.
  shard_table`) and the shard-parallel plan — one scan per shard under
  an :class:`~repro.exec.exchange.Exchange` — re-prices within it; the
  statement is admitted on the front's shared shard-parallel
  connection instead of being degraded or rejected.
* **degrade** — the plan the optimizer (or the plan cache, replaying a
  recipe frozen at stale parameter values) wants to run is priced over
  budget, but a Smooth Scan over the same table is worst-case bounded
  within it (:func:`repro.costmodel.sla.worst_case_total_cost`); the
  statement is re-routed to a forced Smooth Scan whose
  :class:`~repro.core.trigger.SLADrivenTrigger` is derived from the
  same budget (Section VI-D's trigger, enforced at runtime).
* **reject** — even the Smooth Scan worst case breaks the budget (or a
  hint pins a path the controller may not override); the client gets a
  structured ``rejected`` error carrying the estimate and the budget.

Queueing is the fourth dimension: the controller also owns the
in-flight slot count, so a serving front can hold admitted statements
in FIFO order while the engine is saturated.  Queue waits are measured
on the *simulated* clock and reported as nearest-rank p50/p99 — the
same percentile the scheduler uses — next to the admitted / degraded /
rejected counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.trigger import SLADrivenTrigger
from repro.costmodel import formulas, sla
from repro.costmodel.params import CostParams
from repro.errors import ConfigError
from repro.exec.scheduler import nearest_rank_ms
from repro.optimizer.planner import PlannerOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Connection, PreparedStatement
    from repro.database import Database
    from repro.optimizer.planner import PlannedQuery

#: Default SLA budget: two full scans of the statement's base table
#: (the paper's Fig. 7b bound).
DEFAULT_SLA_MULTIPLE = 2.0

#: Default cap on concurrently-executing statements.
DEFAULT_MAX_INFLIGHT = 64

ADMIT = "admit"
DEGRADE = "degrade"
REJECT = "reject"
SPLIT = "split"


@dataclass(frozen=True)
class AdmissionDecision:
    """One priced statement and what the controller ruled.

    ``estimated_cost`` is the planner's estimate (abstract I/O units,
    the Section V formulas) for the plan that would run — for a plan
    cache hit that is the *pinned* recipe re-priced at the new
    parameter values, which is exactly how a drifted cached plan gets
    caught.  ``budget`` is the base table's SLA bound in the same
    units.
    """

    action: str                 # ADMIT | DEGRADE | REJECT | SPLIT
    table: str
    estimated_cost: float
    budget: float
    reason: str
    #: For SPLIT decisions: the shard-parallel plan's estimate — the
    #: price that fit the budget after the serial estimate did not.
    split_estimate: float | None = None

    @property
    def admitted(self) -> bool:
        """True for admits, degrade-to-smooth and split-to-shards."""
        return self.action != REJECT

    def to_dict(self) -> dict:
        """The JSON shape carried by ``executing`` / ``error`` frames."""
        return {
            "action": self.action,
            "table": self.table,
            "estimated_cost": self.estimated_cost,
            "budget": self.budget,
            "reason": self.reason,
            "split_estimate": self.split_estimate,
        }


@dataclass
class AdmissionStats:
    """Live counters the serving front exposes via ``stats`` frames."""

    admitted: int = 0
    degraded: int = 0
    #: Statements admitted as shard-parallel plans after their serial
    #: estimate broke the budget (the ``split`` verdict).
    split: int = 0
    rejected: int = 0
    #: Requests that had to wait for an in-flight slot.
    queued: int = 0
    #: Queue wait (simulated ms) of every admitted request (0 for
    #: requests that found a free slot immediately).
    queue_waits_ms: list[float] = field(default_factory=list)
    #: Every rejection's (estimated_cost, budget) — the invariant the
    #: serving benchmark asserts: estimate > budget for all of these.
    rejections: list[tuple[float, float]] = field(default_factory=list)
    #: Every split's (serial estimate, split estimate, budget) — the
    #: mirror invariant: serial estimate > budget >= split estimate.
    splits: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def decided(self) -> int:
        """Total statements priced (every verdict counted)."""
        return self.admitted + self.degraded + self.split + self.rejected

    @property
    def queue_wait_p50_ms(self) -> float:
        return nearest_rank_ms(self.queue_waits_ms, 50)

    @property
    def queue_wait_p99_ms(self) -> float:
        return nearest_rank_ms(self.queue_waits_ms, 99)

    def note_admitted(self, decision: AdmissionDecision,
                      wait_ms: float, was_queued: bool) -> None:
        if decision.action == DEGRADE:
            self.degraded += 1
        elif decision.action == SPLIT:
            self.split += 1
            self.splits.append((decision.estimated_cost,
                                decision.split_estimate or 0.0,
                                decision.budget))
        else:
            self.admitted += 1
        if was_queued:
            self.queued += 1
        self.queue_waits_ms.append(wait_ms)

    def note_rejected(self, decision: AdmissionDecision) -> None:
        self.rejected += 1
        self.rejections.append((decision.estimated_cost, decision.budget))

    def to_dict(self) -> dict:
        """The JSON shape of the ``stats`` frame's ``admission`` field."""
        return {
            "admitted": self.admitted,
            "degraded": self.degraded,
            "split": self.split,
            "rejected": self.rejected,
            "queued": self.queued,
            "queue_wait_p50_ms": self.queue_wait_p50_ms,
            "queue_wait_p99_ms": self.queue_wait_p99_ms,
        }


class AdmissionController:
    """Prices statements against per-table SLA budgets and rations slots.

    ``sla_multiple`` sets every base table's budget to that multiple of
    its full-scan cost; ``max_inflight`` caps concurrently-executing
    statements (the serving front queues the overflow FIFO).  Budgets
    and degrade options are derived once per table and cached — the
    degrade options carry one stable
    :class:`~repro.core.trigger.SLADrivenTrigger` instance per table so
    degraded executions share a plan-cache entry.
    """

    def __init__(self, db: "Database",
                 sla_multiple: float = DEFAULT_SLA_MULTIPLE,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT):
        if sla_multiple <= 0:
            raise ConfigError("sla_multiple must be positive")
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        self.db = db
        self.sla_multiple = sla_multiple
        self.max_inflight = max_inflight
        self.inflight = 0
        self.stats = AdmissionStats()
        self._budgets: dict[str, float] = {}
        self._degrade_options: dict[str, PlannerOptions | None] = {}
        #: Shared shard-parallel connections for split re-pricing and
        #: execution, keyed by options fingerprint so every session
        #: with the same base options shares one plan-cache entry.
        self._split_conns: dict[tuple, "Connection"] = {}

    # -- pricing ------------------------------------------------------------

    def table_params(self, table_name: str) -> CostParams:
        """Cost-model parameters for one table's SLA math.

        Keyed on the table's first indexed column when one exists (the
        geometry Smooth Scan's worst case is computed over); an
        unindexed table falls back to a 4-byte key — its budget only
        needs the full-scan term, which is key-independent.
        """
        table = self.db.table(table_name)
        indexed = next(iter(table.indexes), None)
        if indexed is not None:
            return CostParams.from_table(
                table, self.db.config, self.db.profile, indexed,
                selectivity=1.0,
            )
        return CostParams(
            tuple_size=table.schema.tuple_size(self.db.config.tuple_header),
            num_tuples=table.row_count,
            page_size=self.db.config.page_size,
            page_header=self.db.config.page_header,
            selectivity=1.0,
            rand_cost=self.db.profile.rand_cost,
            seq_cost=self.db.profile.seq_cost,
        )

    def budget_for(self, table_name: str) -> float:
        """The SLA budget (I/O units) for statements based on this table."""
        if table_name not in self._budgets:
            self._budgets[table_name] = sla.sla_bound_for_full_scans(
                self.table_params(table_name), self.sla_multiple
            )
        return self._budgets[table_name]

    def degrade_options_for(self, table_name: str,
                            base: PlannerOptions | None
                            ) -> PlannerOptions | None:
        """Options for a degrade-to-smooth execution, or None when even
        Smooth Scan's worst case cannot honor the table's budget.

        The forced Smooth Scan carries the SLA-driven trigger computed
        from the same budget (Eq. (23) via
        :func:`repro.costmodel.sla.trigger_cardinality`): run
        traditional up to the trigger cardinality, then morph, so even
        a 100%-selectivity surprise stays within the bound.
        """
        if table_name not in self._degrade_options:
            options: PlannerOptions | None
            table = self.db.table(table_name)
            if not table.indexes:
                options = None  # Smooth Scan needs an index to anchor on
            else:
                try:
                    trigger_card = sla.trigger_cardinality(
                        self.table_params(table_name),
                        self.budget_for(table_name),
                    )
                except ConfigError:
                    options = None  # budget below the eager worst case
                else:
                    options = replace(
                        base or PlannerOptions(),
                        force_path="smooth",
                        enable_smooth=True,
                        smooth_trigger=SLADrivenTrigger(trigger_card),
                    )
            self._degrade_options[table_name] = options
        return self._degrade_options[table_name]

    def split_options_for(self, table_name: str,
                          base: PlannerOptions | None
                          ) -> PlannerOptions | None:
        """Options for a shard-parallel re-price, or None when the
        table has no shard set to split over.

        The split plan keeps the session's base options (a smooth
        session splits into per-shard Smooth Scans) with
        ``shard_parallel`` switched on and any force cleared — the
        controller only splits statements whose own hints did not pin a
        path (a hinted statement is rejected before splitting).
        """
        shard_set = self.db.shard_set(table_name)
        if shard_set is None or shard_set.num_shards < 2:
            return None
        return replace(base or PlannerOptions(),
                       shard_parallel=True, force_path=None)

    def split_connection(self, table_name: str,
                         base: PlannerOptions | None
                         ) -> "Connection | None":
        """The shared shard-parallel connection for one table's splits.

        One warm connection per options fingerprint: split re-pricing
        in :meth:`decide` and split *execution* in the serving front go
        through the same connection, so the priced plan is exactly the
        cached plan the statement then runs.
        """
        options = self.split_options_for(table_name, base)
        if options is None:
            return None
        from repro.optimizer.plan_cache import options_fingerprint
        key = options_fingerprint(options)
        conn = self._split_conns.get(key)
        if conn is None:
            conn = self.db.connect(options=options, cold=False)
            self._split_conns[key] = conn
        return conn

    def _smooth_estimate(self, table_name: str, decision) -> float:
        """Price one smooth-path plan decision.

        The planner deliberately leaves Smooth Scan decisions uncosted
        (``estimated_cost = NaN`` — the morphing scan never competes on
        estimates), but the gatekeeper still needs a number: the
        Section V smooth formula evaluated at the decision's estimated
        selectivity, i.e. what this execution is *expected* to cost if
        the statistics hold.  The worst case is checked separately via
        the table budget, so a smooth plan whose expectation fits is a
        plain admit.
        """
        table = self.db.table(table_name)
        column = decision.column or next(iter(table.indexes), None)
        if column is None:  # no index anchor: smooth covers the heap
            return formulas.full_scan_cost(self.table_params(table_name))
        params = CostParams.from_table(
            table, self.db.config, self.db.profile, column,
            selectivity=decision.estimated_selectivity,
        )
        return formulas.smooth_scan_cost(params)

    def price(self, connection: "Connection",
              statement: "PreparedStatement",
              params: object) -> tuple["PlannedQuery", float]:
        """Plan (through the plan cache) and price one execution.

        The price is the summed estimated cost of every access-path and
        join decision in the plan that would run — on a cache hit, the
        pinned recipe re-priced at the *new* parameter binding.  Smooth
        decisions carry no planner estimate and are priced with the
        smooth cost model instead (:meth:`_smooth_estimate`).
        """
        bound = statement._bound
        opts = bound.planner_options(connection.options)
        planned, _outcome = connection._plan(bound, opts, params)
        cost = 0.0
        for decision in planned.decisions():
            if decision.shard is not None:
                # Per-shard decisions under an Exchange: the exchange
                # decision on top prices the whole subtree (max shard
                # cost + merge), so summing the shards here would both
                # double-count and miss the overlap.
                continue
            estimate = decision.estimated_cost
            if math.isnan(estimate):
                estimate = self._smooth_estimate(bound.spec.table, decision)
            cost += estimate
        return planned, cost

    def decide(self, connection: "Connection",
               statement: "PreparedStatement",
               params: object) -> AdmissionDecision:
        """Price one execution and rule admit / degrade / reject."""
        bound = statement._bound
        table = bound.spec.table
        _planned, estimate = self.price(connection, statement, params)
        budget = self.budget_for(table)
        if estimate <= budget:
            return AdmissionDecision(
                action=ADMIT, table=table, estimated_cost=estimate,
                budget=budget, reason="estimate within SLA budget",
            )
        merged = bound.planner_options(connection.options)
        if merged is not None and merged.force_path is not None:
            return AdmissionDecision(
                action=REJECT, table=table, estimated_cost=estimate,
                budget=budget,
                reason=("estimate exceeds SLA budget and the "
                        f"force_path({merged.force_path}) hint forbids "
                        "degrading to a Smooth Scan"),
            )
        split_conn = self.split_connection(table, connection.options)
        if split_conn is not None:
            _split_planned, split_estimate = self.price(
                split_conn, statement, params
            )
            if split_estimate <= budget:
                shards = self.db.shard_set(table).num_shards
                return AdmissionDecision(
                    action=SPLIT, table=table, estimated_cost=estimate,
                    budget=budget, split_estimate=split_estimate,
                    reason=("estimate exceeds SLA budget; re-priced at "
                            f"{shards} shards within budget"),
                )
        if self.degrade_options_for(table, connection.options) is not None:
            return AdmissionDecision(
                action=DEGRADE, table=table, estimated_cost=estimate,
                budget=budget,
                reason=("estimate exceeds SLA budget; degraded to a "
                        "worst-case-bounded Smooth Scan"),
            )
        return AdmissionDecision(
            action=REJECT, table=table, estimated_cost=estimate,
            budget=budget,
            reason=("estimate exceeds SLA budget and no Smooth Scan "
                    "on this table can bound the worst case within it"),
        )

    # -- in-flight slots -----------------------------------------------------

    @property
    def slots_free(self) -> int:
        """In-flight slots currently available."""
        return max(0, self.max_inflight - self.inflight)

    def try_acquire(self) -> bool:
        """Claim one in-flight slot; False when the engine is saturated."""
        if self.inflight >= self.max_inflight:
            return False
        self.inflight += 1
        return True

    def release(self) -> None:
        """Return one in-flight slot (statement drained, closed or died)."""
        if self.inflight <= 0:
            raise ConfigError("admission slot released but none are held")
        self.inflight -= 1
