"""Deterministic in-process transport: the serving benchmark's wire.

The 1,000-client serving experiment must be byte-reproducible, so it
cannot ride on real sockets or asyncio's ready-callback ordering.  This
module drives the very same sans-IO
:class:`~repro.server.session.ServerSession` logic the socket server
uses, but over dict frames in plain function calls — no JSON, no I/O,
no event loop — with a round-robin :class:`ServingLoop` standing in for
the network's interleaving:

* :class:`InProcessChannel` — one client's connection: requests go
  straight into ``session.handle``; asynchronously-produced frames
  (admission-queue grants) land in the channel's inbox.
* :class:`ScriptedClient` — a closed-loop client replaying a script of
  prepare/execute steps, fetching each started cursor one ``rows``
  frame per scheduling visit (so concurrent results interleave on the
  shared disk and buffer pool exactly like the cooperative scheduler's
  batch quanta).
* :class:`ServingLoop` — visits clients round-robin until every script
  is drained, producing the same
  :class:`~repro.exec.scheduler.WorkloadReport` shape the concurrency
  experiment emits.  Latency is response time on the shared simulated
  clock: from the moment a client *submits* an execute (queue wait
  included) to the moment its final ``rows`` frame arrives.

Each completed query's ledger is rebuilt from the wire ``summary``
frame (:meth:`~repro.runtime.CostLedger.from_dict`), so the benchmark's
conservation check — summed per-query ledgers equal the shared runtime
totals — exercises the protocol encoding, not just the engine.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.exec.scheduler import QueryRecord, WorkloadReport
from repro.runtime import CostLedger
from repro.server.session import ServerFront, ServerSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class InProcessChannel:
    """One client's connection to a :class:`ServerFront`, sans wire.

    Synchronous responses come back from :meth:`request` directly;
    frames the server produces later (a parked execute's ``executing``
    grant) accumulate in :attr:`inbox` until the client polls them.
    """

    def __init__(self, front: ServerFront):
        self.inbox: deque[dict] = deque()
        self.session: ServerSession = front.session(sink=self.inbox.append)
        self.hello = self.session.hello()

    def request(self, frame: dict) -> list[dict]:
        """Send one request frame; returns the synchronous responses."""
        return self.session.handle(frame)

    def poll(self) -> list[dict]:
        """Take every frame the server pushed since the last poll."""
        frames = list(self.inbox)
        self.inbox.clear()
        return frames

    def close(self) -> None:
        """Disconnect: closes the session and its live cursors."""
        self.session.close()


#: Client states between scheduling visits.
_IDLE = "idle"          # ready to send the next script step
_WAITING = "waiting"    # execute parked in the admission queue
_FETCHING = "fetching"  # cursor open, pulling one rows frame per visit


class ScriptedClient:
    """A closed-loop protocol client replaying a prepared script.

    Script steps::

        client.prepare("probe", "SELECT * FROM micro WHERE c2 < ?")
        client.execute("probe", [100], label="probe:100")
        client.execute("SELECT * FROM micro", label="scan")  # inline SQL

    Each :meth:`step` (one scheduling visit) makes at most one request:
    processing pushed frames first, then either fetching one ``rows``
    frame from the open cursor or sending the next script step.
    Completed queries append :class:`~repro.exec.scheduler.QueryRecord`
    entries (ledger rebuilt from the wire summary) to the loop's shared
    record list; ``rejected`` errors are collected — every other error
    frame raises, because the deterministic harness should never see
    one.
    """

    def __init__(self, name: str, loop: "ServingLoop",
                 channel: InProcessChannel):
        self.name = name
        self._loop = loop
        self._channel = channel
        self._script: deque[tuple] = deque()
        self._statements: dict[str, int] = {}
        self._state = _IDLE
        self._cursor: int | None = None
        self._label = ""
        self._start_ms = 0.0
        self._next_id = 0
        #: (label, admission detail) per admission-rejected execute.
        self.rejections: list[tuple[str, dict]] = []

    # -- scripting -----------------------------------------------------------

    def prepare(self, key: str, sql: str) -> "ScriptedClient":
        """Queue a ``prepare``; later steps reference it by ``key``."""
        self._script.append(("prepare", key, sql))
        return self

    def execute(self, target: str, params: object = None,
                label: str | None = None) -> "ScriptedClient":
        """Queue an ``execute`` of a prepared key or inline SQL."""
        self._script.append(("execute", target, params,
                             label if label is not None else target))
        return self

    @property
    def done(self) -> bool:
        return not self._script and self._state == _IDLE

    # -- one scheduling visit ------------------------------------------------

    def step(self) -> bool:
        """Advance by at most one request; False once fully drained."""
        for frame in self._channel.poll():
            self._process(frame)
        if self._state == _FETCHING:
            self._request({"op": "fetch", "cursor": self._cursor})
            return True
        if self._state == _WAITING:
            return True  # parked in the admission queue; no progress
        if not self._script:
            return False
        action = self._script.popleft()
        if action[0] == "prepare":
            _kind, key, sql = action
            self._pending_key = key
            self._request({"op": "prepare", "sql": sql})
        else:
            _kind, target, params, label = action
            self._label = label
            self._start_ms = self._loop.front.clock_ms
            frame = {"op": "execute", "params": params}
            if target in self._statements:
                frame["statement"] = self._statements[target]
            else:
                frame["sql"] = target
            self._state = _WAITING  # parked unless a response says else
            self._request(frame)
        return True

    # -- internals -----------------------------------------------------------

    def _request(self, frame: dict) -> None:
        frame["id"] = self._next_id
        self._next_id += 1
        self._loop.activity += 1
        for response in self._channel.request(frame):
            self._process(response)

    def _process(self, frame: dict) -> None:
        self._loop.activity += 1
        op = frame["op"]
        if op == "prepared":
            self._statements[self._pending_key] = frame["statement"]
        elif op == "executing":
            self._cursor = frame["cursor"]
            self._state = _FETCHING
        elif op == "rows":
            if frame["done"]:
                summary = frame["summary"]
                self._loop.records.append(QueryRecord(
                    client=self.name,
                    label=self._label,
                    rows=summary["rows"],
                    start_ms=self._start_ms,
                    finish_ms=self._loop.front.clock_ms,
                    ledger=CostLedger.from_dict(summary["ledger"]),
                ))
                self._cursor = None
                self._state = _IDLE
        elif op == "error":
            if frame["code"] != "rejected":
                raise ExecutionError(
                    f"client {self.name!r}: unexpected protocol error "
                    f"{frame['code']}: {frame['message']}"
                )
            self.rejections.append((self._label, frame.get("detail", {})))
            self._state = _IDLE
        else:  # pragma: no cover - no other frames reach clients here
            raise ExecutionError(
                f"client {self.name!r}: unexpected frame op {op!r}"
            )


class ServingLoop:
    """Round-robin driver of N scripted clients on one serving front.

    The in-process stand-in for the network: each round visits every
    live client once (admission order), letting it make one request.
    Concurrency is bounded by the front's admission controller — the
    loop itself imposes no limit, so with 1,000 clients and 64 slots
    the FIFO queue and its measured waits are genuinely exercised.
    """

    def __init__(self, front: ServerFront):
        self.front = front
        self._clients: list[ScriptedClient] = []
        #: Completion-ordered records across every client (shared).
        self.records: list[QueryRecord] = []
        #: Bumped on every request/response; stagnation of a full round
        #: with live clients means deadlock, which raises.
        self.activity = 0

    def client(self, name: str) -> ScriptedClient:
        """Connect one scripted client (round-robin in creation order)."""
        client = ScriptedClient(name, self, InProcessChannel(self.front))
        self._clients.append(client)
        return client

    def run(self, cold: bool = False,
            interleave: bool = True) -> WorkloadReport:
        """Drain every client's script; returns the workload report.

        ``cold=True`` cold-starts the shared substrate first (sessions
        stay open — their connections hold no cached pages).
        ``interleave=False`` runs clients to completion one at a time:
        the serial baseline for fair-share comparisons.
        """
        if cold:
            self.front.db.runtime.cold_start()
        self.records.clear()
        started_ms = self.front.clock_ms
        if interleave:
            live = list(self._clients)
            while live:
                before = self.activity
                live = [client for client in live if client.step()]
                if live and self.activity == before:
                    raise ExecutionError(
                        f"serving loop stalled with {len(live)} live "
                        "client(s) and no admission progress"
                    )
        else:
            for client in self._clients:
                while client.step():
                    pass
        return WorkloadReport(
            records=list(self.records),
            started_ms=started_ms,
            finished_ms=self.front.clock_ms,
        )

    def rejections(self) -> list[tuple[str, str, dict]]:
        """Every admission rejection: (client, label, decision detail)."""
        return [
            (client.name, label, detail)
            for client in self._clients
            for label, detail in client.rejections
        ]

    def close(self) -> None:
        """Disconnect every client (closing sessions and cursors)."""
        for client in self._clients:
            client._channel.close()
