"""Sans-IO serving sessions: protocol frames in, protocol frames out.

One :class:`ServerFront` fronts one database: it owns the
:class:`~repro.server.admission.AdmissionController` (budgets, in-flight
slots, the FIFO admission queue) and the registry of live
:class:`ServerSession`\\ s.  A session is one client's protocol state —
its engine :class:`~repro.api.session.Connection`, prepared-statement
and cursor handles — with a single entry point,
:meth:`ServerSession.handle`: give it a decoded request frame, get back
the response frames.  No sockets, no asyncio, no clocks — which is what
makes the same serving logic drivable by the real
:mod:`asyncio server <repro.server.server>` *and* by the deterministic
in-process transport the 1,000-client benchmark uses
(:mod:`repro.server.inprocess`).

Two execution routes per admitted statement:

* **admit** — the cursor runs on the session's own connection (the
  front's base planner options, plan cache included);
* **degrade** — the cursor runs on the front's per-table *degraded*
  connection: a forced Smooth Scan with the SLA-driven trigger, shared
  by every session so degraded executions share one plan-cache entry.

When the engine is saturated (``max_inflight`` statements already
running) an admitted request parks in the front's FIFO queue and its
``handle`` call returns no frames; the response arrives later — through
the session's ``sink`` callback — when a slot frees and
:meth:`ServerFront.pump` starts the statement.  Queue wait is the
simulated-clock span between parking and starting, reported per
request (``admission.queued_ms``) and in aggregate (``stats`` frames).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.api.session import Connection, Cursor, PreparedStatement
from repro.errors import InterfaceError, ReproError, SqlError
from repro.optimizer.planner import PlannerOptions
from repro.server import protocol
from repro.server.admission import (
    ADMIT,
    SPLIT,
    AdmissionController,
    AdmissionDecision,
)
from repro.server.protocol import ProtocolError, error_frame, rows_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database

#: Default rows carried per ``rows`` frame (and per drain quantum).
DEFAULT_ROWS_PER_FRAME = 256

#: A frame consumer for asynchronously-produced frames (queue grants,
#: drained rows): the transport decides where they go.
FrameSink = Callable[[dict], None]


@dataclass
class _CursorState:
    """One live server-side cursor and its admission bookkeeping."""

    cursor: Cursor
    decision: AdmissionDecision | None   # None for EXPLAIN executions
    holds_slot: bool
    explain: bool = False


@dataclass
class _Parked:
    """One admitted request waiting in the FIFO queue for a slot."""

    session: "ServerSession"
    rid: object
    statement: PreparedStatement
    params: object
    decision: AdmissionDecision
    submit_ms: float
    drain: bool
    cancelled: bool = False


class ServerFront:
    """Everything one serving endpoint shares across its sessions."""

    def __init__(self, db: "Database",
                 options: PlannerOptions | None = None,
                 admission: AdmissionController | None = None,
                 rows_per_frame: int = DEFAULT_ROWS_PER_FRAME):
        self.db = db
        self.options = options
        self.admission = admission or AdmissionController(db)
        self.rows_per_frame = rows_per_frame
        self.draining = False
        self._sessions: dict[int, "ServerSession"] = {}
        self._next_session = 0
        self._pending: deque[_Parked] = deque()
        self._degraded: dict[str, Connection] = {}
        self._pumping = False

    # -- sessions ------------------------------------------------------------

    def session(self, sink: FrameSink | None = None) -> "ServerSession":
        """Open one protocol session (one engine connection)."""
        sid = self._next_session
        self._next_session += 1
        session = ServerSession(self, sid, sink)
        self._sessions[sid] = session
        return session

    @property
    def sessions(self) -> int:
        """Number of currently-open sessions."""
        return len(self._sessions)

    def _drop_session(self, session: "ServerSession") -> None:
        self._sessions.pop(session.id, None)

    # -- degraded executions --------------------------------------------------

    def degraded_connection(self, table: str) -> Connection:
        """The shared degrade-to-smooth connection for one base table."""
        if table not in self._degraded:
            options = self.admission.degrade_options_for(table, self.options)
            if options is None:  # decide() only degrades when eligible
                raise ProtocolError(
                    protocol.ERR_INTERNAL,
                    f"table {table!r} has no bounded degrade path"
                )
            self._degraded[table] = self.db.connect(options=options,
                                                    cold=False)
        return self._degraded[table]

    def split_connection(self, table: str) -> Connection:
        """The shared shard-parallel connection for split admissions.

        Owned by the admission controller (pricing and execution must
        go through the same plan cache entry); raised here into a
        protocol error when the table lost its shard set between
        decide() and start.
        """
        conn = self.admission.split_connection(table, self.options)
        if conn is None:
            raise ProtocolError(
                protocol.ERR_INTERNAL,
                f"table {table!r} is not partitioned for split execution"
            )
        return conn

    # -- the admission queue --------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests currently parked waiting for an in-flight slot."""
        return sum(1 for p in self._pending if not p.cancelled)

    def _park(self, parked: _Parked) -> None:
        self._pending.append(parked)

    def cancel_parked(self, session: "ServerSession", rid: object) -> bool:
        """Withdraw one session's queued request (per-request timeouts).

        True when the request was still parked (the caller owes the
        client a ``timeout`` error frame); False when it already
        started — its ``executing`` response is on the way.
        """
        for parked in self._pending:
            if (parked.session is session and parked.rid == rid
                    and not parked.cancelled):
                parked.cancelled = True
                return True
        return False

    def release_slot(self) -> None:
        """Return a slot and immediately offer it to the queue head."""
        self.admission.release()
        self.pump()

    def pump(self) -> None:
        """Start queued statements while slots are free.

        Frames produced here (the ``executing`` response a parked
        request was owed, plus the full drain for parked ``query``
        requests) are delivered through each session's ``sink``.
        Re-entrant calls (a drained statement releasing its slot
        mid-pump) fall through to the outer loop.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while (self._pending and not self.draining
                   and self.admission.slots_free > 0):
                parked = self._pending.popleft()
                if parked.cancelled:
                    continue
                self.admission.try_acquire()
                wait_ms = self.clock_ms - parked.submit_ms
                frames = parked.session._start_statement(
                    parked.rid, parked.statement, parked.params,
                    parked.decision, wait_ms=wait_ms, was_queued=True,
                    drain=parked.drain,
                )
                for frame in frames:
                    parked.session.emit(frame)
        finally:
            self._pumping = False

    def begin_drain(self) -> None:
        """Refuse new statements; flush the queue with structured errors.

        In-flight cursors are *not* touched — graceful shutdown lets
        them drain (the transports force-close whatever remains after
        their grace period).
        """
        self.draining = True
        while self._pending:
            parked = self._pending.popleft()
            if parked.cancelled:
                continue
            parked.session.emit(error_frame(
                parked.rid, protocol.ERR_SHUTTING_DOWN,
                "server is shutting down; queued statement cancelled",
            ))

    @property
    def inflight(self) -> int:
        """Statements currently holding an in-flight slot."""
        return self.admission.inflight

    @property
    def clock_ms(self) -> float:
        """The shared simulated clock (queue waits are measured on it)."""
        return self.db.runtime.clock.total_ms


class ServerSession:
    """One client's protocol state over one engine connection."""

    def __init__(self, front: ServerFront, session_id: int,
                 sink: FrameSink | None = None):
        self.front = front
        self.id = session_id
        self.sink: FrameSink = sink if sink is not None else (lambda f: None)
        self.conn = front.db.connect(options=front.options, cold=False)
        self._statements: dict[int, PreparedStatement] = {}
        self._cursors: dict[int, _CursorState] = {}
        self._next_statement = 0
        self._next_cursor = 0
        self._closed = False

    # -- frame plumbing ------------------------------------------------------

    def emit(self, frame: dict) -> None:
        """Deliver one asynchronously-produced frame via the sink."""
        self.sink(frame)

    def hello(self) -> dict:
        """The banner frame a transport sends on connect."""
        return {
            "op": "hello",
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "repro",
            "session": self.id,
            "sla_multiple": self.front.admission.sla_multiple,
            "max_inflight": self.front.admission.max_inflight,
        }

    def handle(self, frame: dict) -> list[dict]:
        """Process one request frame; returns the response frames.

        An empty list means the request parked in the admission queue —
        its response will arrive through the sink.  Errors come back as
        structured ``error`` frames; only a closed session raises.
        """
        if self._closed:
            raise ProtocolError(protocol.ERR_INTERNAL, "session is closed")
        try:
            op = protocol.validate_request(frame)
        except ProtocolError as exc:
            rid = frame.get("id") if isinstance(frame, dict) else None
            if not isinstance(rid, (str, int)) or isinstance(rid, bool):
                rid = None
            return [error_frame(rid, exc.code, exc.message)]
        rid = frame["id"]
        try:
            if op == "prepare":
                return self._prepare(rid, frame)
            if op == "execute":
                return self._execute(rid, frame, drain=False)
            if op == "query":
                return self._execute(rid, frame, drain=True)
            if op == "fetch":
                return self._fetch(rid, frame)
            if op == "close":
                return self._close_cursor(rid, frame)
            if op == "stats":
                return self._stats(rid)
            # "shutdown": ack here; the transport watches for the op
            # and performs the actual drain-and-exit around it.
            self.front.begin_drain()
            return [{"op": "shutting_down", "id": rid}]
        except ProtocolError as exc:
            return [error_frame(rid, exc.code, exc.message)]
        except SqlError as exc:
            return [error_frame(rid, protocol.ERR_SQL, str(exc))]
        except InterfaceError as exc:
            # Session-layer misuse (closed connection/cursor, bad fetch
            # size) gets its own code on EVERY frame type — a client
            # racing a close sees "interface", never "internal".
            return [error_frame(rid, protocol.ERR_INTERFACE, str(exc))]
        except ReproError as exc:
            return [error_frame(rid, protocol.ERR_INTERNAL,
                                f"{type(exc).__name__}: {exc}")]

    def close(self) -> None:
        """End the session: close live cursors, release their slots.

        Closing a cursor mid-stream finalizes its ledger (the charges
        it accrued stay attributed to it) and releasing the slots lets
        the front pump queued statements from other sessions.
        """
        if self._closed:
            return
        self._closed = True
        for parked in self.front._pending:
            if parked.session is self:
                parked.cancelled = True
        for cid in list(self._cursors):
            state = self._cursors.pop(cid)
            state.cursor.close()
            self._release(state)
        self.conn.close()
        self.front._drop_session(self)

    # -- ops -----------------------------------------------------------------

    def _prepare(self, rid: object, frame: dict) -> list[dict]:
        statement = self.conn.prepare(frame["sql"])  # raises SqlError
        sid = self._next_statement
        self._next_statement += 1
        self._statements[sid] = statement
        return [{
            "op": "prepared",
            "id": rid,
            "statement": sid,
            "params": statement.param_count,
            "param_names": list(statement.param_names),
            "explain": statement.is_explain,
        }]

    def _resolve_statement(self, frame: dict) -> PreparedStatement:
        if "statement" in frame:
            sid = frame["statement"]
            statement = self._statements.get(sid)
            if statement is None:
                raise ProtocolError(
                    protocol.ERR_STATEMENT_MISSING,
                    f"no prepared statement with handle {sid}"
                )
            return statement
        return PreparedStatement(self.conn, frame["sql"])

    def _execute(self, rid: object, frame: dict,
                 drain: bool) -> list[dict]:
        if self.front.draining:
            return [error_frame(rid, protocol.ERR_SHUTTING_DOWN,
                                "server is shutting down")]
        statement = self._resolve_statement(frame)
        params = frame.get("params")
        if statement.is_explain:
            # EXPLAIN runs nothing: no admission, no slot.
            return self._start_explain(rid, statement, params, drain)
        decision = self.front.admission.decide(self.conn, statement, params)
        if not decision.admitted:
            self.front.admission.stats.note_rejected(decision)
            self.front.db.tracer.emit(
                "admission.reject", value=decision.estimated_cost,
                **decision.to_dict(),
            )
            return [error_frame(rid, protocol.ERR_REJECTED, decision.reason,
                                detail=decision.to_dict())]
        submit_ms = self.front.clock_ms
        if not self.front.admission.try_acquire():
            self.front._park(_Parked(
                session=self, rid=rid, statement=statement, params=params,
                decision=decision, submit_ms=submit_ms, drain=drain,
            ))
            return []
        return self._start_statement(rid, statement, params, decision,
                                     wait_ms=0.0, was_queued=False,
                                     drain=drain)

    def _start_explain(self, rid: object, statement: PreparedStatement,
                       params: object, drain: bool) -> list[dict]:
        cursor = self.conn.cursor().execute(statement, params)
        cid = self._register_cursor(cursor, decision=None,
                                    holds_slot=False, explain=True)
        frames = [self._executing_frame(rid, cid, cursor, admission=None)]
        if drain:
            frames += self._drain(rid, cid)
        return frames

    def _start_statement(self, rid: object, statement: PreparedStatement,
                         params: object, decision: AdmissionDecision,
                         wait_ms: float, was_queued: bool,
                         drain: bool) -> list[dict]:
        """Start one admitted statement (slot already held)."""
        tracer = self.front.db.tracer
        try:
            if decision.action == ADMIT:
                conn = self.conn
            elif decision.action == SPLIT:
                conn = self.front.split_connection(decision.table)
            else:
                conn = self.front.degraded_connection(decision.table)
            tracer.note_client(f"session-{self.id}")
            cursor = conn.cursor().execute(statement, params)
        except BaseException:
            self.front.release_slot()
            raise
        self.front.admission.stats.note_admitted(decision, wait_ms,
                                                 was_queued)
        stream = cursor.stream
        tracer.emit(
            f"admission.{decision.action}",
            query_id=stream.query_id if stream is not None else -1,
            value=decision.estimated_cost, queued_ms=wait_ms,
            **decision.to_dict(),
        )
        if was_queued:
            tracer.emit("admission.dequeue", value=wait_ms)
        cid = self._register_cursor(cursor, decision, holds_slot=True)
        admission = dict(decision.to_dict(), queued_ms=wait_ms)
        frames = [self._executing_frame(rid, cid, cursor, admission)]
        if drain:
            frames += self._drain(rid, cid)
        return frames

    def _register_cursor(self, cursor: Cursor,
                         decision: AdmissionDecision | None,
                         holds_slot: bool, explain: bool = False) -> int:
        cid = self._next_cursor
        self._next_cursor += 1
        self._cursors[cid] = _CursorState(cursor=cursor, decision=decision,
                                          holds_slot=holds_slot,
                                          explain=explain)
        return cid

    def _executing_frame(self, rid: object, cid: int, cursor: Cursor,
                         admission: dict | None) -> dict:
        description = [
            [d[0], getattr(d[1], "name", str(d[1]))]
            for d in (cursor.description or [])
        ]
        return {
            "op": "executing",
            "id": rid,
            "cursor": cid,
            "description": description,
            "admission": admission,
        }

    def _fetch(self, rid: object, frame: dict) -> list[dict]:
        cid = frame["cursor"]
        if cid not in self._cursors:
            raise ProtocolError(protocol.ERR_CURSOR_MISSING,
                                f"no open cursor with handle {cid}")
        n = frame.get("n") or self.front.rows_per_frame
        return [self._fetch_frame(rid, cid, n)]

    def _fetch_frame(self, rid: object, cid: int, n: int) -> dict:
        state = self._cursors[cid]
        rows = state.cursor.fetchmany(n)
        # A short read is the end of the result: an exact-boundary
        # result takes one extra (empty) fetch to discover `done`.
        done = len(rows) < n
        response = {
            "op": "rows",
            "id": rid,
            "cursor": cid,
            "rows": rows_payload(rows),
            "done": done,
        }
        if done:
            response["summary"] = self._summary(state)
            self._cursors.pop(cid, None)
            self._release(state)
        return response

    def _drain(self, rid: object, cid: int) -> list[dict]:
        """Synchronously stream a started statement to completion."""
        frames = []
        n = self.front.rows_per_frame
        while True:
            frame = self._fetch_frame(rid, cid, n)
            frames.append(frame)
            if frame["done"]:
                return frames

    def drain_step(self, rid: object, cid: int) -> dict | None:
        """One drain quantum (a single ``rows`` frame), for transports
        that interleave many draining statements; None once the cursor
        is gone (already done or closed)."""
        if cid not in self._cursors:
            return None
        return self._fetch_frame(rid, cid, self.front.rows_per_frame)

    def _close_cursor(self, rid: object, frame: dict) -> list[dict]:
        cid = frame["cursor"]
        state = self._cursors.pop(cid, None)
        if state is None:
            raise ProtocolError(protocol.ERR_CURSOR_MISSING,
                                f"no open cursor with handle {cid}")
        summary = self._summary(state)
        state.cursor.close()
        self._release(state)
        return [{"op": "closed", "id": rid, "cursor": cid,
                 "summary": summary}]

    def _summary(self, state: _CursorState) -> dict:
        """The measurement a finished/closed execution reports."""
        cursor = state.cursor
        run = cursor.stream
        if run is None:  # EXPLAIN: static rows, nothing ran
            return {"rows": max(cursor.rowcount, 0), "partial": False}
        ledger = run.ledger
        return {
            "rows": run.rows_produced,
            "partial": not run.exhausted,
            "ms": ledger.total_ms,
            "io_ms": ledger.io_ms,
            "cpu_ms": ledger.cpu_ms,
            "pages_read": ledger.disk.pages_read,
            "ledger": ledger.to_dict(),
        }

    def _release(self, state: _CursorState) -> None:
        if state.holds_slot:
            state.holds_slot = False
            self.front.release_slot()

    def _stats(self, rid: object) -> list[dict]:
        front = self.front
        tracer = front.db.tracer
        # Fold the plan cache's structured stats into gauges so the
        # stats frame, EXPLAIN, and \\metrics all read one source.
        for name, value in front.db.plan_cache.stats_dict().items():
            tracer.metrics.gauge(f"plan_cache_{name}").set(value)
        return [{
            "op": "stats",
            "id": rid,
            "admission": front.admission.stats.to_dict(),
            "engine": {
                "clock_ms": front.clock_ms,
                "inflight": front.inflight,
                "queued": front.queued,
                "sessions": front.sessions,
                "draining": front.draining,
            },
            "telemetry": {
                "enabled": tracer.enabled,
                "events_buffered": len(tracer.events),
                "metrics": tracer.metrics.to_dict(),
            },
        }]
