"""SLA-driven trigger computation (Sections III-C and VI-D).

Given an SLA expressed as a total operator cost bound, find the largest
cardinality up to which a traditional index scan may run before Smooth
Scan must take over so that — even if selectivity turns out to be 100% —
the total cost stays within the bound.  The paper computes 32K tuples for
an SLA of two full scans on the micro-benchmark; the same procedure here
derives the trigger from Eq. (23).
"""

from __future__ import annotations

from repro.costmodel import formulas
from repro.costmodel.params import CostParams
from repro.errors import ConfigError


def worst_case_total_cost(p: CostParams, card_m0: int) -> float:
    """Total cost if we run traditional until ``card_m0`` then morph,
    and selectivity turns out to be 100%.

    The remaining tuples are handled by Mode 2+ flattening over the whole
    table (Mode 1 is skipped: at 100% selectivity every fetched page is
    dense, so regions expand immediately).

    Monotone in the trigger: every tuple still fetched in Mode 0 costs a
    random access, so morphing later can only raise the worst case.  On
    a 100-page table (12,000 64-byte tuples), an eager morph stays under
    two full scans while waiting 32 tuples does not:

    >>> p = CostParams(tuple_size=64, num_tuples=12_000)
    >>> round(worst_case_total_cost(p, 0))
    188
    >>> round(worst_case_total_cost(p, 32))
    509
    """
    full = p.at_selectivity(1.0)
    split = formulas.ModeSplit(
        card_m0=card_m0,
        card_m1=0,
        card_m2=max(0, full.cardinality - card_m0),
    )
    return formulas.smooth_scan_cost(full, split)


def trigger_cardinality(p: CostParams, sla_cost: float) -> int:
    """Largest Mode-0 cardinality that still guarantees ``sla_cost``.

    Returns 0 when even eager Smooth Scan only just fits (morph from the
    first tuple); raises ConfigError when the SLA is unachievable even
    with an immediate morph.

    On the same 100-page table, a two-full-scans SLA leaves barely any
    slack over the eager worst case of 188, a three-full-scans SLA buys
    a longer traditional prefix, and one full scan is unachievable:

    >>> p = CostParams(tuple_size=64, num_tuples=12_000)
    >>> trigger_cardinality(p, sla_bound_for_full_scans(p, 2.0))
    1
    >>> trigger_cardinality(p, sla_bound_for_full_scans(p, 3.0))
    11
    >>> trigger_cardinality(p, sla_bound_for_full_scans(p, 1.0))
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: SLA bound 100 is below the eager worst \
case 188; no trigger can satisfy it
    """
    if worst_case_total_cost(p, 0) > sla_cost:
        raise ConfigError(
            f"SLA bound {sla_cost:.0f} is below the eager worst case "
            f"{worst_case_total_cost(p, 0):.0f}; no trigger can satisfy it"
        )
    lo, hi = 0, p.num_tuples
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if worst_case_total_cost(p, mid) <= sla_cost:
            lo = mid
        else:
            hi = mid - 1
    return lo


def sla_bound_for_full_scans(p: CostParams, multiple: float = 2.0) -> float:
    """An SLA bound expressed as a multiple of the full-scan cost.

    The paper's Fig. 7b experiment sets the bound to two full scans:

    >>> p = CostParams(tuple_size=64, num_tuples=12_000)
    >>> sla_bound_for_full_scans(p)
    200.0
    """
    if multiple <= 0:
        raise ConfigError("SLA multiple must be positive")
    return multiple * formulas.full_scan_cost(p)
