"""Competitive analysis of Smooth Scan (Section V-A).

The competitive ratio (CR) is the maximum, over the whole selectivity
interval, of Smooth Scan's cost divided by the optimal access-path cost at
that selectivity.  The paper's summary:

* **Greedy** — CR grows sublinearly with table size (soft bound): at tiny
  selectivities Greedy has already expanded to huge regions, so its cost
  approaches a full scan while the optimum is a handful of random reads.
* **Selectivity-Increase** — also soft-bounded: an early dense region
  inflates the region size for the rest of the scan (the Fig. 8 skew
  pathology).
* **Elastic** — hard-bounded by the device's random/sequential ratio; the
  adversarial layout places a match on every second page, where flattening
  never pays off.  For HDD (10:1) the paper reports a CR of 5.5 against a
  full scan (theoretical bound 11); for SSD (2:1) a CR of 3 (bound 6).

Here we provide both the analytic adversarial-layout cost functions and a
grid search producing the CR curves; the *empirical* CR (the paper
observes ≈ 2) is measured by executing the real operator in
``repro.experiments.competitive``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel import formulas
from repro.costmodel.params import CostParams


@dataclass(frozen=True)
class CRPoint:
    """One point of a competitive-ratio curve."""

    selectivity: float
    smooth_cost: float
    optimal_cost: float

    @property
    def ratio(self) -> float:
        """Smooth Scan cost over the optimal cost."""
        if self.optimal_cost <= 0:
            return 1.0
        return self.smooth_cost / self.optimal_cost


def elastic_adversarial_cost(p: CostParams) -> float:
    """Elastic cost on the every-second-page adversarial layout.

    With a match on every second page, each probed page contains results
    while every expansion immediately looks sparse, so the morphing region
    never grows past a couple of pages: half the table is fetched with
    random accesses, plus the index leaf traversal.
    """
    half = p.num_pages / 2.0
    return (
        p.height * p.rand_cost
        + half * p.rand_cost
        + p.num_leaves / 2.0 * p.seq_cost
    )


def elastic_cr_bound(p: CostParams) -> float:
    """The device-ratio-driven theoretical CR bound: ``(rand+seq)/seq``.

    10:1 HDDs give 11, the paper's number; the adversarial layout reaches
    about half of it because only every second page is fetched.
    """
    return (p.rand_cost + p.seq_cost) / p.seq_cost


def elastic_cr_adversarial(p: CostParams) -> float:
    """CR actually reached on the adversarial layout, vs the full scan."""
    return elastic_adversarial_cost(p) / formulas.full_scan_cost(p)


def greedy_cost(p: CostParams) -> float:
    """Greedy Smooth Scan cost at a given selectivity (model).

    Greedy doubles with every probe, so after ``j`` jumps it has streamed
    ``2^j - 1`` pages; it stops once all result pages are covered — at
    low selectivity that is ``log2`` jumps but nearly the whole table
    streamed, which is the source of its soft (table-size-dependent) CR.
    """
    card = p.cardinality
    if card == 0:
        return p.height * p.rand_cost
    jumps = min(card, math.ceil(math.log2(p.num_pages + 1)))
    pages_streamed = min(p.num_pages, 2 ** jumps - 1)
    return (
        p.height * p.rand_cost
        + jumps * p.rand_cost
        + max(0, pages_streamed - jumps) * p.seq_cost
        + p.leaves_with_results * p.seq_cost
    )


def greedy_cr(p: CostParams) -> float:
    """Greedy CR at one selectivity point."""
    return greedy_cost(p) / formulas.optimal_cost(p)


def greedy_cr_curve(p: CostParams,
                    selectivities: list[float]) -> list[CRPoint]:
    """Greedy CR over a selectivity grid (sublinear in table size)."""
    points = []
    for sel in selectivities:
        q = p.at_selectivity(sel)
        points.append(CRPoint(sel, greedy_cost(q), formulas.optimal_cost(q)))
    return points


def smooth_model_cr_curve(p: CostParams,
                          selectivities: list[float]) -> list[CRPoint]:
    """Eq. (23) Smooth Scan cost vs optimal over a selectivity grid."""
    points = []
    for sel in selectivities:
        q = p.at_selectivity(sel)
        points.append(
            CRPoint(sel, formulas.smooth_scan_cost(q),
                    formulas.optimal_cost(q))
        )
    return points


def max_cr(points: list[CRPoint]) -> CRPoint:
    """The worst (maximum-ratio) point of a CR curve."""
    return max(points, key=lambda pt: pt.ratio)
