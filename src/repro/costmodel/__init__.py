"""Analytic cost model (Section V) and competitive analysis (Section V-A)."""

from repro.costmodel.calibration import predict_ms
from repro.costmodel.competitive import (
    CRPoint,
    elastic_adversarial_cost,
    elastic_cr_adversarial,
    elastic_cr_bound,
    greedy_cost,
    greedy_cr,
    greedy_cr_curve,
    max_cr,
    smooth_model_cr_curve,
)
from repro.costmodel.formulas import (
    ModeSplit,
    full_scan_cost,
    index_scan_cost,
    optimal_cost,
    smooth_cost_mode1,
    smooth_cost_mode2,
    smooth_scan_cost,
    sort_scan_cost,
)
from repro.costmodel.params import CostParams
from repro.costmodel.sla import (
    sla_bound_for_full_scans,
    trigger_cardinality,
    worst_case_total_cost,
)

__all__ = [
    "CRPoint",
    "CostParams",
    "ModeSplit",
    "elastic_adversarial_cost",
    "elastic_cr_adversarial",
    "elastic_cr_bound",
    "full_scan_cost",
    "greedy_cost",
    "greedy_cr",
    "greedy_cr_curve",
    "index_scan_cost",
    "max_cr",
    "optimal_cost",
    "predict_ms",
    "sla_bound_for_full_scans",
    "smooth_cost_mode1",
    "smooth_cost_mode2",
    "smooth_model_cr_curve",
    "smooth_scan_cost",
    "sort_scan_cost",
    "trigger_cardinality",
    "worst_case_total_cost",
]
