"""CPU-extended cost model (the technical report's "detailed cost model").

Section V models I/O only and defers CPU to the paper's technical report
[22], which also "corroborates the accuracy of the cost model in
experiments".  This module provides that extension for the simulated
engine: executed-time predictions that add the per-tuple CPU terms the
engine actually charges, so predictions can be validated against
measurements (see ``tests/test_calibration.py``).

Predictions deliberately reuse the same Section V I/O formulas — the
point is corroboration, not a second model.
"""

from __future__ import annotations

from repro.config import EngineConfig
from repro.costmodel import formulas
from repro.costmodel.params import CostParams


def _io_ms(units: float, p: CostParams, ms_per_unit: float) -> float:
    return units * ms_per_unit


def full_scan_ms(p: CostParams, config: EngineConfig,
                 ms_per_unit: float) -> float:
    """Executed-time estimate of a full scan: all pages + all tuples.

    CPU: every stored tuple is inspected; qualifying ones are emitted.
    """
    io = formulas.full_scan_cost(p)
    cpu = (p.num_tuples * config.cpu.tuple_inspect
           + p.cardinality * config.cpu.tuple_emit)
    return _io_ms(io, p, ms_per_unit) + cpu


def index_scan_ms(p: CostParams, config: EngineConfig,
                  ms_per_unit: float) -> float:
    """Executed-time estimate of a classical index scan.

    CPU: one leaf-entry advance and one tuple inspection per result.
    """
    io = formulas.index_scan_cost(p)
    cpu = p.cardinality * (
        config.cpu.index_entry
        + config.cpu.tuple_inspect
        + config.cpu.tuple_emit
    )
    return _io_ms(io, p, ms_per_unit) + cpu


def smooth_scan_ms(p: CostParams, config: EngineConfig,
                   ms_per_unit: float) -> float:
    """Executed-time estimate of eager Smooth Scan.

    I/O follows Eq. (23); CPU adds entire-page probing (every tuple of
    every fetched page inspected), one leaf-entry advance plus one
    page-cache probe per index entry, and emission of the results.
    """
    io = formulas.smooth_scan_cost(p)
    pages_fetched = min(p.pages_with_results, p.num_pages)
    if p.selectivity >= 1.0 / max(1, p.tuples_per_page):
        # Dense enough that essentially every page is fetched.
        pages_fetched = p.num_pages
    cpu = (
        pages_fetched * p.tuples_per_page * config.cpu.tuple_inspect
        + pages_fetched * config.cpu.cache_insert
        + p.cardinality * (config.cpu.index_entry + config.cpu.cache_probe)
        + p.cardinality * config.cpu.tuple_emit
    )
    return _io_ms(io, p, ms_per_unit) + cpu


def predict_ms(path: str, p: CostParams, config: EngineConfig,
               ms_per_unit: float) -> float:
    """Executed-time estimate for one access path by name."""
    fn = {
        "full": full_scan_ms,
        "index": index_scan_ms,
        "smooth": smooth_scan_ms,
    }[path]
    return fn(p, config, ms_per_unit)
