"""Table I — the cost-model parameter set.

:class:`CostParams` bundles the base quantities (tuple size, counts, page
size, key size, selectivity, device costs) and derives everything else via
:mod:`repro.index.layout`, the same math the physical B+-tree uses, so the
analytic model and the executed system share one geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.index import layout
from repro.storage.disk import DiskProfile


@dataclass(frozen=True)
class CostParams:
    """Base cost-model parameters (Table I), one selectivity point.

    Attributes:
        tuple_size: ``TS`` — bytes per tuple, header included.
        num_tuples: ``#T`` — tuples in the relation.
        page_size: ``PS`` — page size in bytes.
        page_header: page header bytes (excluded from the tuple area).
        key_size: ``KS`` — bytes of the indexed key.
        selectivity: ``sel`` — fraction of tuples qualifying, in [0, 1].
        rand_cost: ``rand_cost`` — cost units per random page access.
        seq_cost: ``seq_cost`` — cost units per sequential page access.
    """

    tuple_size: int
    num_tuples: int
    page_size: int = 8192
    page_header: int = 512
    key_size: int = 4
    selectivity: float = 0.0
    rand_cost: float = 10.0
    seq_cost: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ConfigError(
                f"selectivity {self.selectivity} outside [0, 1]"
            )
        if self.num_tuples < 0:
            raise ConfigError("num_tuples must be >= 0")
        if min(self.rand_cost, self.seq_cost) <= 0:
            raise ConfigError("device costs must be positive")

    # -- derived values (Eqs. (3)-(9)) -------------------------------------

    @property
    def tuples_per_page(self) -> int:
        """``#TP`` (Eq. (3))."""
        return layout.tuples_per_page(
            self.page_size, self.page_header, self.tuple_size
        )

    @property
    def num_pages(self) -> int:
        """``#P`` (Eq. (4))."""
        return layout.num_pages(self.num_tuples, self.tuples_per_page)

    @property
    def fanout(self) -> int:
        """B+-tree fanout (Eq. (5))."""
        return layout.fanout(self.page_size, self.key_size)

    @property
    def num_leaves(self) -> int:
        """``#leaves`` (Eq. (6))."""
        return layout.num_leaves(self.num_tuples, self.fanout)

    @property
    def height(self) -> int:
        """``height`` (Eq. (7))."""
        return layout.height(self.num_leaves, self.fanout)

    @property
    def cardinality(self) -> int:
        """``card`` (Eq. (8))."""
        return layout.result_cardinality(self.selectivity, self.num_tuples)

    @property
    def leaves_with_results(self) -> int:
        """``#leaves_res`` (Eq. (9))."""
        return layout.leaves_with_results(self.cardinality, self.fanout)

    @property
    def pages_with_results(self) -> int:
        """``#P_res`` under the worst-case uniform spread (Eq. (13))."""
        return min(self.cardinality, self.num_pages)

    # -- constructors ------------------------------------------------------

    def at_selectivity(self, selectivity: float) -> "CostParams":
        """A copy of these parameters at another selectivity."""
        return CostParams(
            tuple_size=self.tuple_size,
            num_tuples=self.num_tuples,
            page_size=self.page_size,
            page_header=self.page_header,
            key_size=self.key_size,
            selectivity=selectivity,
            rand_cost=self.rand_cost,
            seq_cost=self.seq_cost,
        )

    @classmethod
    def from_table(cls, table, config, profile: DiskProfile,
                   indexed_column: str,
                   selectivity: float = 0.0) -> "CostParams":
        """Derive parameters from a physical table + engine config."""
        col = table.schema.columns[table.schema.index_of(indexed_column)]
        return cls(
            tuple_size=table.schema.tuple_size(config.tuple_header),
            num_tuples=table.row_count,
            page_size=config.page_size,
            page_header=config.page_header,
            key_size=col.byte_size,
            selectivity=selectivity,
            rand_cost=profile.rand_cost,
            seq_cost=profile.seq_cost,
        )
