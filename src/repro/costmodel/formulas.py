"""Operator I/O cost formulas — Eqs. (10)-(23) of Section V.

Costs are expressed in abstract I/O units (``seq_cost`` per sequential
page, ``rand_cost`` per random page), exactly as the paper models them;
CPU is deliberately excluded (the paper defers it to its technical
report).  Multiply by a :class:`~repro.storage.disk.DiskProfile`'s
``ms_per_unit`` to convert into simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.costmodel.params import CostParams


def full_scan_cost(p: CostParams) -> float:
    """Eq. (10): ``FS_cost = #P × seq_cost`` — selectivity-independent."""
    return p.num_pages * p.seq_cost


def index_scan_cost(p: CostParams, cardinality: int | None = None) -> float:
    """Eq. (11): one descent + a random heap access per result tuple.

    ``IS_cost = (height + card) × rand_cost + #leaves_res × seq_cost``.
    """
    card = p.cardinality if cardinality is None else cardinality
    leaves_res = math.ceil(card / p.fanout)
    return (p.height + card) * p.rand_cost + leaves_res * p.seq_cost


def sort_scan_cost(p: CostParams) -> float:
    """Bitmap-scan I/O estimate (extension; the paper gives no equation).

    One descent, the result leaves sequentially, then every page holding a
    result once, nearly sequentially after the TID pre-sort.
    """
    return (
        p.height * p.rand_cost
        + p.leaves_with_results * p.seq_cost
        + p.pages_with_results * p.seq_cost
    )


@dataclass(frozen=True)
class ModeSplit:
    """Eq. (12): the result cardinality split across Smooth Scan modes."""

    card_m0: int = 0
    card_m1: int = 0
    card_m2: int = 0

    def __post_init__(self) -> None:
        if min(self.card_m0, self.card_m1, self.card_m2) < 0:
            raise ConfigError("mode cardinalities must be >= 0")

    @property
    def total(self) -> int:
        """``card = card_m0 + card_m1 + card_m2``."""
        return self.card_m0 + self.card_m1 + self.card_m2

    @classmethod
    def eager_flattening(cls, p: CostParams) -> "ModeSplit":
        """The default eager split: everything handled by Mode 2+."""
        return cls(card_m0=0, card_m1=0, card_m2=p.cardinality)


def pages_mode1(p: CostParams, split: ModeSplit) -> int:
    """Eq. (14): ``#P_m1 = min(card_m1, #P)`` (worst-case spread)."""
    return min(split.card_m1, p.num_pages)


def smooth_cost_mode1(p: CostParams, split: ModeSplit) -> float:
    """Eq. (15): every Mode-1 page fetched with one random access."""
    return pages_mode1(p, split) * p.rand_cost


def pages_mode2(p: CostParams, split: ModeSplit) -> int:
    """Eq. (16): ``#P_m2 = min(card_m2, #P - #P_m1)``."""
    return min(split.card_m2, p.num_pages - pages_mode1(p, split))


def random_ios_mode2_min(pages_m2: int) -> float:
    """Eq. (20): best case — ``log2(#P_m2 + 1)`` doubling jumps.

    Follows from the recurrence of Eqs. (17)-(19): with the region doubling
    after every jump, n jumps cover ``2^n - 1`` pages.
    """
    return math.log2(pages_m2 + 1) if pages_m2 > 0 else 0.0

def random_ios_mode2_max(p: CostParams, pages_m2: int) -> float:
    """Eq. (21): worst case — ``min(#P_m2, log2(#P + 1))``."""
    if pages_m2 <= 0:
        return 0.0
    return min(pages_m2, math.log2(p.num_pages + 1))


def smooth_cost_mode2(p: CostParams, split: ModeSplit,
                      jumps: str = "converged") -> float:
    """Eq. (22): jump randomly ``#randio`` times, stream the rest.

    ``jumps`` picks the Eq. (20) minimum (``"min"``), the Eq. (21) maximum
    (``"max"``), or — like the paper's Section V — the common converged
    value ``log2(#P + 1)`` both bounds approach (``"converged"``).
    """
    pages_m2 = pages_mode2(p, split)
    if pages_m2 <= 0:
        return 0.0
    if jumps == "min":
        randio = random_ios_mode2_min(pages_m2)
    elif jumps == "max":
        randio = random_ios_mode2_max(p, pages_m2)
    elif jumps == "converged":
        randio = min(pages_m2, math.log2(p.num_pages + 1))
    else:
        raise ConfigError(f"jumps must be min/max/converged, not {jumps!r}")
    return randio * p.rand_cost + (pages_m2 - randio) * p.seq_cost


def smooth_scan_cost(p: CostParams, split: ModeSplit | None = None,
                     jumps: str = "converged") -> float:
    """Eq. (23): ``SS_cost = SS_m0 + SS_m1 + SS_m2``.

    Mode 0's cost is an index scan over its cardinality (the paper omits
    the formula because it equals Eq. (11)); the descent is charged there
    when Mode 0 is active, otherwise once at the scan start.
    """
    if split is None:
        split = ModeSplit.eager_flattening(p)
    cost = 0.0
    if split.card_m0 > 0:
        cost += index_scan_cost(p, split.card_m0)
    else:
        cost += p.height * p.rand_cost  # the single initial descent
    cost += smooth_cost_mode1(p, split)
    cost += smooth_cost_mode2(p, split, jumps=jumps)
    # Leaf-chain traversal for the probed range, as in Eq. (11).
    cost += p.leaves_with_results * p.seq_cost
    return cost


def optimal_cost(p: CostParams) -> float:
    """The best traditional access path at this selectivity point.

    The oracle baseline of the competitive analysis: the cheaper of a full
    scan and a classical index scan (Sort Scan is excluded, matching the
    paper's comparison "against optimal decisions" between the two
    extremes Smooth Scan morphs between).
    """
    return min(full_scan_cost(p), index_scan_cost(p))
