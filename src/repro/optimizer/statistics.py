"""Column statistics: histograms, distinct counts, and staleness.

The optimizer's whole world view lives here.  Statistics are collected by
``analyze`` (optionally on a sample), stored in a catalog, and — crucially
for this paper — can be *stale*: collected before further loads, scaled,
or simply absent.  Every way real systems end up with a wrong estimate is
reproducible through this module, which is what Figures 1 and 11 need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import StatisticsError
from repro.storage.table import Table

_DEFAULT_BUCKETS = 100


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column."""

    lo: float
    hi: float
    counts: list[int]

    @property
    def total(self) -> int:
        """Rows summed over all buckets."""
        return sum(self.counts)

    def range_fraction(self, lo: float | None, hi: float | None,
                       lo_inclusive: bool = True,
                       hi_inclusive: bool = False) -> float:
        """Estimated fraction of rows with values in ``[lo, hi]``.

        Uniformity is assumed *within* buckets — the textbook (and
        PostgreSQL) interpolation that breaks down under skew.
        """
        if self.total == 0 or not self.counts:
            return 0.0
        lo_v = self.lo if lo is None else max(float(lo), self.lo)
        hi_v = self.hi if hi is None else min(float(hi), self.hi)
        if hi_v < lo_v:
            return 0.0
        if self.hi == self.lo:
            return 1.0
        width = (self.hi - self.lo) / len(self.counts)
        if width <= 0:
            return 1.0
        covered = 0.0
        for i, count in enumerate(self.counts):
            b_lo = self.lo + i * width
            b_hi = b_lo + width
            overlap = min(hi_v, b_hi) - max(lo_v, b_lo)
            if overlap > 0:
                covered += count * (overlap / width)
        return min(1.0, covered / self.total)


@dataclass
class ColumnStats:
    """Statistics of one column at collection time."""

    column: str
    row_count: int
    min_value: object
    max_value: object
    ndv: int
    histogram: Histogram | None = None

    def equality_fraction(self) -> float:
        """Estimated fraction for ``col = const``: ``1 / ndv``."""
        return 1.0 / self.ndv if self.ndv > 0 else 0.0


@dataclass
class TableStats:
    """Statistics of one table at collection time."""

    table: str
    row_count: int
    num_pages: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)


class StatisticsCatalog:
    """Holds (possibly stale) statistics for the optimizer.

    Staleness injection:

    * collect, then load more data — the catalog keeps the old counts;
    * :meth:`scale_row_count` — pretend the table is smaller/larger;
    * :meth:`override_column` — replace one column's stats outright;
    * never analyze — estimation falls back to PostgreSQL-style defaults.
    """

    def __init__(self, seed: int = 0):
        self._stats: dict[str, TableStats] = {}
        self._rng = random.Random(seed)

    def analyze(self, table: Table, columns: list[str] | None = None,
                sample_rate: float = 1.0,
                buckets: int = _DEFAULT_BUCKETS,
                prefix_fraction: float | None = None) -> TableStats:
        """Collect statistics for ``table``.

        ``sample_rate`` draws a Bernoulli sample (unbiased, just coarser).
        ``prefix_fraction`` instead reads only the *first* fraction of the
        heap — statistics as they would have been collected before the
        latest data ingest.  On chronologically loaded tables this leaves
        recent value ranges entirely outside the histograms, the classic
        stale-statistics failure the paper's motivation describes.
        """
        if not 0.0 < sample_rate <= 1.0:
            raise StatisticsError("sample_rate must be in (0, 1]")
        if prefix_fraction is not None and not 0.0 < prefix_fraction <= 1.0:
            raise StatisticsError("prefix_fraction must be in (0, 1]")
        names = columns if columns is not None else list(
            table.schema.column_names
        )
        seen_rows = table.row_count
        if prefix_fraction is not None:
            seen_rows = max(1, int(table.row_count * prefix_fraction))
        stats = TableStats(
            table=table.name,
            row_count=seen_rows,
            num_pages=max(1, int(
                table.num_pages
                * (prefix_fraction if prefix_fraction is not None else 1.0)
            )),
        )
        for name in names:
            values = []
            for i, value in enumerate(table.column_values(name)):
                if i >= seen_rows:
                    break
                if sample_rate >= 1.0 or self._rng.random() < sample_rate:
                    values.append(value)
            stats.columns[name] = self._column_stats(name, values,
                                                     seen_rows, buckets)
        self._stats[table.name] = stats
        return stats

    def _column_stats(self, name: str, values: list, row_count: int,
                      buckets: int) -> ColumnStats:
        if not values:
            return ColumnStats(column=name, row_count=row_count,
                               min_value=None, max_value=None, ndv=0)
        numeric = all(isinstance(v, (int, float)) for v in values)
        lo, hi = min(values), max(values)
        ndv = len(set(values))
        histogram = None
        if numeric:
            counts = [0] * buckets
            span = float(hi) - float(lo)
            for v in values:
                if span <= 0:
                    counts[0] += 1
                else:
                    b = min(buckets - 1,
                            int((float(v) - float(lo)) / span * buckets))
                    counts[b] += 1
            histogram = Histogram(lo=float(lo), hi=float(hi), counts=counts)
        return ColumnStats(column=name, row_count=row_count,
                           min_value=lo, max_value=hi, ndv=ndv,
                           histogram=histogram)

    # -- lookup ------------------------------------------------------------

    def has_table(self, table_name: str) -> bool:
        """True if any statistics exist for the table."""
        return table_name in self._stats

    def table_stats(self, table_name: str) -> TableStats:
        """Stats for a table; raises StatisticsError when never analyzed."""
        try:
            return self._stats[table_name]
        except KeyError:
            raise StatisticsError(
                f"no statistics collected for table {table_name!r}"
            ) from None

    def column_stats(self, table_name: str,
                     column: str) -> ColumnStats | None:
        """Stats for one column, or None when unavailable."""
        if table_name not in self._stats:
            return None
        return self._stats[table_name].columns.get(column)

    # -- staleness injection -------------------------------------------------

    def scale_row_count(self, table_name: str, factor: float) -> None:
        """Make the catalog believe the table has ``factor``× the rows."""
        stats = self.table_stats(table_name)
        stats.row_count = max(0, int(stats.row_count * factor))

    def override_column(self, table_name: str, column: str,
                        stats: ColumnStats) -> None:
        """Replace one column's statistics outright."""
        self.table_stats(table_name).columns[column] = stats

    def forget(self, table_name: str) -> None:
        """Drop all statistics for a table (simulate missing stats)."""
        self._stats.pop(table_name, None)
