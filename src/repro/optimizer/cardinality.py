"""Selectivity estimation under the textbook assumptions.

This estimator makes exactly the simplifying assumptions the paper blames
for suboptimal plans (§I): *uniformity* within histogram buckets and
*attribute-value independence* (AVI) across conjuncts.  On correlated or
skewed data those assumptions produce the under-estimates that make an
optimizer pick an index scan moments before it becomes a disaster.

When no statistics exist, PostgreSQL-style magic defaults apply.
"""

from __future__ import annotations

from repro.exec.expressions import (
    And,
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    StringMatch,
    TruePredicate,
)
from repro.optimizer.statistics import StatisticsCatalog

#: Defaults used when a column has no statistics (PostgreSQL's choices).
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_INEQ_SELECTIVITY = 1.0 / 3.0
#: LIKE-style pattern matches have no histogram support either.
DEFAULT_MATCH_SELECTIVITY = 0.1
#: Column-vs-column comparisons are guessed blindly — no per-column
#: statistic can estimate them.  Commercial optimizers use optimistic
#: constants here; 5% is what makes the correlated-date conjunctions of
#: Q12 look vanishingly rare under AVI, the paper's "significantly
#: underestimated" outer cardinality.
DEFAULT_COLUMN_COMPARE_SELECTIVITY = 0.05


def estimate_selectivity(catalog: StatisticsCatalog, table_name: str,
                         predicate: Predicate) -> float:
    """Estimated fraction of rows of ``table_name`` matching ``predicate``."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(catalog, table_name, predicate)
    if isinstance(predicate, Between):
        return _range_selectivity(
            catalog, table_name, predicate.column,
            predicate.lo, predicate.hi,
            predicate.lo_inclusive, predicate.hi_inclusive,
        )
    if isinstance(predicate, InList):
        stats = catalog.column_stats(table_name, predicate.column)
        per_value = (
            stats.equality_fraction() if stats and stats.ndv
            else DEFAULT_EQ_SELECTIVITY
        )
        return min(1.0, per_value * len(set(predicate.values)))
    if isinstance(predicate, And):
        # Attribute-value independence: multiply conjunct selectivities.
        sel = 1.0
        for part in predicate.parts:
            sel *= estimate_selectivity(catalog, table_name, part)
        return sel
    if isinstance(predicate, Or):
        sel = 0.0
        for part in predicate.parts:
            s = estimate_selectivity(catalog, table_name, part)
            sel = sel + s - sel * s  # independence union
        return sel
    if isinstance(predicate, Not):
        return 1.0 - estimate_selectivity(catalog, table_name, predicate.part)
    if isinstance(predicate, StringMatch):
        return DEFAULT_MATCH_SELECTIVITY
    if isinstance(predicate, ColumnComparison):
        if predicate.op is CompareOp.EQ:
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_COLUMN_COMPARE_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def estimate_cardinality(catalog: StatisticsCatalog, table_name: str,
                         predicate: Predicate,
                         fallback_rows: int | None = None,
                         selectivity: float | None = None) -> int:
    """Estimated result rows: selectivity × (believed) row count.

    The row count comes from the catalog when available (which may be
    stale!), else ``fallback_rows``.  A caller that already computed the
    predicate's selectivity passes it via ``selectivity`` to skip the
    re-estimation.
    """
    sel = selectivity if selectivity is not None else \
        estimate_selectivity(catalog, table_name, predicate)
    if catalog.has_table(table_name):
        rows = catalog.table_stats(table_name).row_count
    elif fallback_rows is not None:
        rows = fallback_rows
    else:
        rows = 0
    return max(0, round(sel * rows))


def _comparison_selectivity(catalog: StatisticsCatalog, table_name: str,
                            cmp: Comparison) -> float:
    stats = catalog.column_stats(table_name, cmp.column)
    if cmp.op is CompareOp.EQ:
        if stats is None or stats.ndv == 0:
            return DEFAULT_EQ_SELECTIVITY
        return stats.equality_fraction()
    if cmp.op is CompareOp.NE:
        if stats is None or stats.ndv == 0:
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return max(0.0, 1.0 - stats.equality_fraction())
    if cmp.op in (CompareOp.LT, CompareOp.LE):
        return _range_selectivity(catalog, table_name, cmp.column,
                                  None, cmp.value, True,
                                  cmp.op is CompareOp.LE)
    if cmp.op in (CompareOp.GT, CompareOp.GE):
        return _range_selectivity(catalog, table_name, cmp.column,
                                  cmp.value, None,
                                  cmp.op is CompareOp.GE, True)
    return DEFAULT_INEQ_SELECTIVITY


def _range_selectivity(catalog: StatisticsCatalog, table_name: str,
                       column: str, lo, hi,
                       lo_inclusive: bool, hi_inclusive: bool) -> float:
    stats = catalog.column_stats(table_name, column)
    if stats is None or stats.histogram is None:
        return DEFAULT_RANGE_SELECTIVITY
    return stats.histogram.range_fraction(
        _as_float(lo), _as_float(hi), lo_inclusive, hi_inclusive
    )


def _as_float(value) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
