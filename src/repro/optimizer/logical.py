"""The logical query description the declarative API hands the planner.

A :class:`QuerySpec` says *what* to compute — base table, filters, joins,
grouping, ordering — and nothing about *how*: no access paths, no join
methods, no operator classes.  :meth:`~repro.optimizer.planner.Planner.
plan_query` lowers a spec into a physical operator tree, which is the
paper's whole point inverted into an API: callers state the query, the
planner decides the paths (and with Smooth Scan enabled it can always
decide safely, §IV-B).

Specs are immutable; the fluent :class:`~repro.api.query.Query` builder
produces a new spec per call, so partially-built queries can be shared
and branched freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PlanningError
from repro.exec.aggregates import AggSpec
from repro.exec.expressions import Predicate, TruePredicate
from repro.storage.types import Row, Schema

#: Join semantics the executor supports (HashJoin's ``join_type`` values).
JOIN_KINDS = ("inner", "left", "semi", "anti")


@dataclass(frozen=True)
class JoinSpec:
    """One equi-join against a named table.

    ``left_key`` must be resolvable in the schema accumulated so far (the
    base table or any earlier join); ``right_key`` names a column of
    ``table``.  Non-inner joins are order-sensitive, so the planner only
    reorders joins when every join in the query is ``inner``.
    """

    table: str
    left_key: str
    right_key: str
    how: str = "inner"

    def __post_init__(self) -> None:
        if self.how not in JOIN_KINDS:
            raise PlanningError(
                f"join kind must be one of {JOIN_KINDS}, got {self.how!r}"
            )


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class MapSpec:
    """A computed projection applied after aggregation (MapProject).

    ``vector``, when present, is the columnar counterpart of ``fn``: it
    maps a chunk to the full tuple of output columns and must be
    value-equivalent row-for-row (returning ``None`` at runtime falls
    back to ``fn``).
    """

    schema: Schema
    fn: Callable[[Row], Row]
    vector: Callable | None = None


@dataclass(frozen=True)
class QuerySpec:
    """A complete logical query over one database.

    ``predicate`` is the conjunction of every ``where()`` call; the
    planner splits it into per-table pushdowns and cross-table residuals.
    Aggregation is active when ``group_by`` or ``aggregates`` is
    non-empty (empty ``group_by`` with aggregates is a scalar aggregate).
    """

    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    joins: tuple[JoinSpec, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggSpec, ...] = ()
    select: tuple[str, ...] = ()
    maps: tuple[MapSpec, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    @property
    def has_aggregation(self) -> bool:
        """True when the query groups and/or aggregates."""
        return bool(self.group_by or self.aggregates)

    @property
    def table_names(self) -> tuple[str, ...]:
        """All referenced tables, base first, in join order."""
        return (self.table,) + tuple(j.table for j in self.joins)
