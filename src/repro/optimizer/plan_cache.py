"""The plan cache: normalized statement → frozen plan recipe.

Serving workloads re-execute a small set of statements with drifting
bind parameters; re-running the optimizer per call is wasted work, so
engines cache the plan and replay it.  That is exactly the regime the
paper opens with: a cached plan is optimized for the parameter values
seen at prepare/first-execute time, and as parameters drift the plan
goes stale — unless the plan is built from statistics-oblivious
operators (Smooth Scan), which stay near-optimal at any selectivity.
This cache is what makes the repo able to *express* that scenario.

Keys are ``(normalized statement text, planner-options fingerprint)``;
entries remember the catalog version they were planned under and are
invalidated when it moves (``create_index`` / ``drop_index`` /
``load_table`` — anything that changes what plans are even buildable).
Values are :class:`~repro.optimizer.planner.PlanRecipe` objects — the
decisions only, never operator trees, so one cached plan can be
instantiated for any parameter binding.

Statistics refreshes (``analyze``) also bump the catalog version: the
legacy ``Database.sql`` facade re-planned from scratch every call, and
the cache must never make it observably different.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.optimizer.planner import PlannerOptions, PlanRecipe

#: Default maximum number of cached statements (LRU beyond this).
DEFAULT_CAPACITY = 128


def options_fingerprint(options: PlannerOptions | None) -> tuple:
    """A hashable identity for the planner options a plan was built under.

    ``None`` and a default-constructed ``PlannerOptions`` fingerprint
    identically (the planner treats them identically).  Policy/trigger
    factory hooks are fingerprinted by ``repr``: two *distinct* hook
    objects may spuriously miss, but never spuriously hit — the safe
    direction for a cache.
    """
    options = options or PlannerOptions()
    return (
        options.enable_index,
        options.enable_sort_scan,
        options.enable_smooth,
        options.enable_inlj,
        options.force_path,
        options.shard_parallel,
        None if options.smooth_policy is None
        else repr(options.smooth_policy),
        None if options.smooth_trigger is None
        else repr(options.smooth_trigger),
    )


@dataclass
class PlanCacheStats:
    """Hit/miss/invalidation accounting, cumulative over the cache's life."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        """The one-line summary ``explain()`` and ``\\analyze`` print."""
        return (f"hits={self.hits} misses={self.misses} "
                f"invalidations={self.invalidations}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlanCacheStats(hits={self.hits}, misses={self.misses}, "
                f"invalidations={self.invalidations}, "
                f"evictions={self.evictions})")


@dataclass
class _Entry:
    recipe: PlanRecipe
    catalog_version: int
    hits: int = 0


@dataclass
class PlanCache:
    """An LRU plan cache with catalog-version invalidation."""

    capacity: int = DEFAULT_CAPACITY
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    #: Optional observer called with "hit" / "miss" / "invalidation" /
    #: "eviction" as each happens (the database wires the tracer here).
    on_event: "Callable[[str], None] | None" = None
    _entries: "OrderedDict[tuple, _Entry]" = field(
        default_factory=OrderedDict
    )

    def _notify(self, kind: str) -> None:
        if self.on_event is not None:
            self.on_event(kind)

    def lookup(self, key: tuple, catalog_version: int) -> PlanRecipe | None:
        """The cached recipe for ``key``, or ``None`` (counted as a miss).

        An entry planned under an older catalog version is dropped and
        counted as an invalidation *and* a miss — the caller re-plans
        and re-stores, exactly like a first execution.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._notify("miss")
            return None
        if entry.catalog_version != catalog_version:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            self._notify("invalidation")
            self._notify("miss")
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        self._notify("hit")
        return entry.recipe

    def store(self, key: tuple, recipe: PlanRecipe,
              catalog_version: int) -> None:
        """Remember ``recipe`` for ``key``, evicting LRU past capacity."""
        self._entries[key] = _Entry(recipe, catalog_version)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._notify("eviction")

    def clear(self) -> None:
        """Drop every entry (stats are cumulative and survive)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats_dict(self) -> dict:
        """The structured cache state: size, capacity, cumulative stats.

        The single source of truth every surface formats from — cursor
        EXPLAIN's plan-cache line, the metrics registry's gauges, and
        the server ``stats`` frame all read this dict.
        """
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "invalidations": self.stats.invalidations,
            "evictions": self.stats.evictions,
            "lookups": self.stats.lookups,
        }

    def describe(self) -> str:
        """One line for the REPL: size plus cumulative stats."""
        n = self.stats_dict()["entries"]
        return (f"plan cache: {n} entr{'y' if n == 1 else 'ies'}, "
                f"{self.stats.describe()}")
