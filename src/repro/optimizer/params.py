"""Logical-spec parameterization: markers, slots and substitution.

Prepared statements compile SQL once into a *parameterized*
:class:`~repro.optimizer.logical.QuerySpec`: wherever the statement wrote
``?`` or ``:name``, the bound predicates carry a :class:`ParamMarker`
instead of a concrete value.  Executing the statement substitutes real
values into a fresh, concrete spec (:func:`substitute_spec`) — no
re-lexing, no re-parsing, no re-binding — which the planner then lowers
(or, on a plan-cache hit, replays).

Two substitution channels exist because bound statements hold two kinds
of compiled artifacts:

* **structural** — predicates are immutable trees, so markers inside
  :class:`~repro.exec.expressions.Comparison` / ``Between`` / ``InList``
  (and the spec's ``LIMIT``) are replaced by rebuilding the affected
  nodes.  The planner then sees exactly the predicate a literal statement
  would have produced — measurement-identical by construction.
* **slot-based** — value callables compiled by the binder (aggregate
  arguments, computed select items) are closures; they read parameters
  from a shared :class:`ParamBox` the binder threaded through at compile
  time, which :func:`resolve_params` fills at execute time.

The box is per-bound-statement, so interleaving *streaming* executions of
one prepared statement with different parameters would overwrite the
slots mid-stream; drain or close the earlier cursor first (the session
layer documents this).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.errors import PlanningError, SqlError
from repro.exec.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    NullRejecting,
    Or,
    Predicate,
)
from repro.optimizer.logical import QuerySpec


@dataclass(frozen=True)
class ParamMarker:
    """A placeholder for a bind parameter inside a bound spec.

    ``index`` is the 0-based position in statement order; ``name`` is set
    for ``:name`` style parameters (repeated names share the name but
    occupy distinct indices).
    """

    index: int
    name: str | None = None

    def __repr__(self) -> str:
        return f":{self.name}" if self.name else f"?{self.index + 1}"


class ParamBox:
    """The mutable parameter slots compiled value callables read from.

    One box per bound statement; :func:`resolve_params` output is written
    here before each execution so ``lambda row: box.values[i]`` closures
    see the current binding.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: Sequence[object] | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParamBox({self.values!r})"


def resolve_params(param_names: Sequence[str | None],
                   params: object) -> list[object]:
    """Normalize user-supplied parameters into an index-ordered list.

    ``param_names`` has one entry per placeholder in statement order
    (``None`` for positional ``?``).  Positional statements take a
    sequence of exactly that length; named statements take a mapping
    covering every name.  Extra names are rejected — a typo'd key would
    otherwise silently leave the intended parameter at its old value.
    """
    count = len(param_names)
    if count == 0:
        if params:
            raise SqlError(
                f"statement takes no parameters, got {params!r}"
            )
        return []
    if params is None:
        raise SqlError(
            f"statement takes {count} parameter{'s' if count != 1 else ''}, "
            "got none"
        )
    named = [n for n in param_names if n is not None]
    if named:
        if not isinstance(params, Mapping):
            raise SqlError(
                "statement uses :name parameters; pass a mapping, got "
                f"{type(params).__name__}"
            )
        missing = sorted({n for n in named if n not in params})
        if missing:
            raise SqlError("missing parameter values for: "
                           f"{', '.join(missing)}")
        extra = sorted(set(params) - set(named))
        if extra:
            raise SqlError(
                f"unknown parameter names: {', '.join(map(str, extra))}; "
                f"statement declares: {', '.join(sorted(set(named)))}"
            )
        return [params[n] for n in param_names]  # type: ignore[index]
    if isinstance(params, Mapping):
        raise SqlError(
            "statement uses positional '?' parameters; pass a sequence, "
            "got a mapping"
        )
    if isinstance(params, (str, bytes)):
        raise SqlError(
            "parameters must be a sequence of values, not a bare string"
        )
    values = list(params)  # type: ignore[arg-type]
    if len(values) != count:
        raise SqlError(
            f"statement takes {count} parameter"
            f"{'s' if count != 1 else ''}, got {len(values)}"
        )
    return values


def substitute_predicate(predicate: Predicate,
                         values: Sequence[object]) -> Predicate:
    """Replace every :class:`ParamMarker` in ``predicate`` with its value.

    Returns the original object when nothing changed, so unparameterized
    statements pay nothing and object identity stays stable for caches.
    """
    if isinstance(predicate, Comparison):
        if isinstance(predicate.value, ParamMarker):
            return replace(predicate,
                           value=values[predicate.value.index])
        return predicate
    if isinstance(predicate, Between):
        lo, hi = predicate.lo, predicate.hi
        changed = False
        if isinstance(lo, ParamMarker):
            lo, changed = values[lo.index], True
        if isinstance(hi, ParamMarker):
            hi, changed = values[hi.index], True
        return replace(predicate, lo=lo, hi=hi) if changed else predicate
    if isinstance(predicate, InList):
        if any(isinstance(v, ParamMarker) for v in predicate.values):
            return replace(predicate, values=tuple(
                values[v.index] if isinstance(v, ParamMarker) else v
                for v in predicate.values
            ))
        return predicate
    if isinstance(predicate, (And, Or)):
        parts = [substitute_predicate(p, values) for p in predicate.parts]
        if all(new is old for new, old in zip(parts, predicate.parts, strict=False)):
            return predicate
        return And(parts) if isinstance(predicate, And) else Or(parts)
    if isinstance(predicate, Not):
        part = substitute_predicate(predicate.part, values)
        return predicate if part is predicate.part else Not(part)
    if isinstance(predicate, NullRejecting):
        part = substitute_predicate(predicate.part, values)
        return predicate if part is predicate.part else NullRejecting(part)
    return predicate


def substitute_spec(spec: QuerySpec,
                    values: Sequence[object]) -> QuerySpec:
    """A concrete spec: every structural marker replaced by its value."""
    changes: dict = {}
    predicate = substitute_predicate(spec.predicate, values)
    if predicate is not spec.predicate:
        changes["predicate"] = predicate
    if isinstance(spec.limit, ParamMarker):
        limit = values[spec.limit.index]
        if not isinstance(limit, int) or isinstance(limit, bool) \
                or limit < 0:
            raise SqlError(
                "LIMIT parameter must be a non-negative integer, "
                f"got {limit!r}"
            )
        changes["limit"] = limit
    return replace(spec, **changes) if changes else spec


def predicate_markers(predicate: Predicate) -> list[ParamMarker]:
    """Every :class:`ParamMarker` in ``predicate``, in tree order."""
    found: list[ParamMarker] = []

    def walk(part: Predicate) -> None:
        if isinstance(part, Comparison):
            if isinstance(part.value, ParamMarker):
                found.append(part.value)
        elif isinstance(part, Between):
            for bound in (part.lo, part.hi):
                if isinstance(bound, ParamMarker):
                    found.append(bound)
        elif isinstance(part, InList):
            found.extend(v for v in part.values
                         if isinstance(v, ParamMarker))
        elif isinstance(part, (And, Or)):
            for p in part.parts:
                walk(p)
        elif isinstance(part, (Not, NullRejecting)):
            walk(part.part)

    walk(predicate)
    return found


def unbound_params(spec: QuerySpec) -> list[ParamMarker]:
    """Every marker still present in ``spec``'s structural positions.

    The planner refuses specs with leftover markers: a marker would flow
    into key-range extraction or the ``Limit`` operator as an opaque
    object and fail far from the cause.
    """
    found = predicate_markers(spec.predicate)
    if isinstance(spec.limit, ParamMarker):
        found.append(spec.limit)
    return found


def require_bound(spec: QuerySpec) -> None:
    """Raise :class:`PlanningError` when ``spec`` has unbound markers."""
    markers = unbound_params(spec)
    if markers:
        shown = ", ".join(repr(m) for m in markers[:5])
        raise PlanningError(
            f"query spec still contains {len(markers)} unbound "
            f"parameter{'s' if len(markers) != 1 else ''} ({shown}); "
            "execute it through a prepared statement or cursor with "
            "parameter values"
        )
