"""Access-path costing for the planner.

Thin adapters turning (table, estimated selectivity) into the Section V
formulas, so the planner compares alternatives in the same units the
analytic model uses.  A configurable ``sort_penalty`` represents the CPU
cost of the posterior sort a blocking path needs under an ORDER BY.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import EngineConfig
from repro.costmodel import formulas
from repro.costmodel.params import CostParams
from repro.storage.disk import DiskProfile
from repro.storage.table import Table


@dataclass(frozen=True)
class AccessPathCost:
    """One candidate access path with its estimated cost in I/O units."""

    path: str          # "full" | "index" | "sort" | "smooth"
    cost: float
    ordered_output: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}:{self.cost:.0f}"


def params_for(table: Table, config: EngineConfig, profile: DiskProfile,
               column: str, selectivity: float) -> CostParams:
    """Cost-model parameters for one (table, column, selectivity)."""
    return CostParams.from_table(table, config, profile, column, selectivity)


def sort_cpu_cost(card: int, profile: DiskProfile,
                  compare_ms: float) -> float:
    """Posterior-sort CPU converted into I/O cost units."""
    if card < 2:
        return 0.0
    comparisons = card * max(1, (card - 1).bit_length())
    return comparisons * compare_ms / profile.ms_per_unit


def candidate_paths(table: Table, config: EngineConfig,
                    profile: DiskProfile, column: str | None,
                    selectivity: float, require_order: bool = False,
                    enable_smooth: bool = False,
                    assume_index: bool = False,
                    index_satisfies_order: bool = True
                    ) -> list[AccessPathCost]:
    """All viable access paths for one scan, costed at ``selectivity``.

    ``column`` is the indexed column usable for the predicate (None when
    no index applies — then only the full scan qualifies).  With
    ``require_order`` the posterior sort penalty is added to paths that
    do not emit in the requested order; key-ordered paths (index,
    smooth) escape it only while ``index_satisfies_order`` holds, i.e.
    the requested order is on ``column`` itself.  ``assume_index`` costs
    the index paths even when the index does not exist yet (what-if
    costing for the advisor).
    """
    indexed = column is not None and (table.has_index(column) or assume_index)
    key_column = column if indexed else table.schema.column_names[0]
    p = params_for(table, config, profile, key_column, selectivity)
    sort_penalty = sort_cpu_cost(p.cardinality, profile,
                                 config.cpu.compare) if require_order else 0.0
    key_ordered = not require_order or index_satisfies_order
    key_penalty = 0.0 if key_ordered else sort_penalty
    paths = [
        AccessPathCost("full", formulas.full_scan_cost(p) + sort_penalty,
                       ordered_output=not require_order)
    ]
    if indexed:
        paths.append(
            AccessPathCost("index",
                           formulas.index_scan_cost(p) + key_penalty,
                           ordered_output=key_ordered)
        )
        paths.append(
            AccessPathCost("sort",
                           formulas.sort_scan_cost(p) + sort_penalty,
                           ordered_output=not require_order)
        )
        if enable_smooth:
            paths.append(
                AccessPathCost("smooth",
                               formulas.smooth_scan_cost(p) + key_penalty,
                               ordered_output=key_ordered)
            )
    return paths


def cheapest_path(paths: list[AccessPathCost]) -> AccessPathCost:
    """The minimum-cost candidate."""
    return min(paths, key=lambda c: c.cost)


def smooth_scan_estimate(table: Table, config: EngineConfig,
                         profile: DiskProfile, column: str,
                         selectivity: float) -> float:
    """Smooth Scan's analytic worst-case cost at ``selectivity``.

    The planner's smooth decisions deliberately carry ``NaN`` cost
    (smooth needs no estimate to be safe); admission pricing and
    exchange modeling substitute this bound where a number is needed.
    """
    p = params_for(table, config, profile, column, selectivity)
    return formulas.smooth_scan_cost(p)


def exchange_merge_cost(total_rows: int, profile: DiskProfile,
                        exchange_ms: float) -> float:
    """Coordinator merge CPU in I/O units: one charge per merged row.

    This is the *serial* fraction of a shard-parallel plan — it does
    not shrink with the shard count, which is why measured speedup
    stays below N (Amdahl's law, quantified by the shard-scaling
    experiment).
    """
    return total_rows * exchange_ms / profile.ms_per_unit


def exchange_cost(shard_costs: list[float], merge_cost: float) -> float:
    """Completion-time estimate of an exchange over overlapped shards.

    Shards progress concurrently, so the parallel fraction completes
    with the most expensive shard; the merge is serial on top.
    """
    return max(shard_costs) + merge_cost


def inlj_cost(outer_card: int, inner: CostParams,
              matches_per_key: float = 1.0) -> float:
    """Index-nested-loop cost: a descent + match fetches per outer row."""
    per_probe = inner.height * inner.rand_cost \
        + matches_per_key * inner.rand_cost
    return outer_card * per_probe


def hash_join_cost(build_card: int, probe_card: int,
                   profile: DiskProfile, hash_ms: float) -> float:
    """Hash-join CPU converted into I/O units (both sides hashed once)."""
    return (build_card + probe_card) * hash_ms / profile.ms_per_unit


def index_size_bytes(table: Table, config: EngineConfig,
                     column: str) -> int:
    """Estimated on-disk size of a B+-tree on ``column``.

    Keys plus 20% pointer overhead (Eq. (5)'s assumption) plus TIDs.
    """
    col = table.schema.columns[table.schema.index_of(column)]
    entry = math.ceil(col.byte_size * 1.2) + 8  # key + pointer + TID
    return table.row_count * entry
