"""The index advisor — a miniature of DBMS-X's "official tuning tool".

Figure 1's disasters happen *after* tuning: an advisor proposes indexes
whose estimated benefit is computed from the same flawed statistics the
optimizer uses, and the optimizer then happily routes huge scans through
them.  This advisor reproduces that pipeline: per-query benefit = estimated
full-scan cost minus estimated best-index-path cost, greedy knapsack under
a space budget (the paper gives DBMS-X's tool 5GB ≈ half the data set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.database import Database
from repro.exec.expressions import Predicate, extract_range
from repro.optimizer import cardinality as card_est
from repro.optimizer import costing
from repro.optimizer.statistics import StatisticsCatalog


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload entry the advisor optimizes for."""

    table: str
    predicate: Predicate
    order_by: str | None = None
    weight: float = 1.0


@dataclass
class Recommendation:
    """The advisor's output."""

    indexes: list[tuple[str, str]] = field(default_factory=list)
    total_bytes: int = 0
    benefits: dict[tuple[str, str], float] = field(default_factory=dict)


class IndexAdvisor:
    """Greedy benefit-per-byte index selection under a space budget."""

    def __init__(self, db: Database, catalog: StatisticsCatalog):
        self.db = db
        self.catalog = catalog

    def candidate_columns(self,
                          workload: list[WorkloadQuery]
                          ) -> set[tuple[str, str]]:
        """All (table, column) pairs some query could use an index on."""
        candidates: set[tuple[str, str]] = set()
        for query in workload:
            table = self.db.table(query.table)
            for column in table.schema.column_names:
                rng, _residual = extract_range(query.predicate, column)
                if rng is not None:
                    candidates.add((query.table, column))
            if query.order_by is not None:
                candidates.add((query.table, query.order_by))
        return candidates

    def estimated_benefit(self, workload: list[WorkloadQuery],
                          table_name: str, column: str) -> float:
        """Σ weight × (full-scan cost − best index-path cost), clamped ≥ 0."""
        table = self.db.table(table_name)
        benefit = 0.0
        for query in workload:
            if query.table != table_name:
                continue
            rng, _residual = extract_range(query.predicate, column)
            if rng is None and query.order_by != column:
                continue
            sel = card_est.estimate_selectivity(
                self.catalog, table_name, query.predicate
            )
            paths = costing.candidate_paths(
                table, self.db.config, self.db.profile, column, sel,
                require_order=query.order_by is not None,
                assume_index=True,
                index_satisfies_order=query.order_by == column,
            )
            by_name = {p.path: p.cost for p in paths}
            with_index = min(
                v for k, v in by_name.items() if k in ("index", "sort")
            )
            benefit += query.weight * max(0.0, by_name["full"] - with_index)
        return benefit

    def recommend(self, workload: list[WorkloadQuery],
                  space_budget_bytes: int) -> Recommendation:
        """Greedy knapsack over candidates by benefit per byte."""
        rec = Recommendation()
        scored: list[tuple[float, int, tuple[str, str]]] = []
        for table_name, column in self.candidate_columns(workload):
            table = self.db.table(table_name)
            if table.has_index(column):
                continue  # already present
            size = costing.index_size_bytes(table, self.db.config, column)
            benefit = self.estimated_benefit(workload, table_name, column)
            if benefit > 0:
                scored.append((benefit / max(1, size), size,
                               (table_name, column)))
                rec.benefits[(table_name, column)] = benefit
        scored.sort(reverse=True)
        used = 0
        for _score, size, key in scored:
            if used + size > space_budget_bytes:
                continue
            rec.indexes.append(key)
            used += size
        rec.total_bytes = used
        return rec

    def apply(self, rec: Recommendation) -> None:
        """Create every recommended index."""
        for table_name, column in rec.indexes:
            if not self.db.table(table_name).has_index(column):
                self.db.create_index(table_name, column)
