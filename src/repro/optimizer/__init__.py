"""Cost-based optimizer: statistics, estimation, costing, planning, advice."""

from repro.optimizer.advisor import IndexAdvisor, Recommendation, WorkloadQuery
from repro.optimizer.cardinality import (
    estimate_cardinality,
    estimate_selectivity,
)
from repro.optimizer.costing import (
    AccessPathCost,
    candidate_paths,
    cheapest_path,
    index_size_bytes,
)
from repro.optimizer.logical import (
    JoinSpec,
    MapSpec,
    OrderItem,
    QuerySpec,
)
from repro.optimizer.params import (
    ParamMarker,
    resolve_params,
    substitute_spec,
)
from repro.optimizer.plan_cache import (
    PlanCache,
    PlanCacheStats,
    options_fingerprint,
)
from repro.optimizer.planner import (
    AccessPin,
    JoinPin,
    PlanDecision,
    PlanNode,
    PlanRecipe,
    PlannedQuery,
    Planner,
    PlannerOptions,
)
from repro.optimizer.statistics import (
    ColumnStats,
    Histogram,
    StatisticsCatalog,
    TableStats,
)

__all__ = [
    "AccessPathCost",
    "AccessPin",
    "ColumnStats",
    "Histogram",
    "IndexAdvisor",
    "JoinPin",
    "JoinSpec",
    "MapSpec",
    "OrderItem",
    "ParamMarker",
    "PlanCache",
    "PlanCacheStats",
    "PlanDecision",
    "PlanNode",
    "PlanRecipe",
    "PlannedQuery",
    "Planner",
    "PlannerOptions",
    "QuerySpec",
    "Recommendation",
    "StatisticsCatalog",
    "TableStats",
    "WorkloadQuery",
    "candidate_paths",
    "cheapest_path",
    "estimate_cardinality",
    "estimate_selectivity",
    "index_size_bytes",
    "options_fingerprint",
    "resolve_params",
    "substitute_spec",
]
