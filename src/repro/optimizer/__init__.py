"""Cost-based optimizer: statistics, estimation, costing, planning, advice."""

from repro.optimizer.advisor import IndexAdvisor, Recommendation, WorkloadQuery
from repro.optimizer.cardinality import (
    estimate_cardinality,
    estimate_selectivity,
)
from repro.optimizer.costing import (
    AccessPathCost,
    candidate_paths,
    cheapest_path,
    index_size_bytes,
)
from repro.optimizer.logical import (
    JoinSpec,
    MapSpec,
    OrderItem,
    QuerySpec,
)
from repro.optimizer.planner import (
    PlanDecision,
    PlanNode,
    PlannedQuery,
    Planner,
    PlannerOptions,
)
from repro.optimizer.statistics import (
    ColumnStats,
    Histogram,
    StatisticsCatalog,
    TableStats,
)

__all__ = [
    "AccessPathCost",
    "ColumnStats",
    "Histogram",
    "IndexAdvisor",
    "JoinSpec",
    "MapSpec",
    "OrderItem",
    "PlanDecision",
    "PlanNode",
    "PlannedQuery",
    "Planner",
    "PlannerOptions",
    "QuerySpec",
    "Recommendation",
    "StatisticsCatalog",
    "TableStats",
    "WorkloadQuery",
    "candidate_paths",
    "cheapest_path",
    "estimate_cardinality",
    "estimate_selectivity",
    "index_size_bytes",
]
