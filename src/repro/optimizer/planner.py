"""Access-path selection — the decision Smooth Scan makes obsolete.

Given a predicate and (possibly stale) statistics, the planner estimates a
selectivity, costs every viable access path with the Section V formulas,
and picks the cheapest — a faithful miniature of the tipping-point
decision described in the paper's introduction.  When ``enable_smooth`` is
set the planner simply always chooses Smooth Scan ("the optimizer can
always choose a Smooth Scan", §IV-B), which is how the PostgreSQL-with-
Smooth-Scan configurations of Figures 4–10 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policy import ElasticPolicy, MorphPolicy
from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import EagerTrigger, Trigger
from repro.database import Database
from repro.errors import PlanningError
from repro.exec.expressions import (
    KeyRange,
    Predicate,
    TruePredicate,
    extract_range,
)
from repro.exec.iterator import Operator
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.optimizer import cardinality as card_est
from repro.optimizer import costing
from repro.optimizer.statistics import StatisticsCatalog
from repro.storage.table import Table


@dataclass
class PlannerOptions:
    """Knobs controlling which paths the planner may pick."""

    enable_index: bool = True
    enable_sort_scan: bool = True
    enable_smooth: bool = False
    #: Factory hooks so experiments can plan with specific variants.
    smooth_policy: MorphPolicy | None = None
    smooth_trigger: Trigger | None = None


@dataclass
class PlanDecision:
    """What the planner decided and why (for experiment reporting)."""

    path: str
    column: str | None
    estimated_selectivity: float
    estimated_cardinality: int
    estimated_cost: float
    alternatives: dict[str, float] = field(default_factory=dict)


class Planner:
    """Cost-based access-path selection over one database."""

    def __init__(self, db: Database, catalog: StatisticsCatalog,
                 options: PlannerOptions | None = None):
        self.db = db
        self.catalog = catalog
        self.options = options or PlannerOptions()

    # -- public API ----------------------------------------------------------

    def plan_scan(self, table_name: str, predicate: Predicate | None = None,
                  order_by: str | None = None
                  ) -> tuple[Operator, PlanDecision]:
        """Build the chosen access path for one table scan.

        Returns the operator tree (with any posterior sort already placed)
        and the decision record.
        """
        table = self.db.table(table_name)
        predicate = predicate or TruePredicate()
        column, key_range, residual = self._best_index_opportunity(
            table, predicate, order_by
        )
        selectivity = card_est.estimate_selectivity(
            self.catalog, table_name, predicate
        )
        est_card = card_est.estimate_cardinality(
            self.catalog, table_name, predicate,
            fallback_rows=table.row_count,
        )

        if self.options.enable_smooth and column is not None:
            return self._smooth_plan(
                table, column, key_range, residual, order_by,
                selectivity, est_card,
            )

        paths = costing.candidate_paths(
            table, self.db.config, self.db.profile,
            column, selectivity,
            require_order=order_by is not None,
            enable_smooth=False,
        )
        paths = [
            p for p in paths
            if (p.path != "index" or self.options.enable_index)
            and (p.path != "sort" or self.options.enable_sort_scan)
        ]
        choice = costing.cheapest_path(paths)
        op = self._build_path(
            choice.path, table, column, key_range, residual,
            predicate, order_by,
        )
        decision = PlanDecision(
            path=choice.path,
            column=column,
            estimated_selectivity=selectivity,
            estimated_cardinality=est_card,
            estimated_cost=choice.cost,
            alternatives={p.path: p.cost for p in paths},
        )
        return op, decision

    # -- helpers -------------------------------------------------------------

    def _best_index_opportunity(self, table: Table, predicate: Predicate,
                                order_by: str | None
                                ) -> tuple[str | None, KeyRange | None,
                                           Predicate]:
        """Pick the indexed column that serves the predicate best.

        Preference order: the tightest estimated range; an index matching
        the requested order when no range exists.
        """
        best: tuple[float, str, KeyRange, Predicate] | None = None
        for column in table.indexes:
            rng, residual = extract_range(predicate, column)
            if rng is None:
                continue
            sel = card_est.estimate_selectivity(
                self.catalog, table.name,
                _range_predicate_for(column, rng),
            )
            if best is None or sel < best[0]:
                best = (sel, column, rng, residual)
        if best is not None:
            return best[1], best[2], best[3]
        if order_by is not None and table.has_index(order_by):
            return order_by, KeyRange.all(), predicate
        return None, None, predicate

    def _smooth_plan(self, table: Table, column: str,
                     key_range: KeyRange | None, residual: Predicate,
                     order_by: str | None, selectivity: float,
                     est_card: int) -> tuple[Operator, PlanDecision]:
        ordered = order_by == column
        op: Operator = SmoothScan(
            table, column,
            key_range=key_range,
            residual=residual,
            policy=self.options.smooth_policy or ElasticPolicy(),
            trigger=self.options.smooth_trigger or EagerTrigger(),
            ordered=ordered,
        )
        if order_by is not None and not ordered:
            op = Sort(op, [order_by])
        decision = PlanDecision(
            path="smooth",
            column=column,
            estimated_selectivity=selectivity,
            estimated_cardinality=est_card,
            estimated_cost=float("nan"),  # smooth needs no estimate
        )
        return op, decision

    def _build_path(self, path: str, table: Table, column: str | None,
                    key_range: KeyRange | None, residual: Predicate,
                    predicate: Predicate,
                    order_by: str | None) -> Operator:
        if path == "full" or column is None:
            op: Operator = FullTableScan(table, predicate)
            if order_by is not None:
                op = Sort(op, [order_by])
            return op
        if path == "index":
            op = IndexScan(table, column, key_range, residual)
            if order_by is not None and order_by != column:
                op = Sort(op, [order_by])
            return op
        if path == "sort":
            op = SortScan(table, column, key_range, residual)
            if order_by is not None:
                op = Sort(op, [order_by])
            return op
        raise PlanningError(f"unknown access path {path!r}")


def _range_predicate_for(column: str, rng: KeyRange) -> Predicate:
    """Rebuild a Between predicate equivalent to an extracted range."""
    from repro.exec.expressions import Between, Comparison, CompareOp

    if rng.lo is not None and rng.hi is not None:
        return Between(column, rng.lo, rng.hi,
                       rng.lo_inclusive, rng.hi_inclusive)
    if rng.lo is not None:
        op = CompareOp.GE if rng.lo_inclusive else CompareOp.GT
        return Comparison(column, op, rng.lo)
    if rng.hi is not None:
        op = CompareOp.LE if rng.hi_inclusive else CompareOp.LT
        return Comparison(column, op, rng.hi)
    return TruePredicate()
