"""Access-path selection — the decision Smooth Scan makes obsolete.

Given a predicate and (possibly stale) statistics, the planner estimates a
selectivity, costs every viable access path with the Section V formulas,
and picks the cheapest — a faithful miniature of the tipping-point
decision described in the paper's introduction.  When ``enable_smooth`` is
set the planner simply always chooses Smooth Scan ("the optimizer can
always choose a Smooth Scan", §IV-B), which is how the PostgreSQL-with-
Smooth-Scan configurations of Figures 4–10 are produced.

Two entry points:

* :meth:`Planner.plan_scan` — one table, one predicate, one access path
  (the original miniature, used by the hand-built experiment plans).
* :meth:`Planner.plan_query` — lower a whole logical
  :class:`~repro.optimizer.logical.QuerySpec` (joins, aggregation,
  ordering, projection, limit) into a physical operator tree, returning a
  :class:`PlannedQuery` whose node tree records every decision plus
  estimated and, after execution, actual cardinalities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.policy import ElasticPolicy, MorphPolicy
from repro.core.smooth_scan import SmoothScan
from repro.core.trigger import EagerTrigger, Trigger
from repro.database import Database
from repro.errors import PlanningError
from repro.exec.aggregates import HashAggregate
from repro.exec.expressions import (
    And,
    KeyRange,
    NullRejecting,
    Predicate,
    TruePredicate,
    conjunction,
    extract_range,
)
from repro.exec.iterator import Operator
from repro.exec.joins import HashJoin, IndexNestedLoopJoin
from repro.exec.misc import Filter, Limit, MapProject, Project, RowCounter
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.optimizer import cardinality as card_est
from repro.optimizer import costing
from repro.optimizer.logical import JoinSpec, QuerySpec
from repro.optimizer.statistics import StatisticsCatalog
from repro.storage.table import Table

#: Paths ``PlannerOptions.force_path`` accepts (shared with the SQL
#: binder's ``force_path(...)`` hint validation).
FORCEABLE_PATHS = ("full", "index", "sort", "smooth")


@dataclass
class PlannerOptions:
    """Knobs controlling which paths the planner may pick."""

    enable_index: bool = True
    enable_sort_scan: bool = True
    enable_smooth: bool = False
    #: Allow index-nested-loop joins (off reproduces hash-join-only plans).
    enable_inlj: bool = True
    #: Bypass costing and build this access path (``full``/``index``/
    #: ``sort``/``smooth``) for the *base table's* scan — how the
    #: experiment sweeps pin each curve of Figure 5 through the
    #: declarative API.  Overrides the ``enable_*`` flags; refuses only
    #: when the path is unbuildable (no usable index).  Join inner
    #: sides stay cost-based (they see only the join key, where a
    #: forced range path rarely applies); ``full`` additionally
    #: disables INLJ and forces inner scans sequential, so the whole
    #: plan is scans + hash joins.
    force_path: str | None = None
    #: Factory hooks so experiments can plan with specific variants.
    smooth_policy: MorphPolicy | None = None
    smooth_trigger: Trigger | None = None
    #: Produce shard-parallel (Exchange) plans for scan-only queries on
    #: tables with a registered shard set.  Off, a partitioned table
    #: still plans serially against the parent — how the serving front
    #: keeps sessions serial and applies the split itself at admission.
    #: A ``force_path`` always plans serially (forced sweeps pin exact
    #: single-path plans).
    shard_parallel: bool = True

    def __post_init__(self) -> None:
        if self.force_path is not None \
                and self.force_path not in FORCEABLE_PATHS:
            raise PlanningError(
                f"force_path must be one of {FORCEABLE_PATHS}, "
                f"got {self.force_path!r}"
            )


@dataclass
class PlanDecision:
    """What the planner decided and why (for experiment reporting)."""

    path: str
    column: str | None
    estimated_selectivity: float
    estimated_cardinality: int
    estimated_cost: float
    alternatives: dict[str, float] = field(default_factory=dict)
    #: For per-shard decisions under an Exchange: the shard table this
    #: decision covers (``None`` for ordinary, unsharded decisions).
    #: Admission pricing sums only unsharded decisions — the exchange
    #: decision prices its whole subtree.
    shard: str | None = None


# -- plan recipes (cached-plan replay) ---------------------------------------

@dataclass(frozen=True)
class AccessPin:
    """One frozen access-path choice: which path, anchored on which
    indexed column (``None`` when no index opportunity was used)."""

    path: str
    column: str | None = None


@dataclass(frozen=True)
class JoinPin:
    """One frozen join lowering: join order is the pin sequence itself;
    ``inner`` records the inner side's access pin for hash joins."""

    table: str
    method: str                   # "inlj" | "hash"
    inner: AccessPin | None = None


@dataclass(frozen=True)
class PlanRecipe:
    """Every decision a plan embodies, minus the estimates behind it.

    A recipe is what the plan cache stores: replaying it through
    :meth:`Planner.plan_query` rebuilds the *same plan shape* for a new
    parameter binding without re-running access-path or join-method
    selection — exactly how a prepared statement's cached plan goes
    stale as its bind parameters drift (the scenario Smooth Scan's
    statistics-oblivious operators are built to survive).
    """

    base: AccessPin
    joins: tuple[JoinPin, ...] = ()


@dataclass
class PlanNode:
    """One node of a planned query tree, instrumented for explain().

    ``operator`` is the :class:`~repro.exec.misc.RowCounter` wrapping the
    node's physical operator, so after execution ``actual_rows`` reports
    the cardinality that really flowed through.
    """

    operator: RowCounter
    label: str
    est_rows: int
    est_cost: float | None = None
    decision: PlanDecision | None = None
    children: tuple["PlanNode", ...] = ()

    @property
    def actual_rows(self) -> int | None:
        """Rows produced by the last execution (None before any run)."""
        return self.operator.rows_seen


@dataclass
class PlannedQuery:
    """A lowered logical query: physical root + the decision trail.

    ``recipe`` freezes the decisions this plan embodies; the plan cache
    stores it so later executions (same statement, new parameters) can
    replay the shape without re-planning.
    """

    spec: QuerySpec
    root: Operator
    tree: PlanNode
    recipe: "PlanRecipe | None" = None

    def nodes(self):
        """Yield every PlanNode in preorder (the traversal all the
        accessors below share)."""
        stack = [self.tree]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def decisions(self) -> list[PlanDecision]:
        """Every access-path/join decision, in plan-tree preorder."""
        return [n.decision for n in self.nodes() if n.decision is not None]

    def operators(self):
        """Yield the bare physical operators (counters unwrapped)."""
        return (n.operator.child for n in self.nodes())

    def reset_counters(self) -> None:
        """Clear every node's actual-row count before a re-execution.

        A node never pulled during a run would otherwise keep the
        previous run's count; after reset such nodes render ``act=?``.
        ``Database.execute`` calls this automatically.
        """
        for node in self.nodes():
            node.operator.rows_seen = None

    def render(self) -> str:
        """The explain() tree: estimated vs. actual rows per node."""
        lines: list[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            indent = "  " * depth
            actual = node.actual_rows
            bits = [
                f"rows est={node.est_rows} "
                f"act={'?' if actual is None else actual}"
            ]
            if node.est_cost is not None and not math.isnan(node.est_cost):
                bits.append(f"cost={node.est_cost:.0f}")
            lines.append(f"{indent}-> {node.label}  [{', '.join(bits)}]")
            d = node.decision
            if d is not None and d.alternatives:
                alts = ", ".join(
                    f"{p}={c:.0f}" for p, c in sorted(d.alternatives.items())
                )
                lines.append(f"{indent}     ({d.path} chosen of: {alts})")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.tree, 0)
        return "\n".join(lines)


class Planner:
    """Cost-based access-path selection over one database."""

    def __init__(self, db: Database, catalog: StatisticsCatalog,
                 options: PlannerOptions | None = None):
        self.db = db
        self.catalog = catalog
        self.options = options or PlannerOptions()

    # -- public API ----------------------------------------------------------

    def plan_scan(self, table_name: str, predicate: Predicate | None = None,
                  order_by: str | None = None
                  ) -> tuple[Operator, PlanDecision]:
        """Build the chosen access path for one table scan.

        Returns the operator tree (with any posterior sort already placed)
        and the decision record.
        """
        op, decision, ordered = self._plan_access(
            table_name, predicate, order_by,
            force=self.options.force_path,
        )
        if order_by is not None and not ordered:
            op = Sort(op, [order_by])
        return op, decision

    def plan_query(self, spec: QuerySpec,
                   recipe: PlanRecipe | None = None) -> PlannedQuery:
        """Lower a logical query into an instrumented physical plan.

        Per-table access paths honor the planner's options exactly as
        :meth:`plan_scan` does (a single-table spec lowers to the
        identical operator tree); join order is chosen greedily by
        estimated cardinality when all joins are inner; join methods are
        costed INLJ-vs-hash with the same formula the TPC-H plan builder
        uses.  Every node is wrapped in a cost-free
        :class:`~repro.exec.misc.RowCounter` so the returned
        :class:`PlannedQuery` can report actual cardinalities.

        With ``recipe`` (from a plan-cache hit) decision points are
        *replayed* instead of chosen: the recorded access paths, join
        order and join methods are rebuilt around the spec's current
        predicate values.  Estimates are still recomputed — they feed
        ``explain()`` — but never steer; an inconsistent pin (a recipe
        from a different statement shape) silently falls back to fresh
        cost-based choice for the remaining decisions.
        """
        from repro.optimizer.params import require_bound
        require_bound(spec)
        schemas = self._referenced_schemas(spec)
        pushed, cross = self._split_predicate(spec, schemas)

        # An order hint flows into scan planning only when the scan IS the
        # query (no joins/aggregation/maps): then the access path may
        # satisfy ORDER BY for free, exactly as plan_scan decides it.
        scan_order = None
        if (not spec.joins and not spec.has_aggregation and not spec.maps
                and len(spec.order_by) == 1 and spec.order_by[0].ascending):
            scan_order = spec.order_by[0].column

        sharded = None
        if recipe is None or recipe.base.path == "exchange":
            # A fresh plan shards when the catalog is partitioned (and
            # options allow); an "exchange" pin replays by re-sharding
            # fresh — per-shard paths are re-chosen against the shards'
            # own (fresh) statistics, which is the cacheable part.
            sharded = self._plan_sharded_access(
                spec, pushed[spec.table], scan_order
            )
        if sharded is not None:
            node, decision = sharded
            ordered = False
        else:
            op, decision, ordered = self._plan_access(
                spec.table, pushed[spec.table], scan_order,
                force=self.options.force_path,
                pin=recipe.base if recipe is not None else None,
            )
            node = self._node(op, est_rows=decision.estimated_cardinality,
                              est_cost=decision.estimated_cost,
                              decision=decision)
        est_rows = decision.estimated_cardinality
        join_pins: list[JoinPin] = []

        node, est_rows, cross = self._plan_joins(
            spec, node, est_rows, pushed, cross,
            recipe=recipe, pins_out=join_pins,
        )
        if cross:
            self._raise_unresolvable(spec, node, cross)
        node = self._restore_declared_layout(spec, node, est_rows)

        if spec.has_aggregation:
            agg = HashAggregate(node.operator, list(spec.group_by),
                                list(spec.aggregates))
            est_rows = self._estimate_groups(spec, est_rows)
            node = self._node(agg, est_rows=est_rows, children=(node,))

        for m in spec.maps:
            op = MapProject(node.operator, m.schema, m.fn, vector=m.vector)
            node = self._node(op, est_rows=est_rows, children=(node,))

        if spec.order_by and not (ordered and scan_order is not None):
            keys = [(o.column, o.ascending) for o in spec.order_by]
            sort = Sort(node.operator, keys)
            node = self._node(sort, est_rows=est_rows, children=(node,))

        if spec.select:
            proj = Project(node.operator, list(spec.select))
            node = self._node(proj, est_rows=est_rows, children=(node,))

        if spec.limit is not None:
            limit = Limit(node.operator, spec.limit)
            est_rows = min(est_rows, spec.limit)
            node = self._node(limit, est_rows=est_rows, children=(node,))

        built = PlanRecipe(
            base=AccessPin(decision.path, decision.column),
            joins=tuple(join_pins),
        )
        return PlannedQuery(spec=spec, root=node.operator, tree=node,
                            recipe=built)

    def join_method_costs(self, est_outer_rows: int, inner_table: str,
                          inner_key: str) -> dict[str, float]:
        """Estimated INLJ and hash-join costs for one equi-join.

        The INLJ side is a descent plus the expected matching fetches per
        outer row; the hash side is a full inner scan plus hashing both
        inputs.  (The same comparison the TPC-H plan builder applies —
        with a wrong outer estimate this is what turns Q12 into a
        disaster.)  ``inlj`` is ``inf`` when no usable index exists.
        """
        inner = self.db.table(inner_table)
        profile = self.db.profile
        costs = {
            "hash": inner.num_pages * profile.seq_cost
            + costing.hash_join_cost(inner.row_count, est_outer_rows,
                                     profile, self.db.config.cpu.hash_op),
            "inlj": float("inf"),
        }
        if inner.has_index(inner_key):
            # Per-probe descent + matching fetches, all random — the
            # shape of costing.inlj_cost, but computed from the *actual*
            # B+-tree geometry (height, entry count) rather than the
            # analytic Eq. (7) estimate, since the index exists here.
            index = inner.index_on(inner_key)
            matches = max(1.0, inner.row_count / max(1, len(index)))
            costs["inlj"] = (
                est_outer_rows * (index.height + matches) * profile.rand_cost
            )
        return costs

    # -- scan planning -------------------------------------------------------

    def _plan_access(self, table_name: str,
                     predicate: Predicate | None,
                     order_by: str | None,
                     force: str | None = None,
                     pin: AccessPin | None = None
                     ) -> tuple[Operator, PlanDecision, bool]:
        """Choose and build one access path (no posterior sort).

        Returns ``(operator, decision, ordered)`` where ``ordered`` says
        the output already satisfies an ascending ``order_by``.
        ``force`` pins the path for this scan; callers decide whether
        ``options.force_path`` applies (base-table scans) or not (join
        inner sides).  ``pin`` replays a cached decision: the recorded
        path *and* anchor column are rebuilt without choosing — the
        plan-cache contract that a prepared statement's second execution
        uses the first execution's plan, estimates be damned.  A force
        wins over a pin (a forced plan re-forces identically anyway).
        """
        table = self.db.table(table_name)
        predicate = predicate or TruePredicate()
        if force is None and pin is not None \
                and not self._pin_applies(table, pin):
            pin = None  # stale/foreign pin: fall back to fresh choice
        if force is None and pin is not None:
            column, key_range, residual = self._pinned_opportunity(
                predicate, order_by, pin
            )
        else:
            column, key_range, residual = self._best_index_opportunity(
                table, predicate, order_by
            )
        selectivity = card_est.estimate_selectivity(
            self.catalog, table_name, predicate
        )
        est_card = card_est.estimate_cardinality(
            self.catalog, table_name, predicate,
            fallback_rows=table.row_count, selectivity=selectivity,
        )

        pinned_path = pin.path if force is None and pin is not None \
            else None
        if force == "smooth" or pinned_path == "smooth" or (
                force is None and pinned_path is None
                and self.options.enable_smooth and column is not None):
            return self._smooth_plan(
                table, column, key_range, residual, order_by,
                selectivity, est_card,
            )

        all_paths = costing.candidate_paths(
            table, self.db.config, self.db.profile,
            column, selectivity,
            require_order=order_by is not None,
            enable_smooth=False,
            index_satisfies_order=order_by == column,
        )
        paths = [
            p for p in all_paths
            if (p.path != "index" or self.options.enable_index)
            and (p.path != "sort" or self.options.enable_sort_scan)
        ]
        if force is not None:
            # An explicit force overrides the enable_* knobs; only a
            # genuinely unbuildable path (no usable index) refuses.
            forced = [p for p in all_paths if p.path == force]
            if not forced:
                raise PlanningError(
                    f"cannot force path {force!r} on {table_name!r}: "
                    "no usable index for the predicate"
                )
            choice = forced[0]
        elif pinned_path is not None:
            # Replay: same candidate set and costs as a fresh plan (the
            # decision record — and explain() — must not depend on
            # whether the plan came from the cache), but the recorded
            # path is taken regardless of today's cheapest.
            replayed = [p for p in paths if p.path == pinned_path]
            choice = replayed[0] if replayed else costing.cheapest_path(
                paths
            )
        else:
            choice = costing.cheapest_path(paths)
        op = self._build_scan(
            choice.path, table, column, key_range, residual, predicate
        )
        # Under a force the enable_* filter didn't constrain the choice,
        # so report every costed path (the forced one included).
        compared = all_paths if force is not None else paths
        decision = PlanDecision(
            path=choice.path,
            column=column,
            estimated_selectivity=selectivity,
            estimated_cardinality=est_card,
            estimated_cost=choice.cost,
            alternatives={p.path: p.cost for p in compared},
        )
        ordered = choice.path == "index" and order_by == column
        return op, decision, ordered

    def _plan_sharded_access(self, spec: QuerySpec,
                             predicate: Predicate | None,
                             scan_order: str | None
                             ) -> tuple[PlanNode, PlanDecision] | None:
        """Lower the base scan as an Exchange over per-shard paths.

        Applies only to scan-dominated queries (no joins, aggregation,
        maps or ORDER BY — everything above the exchange must be
        charge-free so per-shard ledgers still sum to the runtime
        totals, and a posterior Sort charges) on tables
        with a registered shard set, when ``options.shard_parallel``
        allows and no path is forced.  Each shard's access path is
        chosen independently against that shard's own statistics and
        recorded as a shard-tagged :class:`PlanDecision`; the exchange
        decision on top prices the whole subtree (max shard cost +
        serial merge) with the serial union as its reported
        alternative.  Returns ``None`` when sharding does not apply —
        the caller falls through to ordinary serial planning.
        """
        del scan_order  # exchange output is unordered
        opts = self.options
        if (not opts.shard_parallel or opts.force_path is not None
                or spec.joins or spec.has_aggregation or spec.maps
                or spec.order_by):
            return None
        shard_set = self.db.shard_set(spec.table)
        if shard_set is None or shard_set.num_shards < 2:
            return None
        from repro.exec.exchange import Exchange, ShardedScan
        shard_nodes: list[PlanNode] = []
        shard_costs: list[float] = []
        total_card = 0
        for i, shard in enumerate(shard_set.shards):
            op, shard_decision, _ordered = self._plan_access(
                shard.name, predicate, None
            )
            shard_decision.shard = shard.name
            inner = self._node(
                op, est_rows=shard_decision.estimated_cardinality,
                est_cost=shard_decision.estimated_cost,
                decision=shard_decision,
            )
            wrapped = ShardedScan(inner.operator, shard.name, i)
            shard_nodes.append(self._node(
                wrapped, est_rows=shard_decision.estimated_cardinality,
                children=(inner,),
            ))
            total_card += shard_decision.estimated_cardinality
            shard_costs.append(
                self._modeled_shard_cost(shard, shard_decision)
            )
        exchange = Exchange(
            [node.operator for node in shard_nodes],
            table_name=spec.table, scheme=shard_set.scheme,
        )
        merge = costing.exchange_merge_cost(
            total_card, self.db.profile, self.db.config.cpu.exchange_row
        )
        parallel_cost = costing.exchange_cost(shard_costs, merge)
        serial_cost = sum(shard_costs) + merge
        # Going wide must *win on the model*: a point lookup's index
        # descent does not parallelize (every shard repeats it), so the
        # serial plan over the unsharded table stays in place unless
        # the exchange's completion-time estimate strictly beats it.
        _op, serial_decision, _ordered = self._plan_access(
            spec.table, predicate, None
        )
        serial_access_cost = self._modeled_shard_cost(
            self.db.table(spec.table), serial_decision
        )
        if parallel_cost >= serial_access_cost:
            return None
        decision = PlanDecision(
            path="exchange",
            column=shard_set.column,
            estimated_selectivity=card_est.estimate_selectivity(
                self.catalog, spec.table, predicate or TruePredicate()
            ),
            estimated_cardinality=total_card,
            estimated_cost=parallel_cost,
            alternatives={"exchange": parallel_cost,
                          "serial": serial_access_cost,
                          "serial-union": serial_cost},
        )
        node = self._node(exchange, est_rows=total_card,
                          est_cost=parallel_cost, decision=decision,
                          children=tuple(shard_nodes))
        return node, decision

    def _modeled_shard_cost(self, shard: Table,
                            decision: PlanDecision) -> float:
        """A shard decision's cost with smooth's NaN made numeric.

        Smooth decisions carry ``NaN`` (smooth needs no estimate to be
        safe), but the exchange's completion-time model needs numbers;
        substitute the analytic smooth worst-case bound.
        """
        if not math.isnan(decision.estimated_cost):
            return decision.estimated_cost
        return costing.smooth_scan_estimate(
            shard, self.db.config, self.db.profile,
            decision.column or shard.schema.column_names[0],
            decision.estimated_selectivity,
        )

    def _pin_applies(self, table: Table, pin: AccessPin) -> bool:
        """A pin is usable when its anchor index still exists."""
        return pin.column is None or table.has_index(pin.column)

    def _pinned_opportunity(self, predicate: Predicate,
                            order_by: str | None, pin: AccessPin
                            ) -> tuple[str | None, KeyRange | None,
                                       Predicate]:
        """The (column, range, residual) triple for a replayed pin.

        Mirrors :meth:`_best_index_opportunity` with the column decided:
        extract the range the predicate puts on the pinned column, or
        fall back to a full sweep (the order-only case).
        """
        if pin.column is None:
            return None, None, predicate
        key_range, residual = extract_range(predicate, pin.column)
        if key_range is None:
            return pin.column, KeyRange.all(), predicate
        return pin.column, key_range, residual

    def _best_index_opportunity(self, table: Table, predicate: Predicate,
                                order_by: str | None
                                ) -> tuple[str | None, KeyRange | None,
                                           Predicate]:
        """Pick the indexed column that serves the predicate best.

        Preference order: the tightest estimated range; an index matching
        the requested order when no range exists.
        """
        best: tuple[float, str, KeyRange, Predicate] | None = None
        for column in table.indexes:
            rng, residual = extract_range(predicate, column)
            if rng is None:
                continue
            sel = card_est.estimate_selectivity(
                self.catalog, table.name,
                _range_predicate_for(column, rng),
            )
            if best is None or sel < best[0]:
                best = (sel, column, rng, residual)
        if best is not None:
            return best[1], best[2], best[3]
        if order_by is not None and table.has_index(order_by):
            return order_by, KeyRange.all(), predicate
        return None, None, predicate

    def _smooth_plan(self, table: Table, column: str | None,
                     key_range: KeyRange | None, residual: Predicate,
                     order_by: str | None, selectivity: float,
                     est_card: int) -> tuple[Operator, PlanDecision, bool]:
        if column is None:
            raise PlanningError(
                f"Smooth Scan on {table.name!r} needs an index usable by "
                "the predicate (or matching the requested order)"
            )
        ordered = order_by == column
        op: Operator = SmoothScan(
            table, column,
            key_range=key_range,
            residual=residual,
            policy=self.options.smooth_policy or ElasticPolicy(),
            trigger=self.options.smooth_trigger or EagerTrigger(),
            ordered=ordered,
        )
        decision = PlanDecision(
            path="smooth",
            column=column,
            estimated_selectivity=selectivity,
            estimated_cardinality=est_card,
            estimated_cost=float("nan"),  # smooth needs no estimate
        )
        return op, decision, ordered

    def _build_scan(self, path: str, table: Table, column: str | None,
                    key_range: KeyRange | None, residual: Predicate,
                    predicate: Predicate) -> Operator:
        if path == "full" or column is None:
            return FullTableScan(table, predicate)
        if path == "index":
            return IndexScan(table, column, key_range, residual)
        if path == "sort":
            return SortScan(table, column, key_range, residual)
        raise PlanningError(f"unknown access path {path!r}")

    # -- query lowering ------------------------------------------------------

    def _node(self, op: Operator, est_rows: int,
              est_cost: float | None = None,
              decision: PlanDecision | None = None,
              children: tuple[PlanNode, ...] = ()) -> PlanNode:
        """Wrap an operator in a counter and record it as a plan node."""
        counter = RowCounter(op)
        return PlanNode(
            operator=counter, label=op.name(), est_rows=max(0, est_rows),
            est_cost=est_cost, decision=decision, children=children,
        )

    def _referenced_schemas(self, spec: QuerySpec) -> list[tuple[str, object]]:
        """(name, schema) per referenced table; rejects duplicates."""
        names = spec.table_names
        if len(set(names)) != len(names):
            raise PlanningError(
                f"query references a table twice: {names} (self-joins "
                "need distinct column names and are not supported here)"
            )
        return [(name, self.db.table(name).schema) for name in names]

    def _split_predicate(self, spec: QuerySpec,
                         schemas: list[tuple[str, object]]
                         ) -> tuple[dict[str, Predicate], list[Predicate]]:
        """Push each top-level conjunct to the one table covering it.

        Conjuncts spanning several tables become post-join residuals,
        applied as soon as every referenced column is in scope.  Pushing
        below a join preserves WHERE semantics for inner joins and *is*
        the semantics for semi/anti joins (EXISTS with the predicate);
        below the nullable side of a left join it would turn dropped
        rows into null-padded ones, so those conjuncts stay residual
        and are evaluated post-join with NULL-rejecting semantics.
        """
        conjuncts = _flatten_conjuncts(spec.predicate)
        pushable = {spec.table} | {
            j.table for j in spec.joins if j.how != "left"
        }
        per_table: dict[str, list[Predicate]] = {n: [] for n, _ in schemas}
        cross: list[Predicate] = []
        for part in conjuncts:
            if isinstance(part, TruePredicate):
                continue
            cols = part.columns()
            if not cols:
                # References no columns (e.g. a constant predicate):
                # evaluable anywhere, cheapest at the base scan.
                per_table[spec.table].append(part)
                continue
            owners = [
                name for name, schema in schemas
                if all(schema.has_column(c) for c in cols)
            ]
            if len(owners) > 1:
                # Shared column names are only reachable through a
                # semi/anti join (whose output hides the inner side), so
                # the reference resolves to the one *visible* owner; two
                # visible owners would be genuinely ambiguous.
                visible = [
                    o for o in owners
                    if o == spec.table or any(
                        j.table == o and j.how in ("inner", "left")
                        for j in spec.joins
                    )
                ]
                if len(visible) != 1:
                    raise PlanningError(
                        f"predicate {part!r} is ambiguous: its columns "
                        f"exist in tables {owners}; rename columns to "
                        "disambiguate"
                    )
                owners = visible
            if owners and owners[0] in pushable:
                per_table[owners[0]].append(part)
            else:
                cross.append(part)
        return (
            {name: conjunction(parts) for name, parts in per_table.items()},
            cross,
        )

    def _plan_joins(self, spec: QuerySpec, node: PlanNode, est_rows: int,
                    pushed: dict[str, Predicate], cross: list[Predicate],
                    recipe: PlanRecipe | None = None,
                    pins_out: list[JoinPin] | None = None
                    ) -> tuple[PlanNode, int, list[Predicate]]:
        """Order and lower every join, interleaving cross-table filters.

        With ``recipe`` the recorded join order and methods are replayed;
        a pin that no longer matches the spec (different join set) drops
        the rest of the recipe and resumes fresh choice.  ``pins_out``
        collects the decisions actually taken, for the built plan's own
        recipe.
        """
        remaining = list(spec.joins)
        reorderable = all(j.how == "inner" for j in remaining)
        nullable = False  # becomes True once a left join is lowered
        pin_queue = list(recipe.joins) if recipe is not None else []
        while remaining:
            schema = node.operator.schema
            candidates = [
                j for j in remaining if schema.has_column(j.left_key)
            ]
            if not candidates:
                keys = [j.left_key for j in remaining]
                raise PlanningError(
                    f"cannot resolve join keys {keys} from the tables "
                    "joined so far — check join order and key names"
                )
            join = None
            join_pin: JoinPin | None = None
            if pin_queue:
                join_pin = pin_queue[0]
                join = next((j for j in candidates
                             if j.table == join_pin.table), None)
                if join is None:  # recipe doesn't match this spec
                    pin_queue, join_pin = [], None
                else:
                    pin_queue.pop(0)
            if join is None:
                if reorderable:
                    join = min(
                        candidates,
                        key=lambda j: self._estimate_join_card(
                            est_rows, j, pushed[j.table]
                        ),
                    )
                else:
                    join = candidates[0]
            remaining.remove(join)
            node, est_rows = self._plan_one_join(
                node, est_rows, join, pushed[join.table],
                pin=join_pin, pins_out=pins_out,
            )
            nullable = nullable or join.how == "left"
            node, est_rows, cross = self._apply_ready_filters(
                spec, node, est_rows, cross, nullable
            )
        return node, est_rows, cross

    def _plan_one_join(self, outer: PlanNode, est_outer: int,
                       join: JoinSpec, inner_pred: Predicate,
                       pin: JoinPin | None = None,
                       pins_out: list[JoinPin] | None = None
                       ) -> tuple[PlanNode, int]:
        """Lower one join, choosing INLJ vs. hash by estimated cost.

        ``pin`` replays a recorded method choice (and the hash inner
        side's access pin); costs are still computed so the decision
        record is identical to a fresh plan's.
        """
        est_card = self._estimate_join_card(est_outer, join, inner_pred)
        costs = self.join_method_costs(est_outer, join.table, join.right_key)
        inlj_legal = (
            join.how == "inner"
            and self.options.enable_inlj
            and self.options.force_path != "full"
            and costs["inlj"] != float("inf")
        )
        if pin is not None:
            use_inlj = pin.method == "inlj" and inlj_legal
        else:
            use_inlj = inlj_legal and costs["inlj"] < costs["hash"]
        if use_inlj:
            inner = self.db.table(join.table)
            residual = None if isinstance(inner_pred, TruePredicate) \
                else inner_pred
            op: Operator = IndexNestedLoopJoin(
                outer.operator, inner, join.right_key, join.left_key,
                residual=residual,
                inner_access="smooth" if self.options.enable_smooth
                else "classic",
            )
            decision = PlanDecision(
                path="inlj", column=join.right_key,
                estimated_selectivity=1.0,
                estimated_cardinality=est_card,
                estimated_cost=costs["inlj"], alternatives=costs,
            )
            if pins_out is not None:
                pins_out.append(JoinPin(table=join.table, method="inlj"))
            return self._node(op, est_rows=est_card,
                              est_cost=costs["inlj"], decision=decision,
                              children=(outer,)), est_card
        # Inner sides are cost-based; forcing "full" is the exception so
        # the pinned-sequential experiment curve really is all-sequential.
        inner_op, inner_decision, _ = self._plan_access(
            join.table, inner_pred, None,
            force="full" if self.options.force_path == "full" else None,
            pin=pin.inner if pin is not None else None,
        )
        inner_node = self._node(
            inner_op, est_rows=inner_decision.estimated_cardinality,
            est_cost=inner_decision.estimated_cost, decision=inner_decision,
        )
        op = HashJoin(outer.operator, inner_node.operator,
                      [join.left_key], [join.right_key], join_type=join.how)
        decision = PlanDecision(
            path="hash", column=join.right_key,
            estimated_selectivity=1.0,
            estimated_cardinality=est_card,
            estimated_cost=costs["hash"], alternatives=costs,
        )
        if pins_out is not None:
            pins_out.append(JoinPin(
                table=join.table, method="hash",
                inner=AccessPin(inner_decision.path, inner_decision.column),
            ))
        node = self._node(op, est_rows=est_card, est_cost=costs["hash"],
                          decision=decision, children=(outer, inner_node))
        return node, est_card

    def _restore_declared_layout(self, spec: QuerySpec, node: PlanNode,
                                 est_rows: int) -> PlanNode:
        """Re-project to the declared column order after join reordering.

        Greedy join ordering concatenates outer+inner in *execution*
        order, which would make the output layout depend on catalog
        statistics; positional consumers (``rows[i]``, AggSpec/MapSpec
        value callables with precomputed positions) need the layout the
        spec declares.  The Project is cost-free and only added when the
        orders actually diverge.
        """
        declared = list(self.db.table(spec.table).schema.column_names)
        for join in spec.joins:
            if join.how in ("inner", "left"):
                declared += self.db.table(join.table).schema.column_names
        if list(node.operator.schema.column_names) == declared:
            return node
        proj = Project(node.operator, declared)
        return self._node(proj, est_rows=est_rows, children=(node,))

    def _raise_unresolvable(self, spec: QuerySpec, node: PlanNode,
                            cross: list[Predicate]) -> None:
        """Explain *why* leftover predicates cannot be evaluated."""
        schema = node.operator.schema
        missing = sorted(
            {c for p in cross for c in p.columns()
             if not schema.has_column(c)}
        )
        hidden = [
            c for c in missing
            if any(self.db.table(j.table).schema.has_column(c)
                   for j in spec.joins if j.how in ("semi", "anti"))
        ]
        if hidden:
            raise PlanningError(
                f"columns {hidden} belong to the inner side of a "
                "semi/anti join and are not visible after it; filter "
                "them with a pushable single-table predicate instead"
            )
        raise PlanningError(
            f"predicate references columns {missing} available in no "
            "referenced table"
        )

    def _apply_ready_filters(self, spec: QuerySpec, node: PlanNode,
                             est_rows: int, cross: list[Predicate],
                             nullable: bool
                             ) -> tuple[PlanNode, int, list[Predicate]]:
        """Attach cross-table residuals whose columns are now in scope.

        ``nullable`` says a left join has been lowered below this point,
        i.e. null-padded rows may reach the filter.
        """
        schema = node.operator.schema
        ready = [
            p for p in cross
            if all(schema.has_column(c) for c in p.columns())
        ]
        if not ready:
            return node, est_rows, cross
        predicate = conjunction(ready)
        # Estimate each conjunct against the table owning its columns
        # (a left join's inner conjunct lands here with usable stats);
        # conjuncts genuinely spanning tables have no owner and fall to
        # the blind AVI defaults, the guesswork the paper studies (§I).
        sel = 1.0
        for part in ready:
            cols = part.columns()
            owner = next(
                (name for name in spec.table_names
                 if all(self.db.table(name).schema.has_column(c)
                        for c in cols)),
                spec.table,
            )
            sel *= card_est.estimate_selectivity(self.catalog, owner, part)
        est_rows = max(0, round(est_rows * sel))
        if nullable:
            # Left-join output is null-padded; WHERE drops UNKNOWN rows.
            predicate = NullRejecting(predicate)
        op = Filter(node.operator, predicate)
        node = self._node(op, est_rows=est_rows, children=(node,))
        return node, est_rows, [p for p in cross if p not in ready]

    # -- estimation helpers --------------------------------------------------

    def _estimate_join_card(self, est_outer: int, join: JoinSpec,
                            inner_pred: Predicate) -> int:
        """|outer ⋈ inner| under uniform key matching.

        ``est_outer × est_inner / ndv(inner_key)`` — with no statistics
        the inner key is assumed unique (the FK→PK shape every TPC-H join
        here has), reducing to ``est_outer × selectivity(inner)``.
        """
        inner = self.db.table(join.table)
        est_inner = card_est.estimate_cardinality(
            self.catalog, join.table, inner_pred,
            fallback_rows=inner.row_count,
        )
        if join.how in ("semi", "anti", "left"):
            return est_outer
        stats = self.catalog.column_stats(join.table, join.right_key)
        ndv = stats.ndv if stats is not None and stats.ndv > 0 \
            else max(1, inner.row_count)
        return max(0, round(est_outer * est_inner / ndv))

    def _estimate_groups(self, spec: QuerySpec, est_input: int) -> int:
        """Estimated group count: product of group-key NDVs, capped."""
        if not spec.group_by:
            return 1
        groups = 1
        for column in spec.group_by:
            ndv = None
            for name in spec.table_names:
                stats = self.catalog.column_stats(name, column)
                if stats is not None and stats.ndv > 0:
                    ndv = stats.ndv
                    break
            if ndv is None:
                return max(1, est_input)  # no statistics: no idea, cap
            groups *= ndv
            if groups >= est_input:
                return max(1, est_input)
        return max(1, min(groups, est_input))


def _flatten_conjuncts(predicate: Predicate) -> list[Predicate]:
    """Expand arbitrarily nested conjunctions into a flat conjunct list.

    ``conjunction()`` flattens as it builds, but user-constructed
    ``And(And(...), ...)`` trees must still split correctly — per-table
    pushdown only sees top-level conjuncts.
    """
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_flatten_conjuncts(part))
        return out
    return [predicate]


def _range_predicate_for(column: str, rng: KeyRange) -> Predicate:
    """Rebuild a Between predicate equivalent to an extracted range."""
    from repro.exec.expressions import Between, Comparison, CompareOp

    if rng.lo is not None and rng.hi is not None:
        return Between(column, rng.lo, rng.hi,
                       rng.lo_inclusive, rng.hi_inclusive)
    if rng.lo is not None:
        op = CompareOp.GE if rng.lo_inclusive else CompareOp.GT
        return Comparison(column, op, rng.lo)
    if rng.hi is not None:
        op = CompareOp.LE if rng.hi_inclusive else CompareOp.LT
        return Comparison(column, op, rng.hi)
    return TruePredicate()
