"""The PEP-249-flavored session layer: Connection, Cursor, PreparedStatement.

This is the execution surface applications use to serve repeated traffic::

    conn = db.connect()
    cur = conn.cursor()
    cur.execute("SELECT * FROM micro WHERE c2 < ?", (20_000,))
    print(cur.description)        # name/type per output column
    for row in cur:               # streams operator batches, no full
        ...                       # materialization

    st = conn.prepare("SELECT * FROM micro WHERE c2 >= ? AND c2 < ?")
    st.execute((0, 100)).fetchall()       # lex/parse/bind ONCE, plan once
    st.execute((0, 90_000)).fetchall()    # new params: cached plan replayed

The pieces behind the surface:

* ``prepare()`` compiles the statement exactly once into a parameterized
  :class:`~repro.sql.binder.BoundStatement`; per-execute work is
  parameter substitution only.
* Planning goes through the database's
  :class:`~repro.optimizer.plan_cache.PlanCache`: the first execution's
  decisions are frozen into a :class:`~repro.optimizer.planner.PlanRecipe`
  and replayed on later executions — which is precisely how a cached
  plan drifts out of optimality as its parameters move, the scenario
  Smooth Scan (``PlannerOptions(enable_smooth=True)``) makes safe.
* Cursors stream: ``fetchone``/``fetchmany`` pull operator batches
  incrementally through :class:`~repro.exec.stats.StreamingRun`;
  ``arraysize`` sets how many rows a default ``fetchmany()`` returns.
  :meth:`Cursor.result` reports the simulated cost so far, including
  partially-fetched runs.
* Cursors are **concurrent**: any number may stream on one database at
  once, interleaving fetches however the application (or the
  deterministic :class:`~repro.exec.scheduler.CooperativeScheduler`)
  likes.  They genuinely contend — one shared disk head, one shared
  buffer pool — while each cursor's :meth:`~Cursor.result` reads its
  own private :class:`~repro.runtime.CostLedger`, so interleaved
  queries report correct isolated costs.  Concurrency needs a *warm*
  connection (``db.connect(cold=False)``): a cold execution resets the
  shared caches, which raises while another cursor still streams
  instead of corrupting it.

Execution is cooperative and deterministic — batches interleave on one
Python thread, simulated time stands in for wall-clock — with no
transactions, so ``commit``/``rollback`` are accepted no-ops.  Other
deliberate PEP-249 deviations: ``execute`` returns the cursor
(chaining); ``EXPLAIN SELECT ...`` produces a one-column result set of
plan-tree lines (plus a plan-cache status line), like real engines do.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.api.result import QueryResult
from repro.errors import InterfaceError
from repro.exec.iterator import Chunk
from repro.exec.stats import StreamingRun, measure
from repro.optimizer.plan_cache import options_fingerprint
from repro.optimizer.planner import PlannedQuery, Planner, PlannerOptions
from repro.storage.types import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database
    from repro.sql.binder import BoundStatement

#: PEP-249 module attributes (informational).
apilevel = "2.0"
#: Threads may share the module, not connections.  Concurrency within
#: the engine is *cooperative*, not thread-based: many cursors can
#: stream interleaved on one database (see the module docstring and
#: :mod:`repro.exec.scheduler`), all on the caller's thread, with
#: per-cursor cost ledgers keeping their measurements isolated.
threadsafety = 1
paramstyle = "qmark"      # ':name' style is additionally supported

#: Default Cursor.arraysize: rows per parameterless ``fetchmany()``.
DEFAULT_ARRAYSIZE = 256


def _check_same_database(statement: "PreparedStatement",
                         connection: "Connection") -> None:
    """A statement bound against one catalog must not run on another.

    Its spec and compiled callables carry the *preparing* database's
    name resolution and column positions; executing them elsewhere
    would at best plan nonsense and at worst return silently wrong
    rows.  (Sharing across *connections* of the same database is fine —
    the bound artifacts only depend on the catalog.)
    """
    if statement.connection.db is not connection.db:
        raise InterfaceError(
            "prepared statement belongs to a different database"
        )


class Connection:
    """One session against a database: cursors, prepared statements.

    ``options`` are the session's default planner options (hint comments
    still layer on top, per statement).  ``cold=True`` keeps the paper's
    measurement discipline — every execution starts with dropped caches —
    so per-query measurements stay comparable to ``Database.execute``.
    Use ``cold=False`` for concurrent cursors: cold executions refuse to
    reset the shared caches while another cursor is still streaming.
    """

    def __init__(self, db: "Database",
                 options: PlannerOptions | None = None,
                 cold: bool = True):
        self.db = db
        self.options = options
        self.cold = cold
        self._closed = False
        # Weak refs in creation order: closing the connection closes the
        # cursors that are still reachable, oldest first; one the
        # application already dropped needs no cleanup (its run's
        # charges were attributed as they happened).
        self._cursors: list[weakref.ref["Cursor"]] = []

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the session (idempotent); handles refuse further use.

        Live cursors of this connection are closed too, in creation
        order — any still-streaming run is abandoned mid-flight with its
        ledger finalized at the rows produced so far, so a serving front
        dropping a client mid-stream leaks neither live streams (which
        would block cold starts) nor unattributed charges.
        """
        if self._closed:
            return
        self._closed = True
        for ref in self._cursors:
            cursor = ref()
            if cursor is not None:
                cursor.close()
        self._cursors = []

    @property
    def open_cursors(self) -> tuple["Cursor", ...]:
        """This connection's reachable, not-yet-closed cursors."""
        found = tuple(cursor for ref in self._cursors
                      if (cursor := ref()) is not None
                      and not cursor._closed)
        self._cursors = [weakref.ref(cursor) for cursor in found]
        return found

    def commit(self) -> None:
        """No-op: the engine is read-only (PEP-249 compatibility)."""
        self._check_open()

    def rollback(self) -> None:
        """No-op: the engine is read-only (PEP-249 compatibility)."""
        self._check_open()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- statement entry points ----------------------------------------------

    def cursor(self) -> "Cursor":
        """A new cursor over this connection."""
        self._check_open()
        return Cursor(self)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Compile ``sql`` once; execute it many times with parameters."""
        self._check_open()
        return PreparedStatement(self, sql)

    def execute(self, sql: "str | PreparedStatement",
                params: object = None) -> "Cursor":
        """Shorthand: ``cursor().execute(sql, params)``."""
        return self.cursor().execute(sql, params)

    def run(self, sql: "str | PreparedStatement", params: object = None,
            *, cold: bool | None = None, keep_rows: bool = True,
            options: PlannerOptions | None = None) -> "QueryResult | str":
        """Execute to completion and measure — the non-streaming call.

        The one-shot twin of a cursor: plan (through the plan cache),
        drain, and return a :class:`~repro.api.result.QueryResult`; an
        ``EXPLAIN`` statement returns the rendered plan string.  This is
        what the deprecated ``Database.sql()`` facade delegates to.
        """
        self._check_open()
        if isinstance(sql, PreparedStatement):
            statement = sql
            _check_same_database(statement, self)
        else:
            statement = PreparedStatement(self, sql)
        bound = statement._bound
        opts = bound.planner_options(
            options if options is not None else self.options
        )
        planned, _outcome = self._plan(bound, opts, params)
        if bound.explain:
            return planned.render()
        planned.reset_counters()
        run_cold = self.cold if cold is None else cold
        self._note_statement(statement.sql, params, opts, run_cold)
        run = measure(self.db, planned.root, cold=run_cold,
                      keep_rows=keep_rows)
        return QueryResult(planned, run)

    # -- internals -----------------------------------------------------------

    def _note_statement(self, sql: str, params: object,
                        options: PlannerOptions | None,
                        cold: bool) -> None:
        """Hand statement context to the tracer before a run starts.

        The next streaming run's ``query.start`` span picks it up —
        statement text, bind params, planner options, cold/warm — which
        is what makes traced workloads capturable for replay.  One
        attribute check when tracing is off.
        """
        tracer = self.db.tracer
        if tracer.enabled:
            from repro.telemetry.capture import options_to_dict
            tracer.note_statement(sql, params, options_to_dict(options),
                                  cold)

    def _compile(self, sql: str) -> "BoundStatement":
        """Lex/parse/bind one statement (counted on the database)."""
        from repro.sql import compile_statement
        return compile_statement(self.db, sql)

    def _plan(self, bound: "BoundStatement",
              options: PlannerOptions | None,
              params: object) -> tuple[PlannedQuery, str]:
        """Plan through the cache; returns ``(plan, "hit" | "miss")``.

        Parameter substitution happens first (cheap, structural); the
        cache is keyed on normalized text + options fingerprint, and
        entries die when the catalog version moves — so a hit replays
        the recorded recipe around the *new* parameter values without
        re-running access-path or join-method selection.
        """
        spec = bound.bind_params(params)
        cache = self.db.plan_cache
        version = self.db.catalog_version
        key = (bound.normalized, options_fingerprint(options))
        recipe = cache.lookup(key, version)
        planner = Planner(self.db, self.db.catalog, options)
        if recipe is not None:
            return planner.plan_query(spec, recipe=recipe), "hit"
        planned = planner.plan_query(spec)
        cache.store(key, planned.recipe, version)
        return planned, "miss"


class PreparedStatement:
    """One statement, compiled once, executable many times.

    Compilation (lex → parse → bind) happens in the constructor; every
    :meth:`execute` only substitutes parameters and consults the plan
    cache.  Interleaving *streaming* executions of the same prepared
    statement with different parameters shares the compiled statement's
    parameter slots — drain or close the earlier cursor before
    re-executing with new values.
    """

    def __init__(self, connection: Connection, sql: str):
        # Compiling against a closed session must fail like every other
        # use of one — InterfaceError, not a late surprise at execute.
        connection._check_open()
        self.connection = connection
        self.sql = sql
        self._bound = connection._compile(sql)

    @property
    def param_count(self) -> int:
        """Number of bind parameters the statement declares."""
        return self._bound.param_count

    @property
    def param_names(self) -> tuple[str | None, ...]:
        """Per-slot parameter names (``None`` entries for ``?`` style)."""
        return self._bound.param_names

    @property
    def is_explain(self) -> bool:
        """True for ``EXPLAIN SELECT ...`` statements."""
        return self._bound.explain

    def execute(self, params: object = None) -> "Cursor":
        """Run on a fresh cursor; returns it ready for ``fetch*``."""
        return self.connection.cursor().execute(self, params)

    def run(self, params: object = None, *, cold: bool | None = None,
            keep_rows: bool = True,
            options: PlannerOptions | None = None) -> "QueryResult | str":
        """Execute to completion and measure (see :meth:`Connection.run`)."""
        return self.connection.run(self, params, cold=cold,
                                   keep_rows=keep_rows, options=options)

    def explain(self, params: object = None) -> str:
        """The plan tree this statement gets for ``params``, unexecuted."""
        self.connection._check_open()
        bound = self._bound
        opts = bound.planner_options(self.connection.options)
        planned, _ = self.connection._plan(bound, opts, params)
        return planned.render()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PreparedStatement({self.sql!r}, "
                f"params={self.param_count})")


class Cursor:
    """A streaming result handle (PEP-249 shaped).

    ``execute`` plans the statement and *starts* it; rows flow on
    ``fetchone``/``fetchmany``/``fetchall`` (or iteration), pulled from
    the engine's batch protocol as needed.  ``description`` is available
    right after ``execute``; ``rowcount`` stays ``-1`` until the result
    is fully drained (streaming cursors cannot know it earlier).
    """

    def __init__(self, connection: Connection):
        connection._check_open()
        self.connection = connection
        connection._cursors.append(weakref.ref(self))
        self.arraysize = DEFAULT_ARRAYSIZE
        self.description: list[tuple] | None = None
        self.rowcount = -1
        self._closed = False
        self._run: StreamingRun | None = None
        self._planned: PlannedQuery | None = None
        self._buffer: deque[Row] = deque()
        self._static: deque[Row] | None = None  # EXPLAIN result rows
        self._last_cache_outcome: str | None = None

    # -- execution -----------------------------------------------------------

    def execute(self, operation: "str | PreparedStatement",
                params: object = None) -> "Cursor":
        """Plan and start one statement; returns ``self`` for chaining.

        ``operation`` is SQL text (compiled now) or a
        :class:`PreparedStatement` (compiled at prepare time).
        """
        self._check_open()
        self.connection._check_open()
        if isinstance(operation, PreparedStatement):
            statement = operation
            _check_same_database(statement, self.connection)
        else:
            statement = PreparedStatement(self.connection, operation)
        self._reset_result()
        bound = statement._bound
        opts = bound.planner_options(self.connection.options)
        planned, outcome = self.connection._plan(bound, opts, params)
        self._planned = planned
        self._last_cache_outcome = outcome
        if bound.explain:
            self._install_explain(planned, outcome)
            return self
        planned.reset_counters()
        self.connection._note_statement(statement.sql, params, opts,
                                        self.connection.cold)
        self._run = StreamingRun(self.connection.db, planned.root,
                                 cold=self.connection.cold)
        self.description = [
            (c.name, c.ctype, None, c.byte_size, None, None, None)
            for c in planned.root.schema.columns
        ]
        return self

    def executemany(self, operation: "str | PreparedStatement",
                    seq_of_params: Sequence[object]) -> "Cursor":
        """Execute once per parameter set, draining each run.

        The statement is compiled once (pass text or a prepared
        statement — both work); ``rowcount`` accumulates the rows every
        execution produced.  Fetching afterwards is not supported, per
        PEP-249's "result sets are undefined after executemany".
        """
        self._check_open()
        statement = operation if isinstance(operation, PreparedStatement) \
            else PreparedStatement(self.connection, operation)
        total = 0
        for params in seq_of_params:
            self.execute(statement, params)
            while self._next_into_buffer():
                pass
            total += self._run.rows_produced if self._run else 0
            self._buffer.clear()
        self._reset_result(rowcount=total)
        return self

    # -- fetching ------------------------------------------------------------

    def fetchone(self) -> Row | None:
        """The next row, or ``None`` when the result is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int | None = None) -> list[Row]:
        """Up to ``size`` rows (default ``arraysize``), streamed.

        Batches are pulled from the operator tree only as needed — a
        ``LIMIT``-less scan fetched 10 rows at a time never materializes
        the full result set in the cursor.
        """
        self._check_fetchable()
        if size is None:
            size = self.arraysize
        if size <= 0:
            raise InterfaceError(
                f"fetchmany size must be positive, got {size}"
            )
        while len(self._buffer) < size and self._next_into_buffer():
            pass
        out = [self._buffer.popleft()
               for _ in range(min(size, len(self._buffer)))]
        self._maybe_finish()
        return out

    def fetchall(self) -> list[Row]:
        """Every remaining row (drains the plan to completion)."""
        self._check_fetchable()
        while self._next_into_buffer():
            pass
        out = list(self._buffer)
        self._buffer.clear()
        self._maybe_finish()
        return out

    def __iter__(self) -> Iterator[Row]:
        """Stream rows; equivalent to repeated ``fetchmany()``."""
        while True:
            rows = self.fetchmany()
            if not rows:
                return
            yield from rows

    def __next__(self) -> Row:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- measurement and plan introspection ----------------------------------

    def result(self) -> QueryResult | None:
        """Measurements + decision trail for the current execution.

        Valid any time after ``execute``: before the result is drained
        it reports the simulated cost of the rows produced *so far*
        (``result().run.extras["partial"]`` is then True).  ``None`` for
        EXPLAIN executions, which run nothing.
        """
        if self._planned is None:
            raise InterfaceError("no statement has been executed")
        if self._run is None:
            return None
        return QueryResult(self._planned, self._run.result())

    @property
    def plan(self) -> PlannedQuery | None:
        """The physical plan of the last execution (EXPLAIN included)."""
        return self._planned

    @property
    def cache_status(self) -> str | None:
        """``"hit"``/``"miss"`` — how the plan cache answered last time."""
        return self._last_cache_outcome

    @property
    def stream(self) -> StreamingRun | None:
        """The live streaming run behind this cursor (None for EXPLAIN).

        The handle the :class:`~repro.exec.scheduler.CooperativeScheduler`
        drains when a cursor is scheduled as a workload query: batches
        pulled through it are counted (and charged to this cursor's
        ledger) but not buffered for fetching.
        """
        return self._run

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Abandon any in-flight run and refuse further use."""
        if self._run is not None:
            self._run.close()
        self._buffer.clear()
        self._static = None
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _reset_result(self, rowcount: int = -1) -> None:
        if self._run is not None:
            self._run.close()
        self._run = None
        self._planned = None
        self._buffer.clear()
        self._static = None
        self.description = None
        self.rowcount = rowcount

    def _install_explain(self, planned: PlannedQuery, outcome: str) -> None:
        """EXPLAIN result set: one plan-tree line per row, plus the
        plan-cache status line (the stats ``explain()`` surfaces)."""
        from repro.storage.types import ColumnType
        stats = self.connection.db.plan_cache.stats_dict()
        lines = planned.render().splitlines()
        lines.append(
            f"plan cache: {outcome} (hits={stats['hits']} "
            f"misses={stats['misses']} "
            f"invalidations={stats['invalidations']})"
        )
        self._static = deque((line,) for line in lines)
        self.description = [
            ("plan", ColumnType.CHAR, None, None, None, None, None)
        ]
        self.rowcount = len(lines)

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")

    def _check_fetchable(self) -> None:
        self._check_open()
        if self._planned is None:
            raise InterfaceError(
                "no statement has been executed on this cursor"
            )

    def _next_into_buffer(self) -> bool:
        """Pull one operator batch into the buffer; False when done."""
        if self._static is not None:
            if self._static:
                self._buffer.extend(self._static)
                self._static = deque()
                return True
            return False
        if self._run is None:
            return False
        batch = self._run.next_batch()
        if batch is None:
            return False
        # Rowify here, at the API boundary — batches arrive columnar.
        self._buffer.extend(
            batch.to_rows() if isinstance(batch, Chunk) else batch
        )
        return True

    def _maybe_finish(self) -> None:
        """Publish rowcount once the stream is exhausted and drained.

        (EXPLAIN rowcount is known — and set — at execute time.)"""
        if self._run is not None and self._run.exhausted \
                and not self._buffer:
            self.rowcount = self._run.rows_produced
