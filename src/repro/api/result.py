"""Execution results of declarative queries.

A :class:`QueryResult` fuses the measured :class:`~repro.exec.stats.
RunResult` (rows, simulated time, I/O accounting) with the planner's
:class:`~repro.optimizer.planner.PlannedQuery` decision trail, so one
object answers both "what did it cost" and "why did it run that way".
"""

from __future__ import annotations

from repro.exec.stats import RunResult
from repro.optimizer.planner import PlanDecision, PlannedQuery
from repro.storage.disk import DiskStats
from repro.storage.types import Row


class QueryResult:
    """One executed declarative query: measurements + decision trail."""

    def __init__(self, plan: PlannedQuery, run: RunResult):
        self.plan = plan
        self.run = run

    # -- measurements (RunResult pass-throughs) ------------------------------

    @property
    def rows(self) -> list[Row]:
        """Materialized output rows (empty when run with keep_rows=False)."""
        return self.run.rows

    @property
    def row_count(self) -> int:
        """Rows the query produced (tracked even with keep_rows=False)."""
        return self.run.row_count

    @property
    def total_ms(self) -> float:
        return self.run.total_ms

    @property
    def total_seconds(self) -> float:
        return self.run.total_seconds

    @property
    def io_ms(self) -> float:
        return self.run.io_ms

    @property
    def cpu_ms(self) -> float:
        return self.run.cpu_ms

    @property
    def disk(self) -> DiskStats:
        return self.run.disk

    @property
    def read_gb(self) -> float:
        return self.run.read_gb

    # -- the decision trail --------------------------------------------------

    @property
    def decisions(self) -> list[PlanDecision]:
        """Access-path and join-method decisions, plan-tree preorder."""
        return self.plan.decisions()

    def explain(self) -> str:
        """The plan tree with estimated *and* actual cardinalities."""
        return self.plan.render()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        paths = ",".join(d.path for d in self.decisions) or "-"
        return (
            f"QueryResult(rows={self.row_count}, "
            f"time={self.total_seconds:.3f}s, "
            f"io_requests={self.disk.requests}, paths=[{paths}])"
        )
