"""The fluent, immutable query builder.

A :class:`Query` is a thin, chainable wrapper around a
:class:`~repro.optimizer.logical.QuerySpec`; every method returns a *new*
``Query``, so prefixes can be shared and branched::

    base = db.query("micro").where(Between("c2", 0, 20_000))
    asc = base.order_by("c2")
    top = asc.limit(10)

Nothing here touches physical operators: lowering happens in
:meth:`~repro.optimizer.planner.Planner.plan_query` when the query is
planned or executed — which is the point.  The paper's claim is that the
*system* can pick access paths safely (always Smooth Scan if it wants,
§IV-B); this API finally routes users through that decision instead of
making them hand-pick ``SmoothScan(...)`` per table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import PlanningError
from repro.exec.aggregates import AggSpec
from repro.exec.expressions import Predicate, conjunction
from repro.optimizer.logical import JoinSpec, MapSpec, OrderItem, QuerySpec
from repro.storage.types import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import QueryResult
    from repro.database import Database
    from repro.optimizer.planner import PlannedQuery, PlannerOptions


class Query:
    """An immutable declarative query bound to one database."""

    __slots__ = ("database", "spec", "options")

    def __init__(self, database: "Database", spec: QuerySpec,
                 options: "PlannerOptions | None" = None):
        self.database = database
        self.spec = spec
        self.options = options

    # -- builders ------------------------------------------------------------

    def _with(self, **changes) -> "Query":
        return Query(self.database, replace(self.spec, **changes),
                     self.options)

    def where(self, *predicates: Predicate) -> "Query":
        """AND one or more predicates onto the query's filter."""
        for p in predicates:
            if not isinstance(p, Predicate):
                raise PlanningError(
                    f"where() takes Predicate objects, got {p!r}"
                )
        return self._with(
            predicate=conjunction([self.spec.predicate, *predicates])
        )

    def join(self, table: str, on: str | tuple[str, str],
             how: str = "inner") -> "Query":
        """Equi-join to ``table``.

        ``on`` is ``(left_key, right_key)`` — or a single column name
        when both sides share it, which only semi/anti joins support
        (their output keeps the left schema; inner/left joins would
        duplicate the column).
        """
        if isinstance(on, str):
            if how not in ("semi", "anti"):
                raise PlanningError(
                    f"join(on={on!r}) names one column for both sides, "
                    f"which a {how!r} join cannot output (duplicate "
                    "column); pass on=(left_key, right_key)"
                )
            left = right = on
        else:
            left, right = on
        spec = JoinSpec(table=table, left_key=left, right_key=right, how=how)
        return self._with(joins=self.spec.joins + (spec,))

    def group_by(self, *columns: str) -> "Query":
        """Set the grouping keys (replaces any previous grouping)."""
        return self._with(group_by=tuple(columns))

    def aggregate(self, *aggs: AggSpec | Sequence) -> "Query":
        """Append aggregate outputs.

        Each argument is an :class:`~repro.exec.aggregates.AggSpec` or a
        shorthand tuple ``(func, column)`` / ``(func, column, output)``
        where ``column`` may be ``"*"`` for ``count(*)``.
        """
        normalized = tuple(_as_agg_spec(a) for a in aggs)
        return self._with(aggregates=self.spec.aggregates + normalized)

    def select(self, *columns: str) -> "Query":
        """Project the final output down to ``columns``, in order."""
        return self._with(select=tuple(columns))

    def map(self, schema: Schema, fn: Callable[[Row], Row]) -> "Query":
        """Append a computed projection (post-aggregation MapProject)."""
        return self._with(maps=self.spec.maps + (MapSpec(schema, fn),))

    def order_by(self, *keys: str | tuple[str, bool]) -> "Query":
        """Set the output order (replaces any previous ordering).

        Keys are column names (ascending) or ``(column, direction)``
        where direction is a bool (``True`` = ascending) or the string
        ``"asc"`` / ``"desc"``.
        """
        return self._with(order_by=tuple(
            OrderItem(k) if isinstance(k, str)
            else OrderItem(k[0], _as_ascending(k[1]))
            for k in keys
        ))

    def limit(self, n: int) -> "Query":
        """Keep at most ``n`` output rows."""
        return self._with(limit=n)

    def using(self, options: "PlannerOptions") -> "Query":
        """Attach planner options (policies, forced paths, smooth mode)."""
        return Query(self.database, self.spec, options)

    # -- lowering and execution ----------------------------------------------

    def plan(self, options: "PlannerOptions | None" = None) -> "PlannedQuery":
        """Lower through the planner without executing."""
        return self.database.plan(self, options=options)

    def explain(self, options: "PlannerOptions | None" = None) -> str:
        """The plan tree (estimates only; run() fills actual rows)."""
        return self.plan(options=options).render()

    def run(self, *, cold: bool = True, keep_rows: bool = True,
            options: "PlannerOptions | None" = None) -> "QueryResult":
        """Plan and execute on the bound database (cold by default)."""
        return self.database.execute(
            self, cold=cold, keep_rows=keep_rows, options=options
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.spec
        parts = [f"Query({s.table!r}"]
        if not _is_true(s.predicate):
            parts.append(f", where={s.predicate!r}")
        for j in s.joins:
            parts.append(
                f", join={j.table}({j.left_key}={j.right_key}, {j.how})"
            )
        if s.group_by:
            parts.append(f", group_by={list(s.group_by)}")
        if s.aggregates:
            parts.append(f", aggs={[a.output for a in s.aggregates]}")
        if s.order_by:
            parts.append(
                ", order_by=" + str([
                    o.column if o.ascending else f"{o.column} DESC"
                    for o in s.order_by
                ])
            )
        if s.limit is not None:
            parts.append(f", limit={s.limit}")
        return "".join(parts) + ")"


def _is_true(predicate: Predicate) -> bool:
    from repro.exec.expressions import TruePredicate
    return isinstance(predicate, TruePredicate)


def _as_ascending(direction: object) -> bool:
    """Normalize an order direction; rejects anything ambiguous."""
    if isinstance(direction, bool):
        return direction
    if direction == "asc":
        return True
    if direction == "desc":
        return False
    raise PlanningError(
        "order direction must be a bool or 'asc'/'desc', "
        f"got {direction!r}"
    )


def _as_agg_spec(agg: AggSpec | Sequence) -> AggSpec:
    """Normalize ``(func, column[, output])`` shorthands into AggSpec."""
    if isinstance(agg, AggSpec):
        return agg
    if isinstance(agg, (tuple, list)) and len(agg) in (2, 3):
        func, column = agg[0], agg[1]
        output = agg[2] if len(agg) == 3 else (
            func if column in ("*", None) else f"{func}_{column}"
        )
        if column in ("*", None):
            return AggSpec(func, output)
        return AggSpec(func, output, column=column)
    raise PlanningError(
        f"aggregate() takes AggSpec or (func, column[, output]), got {agg!r}"
    )
