"""Declarative query API: fluent builder, planner lowering, results.

The user-facing layer grown on top of the optimizer: build a
:class:`Query` fluently, let :meth:`~repro.optimizer.planner.Planner.
plan_query` choose every access path (including "always Smooth Scan",
§IV-B), execute through the batch engine, and read the
:class:`QueryResult` — measurements plus the full decision trail::

    from repro import Between, Database, PlannerOptions
    from repro.workloads import build_micro_table

    db = Database()
    build_micro_table(db, num_tuples=120_000)
    q = db.query("micro").where(Between("c2", 0, 20_000)).order_by("c2")
    result = db.execute(q, options=PlannerOptions(enable_smooth=True))
    print(result.explain())   # plan tree, estimated vs. actual rows
"""

from repro.api.query import Query
from repro.api.result import QueryResult
from repro.api.session import Connection, Cursor, PreparedStatement
from repro.optimizer.logical import JoinSpec, MapSpec, OrderItem, QuerySpec

__all__ = [
    "Connection",
    "Cursor",
    "JoinSpec",
    "MapSpec",
    "OrderItem",
    "PreparedStatement",
    "Query",
    "QueryResult",
    "QuerySpec",
]
