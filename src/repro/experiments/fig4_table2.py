"""Figure 4 + Table II: improving TPC-H with Smooth Scan in PostgreSQL.

Runs the five "choke point" queries (Q1 98%, Q4 65%, Q6 2%, Q7 30%,
Q14 1%) on the tuned TPC-H database twice: once with the cost-based
planner ("pSQL") and once with every access path replaced by Smooth Scan
("pSQL w. Smooth Scan", same upper plan layers).  Reports Figure 4's
CPU-vs-I/O-wait breakdown and Table II's I/O request counts and
transferred volume.

Expected shape: large wins where pSQL's estimates picked a bad index path
(Q6, Q7, Q14 in the paper), marginal overhead where pSQL was already
optimal (Q1 +14%, Q4 <1%); Smooth Scan may transfer *more* bytes yet
issue far fewer I/O requests (locality), which is Table II's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.exec.stats import RunResult
from repro.experiments.fig1 import Fig1Setup, make_tuned_tpch, run_tpch_query
from repro.workloads.tpch.queries import FIGURE4_QUERIES, TpchPlanBuilder

MODES = ("pSQL", "pSQL+SmoothScan")


@dataclass
class QueryBreakdown:
    """One bar of Figure 4 + one column pair of Table II."""

    total_s: float
    cpu_s: float
    io_wait_s: float
    io_requests: int
    read_gb: float
    rows: int


@dataclass
class Fig4Result:
    """Per-query, per-mode execution breakdowns."""

    queries: list[str]
    selectivity_labels: dict[str, str]
    data: dict[tuple[str, str], QueryBreakdown] = field(default_factory=dict)

    def report_fig4(self) -> str:
        rows = []
        for name in self.queries:
            for mode in MODES:
                d = self.data[(name, mode)]
                rows.append([
                    f"{name} ({self.selectivity_labels[name]})", mode,
                    d.total_s, d.cpu_s, d.io_wait_s,
                ])
        return format_table(
            ["query", "mode", "time_s", "cpu_s", "io_wait_s"], rows,
            title="Figure 4 — TPC-H with Smooth Scan (execution breakdown)",
        )

    def report_table2(self) -> str:
        rows = []
        for name in self.queries:
            psql = self.data[(name, MODES[0])]
            smooth = self.data[(name, MODES[1])]
            rows.append([
                name,
                round(psql.io_requests / 1000.0, 1),
                round(smooth.io_requests / 1000.0, 1),
                round(psql.read_gb, 3),
                round(smooth.read_gb, 3),
            ])
        return format_table(
            ["query", "pSQL_ioreq_K", "SS_ioreq_K",
             "pSQL_read_GB", "SS_read_GB"],
            rows,
            title="Table II — I/O analysis",
        )

    def report(self) -> str:
        return self.report_fig4() + "\n\n" + self.report_table2()


def run_fig4(scale_factor: float = 0.01,
             setup: Fig1Setup | None = None) -> Fig4Result:
    """Run the five queries under both modes on a tuned database."""
    setup = setup or make_tuned_tpch(scale_factor)
    result = Fig4Result(
        queries=list(FIGURE4_QUERIES),
        selectivity_labels={
            name: label for name, (_fn, label) in FIGURE4_QUERIES.items()
        },
    )
    for mode, builder_mode in zip(MODES, ("tuned", "smooth"), strict=False):
        builder = TpchPlanBuilder(setup.db, setup.catalog, builder_mode)
        for name in FIGURE4_QUERIES:
            run = run_tpch_query(setup, builder, name)
            result.data[(name, mode)] = _breakdown(run)
    return result


def _breakdown(run: RunResult) -> QueryBreakdown:
    """One measured run folded into Figure 4 / Table II columns."""
    return QueryBreakdown(
        total_s=run.total_seconds,
        cpu_s=run.cpu_ms / 1000.0,
        io_wait_s=run.io_ms / 1000.0,
        io_requests=run.disk.requests,
        read_gb=run.read_gb,
        rows=run.row_count,
    )
