"""Section V-A: empirical competitive-ratio measurement.

Two measurements complement the analytic bounds in
:mod:`repro.costmodel.competitive`:

* **Adversarial layout** — a table where exactly every second heap page
  contains one match: Elastic never benefits from flattening, giving its
  worst case (paper: CR ≈ 5.5 on HDD vs a full scan, bound 11).
* **Selectivity sweep** — the micro-benchmark CR over the whole interval;
  the paper observes an empirical CR of ≈ 2 (at very low selectivity,
  where Smooth Scan pays modest morphing overhead over a perfect index
  scan).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core.smooth_scan import SmoothScan
from repro.database import Database
from repro.exec.expressions import Comparison, CompareOp, KeyRange
from repro.exec.scans import FullTableScan, IndexScan
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    access_path_plan,
    make_micro_db,
)
from repro.storage.disk import DiskProfile
from repro.storage.types import Schema
from repro.workloads.micro import MICRO_COLUMNS, VALUE_DOMAIN


@dataclass
class CompetitiveResult:
    """Adversarial and sweep-based competitive ratios.

    ``adversarial_cr`` uses the default (``>=``) Elastic policy, which
    still flattens over the adversarial layout and lands near the paper's
    *empirical* CR of ≈ 2; ``adversarial_cr_strict`` uses the literal
    strictly-greater-than policy that never morphs there, reproducing the
    analysis's ≈ 5.5 (HDD).
    """

    profile: str
    adversarial_cr: float = 0.0
    adversarial_cr_strict: float = 0.0
    adversarial_smooth_s: float = 0.0
    adversarial_best_s: float = 0.0
    sweep_points: list[tuple[float, float]] = field(default_factory=list)

    @property
    def sweep_max_cr(self) -> float:
        """Worst CR over the selectivity sweep."""
        return max((cr for _sel, cr in self.sweep_points), default=0.0)

    def report(self) -> str:
        rows = [[sel, cr] for sel, cr in self.sweep_points]
        table = format_table(["sel_%", "smooth/optimal"], rows,
                             title=f"Competitive ratio sweep ({self.profile})")
        return (
            f"{table}\n"
            f"sweep max CR: {self.sweep_max_cr:.2f}\n"
            f"adversarial (every-2nd-page) CR: {self.adversarial_cr:.2f} "
            "(default elastic; paper's empirical CR ≈ 2)\n"
            "adversarial CR, strict elastic: "
            f"{self.adversarial_cr_strict:.2f} "
            "(paper's analysis: ≈ 5.5 on HDD, bound 11)"
        )


def build_adversarial_table(db: Database, num_pages: int,
                            name: str = "adversarial",
                            seed: int = 99):
    """A table where every second page holds exactly one ``c2 = 0`` match.

    All other tuples carry values from ``[1, DOMAIN)``; the match sits at
    a random slot of each even page, so probes always hit a "dense" page
    while every expansion looks sparse — Elastic's adversarial case.
    """
    rng = random.Random(seed)
    schema = Schema.of_ints(MICRO_COLUMNS)
    tuple_size = schema.tuple_size(db.config.tuple_header)
    per_page = db.config.tuples_per_page(tuple_size)

    def rows():
        i = 0
        for page in range(num_pages):
            match_slot = rng.randrange(per_page) if page % 2 == 0 else -1
            for slot in range(per_page):
                c2 = 0 if slot == match_slot else rng.randrange(1, VALUE_DOMAIN)
                yield (i, c2) + tuple(
                    rng.randrange(VALUE_DOMAIN)
                    for _ in range(len(MICRO_COLUMNS) - 2)
                )
                i += 1

    table = db.load_table(name, schema, rows())
    db.create_index(name, "c2")
    return table


def run_competitive(num_tuples: int = DEFAULT_MICRO_TUPLES,
                    adversarial_pages: int = 1000,
                    profile: DiskProfile | None = None,
                    selectivities_pct: tuple = (0.001, 0.01, 0.1, 1.0,
                                                10.0, 50.0, 100.0),
                    setup: MicroSetup | None = None) -> CompetitiveResult:
    """Measure the empirical CRs on the requested device profile."""
    profile = profile or DiskProfile.hdd()
    result = CompetitiveResult(profile=profile.name)

    # -- adversarial layout -------------------------------------------------
    from repro.core.policy import ElasticPolicy

    adv_db = Database(profile=profile)
    adv_table = build_adversarial_table(adv_db, adversarial_pages)
    key_range = KeyRange.equal(0)
    predicate = Comparison("c2", CompareOp.EQ, 0)
    smooth = run_cold(adv_db, "smooth",
                      SmoothScan(adv_table, "c2", key_range))
    full = run_cold(adv_db, "full", FullTableScan(adv_table, predicate))
    index = run_cold(adv_db, "index",
                     IndexScan(adv_table, "c2", key_range))
    best = min(full.seconds, index.seconds)
    result.adversarial_smooth_s = smooth.seconds
    result.adversarial_best_s = best
    result.adversarial_cr = smooth.seconds / best if best > 0 else 1.0

    # The paper's analysis number (≈5.5 on HDD) assumes every skip pays a
    # full random access; our disk models prefetchers, which absorb the
    # every-second-page skips.  Re-measure with prefetching disabled and
    # the literal strictly-greater policy (which never morphs here).
    saved_window = adv_db.disk.seq_window
    adv_db.disk.seq_window = 1
    strict = run_cold(
        adv_db, "smooth-strict",
        SmoothScan(adv_table, "c2", key_range,
                   policy=ElasticPolicy(strict=True)),
    )
    full_np = run_cold(adv_db, "full-noprefetch",
                       FullTableScan(adv_table, predicate))
    adv_db.disk.seq_window = saved_window
    result.adversarial_cr_strict = (
        strict.seconds / full_np.seconds if full_np.seconds > 0 else 1.0
    )

    # -- selectivity sweep ----------------------------------------------------
    setup = setup or make_micro_db(num_tuples, profile=profile)
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        smooth_m = run_cold(
            setup.db, "smooth",
            access_path_plan("smooth", setup.table, sel),
        )
        best_s = min(
            run_cold(setup.db, "full",
                     access_path_plan("full", setup.table, sel)).seconds,
            run_cold(setup.db, "index",
                     access_path_plan("index", setup.table, sel)).seconds,
        )
        cr = smooth_m.seconds / best_s if best_s > 0 else 1.0
        result.sweep_points.append((sel_pct, cr))
    return result
