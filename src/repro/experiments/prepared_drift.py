"""Prepared-statement parameter drift — the paper's serving scenario.

The introduction's motivating regime: a statement is prepared once, its
plan is cached, and the plan is replayed for every later execution —
while the *bind parameters* drift away from the values the optimizer saw
at first execution.  A classic cost-based plan (index scan picked at
0.05% selectivity) degrades catastrophically as the parameter widens; a
Smooth Scan plan is statistics-oblivious, so the *same cached plan*
stays near-optimal across the whole sweep (§IV-B: "the optimizer can
always choose a Smooth Scan").

One prepared statement drives everything::

    SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi

Three series per drift point, all simulated (deterministic) times:

* ``cached`` — the classic config's plan, cached at the first (lowest
  selectivity) execution and replayed via the plan cache;
* ``smooth`` — the same drill with ``enable_smooth``: the cached plan is
  a Smooth Scan;
* ``replan`` — a fresh cost-based plan per point (what an engine that
  re-optimizes every execution would run): the robustness yardstick.

The sweep also exercises the machinery it measures: it asserts each
statement compiled exactly once (``Database.sql_compile_count``) and
that every re-execution was a plan-cache hit — the CI guardrail that
prepared re-execution really skips parse/bind/plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.exec.expressions import Between
from repro.experiments.common import MicroSetup, make_micro_db
from repro.optimizer.planner import PlannerOptions
from repro.workloads.micro import VALUE_DOMAIN

#: Default sweep size: 120K tuples = 1,000 heap pages.
DEFAULT_DRIFT_TUPLES = 120_000

#: Drift grid in percent: the first point is where the plan gets cached
#: (squarely index-friendly); the rest drift toward full-scan land.
DEFAULT_DRIFT_PCT = (0.05, 0.5, 2.0, 10.0, 50.0, 100.0)

#: The "classic" serving configuration: cost-based index-vs-full choice
#: (no Sort Scan — the paper's Figure-1 DBMS X shape, where the
#: tipping-point mistake is an index scan run far past its break-even).
CLASSIC_OPTIONS = PlannerOptions(enable_sort_scan=False)

#: The smooth serving configuration (§IV-B).
SMOOTH_OPTIONS = PlannerOptions(enable_sort_scan=False, enable_smooth=True)

#: The statement every series prepares.
DRIFT_SQL = "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi"


@dataclass
class PreparedDriftResult:
    """One drift sweep: per-point simulated times and cache accounting."""

    selectivities_pct: list[float] = field(default_factory=list)
    rows: list[int] = field(default_factory=list)
    cached_seconds: list[float] = field(default_factory=list)
    smooth_seconds: list[float] = field(default_factory=list)
    replan_seconds: list[float] = field(default_factory=list)
    cached_paths: list[str] = field(default_factory=list)
    replan_paths: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    statement_compiles: int = 0

    def slowdowns(self, series: list[float]) -> list[float]:
        """Per-point ratio of ``series`` over the fresh-replan time."""
        return [s / r if r > 0 else float("inf")
                for s, r in zip(series, self.replan_seconds, strict=False)]

    @property
    def max_cached_slowdown(self) -> float:
        return max(self.slowdowns(self.cached_seconds))

    @property
    def max_smooth_slowdown(self) -> float:
        return max(self.slowdowns(self.smooth_seconds))

    def report(self) -> str:
        headers = ["sel%", "rows", "replan_s", "replan", "cached_s",
                   "cached", "slowdown", "smooth_s", "slowdown"]
        cached_sd = self.slowdowns(self.cached_seconds)
        smooth_sd = self.slowdowns(self.smooth_seconds)
        table = []
        for i, pct in enumerate(self.selectivities_pct):
            table.append([
                pct, self.rows[i],
                self.replan_seconds[i], self.replan_paths[i],
                self.cached_seconds[i], self.cached_paths[i],
                cached_sd[i],
                self.smooth_seconds[i], smooth_sd[i],
            ])
        lines = [format_table(
            headers, table,
            title=("Prepared-statement drift — one cached plan re-executed "
                   "across a drifting selectivity parameter\n"
                   f"(statement: {DRIFT_SQL}; simulated times)"),
        )]
        lines.append(
            "max slowdown vs fresh replan: cached classic plan "
            f"{self.max_cached_slowdown:.1f}x, cached smooth plan "
            f"{self.max_smooth_slowdown:.1f}x"
        )
        lines.append(
            f"plan cache after sweep: {self.cache_misses} misses, "
            f"{self.cache_hits} hits, {self.cache_invalidations} "
            "invalidations; statement compiles: "
            f"{self.statement_compiles}"
        )
        return "\n".join(lines)


def run_prepared_drift(num_tuples: int = DEFAULT_DRIFT_TUPLES,
                       drift_pct: tuple = DEFAULT_DRIFT_PCT,
                       setup: MicroSetup | None = None
                       ) -> PreparedDriftResult:
    """Prepare once, cache the plan at the first point, then drift.

    Builds its own database by default (the sweep installs fresh
    statistics and populates the plan cache — too intrusive for a
    shared fixture).
    """
    setup = setup or make_micro_db(num_tuples)
    db = setup.db
    db.analyze()  # fresh statistics: the replan baseline estimates well

    compiles0 = db.sql_compile_count
    hits0 = db.plan_cache.stats.hits
    misses0 = db.plan_cache.stats.misses
    invalidations0 = db.plan_cache.stats.invalidations

    classic = db.connect(options=CLASSIC_OPTIONS)
    smooth = db.connect(options=SMOOTH_OPTIONS)
    st_classic = classic.prepare(DRIFT_SQL)
    st_smooth = smooth.prepare(DRIFT_SQL)

    result = PreparedDriftResult()
    for pct in drift_pct:
        hi = round(pct / 100.0 * VALUE_DOMAIN)
        params = {"lo": 0, "hi": hi}
        cached = st_classic.run(params, keep_rows=False)
        smoothed = st_smooth.run(params, keep_rows=False)
        # The yardstick: a fresh cost-based plan for these exact values
        # (Database.execute plans directly — it never touches the cache).
        fresh = db.execute(
            db.query("micro").where(Between("c2", 0, hi, True, False)),
            keep_rows=False, options=CLASSIC_OPTIONS,
        )
        assert cached.row_count == smoothed.row_count == fresh.row_count
        result.selectivities_pct.append(pct)
        result.rows.append(cached.row_count)
        result.cached_seconds.append(cached.total_seconds)
        result.smooth_seconds.append(smoothed.total_seconds)
        result.replan_seconds.append(fresh.total_seconds)
        result.cached_paths.append(cached.decisions[0].path)
        result.replan_paths.append(fresh.decisions[0].path)

    result.statement_compiles = db.sql_compile_count - compiles0
    result.cache_hits = db.plan_cache.stats.hits - hits0
    result.cache_misses = db.plan_cache.stats.misses - misses0
    result.cache_invalidations = (
        db.plan_cache.stats.invalidations - invalidations0
    )
    return result
