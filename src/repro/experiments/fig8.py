"""Figure 8: handling a skewed value distribution.

The skew table's ``c2 = 0`` tuples form a dense head (1% of the table,
physically clustered) plus a sparse random tail (0.001%).  Expected shape
(paper): Selectivity-Increase keeps the big region it learned in the head
and fetches ~56× more distinct pages than Elastic, ending up ~5× slower;
Elastic shrinks back after the head and lands near Index Scan's page
count.  Both the execution time (8a) and the distinct pages read (8b) are
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core.smooth_scan import SmoothScan
from repro.database import Database
from repro.exec.scans import FullTableScan, IndexScan
from repro.exec.expressions import Comparison, CompareOp
from repro.experiments.common import policy_for
from repro.workloads.skew import build_skew_table, skew_query_range

#: Paper scale: 1.5B tuples; experiment default: 1.2M (10,000 pages).
DEFAULT_SKEW_TUPLES = 1_200_000

#: The paper's sparse tail is 0.001% of 1.5B tuples — 15K matches, one per
#: ~830 pages.  At reduced scale that density would round to a handful of
#: matches and the tail would vanish; we scale the per-tuple fraction up
#: so the tail stays statistically present (~1 match per ~40 pages),
#: which preserves the phenomenon being measured: many isolated probes
#: after a dense head.
DEFAULT_SPARSE_FRACTION = 2e-4

SERIES = ("full", "index", "si_smooth", "elastic_smooth")


@dataclass
class Fig8Result:
    """Time (8a) and distinct pages read (8b) per access path."""

    seconds: dict[str, float] = field(default_factory=dict)
    pages_read: dict[str, int] = field(default_factory=dict)
    result_rows: dict[str, int] = field(default_factory=dict)

    def report(self) -> str:
        rows = [
            [label, self.seconds[label], self.pages_read[label],
             self.result_rows[label]]
            for label in SERIES
        ]
        return format_table(
            ["access_path", "time_s", "distinct_pages_read", "rows"],
            rows,
            title="Figure 8 — skewed distribution (query: c2 = 0)",
        )


def run_fig8(num_tuples: int = DEFAULT_SKEW_TUPLES,
             sparse_fraction: float = DEFAULT_SPARSE_FRACTION,
             seed: int = 1337) -> Fig8Result:
    """Run the four access paths over the skewed table."""
    db = Database()
    table = build_skew_table(db, num_tuples,
                             sparse_fraction=sparse_fraction, seed=seed)
    key_range = skew_query_range()
    predicate = Comparison("c2", CompareOp.EQ, 0)
    result = Fig8Result()

    plans = {
        "full": lambda: FullTableScan(table, predicate),
        "index": lambda: IndexScan(table, "c2", key_range),
        "si_smooth": lambda: SmoothScan(table, "c2", key_range,
                                        policy=policy_for("si")),
        "elastic_smooth": lambda: SmoothScan(table, "c2", key_range,
                                             policy=policy_for("elastic")),
    }
    for label, factory in plans.items():
        plan = factory()
        m = run_cold(db, label, plan)
        result.seconds[label] = m.seconds
        # Distinct pages: for smooth scans use the operator's page counts;
        # for the baselines the buffer-pool miss count equals distinct
        # fetches of heap pages plus index pages (close enough at this
        # scale, and exactly what Fig. 8b plots: pages *fetched*).
        if isinstance(plan, SmoothScan) and plan.last_stats is not None:
            result.pages_read[label] = plan.last_stats.pages_fetched
        else:
            result.pages_read[label] = m.result.disk.pages_read
        result.result_rows[label] = m.result.row_count
    return result
