"""Shard-parallel scaling — partitioned Smooth Scans behind an Exchange.

Two sweeps over the shard count N ∈ ``SHARD_COUNTS``, both on simulated
time so the scaling verdicts are deterministic:

1. **Selectivity sweep** (the fig5 grid): the micro query runs cold at
   every selectivity point, serially (N = 1) and through an
   :class:`~repro.exec.exchange.Exchange` over N round-robin shards.
   Shards progress concurrently — the exchange overlaps their simulated
   I/O and CPU by scaling the shared clock to ``1/live_shards`` — so a
   scan-bound point completes near-linearly faster, while the serial
   coordinator merge (one ``exchange_row`` charge per row) bounds the
   speedup below N (Amdahl).  Every sharded run is checked for exact
   row equality against the serial result and for *ledger
   conservation*: the per-shard attribution windows' ledgers must sum
   to the run's own ledger — integer disk counters exactly, the
   millisecond floats within ``CostLedger.matches`` tolerance.

2. **Serving mix** (the 1,000-client fleet of
   :mod:`repro.experiments.serving`, classic options): the same
   drifted-replay workload runs contended at each N.  Unsharded, the
   over-budget replays degrade to bounded Smooth Scans; partitioned,
   the admission controller re-prices them at N shards and admits them
   with the ``split`` verdict — the makespan column quantifies what
   splitting buys at serving scale.

The report ends with the machine-checked verdict lines CI greps:
near-linear scaling, the ≥2x speedup at 4 shards for the scan-bound
(100% selectivity) point, conservation, and the exchange overhead
(extra total work of the sharded runs vs. serial — merge CPU plus any
per-shard head repositioning).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.bench.reporting import format_table
from repro.exec.exchange import Exchange
from repro.experiments.common import (
    COARSE_GRID_PCT,
    DEFAULT_MICRO_TUPLES,
    make_micro_db,
)
from repro.experiments.concurrency import CLASSIC_OPTIONS, SEED_PCT
from repro.experiments.serving import (
    DEFAULT_SERVING_CLIENTS,
    DEFAULT_SERVING_INFLIGHT,
    DEFAULT_SERVING_SLA,
    DEFAULT_SERVING_TUPLES,
    SERVING_SQL,
    _build_loop,
    _hi,
)
from repro.runtime import CostLedger
from repro.workloads.micro import selectivity_predicate

#: The shard counts both sweeps cover (1 = the serial baseline).
SHARD_COUNTS = (1, 2, 4, 8)

#: The scan-bound selectivity point the headline speedup is read at.
SCAN_BOUND_PCT = 100.0


@dataclass
class ServingPoint:
    """The classic serving series run contended at one shard count."""

    num_shards: int
    makespan_ms: float
    p99_ms: float
    admitted: int
    split: int
    degraded: int
    rejected: int
    conservation_ok: bool


@dataclass
class ShardScalingResult:
    """Both sweeps plus the derived verdicts."""

    shard_counts: tuple
    selectivities_pct: list[float]
    #: num_shards -> per-selectivity simulated seconds.
    seconds: dict[int, list[float]] = field(default_factory=dict)
    #: Per-selectivity row counts (asserted identical across N).
    rows: list[int] = field(default_factory=list)
    rows_ok: bool = True
    conservation_ok: bool = True
    serving: list[ServingPoint] = field(default_factory=list)

    def speedup(self, num_shards: int, sel_index: int) -> float:
        return (self.seconds[1][sel_index]
                / self.seconds[num_shards][sel_index])

    @property
    def scan_bound_index(self) -> int:
        return self.selectivities_pct.index(SCAN_BOUND_PCT)

    def scan_bound_speedup(self, num_shards: int) -> float:
        """Speedup at the scan-bound (100% selectivity) point."""
        return self.speedup(num_shards, self.scan_bound_index)

    @property
    def near_linear(self) -> bool:
        """Scan-bound speedup grows with every added shard and stays
        at least half of ideal (the merge is the serial fraction)."""
        i = self.scan_bound_index
        speedups = [self.speedup(n, i) for n in self.shard_counts]
        monotone = all(a < b for a, b in zip(speedups, speedups[1:]))
        efficient = all(
            self.speedup(n, i) >= 0.5 * n
            for n in self.shard_counts if n > 1
        )
        return monotone and efficient

    def exchange_overhead_pct(self, num_shards: int) -> float:
        """Completion-time overhead vs *ideal* linear scaling at the
        scan-bound point, in percent: ``N / speedup - 1``.  This is
        the exchange's price — the serial coordinator merge (one CPU
        charge per row, unshrunk by N) plus the straggler tail as
        shards drain."""
        return (num_shards / self.scan_bound_speedup(num_shards)
                - 1.0) * 100.0

    @property
    def serving_split_speedup(self) -> float:
        """Contended makespan improvement of the 4-way split runs over
        the unsharded (degrade-based) serving baseline."""
        by_n = {p.num_shards: p for p in self.serving}
        return by_n[1].makespan_ms / by_n[4].makespan_ms

    def report(self) -> str:
        headers = (["sel_%"]
                   + [f"N={n}_s" for n in self.shard_counts]
                   + [f"speedup_N={n}" for n in self.shard_counts
                      if n > 1])
        table = []
        for i, sel in enumerate(self.selectivities_pct):
            row = [sel] + [self.seconds[n][i] for n in self.shard_counts]
            row += [self.speedup(n, i) for n in self.shard_counts
                    if n > 1]
            table.append(row)
        lines = [format_table(
            headers, table,
            title=("Shard-parallel scaling — micro query, cold runs, "
                   "simulated completion time (s) by shard count\n"
                   "(round-robin shards, per-shard access paths chosen "
                   "independently, serial coordinator merge)"),
        )]
        serving_headers = ["shards", "makespan_s", "p99_s", "admit",
                           "split", "degrade", "reject", "conservation"]
        serving_table = [
            [p.num_shards, p.makespan_ms / 1000, p.p99_ms / 1000,
             p.admitted, p.split, p.degraded, p.rejected,
             "exact" if p.conservation_ok else "VIOLATED"]
            for p in self.serving
        ]
        lines.append("")
        lines.append(format_table(
            serving_headers, serving_table,
            title=(f"Serving mix — {DEFAULT_SERVING_CLIENTS} clients, "
                   "classic options, contended schedule, by shard "
                   "count\n(unsharded over-budget replays degrade; "
                   "partitioned ones are split-admitted)"),
        ))
        i = self.scan_bound_index
        lines.append(
            f"scan-bound speedup at 4 shards: "
            f"{self.scan_bound_speedup(4):.2f}x >= 2x: "
            + ("ok" if self.scan_bound_speedup(4) >= 2.0 else "VIOLATED")
        )
        lines.append(
            "near-linear scaling (monotone speedup, >= 50% parallel "
            "efficiency at the scan-bound point): "
            + ("ok" if self.near_linear else "VIOLATED")
        )
        lines.append(
            "rows identical across shard counts and schemes: "
            + ("ok" if self.rows_ok else "VIOLATED")
        )
        lines.append(
            "ledger conservation across shards: "
            + ("exact (summed per-shard ledgers reproduce each run's "
               "ledger)" if self.conservation_ok else "VIOLATED")
        )
        for n in self.shard_counts:
            if n == 1:
                continue
            lines.append(
                f"exchange overhead at {n} shards (scan-bound): "
                f"+{self.exchange_overhead_pct(n):.1f}% completion "
                "time vs ideal linear scaling (serial merge + "
                "straggler tail)"
            )
        lines.append(
            "serving makespan improvement from split admission "
            f"(4 shards vs unsharded): "
            f"{self.serving_split_speedup:.2f}x"
        )
        return "\n".join(lines)


def _ledger_of_run(res) -> CostLedger:
    """The run's own ledger, rebuilt from its measured counters."""
    run = res.run
    return CostLedger(
        io_ms=run.io_ms, cpu_ms=run.cpu_ms, disk=run.disk.snapshot(),
        buffer_hits=run.buffer_hits, buffer_misses=run.buffer_misses,
    )


def _shard_ledger_sum(res) -> CostLedger | None:
    """Summed per-shard exchange ledgers, or None for a serial plan."""
    for op in res.plan.operators():
        if isinstance(op, Exchange):
            total = CostLedger()
            for ledger in op.shard_ledgers:
                total.add(ledger)
            return total
    return None


def _sweep(result: ShardScalingResult, num_tuples: int) -> None:
    setup = make_micro_db(num_tuples)
    db = setup.db
    for n in result.shard_counts:
        if n > 1:
            db.shard_table("micro", n)
        db.analyze()
        seconds: list[float] = []
        rows: list[int] = []
        for sel_pct in result.selectivities_pct:
            query = db.query("micro").where(
                selectivity_predicate(sel_pct / 100.0)
            )
            res = db.execute(query, cold=True, keep_rows=False)
            seconds.append(res.run.total_seconds)
            rows.append(res.row_count)
            shard_sum = _shard_ledger_sum(res)
            if n == 1:
                if shard_sum is not None:  # serial must stay serial
                    result.conservation_ok = False
            elif shard_sum is not None and not shard_sum.matches(
                    _ledger_of_run(res)):
                # A sharded table may still plan serially (the model
                # says going wide loses — e.g. a point lookup); only
                # actual exchange runs owe the conservation proof.
                result.conservation_ok = False
        result.seconds[n] = seconds
        if n == 1:
            result.rows = rows
        elif rows != result.rows:
            result.rows_ok = False
    if db.shard_set("micro") is not None:
        db.unshard_table("micro")


def _serving_point(num_shards: int, num_tuples: int,
                   num_clients: int) -> ServingPoint:
    setup = make_micro_db(num_tuples)
    db = setup.db
    if num_shards > 1:
        db.shard_table("micro", num_shards)
    db.analyze()
    options = replace(CLASSIC_OPTIONS, shard_parallel=False)
    conn = db.connect(options=options, cold=False)
    statement = conn.prepare(SERVING_SQL)
    statement.run({"lo": 0, "hi": _hi(SEED_PCT)}, cold=True,
                  keep_rows=False)
    loop = _build_loop(db, options, num_clients,
                       DEFAULT_SERVING_INFLIGHT, DEFAULT_SERVING_SLA)
    report = loop.run(cold=True, interleave=True)
    conserved = report.total_ledger().matches(db.runtime.totals())
    stats = loop.front.admission.stats
    point = ServingPoint(
        num_shards=num_shards,
        makespan_ms=report.makespan_ms,
        p99_ms=report.p99_ms,
        admitted=stats.admitted,
        split=stats.split,
        degraded=stats.degraded,
        rejected=stats.rejected,
        conservation_ok=conserved,
    )
    loop.close()
    return point


def run_shard_scaling(
    num_tuples: int = DEFAULT_MICRO_TUPLES,
    serving_tuples: int = DEFAULT_SERVING_TUPLES,
    num_clients: int = DEFAULT_SERVING_CLIENTS,
    shard_counts: tuple = SHARD_COUNTS,
    selectivities_pct: tuple = COARSE_GRID_PCT,
) -> ShardScalingResult:
    """Run both sweeps and derive the scaling verdicts."""
    result = ShardScalingResult(
        shard_counts=shard_counts,
        selectivities_pct=list(selectivities_pct),
    )
    _sweep(result, num_tuples)
    for n in shard_counts:
        result.serving.append(
            _serving_point(n, serving_tuples, num_clients)
        )
    return result
