"""One module per paper table/figure; shared by benchmarks, examples, tests."""

from repro.experiments.competitive import CompetitiveResult, run_competitive
from repro.experiments.fig1 import Fig1Result, Fig1Setup, make_tuned_tpch, run_fig1
from repro.experiments.fig4_table2 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7aResult, Fig7bResult, run_fig7a, run_fig7b
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import Fig11Result, run_fig11

__all__ = [
    "CompetitiveResult",
    "Fig11Result",
    "Fig1Result",
    "Fig1Setup",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7aResult",
    "Fig7bResult",
    "Fig8Result",
    "Fig9Result",
    "make_tuned_tpch",
    "run_competitive",
    "run_fig1",
    "run_fig10",
    "run_fig11",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig9",
]
