"""Figure 5: Smooth Scan vs. alternatives, with and without ORDER BY.

Sweeps the micro-benchmark query over the full selectivity interval and
measures all four access paths.  Expected shape (paper, HDD):

* Index Scan degrades fast — ~10× Full Scan already at 0.1%, >100× at 100%.
* Sort Scan is best below ~1%, loses its edge above ~2.5% (sort overhead).
* Smooth Scan tracks the best alternative everywhere: index-like at the
  low end, within ~20% of Full Scan at 100% (without ORDER BY), and the
  outright winner above ~2.5% when an interesting order is required
  (everyone else pays a posterior sort).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.experiments.common import (
    COARSE_GRID_PCT,
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    make_micro_db,
)
from repro.optimizer.planner import PlannerOptions
from repro.storage.disk import DiskProfile
from repro.workloads.micro import selectivity_predicate

PATHS = ("full", "index", "sort", "smooth")


@dataclass
class Fig5Result:
    """Execution time (s) per access path per selectivity point."""

    order_by: bool
    profile: str
    selectivities_pct: list[float]
    seconds: dict[str, list[float]] = field(default_factory=dict)
    rows: dict[str, list[int]] = field(default_factory=dict)

    def report(self) -> str:
        headers = ["sel_%"] + [p for p in PATHS]
        table = []
        for i, sel in enumerate(self.selectivities_pct):
            table.append([sel] + [self.seconds[p][i] for p in PATHS])
        title = (
            f"Figure 5{'a (with ORDER BY)' if self.order_by else 'b (no ORDER BY)'}"
            f" — execution time (s), {self.profile}"
        )
        return format_table(headers, table, title=title)


def run_fig5(order_by: bool, num_tuples: int = DEFAULT_MICRO_TUPLES,
             selectivities_pct: tuple = COARSE_GRID_PCT,
             profile: DiskProfile | None = None,
             setup: MicroSetup | None = None) -> Fig5Result:
    """Run one Figure-5 sweep (5a with ORDER BY, 5b without)."""
    setup = setup or make_micro_db(num_tuples, profile=profile)
    result = Fig5Result(
        order_by=order_by,
        profile=setup.db.profile.name,
        selectivities_pct=list(selectivities_pct),
        seconds={p: [] for p in PATHS},
        rows={p: [] for p in PATHS},
    )
    # The paper's micro query, stated declaratively once per point; each
    # curve pins its access path through PlannerOptions.force_path and the
    # planner lowers the same Query four ways (identical operators to the
    # previously hand-built trees, decision trail included).
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        query = setup.db.query(setup.table.name).where(
            selectivity_predicate(sel)
        )
        if order_by:
            query = query.order_by("c2")
        for path in PATHS:
            res = setup.db.execute(
                query, cold=True, keep_rows=False,
                options=PlannerOptions(force_path=path),
            )
            result.seconds[path].append(res.total_seconds)
            result.rows[path].append(res.row_count)
    return result
