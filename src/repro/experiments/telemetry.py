"""Telemetry workload — the concurrency drill traced end to end.

The 4-client drifted-replay mix of :mod:`repro.experiments.concurrency`
runs again (classic and smooth serving), this time with the tracer on,
and the full observability pipeline is exercised and *verified* against
the ground truth the engine already computes:

* every trace event lands in the :class:`~repro.telemetry.store.\
HistoryStore` — engine tables queried through the repo's own SQL front
  end — and the SQL rollups must agree **exactly** with the in-memory
  :class:`~repro.exec.scheduler.WorkloadReport` aggregates;
* the event stream is joined into a ``workload-trace/v1`` file
  (:mod:`repro.telemetry.capture`) and replayed on a fresh database
  (:mod:`repro.telemetry.replay`) — every per-query ledger must be
  reproduced bitwise (integer counters equal, milliseconds within
  1e-9);
* the identical workload runs once more on a fresh *untraced* engine,
  and the detailed workload reports must be **byte-identical** — the
  proof that tracing charges zero simulated cost.

Artifacts: ``bench_results/telemetry_workload.txt`` (the report below,
including the deterministic metrics exposition) and
``bench_results/telemetry_trace.json`` (the captured trace — replayable
standalone with ``python -m repro.telemetry.replay``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_table
from repro.database import Database
from repro.exec.scheduler import (
    CooperativeScheduler,
    WorkloadClient,
    WorkloadReport,
)
from repro.experiments.common import MicroSetup, make_micro_db
from repro.experiments.concurrency import (
    CLASSIC_OPTIONS,
    CONCURRENCY_SQL,
    DEFAULT_CLIENTS,
    DEFAULT_CONCURRENCY_TUPLES,
    MIX_PCT,
    SEED_PCT,
    SMOOTH_OPTIONS,
    client_streams,
)
from repro.optimizer.planner import PlannerOptions
from repro.telemetry import (
    CapturedRun,
    HistoryStore,
    ReplayResult,
    WorkloadTrace,
    capture_run,
    replay_trace,
)
from repro.telemetry.rollups import by_client, verify_against_report
from repro.workloads.micro import VALUE_DOMAIN

#: History-store run ids, one per traced series.
RUN_IDS = {"classic": 0, "smooth": 1}

#: Seed (cache-warming) spans are stored under ``run_id + this`` so the
#: per-run rollups compare against exactly the scheduled queries.
SEED_RUN_OFFSET = 100


@dataclass
class SeriesTelemetry:
    """One traced series: its report, its warehouse run, its capture."""

    name: str
    run_id: int
    report: WorkloadReport
    captured: CapturedRun
    events_ingested: int
    conservation_ok: bool
    #: Mismatches between SQL rollups and the report (empty = exact).
    rollup_problems: list[str]
    #: Per-client SQL rollup rows (recovered from the warehouse).
    client_rollup: list[dict]


@dataclass
class TelemetryResult:
    """The full telemetry drill and its three verification verdicts."""

    num_tuples: int
    num_clients: int
    store: HistoryStore
    trace: WorkloadTrace
    series: list[SeriesTelemetry]
    replay: ReplayResult
    #: True when traced and untraced detailed reports are byte-identical.
    overhead_identical: bool
    metrics_text: str

    @property
    def rollups_ok(self) -> bool:
        return all(not s.rollup_problems for s in self.series)

    @property
    def conservation_ok(self) -> bool:
        return all(s.conservation_ok for s in self.series)

    def report(self) -> str:
        headers = ["series", "queries", "rows", "p50_s", "p99_s",
                   "mean_s", "makespan_s", "qps", "events", "spans"]
        table = []
        for s in self.series:
            rep = s.report
            table.append([
                s.name, len(rep.records), rep.rows,
                rep.p50_ms / 1000, rep.p99_ms / 1000,
                rep.mean_ms / 1000, rep.makespan_ms / 1000,
                rep.throughput_qps, s.events_ingested,
                s.captured.statement_count,
            ])
        lines = [format_table(
            headers, table,
            title=(f"Telemetry workload — {self.num_clients} clients x "
                   f"{len(MIX_PCT)} queries, traced end to end\n"
                   f"(statement: {CONCURRENCY_SQL}; plan cached at "
                   f"{SEED_PCT}% selectivity, replayed across the drift "
                   "mix; simulated times)"),
        )]
        lines.append(
            f"history store: {self.store.event_count} events, "
            f"{self.store.query_count} query spans in engine tables "
            "(B-tree indexed on query_id), queried via SQL"
        )
        for s in self.series:
            verdict = ("exact" if not s.rollup_problems
                       else "MISMATCH: " + "; ".join(s.rollup_problems))
            lines.append(f"rollup == report: {verdict} ({s.name})")
        for s in self.series:
            per_client = ", ".join(
                f"{row['client']}={row['queries']}q/{row['rows_out']}rows"
                for row in s.client_rollup
            )
            lines.append(f"per-client SQL rollup ({s.name}): {per_client}")
        lines.append(
            "ledger conservation: "
            + ("exact (per-query ledgers sum to the shared runtime totals)"
               if self.conservation_ok else "VIOLATED")
        )
        if self.replay.ok:
            lines.append(
                f"replay equivalence: exact ({self.replay.statements} "
                "statements re-run from the trace file, every per-query "
                "ledger reproduced)"
            )
        else:
            lines.append(f"replay equivalence: {self.replay.describe()}")
        lines.append(
            "tracing overhead: "
            + ("zero simulated cost (traced and untraced detailed "
               "workload reports are byte-identical)"
               if self.overhead_identical else "NONZERO — reports differ")
        )
        lines.append("metrics exposition:")
        lines.append(self.metrics_text)
        for s in self.series:
            lines.append(f"json {s.name}: {s.report.to_json()}")
        return "\n".join(lines)


def _run_series(db: Database, name: str, options: PlannerOptions,
                num_clients: int) -> tuple[WorkloadReport, bool]:
    """The concurrency drill's contended run (seed, then the mix)."""
    conn = db.connect(options=options, cold=False)
    statement = conn.prepare(CONCURRENCY_SQL)
    seed_hi = round(SEED_PCT / 100.0 * VALUE_DOMAIN)
    statement.run({"lo": 0, "hi": seed_hi}, cold=True, keep_rows=False)
    scheduler = CooperativeScheduler(db)
    for i, stream in enumerate(client_streams(num_clients)):
        client = WorkloadClient(f"c{i + 1}")
        for pct in stream:
            hi = round(pct / 100.0 * VALUE_DOMAIN)
            client.add_query(
                f"{pct:g}%",
                lambda s=statement, p={"lo": 0, "hi": hi}: s.execute(p),
            )
        scheduler.add_client(client)
    report = scheduler.run(cold=True, interleave=True)
    conserved = report.total_ledger().matches(db.runtime.totals())
    return report, conserved


def _ingest_series(store: HistoryStore, events: list, run_id: int) -> int:
    """Warehouse one series: scheduled spans under ``run_id``, seed
    (cache-warming) spans under ``run_id + SEED_RUN_OFFSET``.

    The split keeps ``rollups.totals(run_id)`` comparable to the
    scheduler's report, which only aggregates scheduled queries.
    """
    sched_ids = {e.query_id for e in events if e.kind == "sched.start"}
    seed_events = [e for e in events
                   if e.query_id >= 0 and e.query_id not in sched_ids]
    main_events = [e for e in events
                   if e.query_id < 0 or e.query_id in sched_ids]
    store.ingest(seed_events, run_id=run_id + SEED_RUN_OFFSET)
    return store.ingest(main_events, run_id=run_id)


def run_telemetry_workload(
    num_tuples: int = DEFAULT_CONCURRENCY_TUPLES,
    num_clients: int = DEFAULT_CLIENTS,
    setup: MicroSetup | None = None,
) -> TelemetryResult:
    """Run the traced concurrency drill and verify the whole pipeline.

    Builds its own database by default (tracing and plan caching are
    too intrusive for a shared fixture); a ``setup`` passed in must be
    fresh for the overhead comparison to be meaningful.
    """
    setup = setup or make_micro_db(num_tuples)
    db = setup.db
    db.analyze()
    db.tracer.enable()
    store = HistoryStore()
    trace = WorkloadTrace(setup={
        "workload": "micro",
        "num_tuples": num_tuples,
        "seed": 42,
        "analyze": True,
    })
    series: list[SeriesTelemetry] = []
    configs = (("classic", CLASSIC_OPTIONS), ("smooth", SMOOTH_OPTIONS))
    for name, options in configs:
        db.tracer.drain()  # each series captures only its own events
        report, conserved = _run_series(db, name, options, num_clients)
        events = db.tracer.drain()
        captured = capture_run(events, label=name, interleave=True,
                               quantum=1, cold=True)
        trace.add_run(captured)
        run_id = RUN_IDS[name]
        ingested = _ingest_series(store, events, run_id)
        series.append(SeriesTelemetry(
            name=name,
            run_id=run_id,
            report=report,
            captured=captured,
            events_ingested=ingested,
            conservation_ok=conserved,
            rollup_problems=verify_against_report(store, report,
                                                  run_id=run_id),
            client_rollup=by_client(store, run_id=run_id),
        ))
    metrics_text = db.tracer.metrics.exposition()
    db.tracer.disable()

    # Replay the captured trace on a fresh database: every per-query
    # ledger must come back bitwise.
    replay = replay_trace(trace)

    # Overhead proof: the identical workload on a fresh *untraced*
    # engine must produce byte-identical detailed reports (ledgers,
    # start/finish stamps on the simulated clock — everything).
    untraced = make_micro_db(num_tuples)
    untraced.db.analyze()
    overhead_identical = True
    for (name, options), traced in zip(configs, series, strict=False):
        report, _ = _run_series(untraced.db, name, options, num_clients)
        overhead_identical &= (
            report.to_json(detail=True)
            == traced.report.to_json(detail=True)
        )

    return TelemetryResult(
        num_tuples=num_tuples,
        num_clients=num_clients,
        store=store,
        trace=trace,
        series=series,
        replay=replay,
        overhead_identical=overhead_identical,
        metrics_text=metrics_text,
    )


def main() -> int:  # pragma: no cover - exercised via the benchmark
    import os

    from repro.bench.reporting import save_report
    result = run_telemetry_workload()
    text = result.report()
    print(text)
    path = save_report("telemetry_workload", text)
    trace_path = os.path.join(os.path.dirname(path),
                              "telemetry_trace.json")
    result.trace.save(trace_path)
    print(f"[saved to {path} and {trace_path}]")
    ok = (result.rollups_ok and result.conservation_ok
          and result.replay.ok and result.overhead_identical)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys
    sys.exit(main())
