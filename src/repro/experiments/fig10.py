"""Figure 10: Smooth Scan on SSD.

The Figure-5b sweep re-run with the SSD cost profile (2:1 random vs
sequential instead of 10:1).  Expected shape: Index Scan stays viable up
to ~0.1% (vs 0.01% on HDD) but still loses badly at the high end (~30× at
100%); Smooth Scan beats Sort Scan above ~0.1% and ends within ~10% of
Full Scan at 100% — the narrower random/sequential gap favours Smooth
Scan's occasional jumps over Sort Scan's pre-sort.
"""

from __future__ import annotations

from repro.experiments.common import COARSE_GRID_PCT, DEFAULT_MICRO_TUPLES
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.storage.disk import DiskProfile


def run_fig10(num_tuples: int = DEFAULT_MICRO_TUPLES,
              selectivities_pct: tuple = COARSE_GRID_PCT,
              order_by: bool = False) -> Fig5Result:
    """The Figure-5 sweep on the SSD profile."""
    result = run_fig5(
        order_by=order_by,
        num_tuples=num_tuples,
        selectivities_pct=selectivities_pct,
        profile=DiskProfile.ssd(),
    )
    return result
