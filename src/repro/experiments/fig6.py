"""Figure 6: sensitivity of Smooth Scan's modes.

Compares Full Scan, Index Scan, Smooth Scan capped at Mode 1 (Entire Page
Probe only) and full Smooth Scan (Flattening Access).  Expected shape:
Entire-Page-Probe alone already beats Index Scan by ~10× at 100% (no
repeated pages) but stays ~14× above Full Scan (every fetch random);
Flattening closes that to ~1.2× Full Scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    FINE_GRID_PCT,
    MicroSetup,
    access_path_plan,
    make_micro_db,
)

SERIES = ("full", "index", "smooth_mode1", "smooth_flattening")


@dataclass
class Fig6Result:
    """Execution time (s) per series per selectivity point."""

    selectivities_pct: list[float]
    seconds: dict[str, list[float]] = field(default_factory=dict)

    def report(self) -> str:
        headers = ["sel_%"] + list(SERIES)
        rows = []
        for i, sel in enumerate(self.selectivities_pct):
            rows.append([sel] + [self.seconds[s][i] for s in SERIES])
        return format_table(
            headers, rows,
            title="Figure 6 — Smooth Scan mode sensitivity, execution time (s)",
        )


def run_fig6(num_tuples: int = DEFAULT_MICRO_TUPLES,
             selectivities_pct: tuple = FINE_GRID_PCT,
             setup: MicroSetup | None = None) -> Fig6Result:
    """Run the mode-sensitivity sweep."""
    setup = setup or make_micro_db(num_tuples)
    result = Fig6Result(
        selectivities_pct=list(selectivities_pct),
        seconds={s: [] for s in SERIES},
    )
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        plans = {
            "full": access_path_plan("full", setup.table, sel),
            "index": access_path_plan("index", setup.table, sel),
            "smooth_mode1": access_path_plan("smooth", setup.table, sel,
                                             max_mode=1),
            "smooth_flattening": access_path_plan("smooth", setup.table, sel,
                                                  max_mode=2),
        }
        for label, plan in plans.items():
            m = run_cold(setup.db, label, plan)
            result.seconds[label].append(m.seconds)
    return result
