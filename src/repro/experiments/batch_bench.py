"""Row vs. batch execution throughput on the Figure-5 selectivity sweep.

The reproduction's perf guardrail for the batch-vectorized engine: run the
fig5 micro-benchmark plans (Full, Sort and Smooth Scan, with and without
the 100% point) and drain each twice — once through the tuple-at-a-time
``rows()`` pipeline, once through the vectorized ``batches()`` protocol —
measuring *real* wall-clock time.  Simulated costs are identical by
construction (the batch engine charges exactly what the row engine does);
what this experiment records is the Python-side overhead the paper's
Section IV attributes to per-tuple bookkeeping, which batching amortizes
over whole pages and morphing-region runs.

Reported per plan: produced tuples, row/batch wall seconds, throughput in
ktuples/s for both paths and the speedup ratio; plus an overall row whose
speedup is computed from total tuples over total time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    access_path_plan,
    make_micro_db,
)

#: Selectivity points of the sweep (percent); a subset of the fig5 grid
#: spanning the index-friendly low end through the full-scan high end.
DEFAULT_GRID_PCT = (0.1, 1.0, 20.0, 100.0)

#: Access paths compared (the fig5 paths whose engine work dominates;
#: the classical index scan is one random fetch per tuple on both paths).
DEFAULT_PATHS = ("full", "sort", "smooth")


@dataclass
class BatchBenchResult:
    """Wall-clock throughput of row vs. batch execution per plan."""

    labels: list[str] = field(default_factory=list)
    tuples: list[int] = field(default_factory=list)
    row_seconds: list[float] = field(default_factory=list)
    batch_seconds: list[float] = field(default_factory=list)

    @property
    def total_tuples(self) -> int:
        return sum(self.tuples)

    @property
    def overall_speedup(self) -> float:
        """Total-tuples-over-total-time ratio of the two paths."""
        row_total = sum(self.row_seconds)
        batch_total = sum(self.batch_seconds)
        if batch_total <= 0:
            return float("inf")
        return row_total / batch_total

    def report(self) -> str:
        headers = ["plan", "tuples", "row_s", "batch_s",
                   "row_ktps", "batch_ktps", "speedup"]
        table = []
        for i, label in enumerate(self.labels):
            row_s, batch_s = self.row_seconds[i], self.batch_seconds[i]
            n = self.tuples[i]
            table.append([
                label, n, row_s, batch_s,
                n / row_s / 1e3 if row_s > 0 else None,
                n / batch_s / 1e3 if batch_s > 0 else None,
                row_s / batch_s if batch_s > 0 else None,
            ])
        row_total, batch_total = sum(self.row_seconds), sum(self.batch_seconds)
        n = self.total_tuples
        table.append([
            "OVERALL", n, row_total, batch_total,
            n / row_total / 1e3 if row_total > 0 else None,
            n / batch_total / 1e3 if batch_total > 0 else None,
            self.overall_speedup,
        ])
        return format_table(
            headers, table,
            title=("Batch vs. row execution — wall-clock throughput, "
                   "fig5 selectivity sweep"),
        )


def _drain_rows(db, plan) -> tuple[int, float]:
    """Cold-run ``plan`` tuple-at-a-time; return (tuples, wall seconds)."""
    ctx = db.cold_run()
    start = time.perf_counter()
    count = 0
    for _row in plan.rows(ctx):
        count += 1
    return count, time.perf_counter() - start


def _drain_batches(db, plan) -> tuple[int, float]:
    """Cold-run ``plan`` batch-at-a-time; return (tuples, wall seconds)."""
    ctx = db.cold_run()
    start = time.perf_counter()
    count = 0
    for batch in plan.batches(ctx):
        count += len(batch)
    return count, time.perf_counter() - start


def run_batch_bench(num_tuples: int = DEFAULT_MICRO_TUPLES,
                    selectivities_pct: tuple = DEFAULT_GRID_PCT,
                    paths: tuple = DEFAULT_PATHS,
                    setup: MicroSetup | None = None,
                    repeats: int = 2) -> BatchBenchResult:
    """Measure row vs. batch wall-clock throughput over the fig5 plans.

    Each (path, selectivity) plan is drained ``repeats`` times per
    protocol and the best time is kept, damping scheduler noise.
    """
    setup = setup or make_micro_db(num_tuples)
    result = BatchBenchResult()
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        for path in paths:
            row_best = batch_best = float("inf")
            rows_n = batch_n = 0
            for _ in range(max(1, repeats)):
                plan = access_path_plan(path, setup.table, sel)
                rows_n, secs = _drain_rows(setup.db, plan)
                row_best = min(row_best, secs)
                plan = access_path_plan(path, setup.table, sel)
                batch_n, secs = _drain_batches(setup.db, plan)
                batch_best = min(batch_best, secs)
            if rows_n != batch_n:
                raise AssertionError(
                    f"row/batch row-count mismatch for {path}@{sel_pct}%: "
                    f"{rows_n} vs {batch_n}"
                )
            result.labels.append(f"{path}@{sel_pct:g}%")
            result.tuples.append(rows_n)
            result.row_seconds.append(row_best)
            result.batch_seconds.append(batch_best)
    return result
