"""Row vs. batch execution throughput on the Figure-5 selectivity sweep.

The reproduction's perf guardrail for the batch-vectorized engine: run the
fig5 micro-benchmark plans (Full, Sort and Smooth Scan, with and without
the 100% point) and drain each twice — once through the tuple-at-a-time
``rows()`` pipeline, once through the vectorized ``batches()`` protocol —
measuring *real* wall-clock time.  Simulated costs are identical by
construction (the batch engine charges exactly what the row engine does);
what this experiment records is the Python-side overhead the paper's
Section IV attributes to per-tuple bookkeeping, which batching amortizes
over whole pages and morphing-region runs.

Two reports come out of one sweep:

* :meth:`BatchBenchResult.report` — the *deterministic* half: per-plan
  simulated io/cpu seconds (identical on both protocols by the batch
  contract, asserted here).  This is the committed
  ``bench_results/batch_throughput.txt`` artifact — it only changes when
  the engine's simulated behavior changes, never from runner noise.
* :meth:`BatchBenchResult.wallclock_report` — the wall-clock half:
  row/batch seconds, ktuples/s and speedups.  Inherently noisy, so it is
  teed to an *uncommitted* sidecar
  (``bench_results/batch_throughput_wallclock.txt``, gitignored) and
  asserted only with generous slack.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    access_path_plan,
    make_micro_db,
)

#: Selectivity points of the sweep (percent); a subset of the fig5 grid
#: spanning the index-friendly low end through the full-scan high end.
DEFAULT_GRID_PCT = (0.1, 1.0, 20.0, 100.0)

#: Access paths compared (the fig5 paths whose engine work dominates;
#: the classical index scan is one random fetch per tuple on both paths).
DEFAULT_PATHS = ("full", "sort", "smooth")


@dataclass
class BatchBenchResult:
    """Row vs. batch execution per plan: simulated cost + wall clock."""

    labels: list[str] = field(default_factory=list)
    tuples: list[int] = field(default_factory=list)
    row_seconds: list[float] = field(default_factory=list)
    batch_seconds: list[float] = field(default_factory=list)
    #: Simulated (deterministic) io/cpu milliseconds per plan, measured
    #: on the batch drain and verified equal on the row drain.
    sim_io_ms: list[float] = field(default_factory=list)
    sim_cpu_ms: list[float] = field(default_factory=list)

    @property
    def total_tuples(self) -> int:
        return sum(self.tuples)

    @property
    def overall_speedup(self) -> float:
        """Total-tuples-over-total-time ratio of the two paths."""
        row_total = sum(self.row_seconds)
        batch_total = sum(self.batch_seconds)
        if batch_total <= 0:
            return float("inf")
        return row_total / batch_total

    def report(self) -> str:
        """The deterministic table: simulated cost per plan."""
        headers = ["plan", "tuples", "sim_io_s", "sim_cpu_s", "sim_total_s"]
        table = []
        for i, label in enumerate(self.labels):
            io_s = self.sim_io_ms[i] / 1000.0
            cpu_s = self.sim_cpu_ms[i] / 1000.0
            table.append([label, self.tuples[i], io_s, cpu_s, io_s + cpu_s])
        io_total = sum(self.sim_io_ms) / 1000.0
        cpu_total = sum(self.sim_cpu_ms) / 1000.0
        table.append(["OVERALL", self.total_tuples, io_total, cpu_total,
                      io_total + cpu_total])
        return format_table(
            headers, table,
            title=("Batch execution engine — simulated cost, fig5 "
                   "selectivity sweep\n"
                   "(identical on row and batch protocols by the batch "
                   "contract; wall-clock\n"
                   "throughput lives in the uncommitted "
                   "batch_throughput_wallclock.txt sidecar)"),
        )

    def wallclock_report(self) -> str:
        """The noisy table: wall-clock throughput of both protocols."""
        headers = ["plan", "tuples", "row_s", "batch_s",
                   "row_ktps", "batch_ktps", "speedup"]
        table = []
        for i, label in enumerate(self.labels):
            row_s, batch_s = self.row_seconds[i], self.batch_seconds[i]
            n = self.tuples[i]
            table.append([
                label, n, row_s, batch_s,
                n / row_s / 1e3 if row_s > 0 else None,
                n / batch_s / 1e3 if batch_s > 0 else None,
                row_s / batch_s if batch_s > 0 else None,
            ])
        row_total, batch_total = sum(self.row_seconds), sum(self.batch_seconds)
        n = self.total_tuples
        table.append([
            "OVERALL", n, row_total, batch_total,
            n / row_total / 1e3 if row_total > 0 else None,
            n / batch_total / 1e3 if batch_total > 0 else None,
            self.overall_speedup,
        ])
        return format_table(
            headers, table,
            title=("Batch vs. row execution — wall-clock throughput, "
                   "fig5 selectivity sweep"),
        )


def _drain_rows(db, plan) -> tuple[int, float, float, float]:
    """Cold-run tuple-at-a-time: (tuples, wall_s, sim_io_ms, sim_cpu_ms)."""
    ctx = db.cold_run()
    io0, cpu0 = db.clock.snapshot()
    start = time.perf_counter()
    count = 0
    for _row in plan.rows(ctx):
        count += 1
    wall = time.perf_counter() - start
    io1, cpu1 = db.clock.snapshot()
    return count, wall, io1 - io0, cpu1 - cpu0


def _drain_batches(db, plan) -> tuple[int, float, float, float]:
    """Cold-run batch-at-a-time: (tuples, wall_s, sim_io_ms, sim_cpu_ms)."""
    ctx = db.cold_run()
    io0, cpu0 = db.clock.snapshot()
    start = time.perf_counter()
    count = 0
    for batch in plan.batches(ctx):
        count += len(batch)
    wall = time.perf_counter() - start
    io1, cpu1 = db.clock.snapshot()
    return count, wall, io1 - io0, cpu1 - cpu0


def run_batch_bench(num_tuples: int = DEFAULT_MICRO_TUPLES,
                    selectivities_pct: tuple = DEFAULT_GRID_PCT,
                    paths: tuple = DEFAULT_PATHS,
                    setup: MicroSetup | None = None,
                    repeats: int = 2) -> BatchBenchResult:
    """Measure row vs. batch wall-clock throughput over the fig5 plans.

    Each (path, selectivity) plan is drained ``repeats`` times per
    protocol and the best time is kept, damping scheduler noise.
    """
    setup = setup or make_micro_db(num_tuples)
    result = BatchBenchResult()
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        for path in paths:
            row_best = batch_best = float("inf")
            rows_n = batch_n = 0
            row_io = row_cpu = batch_io = batch_cpu = 0.0
            for _ in range(max(1, repeats)):
                plan = access_path_plan(path, setup.table, sel)
                rows_n, secs, row_io, row_cpu = _drain_rows(setup.db, plan)
                row_best = min(row_best, secs)
                plan = access_path_plan(path, setup.table, sel)
                batch_n, secs, batch_io, batch_cpu = _drain_batches(
                    setup.db, plan
                )
                batch_best = min(batch_best, secs)
            if rows_n != batch_n:
                raise AssertionError(
                    f"row/batch row-count mismatch for {path}@{sel_pct}%: "
                    f"{rows_n} vs {batch_n}"
                )
            # The batch contract: identical simulated charges per plan.
            if not (math.isclose(row_io, batch_io, rel_tol=1e-9,
                                 abs_tol=1e-6)
                    and math.isclose(row_cpu, batch_cpu, rel_tol=1e-9,
                                     abs_tol=1e-6)):
                raise AssertionError(
                    "row/batch simulated-cost mismatch for "
                    f"{path}@{sel_pct}%: io {row_io} vs {batch_io}, "
                    f"cpu {row_cpu} vs {batch_cpu}"
                )
            result.labels.append(f"{path}@{sel_pct:g}%")
            result.tuples.append(rows_n)
            result.row_seconds.append(row_best)
            result.batch_seconds.append(batch_best)
            result.sim_io_ms.append(batch_io)
            result.sim_cpu_ms.append(batch_cpu)
    return result
