"""Shared setup for the Section VI experiments.

Scale note: the paper's micro-benchmark table has 400M tuples (3M pages);
experiments here default to 240K tuples (2,000 pages) — every geometric
ratio (120 tuples/page, B+-tree fanout, random:sequential cost) is
preserved, and sweeps are expressed in selectivity, which is
scale-invariant.  Tests run the same experiments at further-reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EngineConfig
from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    MorphPolicy,
    SelectivityIncreasePolicy,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.switch_scan import SwitchScan
from repro.core.trigger import Trigger
from repro.database import Database
from repro.exec.iterator import Operator
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.sort import Sort
from repro.storage.disk import DiskProfile
from repro.storage.table import Table
from repro.workloads.micro import (
    build_micro_table,
    selectivity_predicate,
    selectivity_range,
)

#: Default experiment scale: 240K tuples = 2,000 heap pages.
DEFAULT_MICRO_TUPLES = 240_000

#: The paper's coarse sweep grid, in percent (Figures 5, 6, 10).
COARSE_GRID_PCT = (0.0, 0.001, 0.01, 0.1, 1.0, 20.0, 50.0, 75.0, 100.0)

#: The finer grid of Figures 6/7 including the 5% point.
FINE_GRID_PCT = (0.0, 0.001, 0.01, 0.1, 1.0, 5.0, 20.0, 50.0, 75.0, 100.0)


@dataclass
class MicroSetup:
    """A loaded micro-benchmark database."""

    db: Database
    table: Table


def make_micro_db(num_tuples: int = DEFAULT_MICRO_TUPLES,
                  profile: DiskProfile | None = None,
                  seed: int = 42,
                  config: EngineConfig | None = None) -> MicroSetup:
    """Build the micro-benchmark database on the requested device."""
    db = Database(config=config, profile=profile or DiskProfile.hdd())
    table = build_micro_table(db, num_tuples, seed=seed)
    return MicroSetup(db=db, table=table)


def access_path_plan(kind: str, table: Table, selectivity: float,
                     order_by: bool = False,
                     policy: MorphPolicy | None = None,
                     trigger: Trigger | None = None,
                     max_mode: int = 2,
                     switch_threshold: int = 0) -> Operator:
    """Build one access-path plan for the micro query at ``selectivity``.

    ``kind`` is one of ``full``, ``index``, ``sort``, ``smooth``,
    ``switch``.  With ``order_by`` the plan must produce rows in ``c2``
    order: the index and Smooth Scan already do; Full Scan and Sort Scan
    get a posterior sort.
    """
    key_range = selectivity_range(selectivity)
    predicate = selectivity_predicate(selectivity)
    if kind == "full":
        op: Operator = FullTableScan(table, predicate)
        return Sort(op, ["c2"]) if order_by else op
    if kind == "index":
        return IndexScan(table, "c2", key_range)
    if kind == "sort":
        op = SortScan(table, "c2", key_range)
        return Sort(op, ["c2"]) if order_by else op
    if kind == "smooth":
        return SmoothScan(
            table, "c2", key_range,
            policy=policy or ElasticPolicy(),
            trigger=trigger,
            ordered=order_by,
            max_mode=max_mode,
        )
    if kind == "switch":
        return SwitchScan(table, "c2", key_range,
                          threshold=switch_threshold)
    raise ValueError(f"unknown access path kind {kind!r}")


def policy_for(name: str) -> MorphPolicy:
    """Experiment-facing policy lookup (greedy / si / elastic)."""
    return {
        "greedy": GreedyPolicy,
        "si": SelectivityIncreasePolicy,
        "elastic": ElasticPolicy,
    }[name]()
