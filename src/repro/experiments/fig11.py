"""Figure 11: the Switch Scan performance cliff.

Switch Scan runs a classical index scan until the optimizer's estimate is
violated, then restarts as a full scan.  Right at the threshold the
execution time jumps by a full scan's worth — the performance cliff —
after which Switch Scan tracks Full Scan.  Smooth Scan is plotted next to
it to show the same worst-case bound without the cliff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    access_path_plan,
    make_micro_db,
)

#: Log-spaced grid bracketing the cliff (percent).
CLIFF_GRID_PCT = (0.001, 0.004, 0.008, 0.009, 0.01, 0.02, 0.1,
                  1.0, 10.0, 100.0)

#: The paper's threshold: the optimizer estimated 32K of 400M tuples.
THRESHOLD_FRACTION = 32_000 / 400_000_000

SERIES = ("full", "switch", "smooth")


@dataclass
class Fig11Result:
    """Execution time (s) per series, plus whether Switch Scan switched."""

    selectivities_pct: list[float]
    threshold_tuples: int
    seconds: dict[str, list[float]] = field(default_factory=dict)
    switched: list[bool] = field(default_factory=list)

    def report(self) -> str:
        headers = ["sel_%", *SERIES, "switched"]
        rows = [
            [sel] + [self.seconds[s][i] for s in SERIES]
            + [self.switched[i]]
            for i, sel in enumerate(self.selectivities_pct)
        ]
        return format_table(
            headers, rows,
            title=("Figure 11 — Switch Scan cliff "
                   f"(threshold = {self.threshold_tuples} tuples)"),
        )


def run_fig11(num_tuples: int = DEFAULT_MICRO_TUPLES,
              selectivities_pct: tuple = CLIFF_GRID_PCT,
              threshold_fraction: float = THRESHOLD_FRACTION,
              setup: MicroSetup | None = None) -> Fig11Result:
    """Run Full / Switch / Smooth around the switching threshold."""
    setup = setup or make_micro_db(num_tuples)
    threshold = max(1, round(threshold_fraction * setup.table.row_count))
    result = Fig11Result(
        selectivities_pct=list(selectivities_pct),
        threshold_tuples=threshold,
        seconds={s: [] for s in SERIES},
    )
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        for label in SERIES:
            plan = access_path_plan(label, setup.table, sel,
                                    switch_threshold=threshold)
            m = run_cold(setup.db, label, plan)
            result.seconds[label].append(m.seconds)
            if label == "switch":
                result.switched.append(plan.switched)  # type: ignore[attr-defined]
    return result
