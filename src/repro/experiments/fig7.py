"""Figure 7: impact of morphing policies (7a) and triggering points (7b).

7a compares Greedy / Selectivity-Increase / Elastic over a grid that is
fine at the low end (where the policies differ most) and coarse above.
Expected shape: Greedy converges to full-scan behaviour fastest and pays
for it at low selectivity; Elastic introduces the least overhead.

7b compares the Eager, Optimizer-driven (estimate violated at a fixed
cardinality) and SLA-driven (bound = 2 full scans, trigger cardinality
from Eq. (23)) strategies.  Expected shape: the non-eager strategies are
cheaper below their trigger point, pay a visible step right after it
(repeated pages + produced-tuple checks), and the SLA run stays under the
bound everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core.policy import SelectivityIncreasePolicy
from repro.core.trigger import OptimizerDrivenTrigger, SLADrivenTrigger
from repro.costmodel import sla as sla_mod
from repro.costmodel.params import CostParams
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    access_path_plan,
    make_micro_db,
    policy_for,
)

#: The paper's 7a/7b grid: dense from 0 to 0.01%, then coarse.
POLICY_GRID_PCT = (
    0.0, 0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009,
    0.01, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 75.0, 100.0,
)

POLICIES = ("greedy", "si", "elastic")
TRIGGERS = ("eager", "optimizer", "sla")

#: The paper's optimizer estimate in Fig. 7b, as a fraction of the table
#: (15K of 400M tuples).
OPTIMIZER_ESTIMATE_FRACTION = 15_000 / 400_000_000


@dataclass
class Fig7aResult:
    """Execution time (s) per policy per selectivity point."""

    selectivities_pct: list[float]
    seconds: dict[str, list[float]] = field(default_factory=dict)

    def report(self) -> str:
        headers = ["sel_%"] + list(POLICIES)
        rows = [
            [sel] + [self.seconds[p][i] for p in POLICIES]
            for i, sel in enumerate(self.selectivities_pct)
        ]
        return format_table(headers, rows,
                            title="Figure 7a — morphing policies, time (s)")


@dataclass
class Fig7bResult:
    """Execution time (s) per trigger strategy, plus the SLA bound."""

    selectivities_pct: list[float]
    seconds: dict[str, list[float]] = field(default_factory=dict)
    sla_bound_seconds: float = 0.0
    sla_trigger_cardinality: int = 0
    optimizer_estimate: int = 0

    def report(self) -> str:
        headers = ["sel_%"] + list(TRIGGERS)
        rows = [
            [sel] + [self.seconds[t][i] for t in TRIGGERS]
            for i, sel in enumerate(self.selectivities_pct)
        ]
        title = (
            "Figure 7b — triggering points, time (s); "
            f"SLA bound = {self.sla_bound_seconds:.4g}s "
            f"(trigger at {self.sla_trigger_cardinality} tuples, "
            f"optimizer estimate {self.optimizer_estimate})"
        )
        return format_table(headers, rows, title=title)


def run_fig7a(num_tuples: int = DEFAULT_MICRO_TUPLES,
              selectivities_pct: tuple = POLICY_GRID_PCT,
              setup: MicroSetup | None = None) -> Fig7aResult:
    """Run the policy comparison."""
    setup = setup or make_micro_db(num_tuples)
    result = Fig7aResult(
        selectivities_pct=list(selectivities_pct),
        seconds={p: [] for p in POLICIES},
    )
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        for name in POLICIES:
            plan = access_path_plan("smooth", setup.table, sel,
                                    policy=policy_for(name))
            result.seconds[name].append(
                run_cold(setup.db, name, plan).seconds
            )
    return result


def run_fig7b(num_tuples: int = DEFAULT_MICRO_TUPLES,
              selectivities_pct: tuple = POLICY_GRID_PCT,
              sla_multiple: float = 2.0,
              setup: MicroSetup | None = None) -> Fig7bResult:
    """Run the trigger comparison with an SLA of ``sla_multiple`` full scans."""
    setup = setup or make_micro_db(num_tuples)
    table = setup.table
    params = CostParams.from_table(
        table, setup.db.config, setup.db.profile, "c2"
    )
    sla_cost = sla_mod.sla_bound_for_full_scans(params, sla_multiple)
    trigger_card = sla_mod.trigger_cardinality(params, sla_cost)
    optimizer_estimate = max(1, round(
        OPTIMIZER_ESTIMATE_FRACTION * table.row_count
    ))
    # The SLA bound the *user* perceives is in executed time, which
    # includes the per-tuple CPU that Section V's I/O-only model omits;
    # express the plotted bound as a multiple of a measured full scan of
    # the same query (the trigger itself stays model-derived).
    full_scan = run_cold(
        setup.db, "full", access_path_plan("full", table, 1.0)
    )
    sla_bound_seconds = sla_multiple * full_scan.seconds

    result = Fig7bResult(
        selectivities_pct=list(selectivities_pct),
        seconds={t: [] for t in TRIGGERS},
        sla_bound_seconds=sla_bound_seconds,
        sla_trigger_cardinality=trigger_card,
        optimizer_estimate=optimizer_estimate,
    )
    for sel_pct in selectivities_pct:
        sel = sel_pct / 100.0
        plans = {
            "eager": access_path_plan("smooth", table, sel),
            # After an optimizer-driven morph the paper continues with the
            # Selectivity-Increase policy.
            "optimizer": access_path_plan(
                "smooth", table, sel,
                trigger=OptimizerDrivenTrigger(optimizer_estimate),
                policy=SelectivityIncreasePolicy(),
            ),
            # The SLA trigger switches straight to Greedy (built into the
            # trigger's post_morph_policy).
            "sla": access_path_plan(
                "smooth", table, sel,
                trigger=SLADrivenTrigger(trigger_card),
            ),
        }
        for label, plan in plans.items():
            result.seconds[label].append(
                run_cold(setup.db, label, plan).seconds
            )
    return result
