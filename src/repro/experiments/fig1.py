"""Figure 1: non-robust performance after tuning (the DBMS-X motivation).

Pipeline, mirroring Section VI-B:

1. Generate TPC-H in two chronological ingest batches (orders dated up to
   the end of 1993 first, the rest later) and collect statistics *after
   batch 1 only* — the paper's "outdated or non-existent" statistics: any
   date range past the cutoff estimates to ≈ 0 rows, while its matches
   are physically scattered through the heap tail.  The correlated date
   conjunctions of Q12 additionally fall through to blind AVI defaults.
2. Run all 19 queries untuned ("original"): full scans + hash joins.
3. Let the index advisor propose secondary indexes under a space budget of
   half the data-set size (the paper gives DBMS-X's tool 5GB of 10GB) and
   create them, plus the foreign-key join indexes a tuning tool adds.
4. Re-run "tuned": the cost-based planner now routes queries through the
   new indexes using its (wrong) estimates.
5. Optionally run "smooth": identical plans with Smooth Scan access paths.

Reported per query: tuned time normalized to original (Figure 1's y-axis).
Expected shape: most queries near 1.0, a few clearly above (Q12 worst,
Q19/Q7/Q6 prominent), and smooth repairing the regressions.  Absolute
factors are smaller than the paper's ×400 because the scaled tables fit
partially in the buffer pool, which caps the damage random I/O can do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.database import Database
from repro.exec.stats import RunResult
from repro.optimizer.advisor import IndexAdvisor, WorkloadQuery
from repro.optimizer.statistics import StatisticsCatalog
from repro.workloads.tpch.generator import TpchTables, generate_tpch
from repro.workloads.tpch.queries import (
    FIGURE1_QUERIES,
    FLUENT_QUERIES,
    TpchPlanBuilder,
    build_query,
    mode_options,
)
from repro.exec.expressions import (
    And,
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    StringMatch,
)
from repro.workloads.tpch.schema import date

DEFAULT_SCALE_FACTOR = 0.01
#: Statistics were collected when the newest *order* was from 1993-09-02;
#: with the spec's ≤121-day shipping delay, no shipment the statistics
#: ever saw reaches 1994 — so every 1994+ date range estimates to ≈ 0.
STALE_DATE_CUTOFF = date(1993, 9, 2)

#: Per-query filtered scans the advisor sees as its workload (the same
#: predicates the query builders use).
ADVISOR_WORKLOAD: list[WorkloadQuery] = [
    WorkloadQuery("lineitem",
                  Comparison("l_shipdate", CompareOp.LE, date(1998, 9, 2))),
    WorkloadQuery("lineitem", And([
        InList("l_shipmode", ("MAIL", "SHIP")),
        ColumnComparison("l_commitdate", CompareOp.LT, "l_receiptdate"),
        ColumnComparison("l_shipdate", CompareOp.LT, "l_commitdate"),
        Between("l_receiptdate", date(1994, 1, 1), date(1995, 1, 1)),
    ])),
    WorkloadQuery("lineitem", And([
        Between("l_shipdate", date(1994, 1, 1), date(1995, 1, 1)),
        Between("l_discount", 0.05, 0.07, hi_inclusive=True),
        Comparison("l_quantity", CompareOp.LT, 24),
    ])),
    WorkloadQuery("lineitem",
                  Between("l_shipdate", date(1995, 9, 1), date(1995, 10, 1))),
    WorkloadQuery("lineitem",
                  Between("l_shipdate", date(1995, 1, 1),
                          date(1996, 12, 31), hi_inclusive=True)),
    WorkloadQuery("orders",
                  Between("o_orderdate", date(1993, 7, 1),
                          date(1993, 10, 1))),
    WorkloadQuery("orders",
                  Between("o_orderdate", date(1994, 1, 1), date(1995, 1, 1))),
    WorkloadQuery("part", And([
        Comparison("p_size", CompareOp.EQ, 15),
        StringMatch("p_type", "suffix", "BRASS"),
    ])),
    WorkloadQuery("customer",
                  Comparison("c_mktsegment", CompareOp.EQ, "BUILDING")),
]

#: Foreign-key join indexes a tuning tool adds alongside the predicates.
FK_JOIN_INDEXES: list[tuple[str, str]] = [
    ("lineitem", "l_partkey"),
    ("orders", "o_custkey"),
]


@dataclass
class Fig1Setup:
    """A tuned TPC-H database shared by Figures 1/4 and Table II."""

    db: Database
    tables: TpchTables
    catalog: StatisticsCatalog
    recommended: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class Fig1Result:
    """Per-query original/tuned(/smooth) times and normalized factors."""

    queries: list[str]
    original_s: dict[str, float] = field(default_factory=dict)
    tuned_s: dict[str, float] = field(default_factory=dict)
    smooth_s: dict[str, float] = field(default_factory=dict)
    recommended: list[tuple[str, str]] = field(default_factory=list)

    def normalized(self, name: str) -> float:
        """Tuned time over original time (Figure 1's y-axis)."""
        orig = self.original_s[name]
        return self.tuned_s[name] / orig if orig > 0 else 1.0

    def workload_factor(self) -> float:
        """Total tuned time over total original time."""
        total_orig = sum(self.original_s.values())
        total_tuned = sum(self.tuned_s.values())
        return total_tuned / total_orig if total_orig > 0 else 1.0

    def report(self) -> str:
        rows = []
        for name in self.queries:
            row = [name, self.original_s[name], self.tuned_s[name],
                   self.normalized(name)]
            if self.smooth_s:
                row.append(self.smooth_s[name])
            rows.append(row)
        headers = ["query", "original_s", "tuned_s", "tuned/original"]
        if self.smooth_s:
            headers.append("smooth_s")
        lines = [format_table(headers, rows,
                              title="Figure 1 — normalized execution time "
                                    "after tuning")]
        lines.append(
            f"workload factor (tuned/original): {self.workload_factor():.2f}"
        )
        lines.append(f"indexes created: {self.recommended}")
        return "\n".join(lines)


def make_tuned_tpch(scale_factor: float = DEFAULT_SCALE_FACTOR,
                    seed: int = 2015,
                    stale_cutoff: int | None = STALE_DATE_CUTOFF,
                    space_budget_fraction: float = 0.5) -> Fig1Setup:
    """Generate, analyze (stale), and tune a TPC-H database."""
    db = Database()
    tables = generate_tpch(db, scale_factor=scale_factor, seed=seed,
                           stale_batch_cutoff=stale_cutoff)
    stale_rows = {
        "orders": tables.extras.get("orders_stale_rows"),
        "lineitem": tables.extras.get("lineitem_stale_rows"),
    }
    catalog = StatisticsCatalog()
    for table in tables.all_tables():
        batch1 = stale_rows.get(table.name)
        if batch1 is not None and batch1 < table.row_count:
            catalog.analyze(
                table, prefix_fraction=batch1 / table.row_count
            )
        else:
            catalog.analyze(table)
    advisor = IndexAdvisor(db, catalog)
    total_bytes = sum(
        t.num_pages * db.config.page_size for t in tables.all_tables()
    )
    rec = advisor.recommend(ADVISOR_WORKLOAD,
                            int(total_bytes * space_budget_fraction))
    advisor.apply(rec)
    created = list(rec.indexes)
    for table_name, column in FK_JOIN_INDEXES:
        if not db.table(table_name).has_index(column):
            db.create_index(table_name, column)
            created.append((table_name, column))
    return Fig1Setup(db=db, tables=tables, catalog=catalog,
                     recommended=created)


def run_fig1(scale_factor: float = DEFAULT_SCALE_FACTOR,
             queries: list[str] | None = None,
             include_smooth: bool = True,
             setup: Fig1Setup | None = None) -> Fig1Result:
    """Run the Figure-1 comparison."""
    setup = setup or make_tuned_tpch(scale_factor)
    names = queries or list(FIGURE1_QUERIES)
    result = Fig1Result(queries=names, recommended=setup.recommended)

    modes = [("original", result.original_s), ("tuned", result.tuned_s)]
    if include_smooth:
        modes.append(("smooth", result.smooth_s))
    for mode, store in modes:
        builder = TpchPlanBuilder(setup.db, setup.catalog, mode)
        for name in names:
            store[name] = run_tpch_query(setup, builder, name).total_seconds
    return result


def run_tpch_query(setup: Fig1Setup, builder: TpchPlanBuilder,
                   name: str) -> "RunResult":
    """Measure one query cold (shared by the Figure 1 and 4 drivers).

    Queries with a declarative definition run through the public
    ``Database.execute`` facade (fluent query → ``plan_query`` → batch
    engine) — the same code path applications use; the rest keep their
    hand-built operator trees.  Both routes follow ``builder.mode`` and
    lower to identical physical plans, so they are
    measurement-equivalent.
    """
    fluent = FLUENT_QUERIES.get(name)
    if fluent is not None:
        return setup.db.execute(
            fluent(setup.db), cold=True, keep_rows=False,
            options=mode_options(builder.mode), catalog=setup.catalog,
        ).run
    plan = build_query(name, builder)
    return run_cold(setup.db, f"{builder.mode}:{name}", plan).result
