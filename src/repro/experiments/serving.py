"""Serving at scale — 1,000+ protocol clients behind admission control.

The concurrency experiment (:mod:`repro.experiments.concurrency`) put
four clients on one shared runtime through the scheduler directly; this
one pushes the same engine through the *serving front*: every query
arrives as a wire-protocol frame, is priced against the base table's
SLA budget by the :class:`~repro.server.admission.AdmissionController`,
and competes for one of ``max_inflight`` execution slots — the overflow
parks in the FIFO admission queue with its wait measured on the
simulated clock.

Each closed-loop client replays a three-step script over the in-process
transport (:mod:`repro.server.inprocess` — the same sans-IO sessions
the asyncio server drives, minus the sockets, so the run is exactly
reproducible):

1. ``prepare`` the shared parameterized statement;
2. ``execute`` a selective probe (admitted outright);
3. ``execute`` a *drifted* replay — the plan cache replays the recipe
   frozen at the 0.05%-selectivity seed, so the admission controller
   re-prices a mis-estimated index plan far over budget.  The micro
   table is partitioned ``SERVING_SHARDS``-way up front (sessions plan
   serially — ``shard_parallel=False`` — so splitting is the front's
   call, not the client's), which lets the controller re-price the
   statement as a shard-parallel exchange plan and **split** it within
   budget instead of degrading; every ``REJECT_EVERY``-th client
   instead pins ``force_path(index)`` with a hint, which forbids both
   splitting and degrading and gets **rejected** with the priced
   estimate.

Two series (``classic`` and ``smooth`` base options), each measured
serial (clients drained one at a time — the fair-share baseline) and
contended (round-robin at full concurrency).  Invariants the benchmark
asserts, all deterministic:

* ledger conservation *through the wire*: per-query ledgers rebuilt
  from protocol ``summary`` frames sum exactly to the runtime totals
  (split executions included — the exchange's per-shard attribution
  folds back into the query ledger the summary frame carries);
* rejections happen only for statements priced over their budget;
* splits happen only for statements priced over budget serially whose
  shard-parallel re-price fits it;
* each series' contended p99 stays within the fair-share bound of
  ``(requests + 1) ×`` its serial p99.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bench.reporting import format_table
from repro.database import Database
from repro.exec.scheduler import WorkloadReport
from repro.experiments.common import MicroSetup, make_micro_db
from repro.experiments.concurrency import (
    CLASSIC_OPTIONS,
    SEED_PCT,
    SMOOTH_OPTIONS,
)
from repro.optimizer.planner import PlannerOptions
from repro.server.admission import AdmissionController, AdmissionStats
from repro.server.inprocess import ServingLoop
from repro.server.session import ServerFront
from repro.workloads.micro import VALUE_DOMAIN

#: Serving scale: enough heap to contend on, small enough that 1,000
#: clients drain in benchmark time (100 pages at 120 tuples/page).
DEFAULT_SERVING_TUPLES = 12_000

#: The ISSUE's headline scale: 1,000+ concurrent protocol clients.
DEFAULT_SERVING_CLIENTS = 1_000

#: Execution slots; the other ~94% of clients queue FIFO.
DEFAULT_SERVING_INFLIGHT = 64

#: SLA budget: the paper's two-full-scans bound.
DEFAULT_SERVING_SLA = 2.0

#: The micro table is partitioned this many ways before serving starts,
#: giving the admission controller a shard-parallel re-price to admit
#: over-budget statements with (the ``split`` verdict).
SERVING_SHARDS = 4

#: Every Nth client pins force_path(index) on a wide range — priced
#: over budget and not degradable, so admission must reject it.
REJECT_EVERY = 50

#: Selectivity (percent) of each client's admitted probe.
PROBE_PCT = 0.1

#: Drifted-replay selectivities (percent), rotated across clients.
SERVING_MIX_PCT = (0.5, 2.0, 8.0)

#: The statement every client prepares (same text -> one cached plan).
SERVING_SQL = "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi"

#: The non-degradable over-budget statement (hint pins the path).
FORCED_SQL = ("SELECT /*+ force_path(index) */ * FROM micro "
              "WHERE c2 >= :lo AND c2 < :hi")


def _hi(pct: float) -> int:
    return round(pct / 100.0 * VALUE_DOMAIN)


@dataclass
class ServingRun:
    """One schedule (serial or contended) of one series."""

    report: WorkloadReport
    admission: AdmissionStats
    #: (client, label, decision detail) per rejected execute.
    rejections: list[tuple[str, str, dict]]
    conservation_ok: bool


@dataclass
class ServingSeries:
    """One base-options configuration, measured serial and contended."""

    name: str
    serial: ServingRun
    contended: ServingRun

    @property
    def conservation_ok(self) -> bool:
        return self.serial.conservation_ok and self.contended.conservation_ok

    @property
    def rejections(self) -> list[tuple[str, str, dict]]:
        return self.serial.rejections + self.contended.rejections

    @property
    def fair_share_bound(self) -> float:
        """The fair-share latency bound: (requests + 1) x serial p99.

        Closed-loop clients run their scripts serially, so at any
        instant each admitted request can have at most every *other*
        request of the workload ahead of it (FIFO queue plus in-flight
        round-robin); with fair sharing none of those costs more than
        the serial p99 service time, so no contended latency may exceed
        the whole fleet's worth of fair slices plus its own.
        """
        requests = len(self.serial.report.records)
        return (requests + 1) * self.serial.report.p99_ms

    @property
    def within_fair_share(self) -> bool:
        return self.contended.report.p99_ms <= self.fair_share_bound


@dataclass
class ServingResult:
    """The full serving experiment: classic vs smooth through the front."""

    num_clients: int
    max_inflight: int
    sla_multiple: float
    #: How many ways the serving table was partitioned (1 = unsharded:
    #: no split verdicts possible, over-budget statements degrade).
    num_shards: int
    classic: ServingSeries
    smooth: ServingSeries

    @property
    def conservation_ok(self) -> bool:
        return self.classic.conservation_ok and self.smooth.conservation_ok

    def all_rejections(self) -> list[tuple[str, str, dict]]:
        return self.classic.rejections + self.smooth.rejections

    def all_splits(self) -> list[tuple[float, float, float]]:
        """Every split's (serial estimate, split estimate, budget)."""
        splits: list[tuple[float, float, float]] = []
        for series in (self.classic, self.smooth):
            for run in (series.serial, series.contended):
                splits.extend(run.admission.splits)
        return splits

    @property
    def rejections_priced_over_budget(self) -> bool:
        """Every rejection must carry estimate > budget — admission
        rejects on price, never on load."""
        rejections = self.all_rejections()
        return bool(rejections) and all(
            detail["estimated_cost"] > detail["budget"]
            for _client, _label, detail in rejections
        )

    @property
    def splits_within_budget(self) -> bool:
        """Every split: serial estimate > budget >= split estimate —
        splitting only rescues statements that needed rescuing, and
        only when the shard-parallel re-price actually fits.  An
        unsharded run must produce no splits at all."""
        splits = self.all_splits()
        if self.num_shards < 2:
            return not splits
        return bool(splits) and all(
            serial > budget >= parallel
            for serial, parallel, budget in splits
        )

    def report(self) -> str:
        headers = ["series", "schedule", "queries", "rows", "p50_s",
                   "p99_s", "makespan_s", "qps", "admit", "split",
                   "degrade", "reject", "queued", "qwait_p50_s",
                   "qwait_p99_s"]
        table = []
        for series in (self.classic, self.smooth):
            for label, run in (("serial", series.serial),
                               ("contended", series.contended)):
                rep, adm = run.report, run.admission
                table.append([
                    series.name, label, len(rep.records), rep.rows,
                    rep.p50_ms / 1000, rep.p99_ms / 1000,
                    rep.makespan_ms / 1000, rep.throughput_qps,
                    adm.admitted, adm.split, adm.degraded, adm.rejected,
                    adm.queued,
                    adm.queue_wait_p50_ms / 1000,
                    adm.queue_wait_p99_ms / 1000,
                ])
        lines = [format_table(
            headers, table,
            title=(f"Serving workload — {self.num_clients} protocol "
                   f"clients, {self.max_inflight} in-flight slots, SLA = "
                   f"{self.sla_multiple:g} full scans, micro partitioned "
                   f"{self.num_shards}-way\n"
                   f"(statement: {SERVING_SQL}; plan cached at "
                   f"{SEED_PCT}% selectivity; every {REJECT_EVERY}th "
                   "client pins force_path(index); in-process transport, "
                   "simulated times)"),
        )]
        for series in (self.classic, self.smooth):
            lines.append(
                f"fair-share bound [{series.name}]: contended p99 "
                f"{series.contended.report.p99_ms / 1000:.3f}s <= "
                "(requests+1) x serial p99 = "
                f"{series.fair_share_bound / 1000:.3f}s: "
                + ("ok" if series.within_fair_share else "VIOLATED")
            )
        lines.append(
            f"admission rejections: {len(self.all_rejections())}, "
            "all priced over the SLA budget: "
            + ("ok" if self.rejections_priced_over_budget else "VIOLATED")
        )
        lines.append(
            f"admission splits: {len(self.all_splits())}, all serial "
            "estimates over budget and all shard-parallel re-prices "
            "within it: "
            + ("ok" if self.splits_within_budget else "VIOLATED")
        )
        lines.append(
            "ledger conservation through the wire: "
            + ("exact (summed protocol-frame ledgers reproduce the "
               "runtime totals)" if self.conservation_ok else "VIOLATED")
        )
        for series in (self.classic, self.smooth):
            for label, run in (("serial", series.serial),
                               ("contended", series.contended)):
                lines.append(
                    f"json {series.name}/{label}: {run.report.to_json()}"
                )
        return "\n".join(lines)


def _build_loop(db: Database, options: PlannerOptions, num_clients: int,
                max_inflight: int, sla_multiple: float) -> ServingLoop:
    front = ServerFront(
        db, options=options,
        admission=AdmissionController(db, sla_multiple=sla_multiple,
                                      max_inflight=max_inflight),
    )
    loop = ServingLoop(front)
    mix = SERVING_MIX_PCT
    for i in range(num_clients):
        client = loop.client(f"c{i + 1}")
        client.prepare("st", SERVING_SQL)
        client.execute("st", {"lo": 0, "hi": _hi(PROBE_PCT)},
                       label="probe")
        if (i + 1) % REJECT_EVERY == 0:
            client.execute(FORCED_SQL, {"lo": 0, "hi": _hi(50.0)},
                           label="forced-index")
        else:
            pct = mix[i % len(mix)]
            client.execute("st", {"lo": 0, "hi": _hi(pct)},
                           label=f"{pct:g}%")
    return loop


def _run_series(db: Database, name: str, options: PlannerOptions,
                num_clients: int, max_inflight: int,
                sla_multiple: float) -> ServingSeries:
    # Seed the plan cache the way the concurrency drill does: one cold
    # execution at unrepresentative (tiny) selectivity freezes the
    # recipe every later client replays drifted.
    conn = db.connect(options=options, cold=False)
    statement = conn.prepare(SERVING_SQL)
    statement.run({"lo": 0, "hi": _hi(SEED_PCT)}, cold=True,
                  keep_rows=False)
    runs = {}
    for label, interleave in (("serial", False), ("contended", True)):
        loop = _build_loop(db, options, num_clients, max_inflight,
                           sla_multiple)
        report = loop.run(cold=True, interleave=interleave)
        conserved = report.total_ledger().matches(db.runtime.totals())
        runs[label] = ServingRun(
            report=report,
            admission=loop.front.admission.stats,
            rejections=loop.rejections(),
            conservation_ok=conserved,
        )
        loop.close()
    return ServingSeries(name=name, serial=runs["serial"],
                         contended=runs["contended"])


def run_serving_workload(
    num_tuples: int = DEFAULT_SERVING_TUPLES,
    num_clients: int = DEFAULT_SERVING_CLIENTS,
    max_inflight: int = DEFAULT_SERVING_INFLIGHT,
    sla_multiple: float = DEFAULT_SERVING_SLA,
    num_shards: int = SERVING_SHARDS,
    setup: MicroSetup | None = None,
) -> ServingResult:
    """Serve the scripted client fleet, classic vs smooth base options."""
    setup = setup or make_micro_db(num_tuples)
    db = setup.db
    # Partition the serving table up front: the shard set is what gives
    # admission its shard-parallel re-price (the split verdict).
    # Sessions themselves plan serially (shard_parallel=False) — going
    # wide is the front's budget-driven call, not the client's.
    if num_shards >= 2:
        db.shard_table("micro", num_shards)
    db.analyze()  # fresh statistics at plan-caching time
    classic = _run_series(db, "classic",
                          replace(CLASSIC_OPTIONS, shard_parallel=False),
                          num_clients, max_inflight, sla_multiple)
    smooth = _run_series(db, "smooth",
                         replace(SMOOTH_OPTIONS, shard_parallel=False),
                         num_clients, max_inflight, sla_multiple)
    return ServingResult(
        num_clients=num_clients,
        max_inflight=max_inflight,
        sla_multiple=sla_multiple,
        num_shards=num_shards,
        classic=classic,
        smooth=smooth,
    )
