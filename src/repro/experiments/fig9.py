"""Figure 9: the auxiliary data structures.

9a — Result Cache overhead and hit rate on the ordered micro query: the
overhead is the share of execution time spent on cache bookkeeping
(probes + inserts + evictions), ≤ ~14% in the paper, while the hit rate
(tuple requests served from the cache) reaches 100% by ~1% selectivity.

9b — morphing accuracy: pages containing results over pages fetched by
morphing, reaching 100% at ~2.5% selectivity (past that, every page holds
a result, so no fetch is wasted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core.smooth_scan import SmoothScan
from repro.experiments.common import (
    DEFAULT_MICRO_TUPLES,
    MicroSetup,
    make_micro_db,
)
from repro.workloads.micro import selectivity_range

GRID_PCT = (0.001, 0.1, 1.0, 2.5, 20.0, 50.0, 75.0, 100.0)


@dataclass
class Fig9Result:
    """Cache overhead / hit rate (9a) and morphing accuracy (9b)."""

    selectivities_pct: list[float]
    cache_overhead_pct: list[float] = field(default_factory=list)
    cache_hit_rate_pct: list[float] = field(default_factory=list)
    morphing_accuracy_pct: list[float] = field(default_factory=list)
    peak_cache_entries: list[int] = field(default_factory=list)

    def report(self) -> str:
        rows = [
            [sel, self.cache_overhead_pct[i], self.cache_hit_rate_pct[i],
             self.morphing_accuracy_pct[i], self.peak_cache_entries[i]]
            for i, sel in enumerate(self.selectivities_pct)
        ]
        return format_table(
            ["sel_%", "cache_overhead_%", "cache_hit_rate_%",
             "morphing_accuracy_%", "peak_cache_entries"],
            rows,
            title="Figure 9 — auxiliary structures (ordered Smooth Scan)",
        )


def run_fig9(num_tuples: int = DEFAULT_MICRO_TUPLES,
             selectivities_pct: tuple = GRID_PCT,
             setup: MicroSetup | None = None) -> Fig9Result:
    """Run the ordered Smooth Scan and collect its cache statistics."""
    setup = setup or make_micro_db(num_tuples)
    cpu = setup.db.config.cpu
    result = Fig9Result(selectivities_pct=list(selectivities_pct))
    for sel_pct in selectivities_pct:
        scan = SmoothScan(setup.table, "c2",
                          selectivity_range(sel_pct / 100.0), ordered=True)
        m = run_cold(setup.db, "smooth", scan)
        stats = scan.last_stats
        assert stats is not None and stats.result_cache is not None
        cache = stats.result_cache
        cache_ms = (cache.inserts * cpu.cache_insert
                    + cache.probes * cpu.cache_probe)
        overhead = 100.0 * cache_ms / max(1e-12, m.result.total_ms)
        result.cache_overhead_pct.append(overhead)
        result.cache_hit_rate_pct.append(100.0 * cache.hit_rate)
        result.morphing_accuracy_pct.append(100.0 * stats.morphing_accuracy)
        result.peak_cache_entries.append(cache.peak_entries)
    return result
