"""Concurrent workload — N clients contending on one shared runtime.

The deployment where the optimizer's assumptions break hardest: several
clients replay cached prepared plans on one engine — one shared disk
head, one shared buffer pool — with the bind parameters drifted away
from the values the plans were cached at.  The
:class:`~repro.exec.scheduler.CooperativeScheduler` interleaves their
batch draining deterministically, so the contention is simulated, not
raced: a client's random index probes seek the head away from another
client's sequential run, and every miss evicts somebody's resident
page.

Two serving configurations run the same workload:

* ``classic`` — cost-based plans (no Sort Scan), cached at a 0.05%-
  selectivity first execution; the drifted replays run a mis-estimated
  index plan whose random I/O collapses under contention;
* ``smooth`` — the same drill with ``enable_smooth``: the cached plan
  is a Smooth Scan, whose morphing keeps I/O sequential and
  amortizable no matter what the parameters drifted to.

Each configuration is measured twice on a cold engine: *serial* (each
client drained to completion in turn — same total work, no
interleaving) and *contended* (round-robin across all clients).  The
comparison yields the paper's robustness story under concurrency:
per-query p50/p99 simulated latency, aggregate throughput, and the
degradation factor contention adds to each configuration.

Every number is simulated and deterministic: client streams are fixed
rotations of the drift grid (staggered so clients contend from
different phases), scheduling is round-robin, and time is the shared
simulated clock.  The run also asserts ledger conservation — summed
per-query ledgers must reproduce the shared runtime totals exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_table
from repro.database import Database
from repro.exec.scheduler import (
    CooperativeScheduler,
    WorkloadClient,
    WorkloadReport,
)
from repro.experiments.common import MicroSetup, make_micro_db
from repro.optimizer.planner import PlannerOptions
from repro.workloads.micro import VALUE_DOMAIN

#: Default workload scale: 60K tuples = 500 heap pages.
DEFAULT_CONCURRENCY_TUPLES = 60_000

#: Number of concurrently-served clients.
DEFAULT_CLIENTS = 4

#: Selectivity (percent) of the execution that caches each plan.
SEED_PCT = 0.05

#: The drifted replay mix every client runs, as selectivity percents.
#: Client *i* replays this grid rotated by *i*, so at any moment the
#: clients sit in different phases of the drift (small index-friendly
#: probes interleaved with large mis-estimated ranges).
MIX_PCT = (0.2, 2.0, 10.0, 30.0, 50.0)

#: The one statement every client prepares and replays.
CONCURRENCY_SQL = "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi"

#: Classic serving configuration: cost-based index-vs-full choice.
CLASSIC_OPTIONS = PlannerOptions(enable_sort_scan=False)

#: Smooth serving configuration (§IV-B: "always choose a Smooth Scan").
SMOOTH_OPTIONS = PlannerOptions(enable_sort_scan=False, enable_smooth=True)


def client_streams(num_clients: int) -> list[list[float]]:
    """Per-client selectivity streams: staggered rotations of MIX_PCT."""
    n = len(MIX_PCT)
    return [
        [MIX_PCT[(i + j) % n] for j in range(n)]
        for i in range(num_clients)
    ]


@dataclass
class SeriesRun:
    """One configuration measured serial and contended."""

    name: str
    serial: WorkloadReport
    contended: WorkloadReport
    conservation_ok: bool

    @property
    def degradation(self) -> float:
        """Contended mean latency over serial mean latency."""
        if self.serial.mean_ms <= 0:
            return float("inf")
        return self.contended.mean_ms / self.serial.mean_ms


@dataclass
class ConcurrencyResult:
    """The full experiment: classic vs smooth, serial vs contended."""

    num_clients: int
    queries_per_client: int
    classic: SeriesRun
    smooth: SeriesRun

    @property
    def p99_divergence(self) -> float:
        """Contended classic p99 over contended smooth p99."""
        if self.smooth.contended.p99_ms <= 0:
            return float("inf")
        return self.classic.contended.p99_ms / self.smooth.contended.p99_ms

    @property
    def throughput_divergence(self) -> float:
        """Contended smooth throughput over contended classic throughput."""
        if self.classic.contended.throughput_qps <= 0:
            return float("inf")
        return (self.smooth.contended.throughput_qps
                / self.classic.contended.throughput_qps)

    @property
    def conservation_ok(self) -> bool:
        """True when every run's ledgers summed to the runtime totals."""
        return self.classic.conservation_ok and self.smooth.conservation_ok

    def report(self) -> str:
        headers = ["series", "schedule", "queries", "rows", "p50_s",
                   "p99_s", "mean_s", "makespan_s", "qps"]
        table = []
        for series in (self.classic, self.smooth):
            for label, rep in (("serial", series.serial),
                               ("contended", series.contended)):
                table.append([
                    series.name, label, len(rep.records), rep.rows,
                    rep.p50_ms / 1000, rep.p99_ms / 1000,
                    rep.mean_ms / 1000, rep.makespan_ms / 1000,
                    rep.throughput_qps,
                ])
        lines = [format_table(
            headers, table,
            title=(f"Concurrent workload — {self.num_clients} clients x "
                   f"{self.queries_per_client} queries, round-robin batch "
                   "scheduling on one shared runtime\n"
                   f"(statement: {CONCURRENCY_SQL}; plan cached at "
                   f"{SEED_PCT}% selectivity, replayed across the "
                   "drift mix; simulated times)"),
        )]
        lines.append(
            "divergence under contention: classic p99 / smooth p99 = "
            f"{self.p99_divergence:.1f}x, smooth throughput / classic "
            f"throughput = {self.throughput_divergence:.1f}x"
        )
        lines.append(
            "graceful degradation (contended mean / serial mean): "
            f"classic {self.classic.degradation:.2f}x, smooth "
            f"{self.smooth.degradation:.2f}x"
        )
        lines.append(
            "ledger conservation: "
            + ("exact (per-query ledgers sum to the shared runtime totals)"
               if self.conservation_ok else "VIOLATED")
        )
        lines.append(
            f"clients: {self.num_clients}, quantum: 1 batch, "
            "scheduler: round-robin (deterministic, simulated clock)"
        )
        # The machine-readable rows (workload-report/v1) — the same
        # schema the serving artifact emits, so downstream tooling can
        # join the 4-client and 1,000-client runs.
        for series in (self.classic, self.smooth):
            for label, rep in (("serial", series.serial),
                               ("contended", series.contended)):
                lines.append(f"json {series.name}/{label}: {rep.to_json()}")
        return "\n".join(lines)


def _run_series(db: Database, name: str, options: PlannerOptions,
                num_clients: int) -> SeriesRun:
    """Cache the plan at SEED_PCT, then replay the mix twice."""
    conn = db.connect(options=options, cold=False)
    statement = conn.prepare(CONCURRENCY_SQL)
    seed_hi = round(SEED_PCT / 100.0 * VALUE_DOMAIN)
    # The plan-caching execution (a cold, solo run — the moment the
    # optimizer saw representative-looking parameters).
    statement.run({"lo": 0, "hi": seed_hi}, cold=True, keep_rows=False)

    def build_schedule() -> CooperativeScheduler:
        scheduler = CooperativeScheduler(db)
        for i, stream in enumerate(client_streams(num_clients)):
            client = WorkloadClient(f"c{i + 1}")
            for pct in stream:
                hi = round(pct / 100.0 * VALUE_DOMAIN)
                client.add_query(
                    f"{pct:g}%",
                    lambda s=statement, p={"lo": 0, "hi": hi}: s.execute(p),
                )
            scheduler.add_client(client)
        return scheduler

    conserved = True
    reports = {}
    for label, interleave in (("serial", False), ("contended", True)):
        report = build_schedule().run(cold=True, interleave=interleave)
        # Conservation: the scheduled queries are the only activity
        # since the cold start, so their ledgers must sum to the
        # shared totals — no charge lost or double-attributed.
        conserved &= report.total_ledger().matches(db.runtime.totals())
        reports[label] = report
    return SeriesRun(name=name, serial=reports["serial"],
                     contended=reports["contended"],
                     conservation_ok=conserved)


def run_concurrent_workload(
    num_tuples: int = DEFAULT_CONCURRENCY_TUPLES,
    num_clients: int = DEFAULT_CLIENTS,
    setup: MicroSetup | None = None,
) -> ConcurrencyResult:
    """Serve the drifted mix from N clients, classic vs smooth.

    Builds its own database by default (the drill installs fresh
    statistics and populates the plan cache — too intrusive for a
    shared fixture).
    """
    setup = setup or make_micro_db(num_tuples)
    db = setup.db
    db.analyze()  # fresh statistics at plan-caching time
    classic = _run_series(db, "classic", CLASSIC_OPTIONS, num_clients)
    smooth = _run_series(db, "smooth", SMOOTH_OPTIONS, num_clients)
    return ConcurrencyResult(
        num_clients=num_clients,
        queries_per_client=len(MIX_PCT),
        classic=classic,
        smooth=smooth,
    )
