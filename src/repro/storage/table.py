"""Tables: a schema, a heap file, and any secondary indexes.

A :class:`Table` owns no I/O accounting; operators reach its heap through
the buffer pool.  Secondary indexes are registered by column name — the
paper's micro-benchmark table has a primary-key index on ``c1`` and a
non-clustered index on ``c2``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import StorageError
from repro.storage.heap import HeapFile
from repro.storage.types import Row, Schema, TID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.btree import BTreeIndex


class Table:
    """A named relation with heap storage and optional secondary indexes."""

    def __init__(self, name: str, schema: Schema, heap: HeapFile):
        self.name = name
        self.schema = schema
        self.heap = heap
        self.indexes: dict[str, "BTreeIndex"] = {}

    @property
    def row_count(self) -> int:
        """Number of stored rows (``#T``)."""
        return self.heap.row_count

    @property
    def num_pages(self) -> int:
        """Number of heap pages (``#P``)."""
        return self.heap.num_pages

    def insert(self, row: Row) -> TID:
        """Append one row, maintaining all registered indexes."""
        tid = self.heap.append(row)
        for column, index in self.indexes.items():
            index.insert(row[self.schema.index_of(column)], tid)
        return tid

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Append many rows; returns how many were stored."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def index_on(self, column: str) -> "BTreeIndex":
        """Return the index on ``column``; raises StorageError if absent."""
        try:
            return self.indexes[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no index on {column!r} "
                f"(indexed: {sorted(self.indexes)})"
            ) from None

    def has_index(self, column: str) -> bool:
        """True if a secondary index exists on ``column``."""
        return column in self.indexes

    def column_values(self, column: str) -> Iterable:
        """Yield the values of one column in heap order (no I/O charged).

        Used by statistics collection and index builds, which the paper
        treats as offline activity outside measured runs.
        """
        idx = self.schema.index_of(column)
        for _tid, row in self.heap.iter_rows():
            yield row[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table({self.name!r}, rows={self.row_count}, "
            f"pages={self.num_pages}, indexes={sorted(self.indexes)})"
        )
