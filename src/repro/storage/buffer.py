"""LRU buffer pool.

All timed page access goes through here.  A hit charges a tiny CPU cost;
a miss delegates to the :class:`~repro.storage.disk.SimulatedDisk`, which
charges sequential or random I/O and counts requests.  ``reset()`` empties
the pool, reproducing the paper's cold runs ("we clear database buffer
caches as well as OS file system caches before each query execution").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.page import HeapPage


class PagedFile(Protocol):
    """Anything the buffer pool can cache pages of (heaps, index files)."""

    file_id: int

    @property
    def num_pages(self) -> int: ...

    def page(self, page_id: int) -> HeapPage: ...


@dataclass
class BufferStats:
    """Hit/miss counters for one measured run."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero both counters."""
        self.hits = 0
        self.misses = 0


class BufferPool:
    """A page-granular LRU cache over the simulated disk."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int,
                 hit_cpu_ms: float = 5.0e-5):
        if capacity_pages < 1:
            raise StorageError("buffer pool capacity must be >= 1 page")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.hit_cpu_ms = hit_cpu_ms
        self.stats = BufferStats()
        self._pages: OrderedDict[tuple[int, int], object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def occupancy(self) -> float:
        """Fraction of the pool currently holding pages (0.0 – 1.0).

        The contention signal consumed by
        :class:`~repro.core.trigger.BufferPressureTrigger`: a full
        shared pool means the next miss evicts someone's resident page.
        """
        return len(self._pages) / self.capacity_pages

    def contains(self, file: PagedFile, page_id: int) -> bool:
        """True if the page is resident (does not touch LRU order)."""
        return (file.file_id, page_id) in self._pages

    def get_page(self, file: PagedFile, page_id: int,
                 stream_hint: bool = False) -> HeapPage:
        """Return one page, charging a hit or a (random/seq) miss.

        ``stream_hint`` marks reads that belong to a per-file sequential
        stream (B+-tree leaf chains) so interleaved reads of other files do
        not turn them into random accesses.
        """
        key = (file.file_id, page_id)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            self.disk.clock.charge_cpu(self.hit_cpu_ms)
            return self._pages[key]  # type: ignore[return-value]
        self.stats.misses += 1
        self.disk.read_page(file.file_id, page_id, stream_hint=stream_hint)
        page = file.page(page_id)
        self._admit(key, page)
        return page

    def get_run(self, file: PagedFile, start_page: int,
                n_pages: int) -> list[HeapPage]:
        """Return ``n_pages`` contiguous pages, batching misses into runs.

        Resident pages are served from memory; contiguous spans of missing
        pages are fetched with :meth:`SimulatedDisk.read_run`, so a morphing
        region of Smooth Scan costs one random jump plus sequential reads.
        """
        if n_pages <= 0:
            return []
        end = min(start_page + n_pages, file.num_pages)
        # One tight loop with bulk bookkeeping: stats, the buffer-hit CPU
        # charge and LRU eviction are applied once per run, not per page,
        # so handing a morphing region to a batch operator costs O(pages)
        # dict operations and nothing else.
        resident = self._pages
        file_id = file.file_id
        file_page = file.page
        capacity = self.capacity_pages
        pages: list[HeapPage] = []
        append = pages.append
        hits = 0
        run_start: int | None = None
        for pid in range(start_page, end):
            key = (file_id, pid)
            page = resident.get(key)
            if page is not None:
                if run_start is not None:
                    self.disk.read_run(file_id, run_start, pid - run_start)
                    run_start = None
                resident.move_to_end(key)
                hits += 1
            else:
                if run_start is None:
                    run_start = pid
                page = file_page(pid)
                resident[key] = page
                # Strict LRU: evict at admission time, so a run larger
                # than the free capacity cannot transiently hold extra
                # pages (and mid-run evictions turn later "hits" into
                # honest misses, exactly as per-page admission did).
                if len(resident) > capacity:
                    resident.popitem(last=False)
            append(page)  # type: ignore[arg-type]
        if run_start is not None:
            self.disk.read_run(file_id, run_start, end - run_start)
        if hits:
            self.stats.hits += hits
            self.disk.clock.charge_cpu(self.hit_cpu_ms * hits)
        misses = len(pages) - hits
        if misses:
            self.stats.misses += misses
        return pages

    def reset(self) -> None:
        """Evict everything and zero stats (start of a cold run)."""
        self._pages.clear()
        self.stats.reset()

    def _admit(self, key: tuple[int, int], page: object) -> None:
        self._pages[key] = page
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
