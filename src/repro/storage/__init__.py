"""Storage substrate: types, simulated disk, pages, heaps, buffer pool."""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.chunk import Chunk
from repro.storage.disk import DiskProfile, DiskStats, SimClock, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.page import HeapPage
from repro.storage.table import Table
from repro.storage.types import TID, Column, ColumnType, Row, Schema

__all__ = [
    "BufferPool",
    "BufferStats",
    "Chunk",
    "Column",
    "ColumnType",
    "DiskProfile",
    "DiskStats",
    "HeapFile",
    "HeapPage",
    "Row",
    "Schema",
    "SimClock",
    "SimulatedDisk",
    "TID",
    "Table",
]
