"""Columnar batch chunks: the unit of vectorized execution.

A :class:`Chunk` is a batch of rows stored column-wise: each column is
either a NumPy array (INT/BIGINT/DATE columns become ``int64``, FLOAT
columns ``float64``) or a plain Python list (the *object* fallback used
for CHAR columns, NULL-bearing columns, computed values, and anything
whose values do not round-trip through a fixed-width array — e.g.
integers outside the ``int64`` range).  An optional *selection vector*
names the positions that are logically present, so a filter can narrow a
chunk without copying column data.

Chunks are row-compatible by construction: they implement the read-only
sequence protocol over rows (``len``, iteration, indexing, slicing), and
:meth:`Chunk.from_rows` / :meth:`Chunk.to_rows` round-trip exactly —
``Chunk.from_rows(names, rows).to_rows() == rows`` for any well-typed
rows, including ``None`` values and CHAR strings of any width.  Row
materialization converts array scalars back to built-in Python values
(``tolist``), so consumers never observe NumPy scalar types.

NumPy is optional: without it every column is an object column and the
vectorized mask helpers degrade to list comprehensions.  Simulated costs
never flow through this module — a chunk is pure representation, which
is what keeps the columnar engine cost-bitwise-identical to the row
engine.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, Union

from repro.storage.types import Row, Schema

try:  # pragma: no cover - exercised implicitly by every chunk test
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environment
    _np = None

#: A column payload: an array (numeric) or a plain list (object fallback).
ColumnData = Union["_np.ndarray", list]

#: A boolean mask over a chunk's rows: ndarray of bool, or list of bool.
Mask = Union["_np.ndarray", list]


def _typed_column(values: Sequence) -> ColumnData:
    """Build one column: a typed array when exact, else an object list.

    Only values that round-trip bitwise take the array path: ``int``
    (not ``bool``, and within ``int64``) and ``float``.  Everything else
    — strings, ``None``, mixed types, big ints — stays an object list.
    """
    values = list(values)
    if _np is None or not values:
        return values
    first = values[0]
    if type(first) is int:
        if all(type(v) is int for v in values):
            try:
                return _np.array(values, dtype=_np.int64)
            except OverflowError:
                return values
    elif type(first) is float:
        if all(type(v) is float for v in values):
            return _np.array(values, dtype=_np.float64)
    return values


def _is_array(col) -> bool:
    """True when ``col`` is a NumPy array column."""
    return _np is not None and isinstance(col, _np.ndarray)


class Chunk:
    """A columnar batch: named columns plus an optional selection vector.

    ``columns`` holds one entry per schema column over the chunk's
    *physical* rows; ``sel`` (ascending positions into the physical rows,
    or ``None`` for "all") defines the logical view every sequence-
    protocol method exposes.  Construction never copies column data —
    :meth:`take`, :meth:`project` and slicing share the backing arrays.
    """

    __slots__ = ("names", "columns", "sel", "_length", "_rows", "_compact")

    def __init__(self, names: Sequence[str], columns: Sequence[ColumnData],
                 sel=None):
        self.names = tuple(names)
        self.columns = list(columns)
        self.sel = sel
        if sel is not None:
            self._length = len(sel)
        else:
            self._length = len(columns[0]) if columns else 0
        self._rows: list[Row] | None = None
        #: Per-column cache of sel-compacted payloads.
        self._compact: dict[int, ColumnData] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(cls, names: "Sequence[str] | Schema",
                  rows: Sequence[Row]) -> "Chunk":
        """Build a chunk from rows; columns are typed where exact."""
        if isinstance(names, Schema):
            names = names.column_names
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return cls(names, [[] for _ in names])
        transposed = list(zip(*rows, strict=False))
        chunk = cls(names, [_typed_column(col) for col in transposed])
        chunk._rows = rows  # already materialized; reuse on to_rows()
        return chunk

    @classmethod
    def from_columns(cls, names: Sequence[str],
                     columns: Sequence[ColumnData]) -> "Chunk":
        """Wrap pre-built column payloads (no copying, no type sniffing)."""
        return cls(names, columns)

    @staticmethod
    def concat(chunks: "Sequence[Chunk]") -> "Chunk":
        """Concatenate chunks (same layout) into one compacted chunk."""
        if len(chunks) == 1:
            return chunks[0]
        first = chunks[0]
        columns: list[ColumnData] = []
        for i in range(len(first.columns)):
            parts = [c.data_column(i) for c in chunks]
            if all(_is_array(p) for p in parts):
                columns.append(_np.concatenate(parts))
            else:
                merged: list = []
                for p in parts:
                    merged.extend(p.tolist() if _is_array(p) else p)
                columns.append(merged)
        return Chunk(first.names, columns)

    # -- the row-compat sequence protocol ----------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.to_rows())

    def __getitem__(self, item):
        if isinstance(item, slice):
            sel = self.sel
            if sel is None:
                start, stop, step = item.indices(self._length)
                if step == 1 and _np is not None:
                    return Chunk(
                        self.names,
                        [col[start:stop] if _is_array(col)
                         else col[start:stop] for col in self.columns],
                    )
                indices = list(range(start, stop, step))
                return self.take(indices)
            sliced = sel[item] if _is_array(sel) else sel[item]
            return Chunk(self.names, self.columns, sel=sliced)
        return self.to_rows()[item]

    def to_rows(self) -> list[Row]:
        """Materialize (and cache) the logical rows as plain tuples."""
        if self._rows is None:
            cols = []
            for i in range(len(self.columns)):
                col = self.data_column(i)
                cols.append(col.tolist() if _is_array(col) else col)
            self._rows = list(zip(*cols, strict=False)) if cols else []
        return self._rows

    # -- columnar access ---------------------------------------------------

    def data_column(self, i: int) -> ColumnData:
        """Column ``i`` of the logical view (selection applied), cached."""
        col = self.columns[i]
        sel = self.sel
        if sel is None:
            return col
        cached = self._compact.get(i)
        if cached is None:
            if _is_array(col):
                cached = col[sel] if _is_array(sel) else col[
                    _np.asarray(sel, dtype=_np.intp)]
            else:
                cached = [col[j] for j in sel]
            self._compact[i] = cached
        return cached

    def array(self, i: int):
        """Column ``i`` as an ndarray, or ``None`` for object columns."""
        col = self.data_column(i)
        return col if _is_array(col) else None

    def column_values(self, i: int) -> list:
        """Column ``i`` of the logical view as a plain Python list."""
        col = self.data_column(i)
        return col.tolist() if _is_array(col) else col

    # -- derivation (no data copies) ---------------------------------------

    def take(self, indices) -> "Chunk":
        """A chunk narrowed to ``indices`` (positions in the logical view)."""
        sel = self.sel
        if sel is None:
            new_sel = indices
        elif _is_array(sel):
            new_sel = sel[_np.asarray(indices, dtype=_np.intp)] \
                if not _is_array(indices) else sel[indices]
        else:
            new_sel = [sel[j] for j in indices]
        return Chunk(self.names, self.columns, sel=new_sel)

    def filter(self, mask: Mask) -> "Chunk | None":
        """Narrow by a boolean mask over the logical view; None if empty.

        Returns ``self`` unchanged when every row passes, so the common
        all-pass case (e.g. a 100%-selectivity sweep point) stays free.
        """
        idx = mask_nonzero(mask)
        n = len(idx)
        if n == 0:
            return None
        if n == self._length:
            return self
        return self.take(idx)

    def project(self, positions: Sequence[int],
                names: Sequence[str]) -> "Chunk":
        """A chunk of the given columns, sharing payloads and selection."""
        chunk = Chunk(names, [self.columns[p] for p in positions],
                      sel=self.sel)
        for out_i, p in enumerate(positions):
            cached = self._compact.get(p)
            if cached is not None:
                chunk._compact[out_i] = cached
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = "".join(
            "a" if _is_array(c) else "o" for c in self.columns
        )
        return (f"Chunk({len(self)} rows x {len(self.columns)} cols "
                f"[{kinds}]{'' if self.sel is None else ', sel'})")


# -- mask helpers (array- and list-compatible) ----------------------------


def mask_and(a: Mask | None, b: Mask | None) -> Mask | None:
    """Conjunction of two masks; ``None`` means all-true."""
    if a is None:
        return b
    if b is None:
        return a
    if _is_array(a) and _is_array(b):
        return a & b
    a_list = a.tolist() if _is_array(a) else a
    b_list = b.tolist() if _is_array(b) else b
    return [x and y for x, y in zip(a_list, b_list, strict=False)]


def mask_or(a: Mask | None, b: Mask | None) -> Mask | None:
    """Disjunction of two masks; ``None`` means all-true."""
    if a is None or b is None:
        return None
    if _is_array(a) and _is_array(b):
        return a | b
    a_list = a.tolist() if _is_array(a) else a
    b_list = b.tolist() if _is_array(b) else b
    return [x or y for x, y in zip(a_list, b_list, strict=False)]


def mask_not(m: Mask | None, n: int) -> Mask:
    """Negation of a mask over ``n`` rows (``None`` means all-true)."""
    if m is None:
        if _np is not None:
            return _np.zeros(n, dtype=bool)
        return [False] * n
    if _is_array(m):
        return ~m
    return [not x for x in m]


def mask_any(m: Mask | None) -> bool:
    """True when at least one row passes (``None`` means all-true)."""
    if m is None:
        return True
    if _is_array(m):
        return bool(m.any())
    return any(m)


def mask_all(m: Mask | None) -> bool:
    """True when every row passes (``None`` means all-true)."""
    if m is None:
        return True
    if _is_array(m):
        return bool(m.all())
    return all(m)


def mask_count(m: Mask) -> int:
    """Number of rows a mask passes."""
    if _is_array(m):
        return int(m.sum())
    return sum(1 for x in m if x)


def mask_nonzero(m: Mask) -> "Sequence[int]":
    """Ascending positions a mask passes (ndarray or list)."""
    if _is_array(m):
        return _np.nonzero(m)[0]
    return [i for i, x in enumerate(m) if x]


def mask_from_bools(values: Iterable[bool], n: int) -> Mask:
    """Materialize an iterable of booleans as a mask of length ``n``."""
    if _np is not None:
        return _np.fromiter(values, dtype=bool, count=n)
    return list(values)


def object_mask(col: Sequence, test: Callable[[object], bool]) -> Mask:
    """Row-wise mask over an object column (the non-array fallback)."""
    return mask_from_bools((test(v) for v in col), len(col))


def mask_isin(col: ColumnData, values: Sequence) -> Mask:
    """Membership mask: ``col[i] in values`` per row."""
    if _is_array(col) and values and all(
            type(v) in (int, float) for v in values):
        return _np.isin(col, _np.asarray(list(values)))
    vset = frozenset(values)
    return object_mask(col.tolist() if _is_array(col) else col,
                       lambda v: v in vset)
