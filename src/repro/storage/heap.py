"""Heap files: page-ordered row storage.

A :class:`HeapFile` is the physical body of a table — an append-only list
of :class:`~repro.storage.page.HeapPage`.  It never charges I/O itself;
all timed access flows through the :class:`~repro.storage.buffer.BufferPool`
so that repeated-page effects (the index scan's downfall) are modeled
faithfully.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError, UnknownPageError
from repro.storage.chunk import Chunk
from repro.storage.page import HeapPage
from repro.storage.types import Row, Schema, TID

#: Run-chunk cache bound, in total cached rows, as a multiple of the
#: heap's row count (distinct scan extents tile the heap once; morphing
#: regions can overlap — evict wholesale past this).
_RUN_CHUNK_ROW_FACTOR = 4


class HeapFile:
    """Append-only paged storage for rows of one schema."""

    def __init__(self, file_id: int, schema: Schema, tuples_per_page: int):
        if tuples_per_page < 1:
            raise StorageError("tuples_per_page must be >= 1")
        self.file_id = file_id
        self.schema = schema
        self.tuples_per_page = tuples_per_page
        self._pages: list[HeapPage] = []
        self._row_count = 0
        #: Cache of concatenated page chunks keyed by ``(start, n)``.
        self._run_chunks: dict[tuple[int, int], Chunk] = {}
        self._run_chunk_rows = 0

    @property
    def num_pages(self) -> int:
        """Number of allocated pages (``#P`` in the cost model)."""
        return len(self._pages)

    @property
    def row_count(self) -> int:
        """Number of stored rows (``#T`` in the cost model)."""
        return self._row_count

    def append(self, row: Row) -> TID:
        """Store ``row`` at the end of the heap; returns its TID."""
        self.schema.validate_row(row)
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(
                HeapPage(page_id=len(self._pages), capacity=self.tuples_per_page)
            )
        page = self._pages[-1]
        slot = page.insert(row)
        self._row_count += 1
        if self._run_chunks:
            self._run_chunks.clear()
            self._run_chunk_rows = 0
        return TID(page.page_id, slot)

    def run_chunk(self, start: int, n: int, names: tuple[str, ...]) -> Chunk:
        """One chunk spanning pages ``[start, start + n)``, cached.

        Scans fetch the same extents on every execution; concatenating the
        per-page chunks once and reusing the result removes the dominant
        per-drain cost of columnar full scans.  Callers still charge I/O
        and CPU through the execution context — this is pure payload
        access, like :meth:`page`.
        """
        key = (start, n)
        cached = self._run_chunks.get(key)
        if cached is not None and cached.names == names:
            return cached
        if self._run_chunk_rows > _RUN_CHUNK_ROW_FACTOR * self._row_count:
            self._run_chunks.clear()
            self._run_chunk_rows = 0
        merged = Chunk.concat(
            [self._pages[i].chunk(names) for i in range(start, start + n)]
        )
        self._run_chunks[key] = merged
        self._run_chunk_rows += len(merged)
        return merged

    def page(self, page_id: int) -> HeapPage:
        """Return page ``page_id`` without charging I/O."""
        if not 0 <= page_id < len(self._pages):
            raise UnknownPageError(
                f"page {page_id} outside heap of {len(self._pages)} pages"
            )
        return self._pages[page_id]

    def fetch(self, tid: TID) -> Row:
        """Return the row named by ``tid`` without charging I/O."""
        return self.page(tid.page_id).get(tid.slot)

    def iter_pages(self) -> Iterator[HeapPage]:
        """Yield pages in physical order (full-scan order)."""
        return iter(self._pages)

    def iter_run(self, start: int, n: int) -> Iterator[HeapPage]:
        """Yield pages ``[start, start + n)`` without charging I/O."""
        return iter(self._pages[start:start + n])

    def iter_rows(self) -> Iterator[tuple[TID, Row]]:
        """Yield ``(TID, row)`` in physical order, charging no I/O."""
        for page in self._pages:
            for slot, row in page.rows_with_slots():
                yield TID(page.page_id, slot), row
