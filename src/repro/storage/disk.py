"""The simulated disk: the substrate that replaces real page I/O.

The paper's results are driven by three quantities the real hardware
provided: the cost of a sequential page read, the cost of a random page
read, and the number of I/O requests issued.  :class:`SimulatedDisk`
accounts exactly those.  A shared :class:`SimClock` accumulates simulated
I/O-wait and CPU milliseconds, giving the CPU/IO breakdown of Figure 4
without ever touching a real device (the ``repro_why`` substitution: real
page-level I/O from Python is too slow for faithful benchmarks).

Sequential vs random classification follows head position: a read of page
``p`` of the same file is sequential when it lies within a short forward
window of the previous read (disk prefetchers make small forward skips
nearly free — the paper relies on this for Sort Scan's "nearly sequential"
pattern); anything else pays the random cost.  Multi-page runs issue
``ceil(n / extent)`` requests, mirroring OS read-ahead; single random reads
are one request each.  This makes Table II's request counts reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import CostLedger


@dataclass(frozen=True)
class DiskProfile:
    """Cost profile of a storage device.

    ``seq_cost`` and ``rand_cost`` are abstract per-page units — the paper's
    competitive analysis uses (1, 10) for HDD and (1, 2) for SSD — and
    ``ms_per_unit`` converts units into simulated milliseconds so reported
    times resemble wall-clock seconds at the original scale.
    """

    name: str
    seq_cost: float
    rand_cost: float
    ms_per_unit: float

    @classmethod
    def hdd(cls) -> "DiskProfile":
        """The paper's HDD: 10:1 random:sequential, ~130 MB/s transfer.

        0.0615 ms/unit is one 8KB page at 130 MB/s, the advertised transfer
        rate of the paper's SAS RAID-0 array.
        """
        return cls(name="hdd", seq_cost=1.0, rand_cost=10.0, ms_per_unit=0.0615)

    @classmethod
    def ssd(cls) -> "DiskProfile":
        """The paper's SSD: 2:1 random:sequential, ~550 MB/s transfer."""
        return cls(name="ssd", seq_cost=1.0, rand_cost=2.0, ms_per_unit=0.0145)

    def page_ms(self, sequential: bool) -> float:
        """Simulated milliseconds to read one page."""
        unit = self.seq_cost if sequential else self.rand_cost
        return unit * self.ms_per_unit


@dataclass
class SimClock:
    """Accumulates simulated time, split into I/O wait and CPU work.

    The clock is *shared*: every query a runtime executes charges into
    the same totals.  When an attribution window is open (see
    :class:`~repro.runtime.EngineRuntime`), charges are additionally
    routed into that window's per-query :class:`~repro.runtime.
    CostLedger`, which is how interleaved queries keep isolated
    measurements over one shared clock.
    """

    io_ms: float = 0.0
    cpu_ms: float = 0.0
    #: Elapsed-time multiplier for overlapped work.  The Exchange
    #: operator sets this to ``1 / live_shards`` around shard pulls: N
    #: shard workers progress concurrently, so each unit of per-shard
    #: work advances *completion time* by 1/N.  At the default 1.0 the
    #: multiplication is an exact float no-op, so serial execution is
    #: bit-identical with or without this field.
    scale: float = 1.0
    #: The per-query ledger charges are currently attributed to, set by
    #: ``EngineRuntime.begin_attribution`` / ``end_attribution``.
    ledger: "CostLedger | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def total_ms(self) -> float:
        """Total simulated elapsed time in milliseconds."""
        return self.io_ms + self.cpu_ms

    def charge_io(self, ms: float) -> None:
        """Add blocking I/O wait time."""
        ms *= self.scale
        self.io_ms += ms
        ledger = self.ledger
        if ledger is not None:
            ledger.io_ms += ms

    def charge_cpu(self, ms: float) -> None:
        """Add CPU processing time."""
        ms *= self.scale
        self.cpu_ms += ms
        ledger = self.ledger
        if ledger is not None:
            ledger.cpu_ms += ms

    def reset(self) -> None:
        """Zero both counters (start of a measured run).

        Attribution state is untouched: resets happen between queries
        (``EngineRuntime.cold_start`` refuses to run inside a window).
        """
        self.io_ms = 0.0
        self.cpu_ms = 0.0

    def snapshot(self) -> tuple[float, float]:
        """Return ``(io_ms, cpu_ms)`` for delta measurements."""
        return (self.io_ms, self.cpu_ms)


@dataclass
class DiskStats:
    """Aggregate I/O accounting for one measured run (Table II columns)."""

    requests: int = 0
    pages_read: int = 0
    seq_pages: int = 0
    rand_pages: int = 0
    bytes_read: int = 0
    pages_written: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.requests = 0
        self.pages_read = 0
        self.seq_pages = 0
        self.rand_pages = 0
        self.bytes_read = 0
        self.pages_written = 0
        self.bytes_written = 0

    def snapshot(self) -> "DiskStats":
        """Return an independent copy of the current counters."""
        return DiskStats(
            requests=self.requests,
            pages_read=self.pages_read,
            seq_pages=self.seq_pages,
            rand_pages=self.rand_pages,
            bytes_read=self.bytes_read,
            pages_written=self.pages_written,
            bytes_written=self.bytes_written,
        )

    def diff(self, before: "DiskStats") -> "DiskStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return DiskStats(
            requests=self.requests - before.requests,
            pages_read=self.pages_read - before.pages_read,
            seq_pages=self.seq_pages - before.seq_pages,
            rand_pages=self.rand_pages - before.rand_pages,
            bytes_read=self.bytes_read - before.bytes_read,
            pages_written=self.pages_written - before.pages_written,
            bytes_written=self.bytes_written - before.bytes_written,
        )

    def add(self, other: "DiskStats") -> None:
        """Fold ``other``'s counters into this block (aggregation).

        The one canonical field enumeration alongside :meth:`snapshot`
        and :meth:`diff` — ledger attribution and aggregation build on
        these three, so a new counter added here propagates everywhere.
        """
        self.requests += other.requests
        self.pages_read += other.pages_read
        self.seq_pages += other.seq_pages
        self.rand_pages += other.rand_pages
        self.bytes_read += other.bytes_read
        self.pages_written += other.pages_written
        self.bytes_written += other.bytes_written


@dataclass
class SimulatedDisk:
    """Charges simulated time and counts requests for page accesses.

    The disk knows nothing about page *contents* — pages live in Python
    objects — it only models the cost of moving them.  ``file_id`` spaces
    keep the head-position bookkeeping of independent files (heaps, index
    files) separate.
    """

    profile: DiskProfile
    clock: SimClock
    page_size: int = 8192
    extent_pages: int = 16
    seq_window: int = 16
    stats: DiskStats = field(default_factory=DiskStats)
    _head: tuple[int, int] | None = None
    _file_heads: dict[int, int] = field(default_factory=dict)

    def _is_sequential(self, file_id: int, page_id: int,
                       stream_hint: bool = False) -> bool:
        """True when the read continues (or nearly continues) the last one.

        With ``stream_hint`` the read is also sequential when it continues
        the last read *of the same file*, even if other files were touched
        in between — modeling per-stream prefetching (a B+-tree leaf chain
        stays sequential while heap pages are fetched between leaves, the
        assumption behind Eq. (11)'s ``#leaves_res × seq_cost`` term).
        """
        if self._head is not None:
            head_file, head_page = self._head
            if head_file == file_id and (
                head_page < page_id <= head_page + self.seq_window
            ):
                return True
        if stream_hint and file_id in self._file_heads:
            last = self._file_heads[file_id]
            return last < page_id <= last + self.seq_window
        return False

    def read_page(self, file_id: int, page_id: int,
                  stream_hint: bool = False) -> None:
        """Charge one page read; sequential iff it continues the last read."""
        sequential = self._is_sequential(file_id, page_id, stream_hint)
        self.clock.charge_io(self.profile.page_ms(sequential))
        self.stats.requests += 1
        self.stats.pages_read += 1
        self.stats.bytes_read += self.page_size
        if sequential:
            self.stats.seq_pages += 1
        else:
            self.stats.rand_pages += 1
        self._head = (file_id, page_id)
        self._file_heads[file_id] = page_id

    def read_run(self, file_id: int, start_page: int, n_pages: int) -> None:
        """Charge a contiguous ``n_pages`` read starting at ``start_page``.

        The first page pays the random cost unless the head already sits
        just before ``start_page``; the rest stream sequentially.  Requests
        are counted per extent, emulating read-ahead batching.
        """
        if n_pages <= 0:
            return
        first_sequential = self._is_sequential(file_id, start_page)
        self.clock.charge_io(self.profile.page_ms(first_sequential))
        self.clock.charge_io(self.profile.page_ms(True) * (n_pages - 1))
        self.stats.requests += -(-n_pages // self.extent_pages)  # ceil div
        self.stats.pages_read += n_pages
        self.stats.bytes_read += n_pages * self.page_size
        if first_sequential:
            self.stats.seq_pages += n_pages
        else:
            self.stats.rand_pages += 1
            self.stats.seq_pages += n_pages - 1
        self._head = (file_id, start_page + n_pages - 1)
        self._file_heads[file_id] = start_page + n_pages - 1

    def spill(self, n_pages: int) -> None:
        """Charge an external-sort spill of ``n_pages``: write runs + read
        them back, both sequential (2n page transfers, batched requests)."""
        if n_pages <= 0:
            return
        self.clock.charge_io(self.profile.page_ms(True) * 2 * n_pages)
        self.stats.requests += 2 * -(-n_pages // self.extent_pages)
        self.stats.pages_read += n_pages
        self.stats.bytes_read += n_pages * self.page_size
        self.stats.pages_written += n_pages
        self.stats.bytes_written += n_pages * self.page_size
        self._head = None

    def overflow_write(self, n_pages: int) -> None:
        """Charge a sequential *write* of ``n_pages`` to an overflow file.

        One half of a spill: the Result Cache pays this when a partition
        leaves memory, and pays :meth:`overflow_read` only if and when the
        partition is actually probed again.
        """
        if n_pages <= 0:
            return
        self.clock.charge_io(self.profile.page_ms(True) * n_pages)
        self.stats.requests += -(-n_pages // self.extent_pages)  # ceil div
        self.stats.pages_written += n_pages
        self.stats.bytes_written += n_pages * self.page_size
        self._head = None

    def overflow_read(self, n_pages: int) -> None:
        """Charge a sequential read-back of ``n_pages`` from an overflow
        file ("overflow files that are read upon reaching the range keys
        belong to")."""
        if n_pages <= 0:
            return
        self.clock.charge_io(self.profile.page_ms(True) * n_pages)
        self.stats.requests += -(-n_pages // self.extent_pages)  # ceil div
        self.stats.pages_read += n_pages
        self.stats.bytes_read += n_pages * self.page_size
        self._head = None

    def head_state(self) -> tuple[int, int] | None:
        """The current head position, opaque, for :meth:`set_head_state`.

        The Exchange operator models one spindle per shard: it saves the
        head after each shard slice and restores it before the next pull
        of the *same* shard, so interleaved shards do not pay each
        other's seek penalty.  Shard files have disjoint ``file_id``
        spaces, so swapping the global head is sufficient —
        ``_file_heads`` (per-stream prefetch state) never conflicts.
        """
        return self._head

    def set_head_state(self, state: tuple[int, int] | None) -> None:
        """Restore a head position captured by :meth:`head_state`."""
        self._head = state

    def reset_head(self) -> None:
        """Forget head position (e.g. after unrelated activity)."""
        self._head = None
        self._file_heads.clear()

    def reset(self) -> None:
        """Clear statistics and head position — and nothing else.

        The clock deliberately stays untouched: it belongs to the
        shared :class:`~repro.runtime.EngineRuntime`, whose
        ``cold_start()`` is the one place that resets buffer, disk and
        clock together (the paper's cold-run discipline).  Call that
        for cold-run semantics; call this only to zero the disk's own
        accounting.
        """
        self.stats.reset()
        self._head = None
        self._file_heads.clear()
