"""Horizontal partitioning: the shard catalog behind parallel scans.

A :class:`ShardSet` records how one logical table was split into N
physical shard tables — each with its own heap file, its own secondary
indexes on the same columns as the parent, and its own (fresh)
statistics.  Two partitioning schemes are supported:

* ``round_robin`` — row *i* (in heap order) goes to shard ``i % N``.
  Shards are balanced to within one row regardless of value skew; range
  predicates hit every shard.
* ``range`` — rows are split on one column at row-count-balanced
  boundaries (quantile split keys over the stored values), so a
  selective range predicate can be answered by a subset of shards and
  each shard covers a disjoint key interval.

Shard tables are named ``{table}#{i}`` and registered in the database's
*shard* catalog, deliberately outside the primary table catalog: they
are an execution artifact of the parent table, invisible to ``FROM``
clauses and to buffer-pool auto-sizing (which must keep the unsharded
cache geometry so serial measurements stay comparable).

The physical registration — file-id allocation, heap construction,
index builds, statistics — lives in :meth:`repro.database.Database.
shard_table`; this module owns the partitioning decisions themselves so
they are testable without an engine instance.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table
    from repro.storage.types import Row

#: The partitioning schemes the shard catalog understands.
SHARD_SCHEMES = ("round_robin", "range")


def shard_table_name(table_name: str, shard_index: int) -> str:
    """The physical name of one shard: ``{table}#{i}``.

    ``#`` cannot appear in a SQL identifier, so shard tables can never
    collide with (or be addressed as) user tables.
    """
    return f"{table_name}#{shard_index}"


@dataclass(frozen=True)
class ShardSet:
    """One logical table's registered partitioning.

    Attributes:
        table_name: the parent (logical) table.
        scheme: ``"round_robin"`` or ``"range"``.
        column: the partitioning column (``None`` for round-robin).
        shards: the physical shard tables, in shard order.
        bounds: for range partitioning, the split keys — shard *i*
            holds rows with ``bounds[i-1] <= value < bounds[i]`` (first
            and last shards unbounded below/above).  Empty for
            round-robin.
    """

    table_name: str
    scheme: str
    column: str | None
    shards: tuple["Table", ...]
    bounds: tuple = ()

    @property
    def num_shards(self) -> int:
        """How many shards the table was split into."""
        return len(self.shards)

    @property
    def shard_names(self) -> tuple[str, ...]:
        """The physical shard table names, in shard order."""
        return tuple(shard.name for shard in self.shards)

    def describe(self) -> str:
        """One-line summary for plan rendering and the REPL."""
        on = f" on {self.column}" if self.column else ""
        return (f"{self.table_name}: {self.num_shards} shards, "
                f"{self.scheme}{on}")


def validate_sharding(num_shards: int, scheme: str) -> None:
    """Reject impossible partitionings before any work happens."""
    if num_shards < 1:
        raise StorageError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    if scheme not in SHARD_SCHEMES:
        known = ", ".join(SHARD_SCHEMES)
        raise StorageError(
            f"unknown sharding scheme {scheme!r}; known schemes: {known}"
        )


def range_split_keys(values: list, num_shards: int) -> tuple:
    """Row-count-balanced split keys for range partitioning.

    Sorts the stored values and takes the N-1 quantile boundaries, so
    shards are balanced even under value skew (equal-*width* splits
    would not be).  Deterministic for a given table state.
    """
    if num_shards <= 1 or not values:
        return ()
    ordered = sorted(values)
    step = len(ordered) / num_shards
    return tuple(ordered[int(i * step)] for i in range(1, num_shards))


def partition_rows(table: "Table", num_shards: int, scheme: str,
                   column: str | None) -> tuple[list[list["Row"]], tuple]:
    """Assign every stored row to a shard.

    Returns ``(rows_per_shard, bounds)`` where ``rows_per_shard[i]`` is
    shard *i*'s rows in the parent's heap order and ``bounds`` is the
    range-scheme split keys (empty for round-robin).  Pure bookkeeping:
    no simulated I/O is charged (partitioning is offline DDL, like
    index builds).
    """
    validate_sharding(num_shards, scheme)
    buckets: list[list["Row"]] = [[] for _ in range(num_shards)]
    if scheme == "round_robin":
        for i, (_tid, row) in enumerate(table.heap.iter_rows()):
            buckets[i % num_shards].append(row)
        return buckets, ()
    if column is None:
        raise StorageError(
            "range partitioning requires a column name"
        )
    col_pos = table.schema.index_of(column)
    bounds = range_split_keys(
        [row[col_pos] for _tid, row in table.heap.iter_rows()],
        num_shards,
    )
    for _tid, row in table.heap.iter_rows():
        buckets[bisect_right(bounds, row[col_pos])].append(row)
    return buckets, bounds
