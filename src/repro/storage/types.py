"""Logical types: columns, schemas, rows and tuple identifiers.

Rows are plain Python tuples; a :class:`Schema` describes their layout and
computes the on-page byte size that drives all page-geometry math.  Column
byte sizes follow PostgreSQL: 4-byte integers and dates, 8-byte bigints and
floats, fixed-size ``CHAR(n)`` strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, NamedTuple, Sequence

from repro.errors import StorageError

Row = tuple
"""A stored row: a plain Python tuple, one value per schema column."""


class ColumnType(enum.Enum):
    """Supported column types with fixed on-page sizes."""

    INT = "int"        # 4 bytes, like PostgreSQL integer
    BIGINT = "bigint"  # 8 bytes
    FLOAT = "float"    # 8 bytes, double precision
    DATE = "date"      # 4 bytes, stored as days since epoch (an int)
    CHAR = "char"      # fixed length, requires Column.length

    def byte_size(self, length: int | None = None) -> int:
        """On-page size in bytes; CHAR requires an explicit ``length``."""
        if self is ColumnType.CHAR:
            if length is None or length <= 0:
                raise StorageError("CHAR columns need a positive length")
            return length
        return {
            ColumnType.INT: 4,
            ColumnType.BIGINT: 8,
            ColumnType.FLOAT: 8,
            ColumnType.DATE: 4,
        }[self]


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and (for CHAR) a length in bytes."""

    name: str
    ctype: ColumnType = ColumnType.INT
    length: int | None = None

    @property
    def byte_size(self) -> int:
        """On-page size of one value of this column."""
        return self.ctype.byte_size(self.length)


class Schema:
    """An ordered collection of columns plus derived layout facts.

    The byte size of a row is the sum of column sizes plus the per-tuple
    header overhead supplied by the engine configuration; the header is
    added by :meth:`tuple_size`, keeping the schema config-independent.
    """

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise StorageError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names in schema: {names}")
        self._columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self._columns)}
        self._names = tuple(c.name for c in self._columns)

    @classmethod
    def of_ints(cls, names: Iterable[str]) -> "Schema":
        """Build an all-INT schema (the micro-benchmark layout)."""
        return cls([Column(n, ColumnType.INT) for n in names])

    @property
    def columns(self) -> tuple[Column, ...]:
        """The columns in declaration order."""
        return self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return self._names

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises StorageError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise StorageError(
                f"no column {name!r} in schema {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        """True if a column with this name exists."""
        return name in self._index

    def payload_bytes(self) -> int:
        """Sum of column byte sizes, excluding the tuple header."""
        return sum(c.byte_size for c in self._columns)

    def tuple_size(self, tuple_header: int) -> int:
        """Full on-page size of one row, including the header overhead."""
        return self.payload_bytes() + tuple_header

    def validate_row(self, row: Row) -> None:
        """Check arity; raises StorageError on mismatch."""
        if len(row) != len(self._columns):
            raise StorageError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._columns)}"
            )


class TID(NamedTuple):
    """A tuple identifier: heap page number and slot within the page.

    TIDs order by physical placement, which is exactly the order a Sort
    Scan (bitmap heap scan) sorts by, and the order that makes Smooth
    Scan's flattening runs sequential.
    """

    page_id: int
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TID({self.page_id},{self.slot})"
