"""Slotted heap pages.

A :class:`HeapPage` stores up to ``capacity`` fixed-size rows.  Slots are
append-only (this reproduction never deletes), so slot numbers are stable
and a :class:`~repro.storage.types.TID` uniquely names a row forever.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PageFullError, StorageError
from repro.storage.chunk import Chunk
from repro.storage.types import Row


class HeapPage:
    """One fixed-capacity page of rows."""

    __slots__ = ("page_id", "capacity", "_rows", "_chunk")

    def __init__(self, page_id: int, capacity: int):
        if capacity < 1:
            raise StorageError("page capacity must be >= 1")
        self.page_id = page_id
        self.capacity = capacity
        self._rows: list[Row] = []
        self._chunk: Chunk | None = None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def is_full(self) -> bool:
        """True when no slot is free."""
        return len(self._rows) >= self.capacity

    def insert(self, row: Row) -> int:
        """Append ``row``; returns its slot number."""
        if self.is_full:
            raise PageFullError(
                f"page {self.page_id} is full ({self.capacity} slots)"
            )
        self._rows.append(row)
        self._chunk = None
        return len(self._rows) - 1

    def get(self, slot: int) -> Row:
        """Return the row in ``slot``; raises StorageError if unused."""
        if not 0 <= slot < len(self._rows):
            raise StorageError(
                f"slot {slot} not in use on page {self.page_id} "
                f"({len(self._rows)} rows)"
            )
        return self._rows[slot]

    def rows_with_slots(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(slot, row)`` pairs in slot order."""
        return iter(enumerate(self._rows))

    def all_rows(self) -> list[Row]:
        """The page's row list in slot order (``rows[slot]`` is slot's row).

        Batch-vectorized operators read this directly instead of paying a
        per-row iterator; callers must treat the list as read-only.
        """
        return self._rows

    def chunk(self, names: tuple[str, ...]) -> Chunk:
        """The page payload as a columnar :class:`Chunk`, cached per page.

        The cache is invalidated by :meth:`insert`, so in the steady state
        (bulk load, then scan-heavy workloads) each page pays the
        row→column transposition once per lifetime.  Callers must treat
        the chunk as read-only.
        """
        chunk = self._chunk
        if chunk is None or chunk.names != names:
            chunk = Chunk.from_rows(names, self._rows)
            self._chunk = chunk
        return chunk
