"""The three traditional access paths of Section II.

* :class:`FullTableScan` — stream every heap page sequentially in extents.
* :class:`IndexScan` — classical non-clustered index scan: one random heap
  page fetch per qualifying TID, repeated pages re-fetched; emits in key
  order (the path that collapses when selectivity is underestimated).
* :class:`SortScan` — PostgreSQL's bitmap heap scan: collect qualifying
  TIDs from the index, sort by page, then fetch pages in near-sequential
  order; blocking, emits in physical order.

Smooth Scan and Switch Scan live in :mod:`repro.core` — they are the
paper's contribution, these are its baselines.
"""

from __future__ import annotations

from typing import Iterator

from repro.context import ExecutionContext
from repro.exec.expressions import (
    KeyRange,
    Predicate,
    TruePredicate,
    require_columns,
)
from repro.exec.iterator import Batch, Operator
from repro.storage.table import Table
from repro.storage.types import Row, TID


class FullTableScan(Operator):
    """Sequential scan of every heap page, extent by extent (Eq. (10))."""

    def __init__(self, table: Table, predicate: Predicate | None = None):
        self.table = table
        self.predicate = predicate or TruePredicate()
        require_columns(table.schema, self.predicate)
        self.schema = table.schema

    def name(self) -> str:
        return f"FullTableScan({self.table.name})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.predicate.bind(self.schema)
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            for page in ctx.get_run(heap, start, n):
                ctx.charge_inspect(len(page))
                for row in page:
                    if matches(row):
                        ctx.charge_emit()
                        yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Vectorized scan: one batch per extent run of heap pages."""
        heap = self.table.heap
        filter_rows = self.predicate.bind_filter(self.schema)
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            batch: list[Row] = []
            for page in ctx.get_run(heap, start, n):
                rows = page.all_rows()
                ctx.charge_inspect(len(rows))
                batch += filter_rows(rows)
            if batch:
                ctx.charge_emit(len(batch))
                yield batch


class IndexScan(Operator):
    """Classical non-clustered index scan (Eq. (11)).

    Traverses the B+-tree once to the first qualifying entry, then follows
    the leaf chain; each TID triggers a heap page fetch — random, and
    possibly repeated, which is precisely the behaviour Smooth Scan's Page
    ID Cache eliminates.  Output is in index-key order.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None):
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.schema = table.schema

    def name(self) -> str:
        return f"IndexScan({self.table.name}.{self.column})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.residual.bind(self.schema)
        rng = self.key_range
        for _key, tid in self.index.scan(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            page = ctx.get_page(heap, tid.page_id)
            ctx.charge_inspect()
            row = page.get(tid.slot)
            if matches(row):
                ctx.charge_emit()
                yield row


class SortScan(Operator):
    """Bitmap heap scan: sort qualifying TIDs by page, then fetch (§II).

    Phase 1 (blocking): drain the index range, collecting TIDs, and sort
    them in heap-page order.  Phase 2: fetch each page containing results
    at most once, in ascending page order — a pattern disk prefetchers
    serve nearly sequentially.  Emits in physical (TID) order, so an
    ``ORDER BY`` on the key needs an explicit sort on top.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None):
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.schema = table.schema

    def name(self) -> str:
        return f"SortScan({self.table.name}.{self.column})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.residual.bind(self.schema)
        rng = self.key_range

        # Phase 1: collect qualifying TIDs from the index, then pre-sort
        # them by heap placement (page, slot).
        tids: list[TID] = [
            tid for _key, tid in self.index.scan(
                ctx, lo=rng.lo, hi=rng.hi,
                lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
            )
        ]
        if not tids:
            return
        tids.sort()
        ctx.charge_compare(_nlogn(len(tids)))

        # Phase 2: walk pages in ascending order, fetching each once.
        # Contiguous page spans are fetched as runs (read-ahead batching).
        pages: dict[int, list[int]] = {}
        for tid in tids:
            pages.setdefault(tid.page_id, []).append(tid.slot)
        page_ids = sorted(pages)
        for run_start, run_len in _contiguous_runs(page_ids):
            fetched = ctx.get_run(heap, run_start, run_len)
            for page in fetched:
                for slot in pages[page.page_id]:
                    ctx.charge_inspect()
                    row = page.get(slot)
                    if matches(row):
                        ctx.charge_emit()
                        yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Vectorized bitmap heap scan: one batch per near-sequential run."""
        heap = self.table.heap
        filter_rows = self.residual.bind_filter(self.schema)
        rng = self.key_range

        # Phase 1: collect qualifying TIDs leaf-batch-wise, sort by page.
        tids: list[TID] = []
        for _keys, tid_chunk in self.index.scan_batches(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            tids += tid_chunk
        if not tids:
            return
        tids.sort()
        ctx.charge_compare(_nlogn(len(tids)))

        # Phase 2: per fetched page, filter the slotted candidates in bulk.
        pages: dict[int, list[int]] = {}
        for tid in tids:
            pages.setdefault(tid.page_id, []).append(tid.slot)
        page_ids = sorted(pages)
        for run_start, run_len in _contiguous_runs(page_ids):
            batch: list[Row] = []
            for page in ctx.get_run(heap, run_start, run_len):
                slots = pages[page.page_id]
                ctx.charge_inspect(len(slots))
                all_rows = page.all_rows()
                if len(slots) == len(all_rows):
                    candidates = all_rows  # every slot qualifies the range
                else:
                    candidates = [all_rows[slot] for slot in slots]
                batch += filter_rows(candidates)
            if batch:
                ctx.charge_emit(len(batch))
                yield batch


def _contiguous_runs(page_ids: list[int]) -> Iterator[tuple[int, int]]:
    """Group a sorted page-id list into maximal (start, length) runs."""
    if not page_ids:
        return
    start = prev = page_ids[0]
    for pid in page_ids[1:]:
        if pid == prev + 1:
            prev = pid
            continue
        yield start, prev - start + 1
        start = prev = pid
    yield start, prev - start + 1


def _nlogn(n: int) -> int:
    """Comparison count estimate for sorting ``n`` items."""
    if n < 2:
        return n
    return n * max(1, (n - 1).bit_length())
