"""The three traditional access paths of Section II.

* :class:`FullTableScan` — stream every heap page sequentially in extents.
* :class:`IndexScan` — classical non-clustered index scan: one random heap
  page fetch per qualifying TID, repeated pages re-fetched; emits in key
  order (the path that collapses when selectivity is underestimated).
* :class:`SortScan` — PostgreSQL's bitmap heap scan: collect qualifying
  TIDs from the index, sort by page, then fetch pages in near-sequential
  order; blocking, emits in physical order.

Smooth Scan and Switch Scan live in :mod:`repro.core` — they are the
paper's contribution, these are its baselines.
"""

from __future__ import annotations

from typing import Iterator

from repro.context import ExecutionContext
from repro.exec.expressions import (
    KeyRange,
    Predicate,
    TruePredicate,
    require_columns,
)
from repro.exec.iterator import Batch, Chunk, Operator
from repro.index.btree import TID_SHIFT
from repro.storage.table import Table
from repro.storage.types import Row, TID

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _sort_array(codes):
    """Ascending sort (numpy present by construction at the call site)."""
    return _np.sort(codes)


#: Below this many candidate slots per page (on average, per run), the
#: bitmap heap scan gathers rows directly instead of slicing columns.
_SPARSE_SLOTS_PER_PAGE = 16


class FullTableScan(Operator):
    """Sequential scan of every heap page, extent by extent (Eq. (10))."""

    def __init__(self, table: Table, predicate: Predicate | None = None):
        self.table = table
        self.predicate = predicate or TruePredicate()
        require_columns(table.schema, self.predicate)
        self.schema = table.schema

    def name(self) -> str:
        return f"FullTableScan({self.table.name})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.predicate.bind(self.schema)
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            for page in ctx.get_run(heap, start, n):
                ctx.charge_inspect(len(page))
                for row in page:
                    if matches(row):
                        ctx.charge_emit()
                        yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Columnar scan: one chunk per extent run of heap pages.

        The extent's page payloads are concatenated into a single chunk
        and filtered with one mask evaluation, so predicate work runs on
        extent-sized arrays instead of page-sized ones.  Charges are
        identical to :meth:`rows` — inspect per page, emit per
        qualifying batch.
        """
        heap = self.table.heap
        names = self.schema.column_names
        filter_chunk = self.predicate.bind_chunk(self.schema)
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            for page in ctx.get_run(heap, start, n):
                ctx.charge_inspect(len(page))
            kept = filter_chunk(heap.run_chunk(start, n, names))
            if kept is not None:
                ctx.charge_emit(len(kept))
                yield kept


class IndexScan(Operator):
    """Classical non-clustered index scan (Eq. (11)).

    Traverses the B+-tree once to the first qualifying entry, then follows
    the leaf chain; each TID triggers a heap page fetch — random, and
    possibly repeated, which is precisely the behaviour Smooth Scan's Page
    ID Cache eliminates.  Output is in index-key order.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None):
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.schema = table.schema

    def name(self) -> str:
        return f"IndexScan({self.table.name}.{self.column})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.residual.bind(self.schema)
        rng = self.key_range
        for _key, tid in self.index.scan(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            page = ctx.get_page(heap, tid.page_id)
            ctx.charge_inspect()
            row = page.get(tid.slot)
            if matches(row):
                ctx.charge_emit()
                yield row


class SortScan(Operator):
    """Bitmap heap scan: sort qualifying TIDs by page, then fetch (§II).

    Phase 1 (blocking): drain the index range, collecting TIDs, and sort
    them in heap-page order.  Phase 2: fetch each page containing results
    at most once, in ascending page order — a pattern disk prefetchers
    serve nearly sequentially.  Emits in physical (TID) order, so an
    ``ORDER BY`` on the key needs an explicit sort on top.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None):
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.schema = table.schema

    def name(self) -> str:
        return f"SortScan({self.table.name}.{self.column})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        matches = self.residual.bind(self.schema)
        rng = self.key_range

        # Phase 1: collect qualifying TIDs from the index, then pre-sort
        # them by heap placement (page, slot).
        tids: list[TID] = [
            tid for _key, tid in self.index.scan(
                ctx, lo=rng.lo, hi=rng.hi,
                lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
            )
        ]
        if not tids:
            return
        tids.sort()
        ctx.charge_compare(_nlogn(len(tids)))

        # Phase 2: walk pages in ascending order, fetching each once.
        # Contiguous page spans are fetched as runs (read-ahead batching).
        pages: dict[int, list[int]] = {}
        for tid in tids:
            pages.setdefault(tid.page_id, []).append(tid.slot)
        page_ids = sorted(pages)
        for run_start, run_len in _contiguous_runs(page_ids):
            fetched = ctx.get_run(heap, run_start, run_len)
            for page in fetched:
                for slot in pages[page.page_id]:
                    ctx.charge_inspect()
                    row = page.get(slot)
                    if matches(row):
                        ctx.charge_emit()
                        yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Columnar bitmap heap scan: one chunk per near-sequential run.

        Phase 1 pulls the range as *packed TID codes* (one int64 per
        entry) so collecting, sorting and page-grouping the bitmap are
        all array operations; the code order equals TID tuple order, so
        emission order — and every charge — matches :meth:`rows`.
        """
        codes = self.index.scan_codes(
            ctx, lo=self.key_range.lo, hi=self.key_range.hi,
            lo_inclusive=self.key_range.lo_inclusive,
            hi_inclusive=self.key_range.hi_inclusive,
        )
        if codes is None:  # no numpy: charge-identical list-based fallback
            yield from self._batches_from_tids(ctx)
            return
        if not len(codes):
            return
        heap = self.table.heap
        names = self.schema.column_names
        filter_chunk = self.residual.bind_chunk(self.schema)
        codes = _sort_array(codes)
        ctx.charge_compare(_nlogn(len(codes)))

        # Phase 2: group the sorted codes by page with one diff pass.
        pages_arr = codes >> TID_SHIFT
        slots_arr = codes & ((1 << TID_SHIFT) - 1)
        bounds = _np.flatnonzero(pages_arr[1:] != pages_arr[:-1]) + 1
        starts = _np.concatenate(([0], bounds))
        ends = _np.concatenate((bounds, [len(codes)]))
        page_ids = pages_arr[starts].tolist()
        spans = dict(zip(page_ids,
                         zip(starts.tolist(), ends.tolist(), strict=False),
                         strict=False))
        matches = self.residual.bind(self.schema)
        for run_start, run_len in _contiguous_runs(page_ids):
            # Candidates per run: spans are contiguous in code space.
            total = spans[run_start + run_len - 1][1] - spans[run_start][0]
            if total < run_len * _SPARSE_SLOTS_PER_PAGE:
                # Sparse run (few slots per page): gathering whole-page
                # columns to select a handful of rows costs more than
                # fetching the rows directly.  Same charges, row batch.
                out: list[Row] = []
                for page in ctx.get_run(heap, run_start, run_len):
                    lo, hi = spans[page.page_id]
                    ctx.charge_inspect(hi - lo)
                    get = page.get
                    for slot in slots_arr[lo:hi].tolist():
                        row = get(slot)
                        if matches(row):
                            out.append(row)
                if out:
                    ctx.charge_emit(len(out))
                    yield out
                continue
            parts: list[Chunk] = []
            for page in ctx.get_run(heap, run_start, run_len):
                lo, hi = spans[page.page_id]
                ctx.charge_inspect(hi - lo)
                chunk = page.chunk(names)
                if hi - lo != len(chunk):
                    chunk = chunk.take(slots_arr[lo:hi])  # sel vector
                kept = filter_chunk(chunk)
                if kept is not None:
                    parts.append(kept)
            if parts:
                batch = Chunk.concat(parts)
                ctx.charge_emit(len(batch))
                yield batch

    def _batches_from_tids(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Batch path without numpy: per-leaf TID lists, Python sort."""
        heap = self.table.heap
        names = self.schema.column_names
        filter_chunk = self.residual.bind_chunk(self.schema)
        rng = self.key_range

        # Phase 1: collect qualifying TIDs leaf-batch-wise, sort by page.
        tids: list[TID] = []
        for _keys, tid_chunk in self.index.scan_batches(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            tids += tid_chunk
        if not tids:
            return
        tids.sort()
        ctx.charge_compare(_nlogn(len(tids)))

        # Phase 2: per fetched page, filter the slotted candidates in bulk.
        pages: dict[int, list[int]] = {}
        for tid in tids:
            pages.setdefault(tid.page_id, []).append(tid.slot)
        page_ids = sorted(pages)
        for run_start, run_len in _contiguous_runs(page_ids):
            parts: list[Chunk] = []
            for page in ctx.get_run(heap, run_start, run_len):
                slots = pages[page.page_id]
                ctx.charge_inspect(len(slots))
                chunk = page.chunk(names)
                if len(slots) != len(chunk):
                    chunk = chunk.take(slots)  # gather-free: sel vector
                kept = filter_chunk(chunk)
                if kept is not None:
                    parts.append(kept)
            if parts:
                batch = Chunk.concat(parts)
                ctx.charge_emit(len(batch))
                yield batch


def _contiguous_runs(page_ids: list[int]) -> Iterator[tuple[int, int]]:
    """Group a sorted page-id list into maximal (start, length) runs."""
    if not page_ids:
        return
    start = prev = page_ids[0]
    for pid in page_ids[1:]:
        if pid == prev + 1:
            prev = pid
            continue
        yield start, prev - start + 1
        start = prev = pid
    yield start, prev - start + 1


def _nlogn(n: int) -> int:
    """Comparison count estimate for sorting ``n`` items."""
    if n < 2:
        return n
    return n * max(1, (n - 1).bit_length())
