"""Join operators: hash, merge, (block) nested-loop, and index nested-loop.

The index nested-loop join supports two inner access modes: ``classic``
(one random heap fetch per matching TID — PostgreSQL's parameterized index
path) and ``smooth`` (Section IV-B: morphing per join key — deduplicate
heap pages per key, fetch each page once, probe it entirely, and batch
adjacent pages into runs).  With single-match keys the two coincide, which
is exactly what the paper observes for the PK look-ups of Q4/Q14.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.expressions import Predicate, TruePredicate
from repro.exec.iterator import Batch, Chunk, Operator
from repro.storage.table import Table
from repro.storage.types import Row, Schema


def _joined_schema(left: Schema, right: Schema) -> Schema:
    """Concatenate schemas; column names must stay unique."""
    columns = list(left.columns) + list(right.columns)
    names = [c.name for c in columns]
    if len(set(names)) != len(names):
        raise PlanningError(
            f"joined schema would duplicate column names: {names}"
        )
    return Schema(columns)


class HashJoin(Operator):
    """Equi-join; builds a hash table on the right child, streams the left.

    ``join_type`` selects the SQL semantics:

    * ``"inner"`` — emit ``left + right`` per match (the default);
    * ``"left"`` — unmatched left rows are emitted padded with ``None``;
    * ``"semi"`` — emit each left row at most once if any match exists;
    * ``"anti"`` — emit each left row only if *no* match exists.

    Semi/anti joins output the left schema only (they implement EXISTS /
    NOT EXISTS subqueries, e.g. TPC-H Q4 and Q22).
    """

    def __init__(self, left: Operator, right: Operator,
                 left_keys: Sequence[str], right_keys: Sequence[str],
                 join_type: str = "inner"):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanningError("HashJoin needs matching non-empty key lists")
        if join_type not in ("inner", "left", "semi", "anti"):
            raise PlanningError(f"unknown join_type {join_type!r}")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.left_positions = [left.schema.index_of(k) for k in left_keys]
        self.right_positions = [right.schema.index_of(k) for k in right_keys]
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = _joined_schema(left.schema, right.schema)

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def name(self) -> str:
        return f"HashJoin({self.join_type})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = self._build(ctx)
        lpos = self.left_positions
        pad = (None,) * len(self.right.schema)
        for row in self.left.rows(ctx):
            ctx.charge_hash()
            matches = table.get(tuple(row[p] for p in lpos))
            if self.join_type == "inner":
                for match in matches or ():
                    ctx.charge_emit()
                    yield row + match
            elif self.join_type == "left":
                if matches:
                    for match in matches:
                        ctx.charge_emit()
                        yield row + match
                else:
                    ctx.charge_emit()
                    yield row + pad
            elif self.join_type == "semi":
                if matches:
                    ctx.charge_emit()
                    yield row
            else:  # anti
                if not matches:
                    ctx.charge_emit()
                    yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Probe the hash table one left batch at a time.

        Single-key probes against a chunk read the key column once
        (``column_values``) instead of building a key tuple per row, and
        semi/anti joins narrow the chunk by selection vector — their
        output stays columnar with zero row materialization.
        """
        table = self._build(ctx)
        lpos = self.left_positions
        pad = (None,) * len(self.right.schema)
        join_type = self.join_type
        get = table.get
        single = len(lpos) == 1
        lp0 = lpos[0]
        for batch in self.left.batches(ctx):
            ctx.charge_hash(len(batch))
            is_chunk = isinstance(batch, Chunk)
            keys = batch.column_values(lp0) if single and is_chunk else None
            if join_type in ("semi", "anti"):
                if keys is not None:
                    if join_type == "semi":
                        sel = [i for i, k in enumerate(keys) if get((k,))]
                    else:
                        sel = [i for i, k in enumerate(keys) if not get((k,))]
                    if sel:
                        kept = batch if len(sel) == len(batch) \
                            else batch.take(sel)
                        ctx.charge_emit(len(kept))
                        yield kept
                    continue
                if join_type == "semi":
                    out = [row for row in batch
                           if get(tuple(row[p] for p in lpos))]
                else:
                    out = [row for row in batch
                           if not get(tuple(row[p] for p in lpos))]
                if out:
                    ctx.charge_emit(len(out))
                    yield out
                continue
            out = []
            if keys is not None:
                pairs = zip(batch.to_rows(), keys, strict=False)
                lookups = ((row, get((k,))) for row, k in pairs)
            else:
                lookups = ((row, get(tuple(row[p] for p in lpos)))
                           for row in batch)
            if join_type == "inner":
                for row, matches in lookups:
                    if matches:
                        out += [row + match for match in matches]
            else:  # left
                for row, matches in lookups:
                    if matches:
                        out += [row + match for match in matches]
                    else:
                        out.append(row + pad)
            if out:
                ctx.charge_emit(len(out))
                yield Chunk.from_rows(self.schema.column_names, out)

    def _build(self, ctx: ExecutionContext) -> dict[tuple, list[Row]]:
        """Materialize the right child into the join hash table."""
        table: dict[tuple, list[Row]] = {}
        rpos = self.right_positions
        single = len(rpos) == 1
        rp0 = rpos[0]
        for batch in self.right.batches(ctx):
            ctx.charge_hash(len(batch))
            if single and isinstance(batch, Chunk):
                for k, row in zip(batch.column_values(rp0),
                                  batch.to_rows(), strict=False):
                    table.setdefault((k,), []).append(row)
            else:
                for row in batch:
                    table.setdefault(
                        tuple(row[p] for p in rpos), []
                    ).append(row)
        return table


class MergeJoin(Operator):
    """Equi-join of two inputs already sorted on their join keys.

    The operator trusts its inputs' ordering — the planner is responsible
    for placing sorts (or key-ordered access paths such as an index scan
    or an ordered Smooth Scan) underneath.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_key: str, right_key: str):
        self.left = left
        self.right = right
        self.left_pos = left.schema.index_of(left_key)
        self.right_pos = right.schema.index_of(right_key)
        self.schema = _joined_schema(left.schema, right.schema)

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def name(self) -> str:
        return "MergeJoin"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        lpos, rpos = self.left_pos, self.right_pos
        left_iter = self.left.rows(ctx)
        right_iter = self.right.rows(ctx)
        lrow = next(left_iter, None)
        rrow = next(right_iter, None)
        while lrow is not None and rrow is not None:
            ctx.charge_compare()
            lkey, rkey = lrow[lpos], rrow[rpos]
            if lkey < rkey:
                lrow = next(left_iter, None)
            elif lkey > rkey:
                rrow = next(right_iter, None)
            else:
                # Gather the full duplicate group on the right.
                group = [rrow]
                rrow = next(right_iter, None)
                while rrow is not None and rrow[rpos] == lkey:
                    group.append(rrow)
                    rrow = next(right_iter, None)
                while lrow is not None and lrow[lpos] == lkey:
                    for match in group:
                        ctx.charge_emit()
                        yield lrow + match
                    lrow = next(left_iter, None)


class NestedLoopJoin(Operator):
    """Block nested-loop join with an arbitrary predicate (small inputs)."""

    def __init__(self, left: Operator, right: Operator,
                 predicate: Predicate | None = None):
        self.left = left
        self.right = right
        self.schema = _joined_schema(left.schema, right.schema)
        self.predicate = predicate or TruePredicate()

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def name(self) -> str:
        return "NestedLoopJoin"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        inner = list(self.right.rows(ctx))
        matches = self.predicate.bind(self.schema)
        for lrow in self.left.rows(ctx):
            for rrow in inner:
                ctx.charge_inspect()
                joined = lrow + rrow
                if matches(joined):
                    ctx.charge_emit()
                    yield joined

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Join one left batch against the materialized inner per step.

        Pairs are tested left-row-at-a-time so memory stays proportional
        to the *matching* output, never the raw cross product.
        """
        inner = [row for batch in self.right.batches(ctx) for row in batch]
        matches = self.predicate.bind(self.schema)
        for batch in self.left.batches(ctx):
            ctx.charge_inspect(len(batch) * len(inner))
            out = [
                joined
                for lrow in batch
                for rrow in inner
                if matches(joined := lrow + rrow)
            ]
            if out:
                ctx.charge_emit(len(out))
                yield out


class IndexNestedLoopJoin(Operator):
    """INLJ: probe an index on the inner table for each outer row.

    ``inner_access='classic'`` fetches one heap page per matching TID —
    random I/O, repeated pages re-fetched.  ``inner_access='smooth'``
    applies Smooth Scan's per-key morphing (Section IV-B): TIDs of one key
    are grouped by page, each page is fetched once and probed entirely,
    and adjacent pages are batched into sequential runs.
    """

    def __init__(self, outer: Operator, inner_table: Table,
                 inner_column: str, outer_key: str,
                 residual: Predicate | None = None,
                 inner_access: str = "classic"):
        if inner_access not in ("classic", "smooth"):
            raise PlanningError(
                f"unknown inner_access {inner_access!r}; "
                "use 'classic' or 'smooth'"
            )
        self.outer = outer
        self.inner_table = inner_table
        self.inner_column = inner_column
        self.index = inner_table.index_on(inner_column)
        self.outer_pos = outer.schema.index_of(outer_key)
        self.inner_access = inner_access
        self.schema = _joined_schema(outer.schema, inner_table.schema)
        self.residual = residual or TruePredicate()

    def children(self) -> tuple[Operator, ...]:
        return (self.outer,)

    def name(self) -> str:
        return f"IndexNestedLoopJoin({self.inner_table.name}, {self.inner_access})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        matches = self.residual.bind(self.schema)
        heap = self.inner_table.heap
        opos = self.outer_pos
        inner_key_pos = self.inner_table.schema.index_of(self.inner_column)
        smooth = self.inner_access == "smooth"
        for orow in self.outer.rows(ctx):
            key = orow[opos]
            tids = list(self.index.lookup(ctx, key))
            if not tids:
                continue
            if smooth and len(tids) > 1:
                yield from self._probe_smooth(
                    ctx, heap, orow, key, tids, inner_key_pos, matches
                )
            else:
                for tid in tids:
                    page = ctx.get_page(heap, tid.page_id)
                    ctx.charge_inspect()
                    irow = page.get(tid.slot)
                    joined = orow + irow
                    if matches(joined):
                        ctx.charge_emit()
                        yield joined

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Probe the inner index one outer batch at a time."""
        matches = self.residual.bind(self.schema)
        heap = self.inner_table.heap
        opos = self.outer_pos
        inner_key_pos = self.inner_table.schema.index_of(self.inner_column)
        smooth = self.inner_access == "smooth"
        for batch in self.outer.batches(ctx):
            out: list[Row] = []
            for orow in batch:
                key = orow[opos]
                tids = list(self.index.lookup(ctx, key))
                if not tids:
                    continue
                if smooth and len(tids) > 1:
                    out.extend(self._probe_smooth(
                        ctx, heap, orow, key, tids, inner_key_pos, matches
                    ))
                else:
                    for tid in tids:
                        page = ctx.get_page(heap, tid.page_id)
                        ctx.charge_inspect()
                        irow = page.get(tid.slot)
                        joined = orow + irow
                        if matches(joined):
                            ctx.charge_emit()
                            out.append(joined)
            if out:
                yield out

    def _probe_smooth(self, ctx: ExecutionContext, heap, orow: Row,
                      key: object, tids, inner_key_pos: int,
                      matches) -> Iterator[Row]:
        """Per-key morphing: fetch each page once, probe it entirely."""
        page_ids = sorted({tid.page_id for tid in tids})
        from repro.exec.scans import _contiguous_runs  # shared helper
        for run_start, run_len in _contiguous_runs(page_ids):
            for page in ctx.get_run(heap, run_start, run_len):
                ctx.charge_inspect(len(page))
                for irow in page:
                    if irow[inner_key_pos] != key:
                        continue
                    joined = orow + irow
                    if matches(joined):
                        ctx.charge_emit()
                        yield joined
