"""Group-by and scalar aggregation.

A :class:`HashAggregate` with an empty group-by acts as a scalar aggregate
that always emits exactly one row — the shape of TPC-H Q6.  Aggregate
inputs can be plain columns or computed expressions (``value`` callables),
covering forms like ``sum(l_extendedprice * (1 - l_discount))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.iterator import Batch, DEFAULT_BATCH_SIZE, Operator
from repro.storage.types import Column, ColumnType, Row, Schema

_SUPPORTED = ("sum", "count", "avg", "min", "max")


def aggregate_output_columns(schema: "Schema", group_by: Sequence[str],
                             aggs: Sequence["AggSpec"]) -> list[Column]:
    """The output layout of an aggregation: group keys, then aggregates.

    The single source of truth for the schema rule — shared by
    :class:`HashAggregate` and by planners/binders that must predict the
    aggregate's output before building it.  Counts are INT; min/max of a
    plain column keep that column's type (and CHAR width); everything
    else uses the spec's declared ``ctype``.
    """
    columns = [schema.columns[schema.index_of(c)] for c in group_by]
    for spec in aggs:
        if spec.func == "count":
            columns.append(Column(spec.output, ColumnType.INT))
        elif spec.func in ("min", "max") and spec.column is not None:
            src = schema.columns[schema.index_of(spec.column)]
            columns.append(Column(spec.output, src.ctype, src.length))
        else:
            columns.append(Column(spec.output, spec.ctype))
    return columns


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output.

    Attributes:
        func: one of ``sum, count, avg, min, max``.
        output: output column name.
        column: input column name, or ``None`` for ``count(*)``.
        value: optional ``row -> value`` callable overriding ``column``.
        ctype: output column type (FLOAT by default for sum/avg).
    """

    func: str
    output: str
    column: str | None = None
    value: Callable[[Row], object] | None = None
    ctype: ColumnType = ColumnType.FLOAT

    def __post_init__(self) -> None:
        if self.func not in _SUPPORTED:
            raise PlanningError(
                f"unsupported aggregate {self.func!r}; pick from {_SUPPORTED}"
            )
        if self.func != "count" and self.column is None and self.value is None:
            raise PlanningError(f"{self.func} needs a column or value callable")


class _Accumulator:
    """Mutable per-group state for one AggSpec."""

    __slots__ = ("func", "count", "total", "best")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total = 0.0
        self.best = None

    def add(self, value: object) -> None:
        if value is None:
            return  # SQL semantics: aggregates skip NULLs
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value  # type: ignore[operator]
        elif self.func == "min":
            if self.best is None or value < self.best:  # type: ignore[operator]
                self.best = value
        elif self.func == "max":
            if self.best is None or value > self.best:  # type: ignore[operator]
                self.best = value

    def result(self) -> object:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


class HashAggregate(Operator):
    """Hash-based grouping; with ``group_by=[]`` it is a scalar aggregate."""

    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggs: Sequence[AggSpec]):
        if not aggs and not group_by:
            raise PlanningError("aggregate needs group keys or aggregates")
        self.child = child
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        self._group_positions = [
            child.schema.index_of(c) for c in self.group_by
        ]
        self._getters: list[Callable[[Row], object] | None] = []
        for spec in self.aggs:
            if spec.value is not None:
                self._getters.append(spec.value)
            elif spec.column is not None:
                pos = child.schema.index_of(spec.column)
                self._getters.append(lambda row, _p=pos: row[_p])
            else:
                self._getters.append(None)  # count(*)
        self.schema = Schema(
            aggregate_output_columns(child.schema, self.group_by, self.aggs)
        )

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        keys = ", ".join(self.group_by) or "<scalar>"
        funcs = ", ".join(f"{s.func}({s.column or '*'})" for s in self.aggs)
        return f"HashAggregate([{keys}] {funcs})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        groups: dict[tuple, list[_Accumulator]] = {}
        gpos = self._group_positions
        for row in self.child.rows(ctx):
            ctx.charge_hash()
            key = tuple(row[p] for p in gpos)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func) for s in self.aggs]
                groups[key] = accs
            for acc, getter in zip(accs, self._getters):
                acc.add(getter(row) if getter is not None else 1)
        yield from self._results(ctx, groups)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        groups: dict[tuple, list[_Accumulator]] = {}
        gpos = self._group_positions
        getters = self._getters
        for batch in self.child.batches(ctx):
            ctx.charge_hash(len(batch))
            for row in batch:
                key = tuple(row[p] for p in gpos)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(s.func) for s in self.aggs]
                    groups[key] = accs
                for acc, getter in zip(accs, getters):
                    acc.add(getter(row) if getter is not None else 1)
        out = list(self._results(ctx, groups))
        for start in range(0, len(out), DEFAULT_BATCH_SIZE):
            yield out[start:start + DEFAULT_BATCH_SIZE]

    def _results(self, ctx: ExecutionContext,
                 groups: dict[tuple, list[_Accumulator]]) -> Iterator[Row]:
        """Finalize accumulators into output rows, charging emission."""
        if not groups and not self.group_by:
            # Scalar aggregates emit one row even on empty input.
            groups[()] = [_Accumulator(s.func) for s in self.aggs]
        for key, accs in groups.items():
            ctx.charge_emit()
            yield key + tuple(acc.result() for acc in accs)


def scalar_aggregate(child: Operator, aggs: Sequence[AggSpec]) -> HashAggregate:
    """Convenience wrapper: an aggregate with no grouping keys."""
    return HashAggregate(child, group_by=[], aggs=aggs)
