"""Group-by and scalar aggregation.

A :class:`HashAggregate` with an empty group-by acts as a scalar aggregate
that always emits exactly one row — the shape of TPC-H Q6.  Aggregate
inputs can be plain columns or computed expressions (``value`` callables,
optionally paired with a ``vector`` chunk implementation), covering forms
like ``sum(l_extendedprice * (1 - l_discount))``.

The columnar path accumulates into per-spec NumPy state arrays indexed by
group ordinal, using the *unbuffered* ufunc methods (``np.add.at``,
``np.minimum.at``, ``np.maximum.at``), which apply element-wise in index
order — bitwise identical to the row loop's sequential ``total += value``
(unlike ``np.sum``'s pairwise reduction, which is not).  Whenever a batch
cannot be handled exactly (an object column, a NULL, a NaN under min/max),
the array state is demoted *losslessly* into the row accumulators and
execution continues tuple-at-a-time — values, not just results, stay
byte-for-byte equal to the pure row path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.iterator import Batch, Chunk, DEFAULT_BATCH_SIZE, Operator
from repro.storage.types import Column, ColumnType, Row, Schema

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_SUPPORTED = ("sum", "count", "avg", "min", "max")

#: Schema types whose chunk columns are int64 arrays.
_INT_TYPES = (ColumnType.INT, ColumnType.BIGINT, ColumnType.DATE)


def aggregate_output_columns(schema: "Schema", group_by: Sequence[str],
                             aggs: Sequence["AggSpec"]) -> list[Column]:
    """The output layout of an aggregation: group keys, then aggregates.

    The single source of truth for the schema rule — shared by
    :class:`HashAggregate` and by planners/binders that must predict the
    aggregate's output before building it.  Counts are INT; min/max of a
    plain column keep that column's type (and CHAR width); everything
    else uses the spec's declared ``ctype``.
    """
    columns = [schema.columns[schema.index_of(c)] for c in group_by]
    for spec in aggs:
        if spec.func == "count":
            columns.append(Column(spec.output, ColumnType.INT))
        elif spec.func in ("min", "max") and spec.column is not None:
            src = schema.columns[schema.index_of(spec.column)]
            columns.append(Column(spec.output, src.ctype, src.length))
        else:
            columns.append(Column(spec.output, spec.ctype))
    return columns


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output.

    Attributes:
        func: one of ``sum, count, avg, min, max``.
        output: output column name.
        column: input column name, or ``None`` for ``count(*)``.
        value: optional ``row -> value`` callable overriding ``column``.
        ctype: output column type (FLOAT by default for sum/avg).
        vector: optional ``chunk -> ndarray`` columnar counterpart of
            ``value``; must be value-equivalent row-for-row.  Returning
            ``None`` at runtime falls back to ``value``.
    """

    func: str
    output: str
    column: str | None = None
    value: Callable[[Row], object] | None = None
    ctype: ColumnType = ColumnType.FLOAT
    vector: Optional[Callable[[Chunk], object]] = None

    def __post_init__(self) -> None:
        if self.func not in _SUPPORTED:
            raise PlanningError(
                f"unsupported aggregate {self.func!r}; pick from {_SUPPORTED}"
            )
        if self.func != "count" and self.column is None and self.value is None:
            raise PlanningError(f"{self.func} needs a column or value callable")


class _Accumulator:
    """Mutable per-group state for one AggSpec."""

    __slots__ = ("func", "count", "total", "best")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total = 0.0
        self.best = None

    def add(self, value: object) -> None:
        if value is None:
            return  # SQL semantics: aggregates skip NULLs
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value  # type: ignore[operator]
        elif self.func == "min":
            if self.best is None or value < self.best:  # type: ignore[operator]
                self.best = value
        elif self.func == "max":
            if self.best is None or value > self.best:  # type: ignore[operator]
                self.best = value

    def result(self) -> object:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


_FAIL = object()


class _SpecArrays:
    """Array-backed accumulator state for one vector-eligible AggSpec.

    One growable array per aggregate, indexed by group ordinal; updates
    go through the unbuffered ufunc ``.at`` methods, whose element-wise,
    in-order application makes the state bitwise equal to the row
    accumulators at every point — which is what makes mid-stream
    demotion (``demote_into``) lossless.
    """

    __slots__ = ("func", "source", "pos", "vector", "want_int",
                 "totals", "counts", "best")

    def __init__(self, func: str, source: str, pos: int | None,
                 vector, want_int: bool):
        self.func = func
        self.source = source  # "star" | "col" | "vector"
        self.pos = pos
        self.vector = vector
        self.want_int = want_int
        self.totals = None
        self.counts = None
        self.best = None

    def ensure(self, capacity: int) -> None:
        """Grow state arrays to hold at least ``capacity`` groups."""
        f = self.func
        if f in ("sum", "avg"):
            self.totals = self._grow(self.totals, capacity, 0.0, _np.float64)
        if f in ("count", "avg"):
            self.counts = self._grow(self.counts, capacity, 0, _np.int64)
        if f in ("min", "max"):
            if self.want_int:
                info = _np.iinfo(_np.int64)
                fill = info.max if f == "min" else info.min
                self.best = self._grow(self.best, capacity, fill, _np.int64)
            else:
                fill = _np.inf if f == "min" else -_np.inf
                self.best = self._grow(self.best, capacity, fill, _np.float64)

    @staticmethod
    def _grow(arr, capacity: int, fill, dtype):
        if arr is not None and len(arr) >= capacity:
            return arr
        new_cap = max(capacity, 16, 0 if arr is None else 2 * len(arr))
        new = _np.full(new_cap, fill, dtype=dtype)
        if arr is not None:
            new[:len(arr)] = arr
        return new

    def fetch(self, chunk: Chunk):
        """This batch's value array, or ``_FAIL`` when not exactly usable."""
        if self.source == "star":
            return None
        if self.source == "col":
            arr = chunk.array(self.pos)
            if arr is None:
                return _FAIL  # object column: NULLs / CHAR / big ints
        else:
            arr = self.vector(chunk)
            if arr is None or not isinstance(arr, _np.ndarray):
                return _FAIL
        f = self.func
        if f == "count":
            return None  # presence of the array proves no NULLs
        if f in ("sum", "avg"):
            return arr if arr.dtype == _np.float64 \
                else arr.astype(_np.float64)
        if self.want_int:
            return arr if arr.dtype == _np.int64 else _FAIL
        if arr.dtype != _np.float64:
            return _FAIL
        if _np.isnan(arr).any():
            return _FAIL  # NaN min/max ordering differs from Python's
        return arr

    def apply(self, ords, values) -> None:
        f = self.func
        if f == "count":
            _np.add.at(self.counts, ords, 1)
        elif f == "sum":
            _np.add.at(self.totals, ords, values)
        elif f == "avg":
            _np.add.at(self.totals, ords, values)
            _np.add.at(self.counts, ords, 1)
        elif f == "min":
            _np.minimum.at(self.best, ords, values)
        else:
            _np.maximum.at(self.best, ords, values)

    def result(self, g: int) -> object:
        f = self.func
        if f == "count":
            return int(self.counts[g])
        if f == "sum":
            return float(self.totals[g])
        if f == "avg":
            count = int(self.counts[g])
            return float(self.totals[g]) / count if count else None
        return int(self.best[g]) if self.want_int else float(self.best[g])

    def demote_into(self, acc: "_Accumulator", g: int) -> None:
        """Copy group ``g``'s state into a row accumulator, losslessly."""
        f = self.func
        if f == "count":
            acc.count = int(self.counts[g])
        elif f == "sum":
            acc.total = float(self.totals[g])
        elif f == "avg":
            acc.total = float(self.totals[g])
            acc.count = int(self.counts[g])
        else:
            # Every existing group saw at least one value (array columns
            # carry no NULLs), so the sentinel never leaks out.
            acc.best = int(self.best[g]) if self.want_int \
                else float(self.best[g])


class _VectorState:
    """Whole-operator columnar aggregation state: ordinals + spec arrays."""

    __slots__ = ("gpos", "specs", "index")

    def __init__(self, gpos: list[int], specs: list[_SpecArrays]):
        self.gpos = gpos
        self.specs = specs
        self.index: dict[tuple, int] = {}

    def update(self, chunk: Chunk) -> bool:
        """Fold one chunk into the state; False ⇒ caller must demote.

        Fetches are validated for every spec *before* any state mutation,
        so a failed batch leaves the state untouched for demotion.
        """
        fetched = []
        for st in self.specs:
            values = st.fetch(chunk)
            if values is _FAIL:
                return False
            fetched.append(values)
        n = len(chunk)
        index = self.index
        if not self.gpos:
            if not index:
                index[()] = 0
            ords = _np.zeros(n, dtype=_np.intp)
        else:
            ords_list = []
            if len(self.gpos) == 1:
                for k in chunk.column_values(self.gpos[0]):
                    key = (k,)
                    g = index.get(key)
                    if g is None:
                        g = len(index)
                        index[key] = g
                    ords_list.append(g)
            else:
                cols = [chunk.column_values(p) for p in self.gpos]
                for key in zip(*cols, strict=False):
                    g = index.get(key)
                    if g is None:
                        g = len(index)
                        index[key] = g
                    ords_list.append(g)
            ords = _np.asarray(ords_list, dtype=_np.intp)
        capacity = len(index)
        for st in self.specs:
            st.ensure(capacity)
        for st, values in zip(self.specs, fetched, strict=False):
            st.apply(ords, values)
        return True

    def demote(self) -> dict[tuple, list["_Accumulator"]]:
        """Convert to row-accumulator groups, byte-for-byte equal."""
        groups: dict[tuple, list[_Accumulator]] = {}
        for key, g in self.index.items():
            accs = []
            for st in self.specs:
                acc = _Accumulator(st.func)
                st.demote_into(acc, g)
                accs.append(acc)
            groups[key] = accs
        return groups


class HashAggregate(Operator):
    """Hash-based grouping; with ``group_by=[]`` it is a scalar aggregate."""

    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggs: Sequence[AggSpec]):
        if not aggs and not group_by:
            raise PlanningError("aggregate needs group keys or aggregates")
        self.child = child
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        self._group_positions = [
            child.schema.index_of(c) for c in self.group_by
        ]
        self._getters: list[Callable[[Row], object] | None] = []
        for spec in self.aggs:
            if spec.value is not None:
                self._getters.append(spec.value)
            elif spec.column is not None:
                pos = child.schema.index_of(spec.column)
                self._getters.append(lambda row, _p=pos: row[_p])
            else:
                self._getters.append(None)  # count(*)
        self.schema = Schema(
            aggregate_output_columns(child.schema, self.group_by, self.aggs)
        )
        self._vector_plan = self._build_vector_plan(child.schema)

    def _build_vector_plan(self, schema: Schema) -> list[tuple] | None:
        """Per-spec ``_SpecArrays`` constructor args, or None if any spec
        cannot be aggregated columnarly with exact row-path semantics."""
        if _np is None:
            return None
        plan: list[tuple] = []
        for spec in self.aggs:
            if spec.value is not None:
                if spec.vector is None:
                    return None
                if spec.func in ("min", "max") \
                        and spec.ctype is not ColumnType.FLOAT:
                    return None
                plan.append((spec.func, "vector", None, spec.vector, False))
            elif spec.column is not None:
                pos = schema.index_of(spec.column)
                ctype = schema.columns[pos].ctype
                if ctype is ColumnType.CHAR:
                    return None
                plan.append((spec.func, "col", pos, None,
                             ctype in _INT_TYPES))
            else:
                plan.append((spec.func, "star", None, None, False))
        return plan

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        keys = ", ".join(self.group_by) or "<scalar>"
        funcs = ", ".join(f"{s.func}({s.column or '*'})" for s in self.aggs)
        return f"HashAggregate([{keys}] {funcs})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        groups: dict[tuple, list[_Accumulator]] = {}
        gpos = self._group_positions
        for row in self.child.rows(ctx):
            ctx.charge_hash()
            key = tuple(row[p] for p in gpos)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func) for s in self.aggs]
                groups[key] = accs
            for acc, getter in zip(accs, self._getters, strict=False):
                acc.add(getter(row) if getter is not None else 1)
        yield from self._results(ctx, groups)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        groups: dict[tuple, list[_Accumulator]] = {}
        gpos = self._group_positions
        getters = self._getters
        vstate: _VectorState | None = None
        if self._vector_plan is not None:
            vstate = _VectorState(
                gpos, [_SpecArrays(*args) for args in self._vector_plan]
            )
        for batch in self.child.batches(ctx):
            ctx.charge_hash(len(batch))
            if vstate is not None:
                if isinstance(batch, Chunk) and vstate.update(batch):
                    continue
                # Inexact batch (row list, object column, NaN …): demote
                # the array state and finish tuple-at-a-time.
                groups = vstate.demote()
                vstate = None
            for row in batch:
                key = tuple(row[p] for p in gpos)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(s.func) for s in self.aggs]
                    groups[key] = accs
                for acc, getter in zip(accs, getters, strict=False):
                    acc.add(getter(row) if getter is not None else 1)
        if vstate is not None:
            out = list(self._vector_results(ctx, vstate))
        else:
            out = list(self._results(ctx, groups))
        names = self.schema.column_names
        for start in range(0, len(out), DEFAULT_BATCH_SIZE):
            yield Chunk.from_rows(names, out[start:start + DEFAULT_BATCH_SIZE])

    def _vector_results(self, ctx: ExecutionContext,
                        vstate: _VectorState) -> Iterator[Row]:
        """Finalize array state into output rows, in first-seen order —
        the same order the row-path dict would have produced."""
        if not vstate.index:
            yield from self._results(ctx, {})
            return
        for key, g in vstate.index.items():
            ctx.charge_emit()
            yield key + tuple(st.result(g) for st in vstate.specs)

    def _results(self, ctx: ExecutionContext,
                 groups: dict[tuple, list[_Accumulator]]) -> Iterator[Row]:
        """Finalize accumulators into output rows, charging emission."""
        if not groups and not self.group_by:
            # Scalar aggregates emit one row even on empty input.
            groups[()] = [_Accumulator(s.func) for s in self.aggs]
        for key, accs in groups.items():
            ctx.charge_emit()
            yield key + tuple(acc.result() for acc in accs)


def scalar_aggregate(child: Operator, aggs: Sequence[AggSpec]) -> HashAggregate:
    """Convenience wrapper: an aggregate with no grouping keys."""
    return HashAggregate(child, group_by=[], aggs=aggs)
