"""Physical execution engine: expressions, operators, measurement."""

from repro.exec.aggregates import AggSpec, HashAggregate, scalar_aggregate
from repro.exec.expressions import (
    And,
    Between,
    Comparison,
    CompareOp,
    InList,
    KeyRange,
    Not,
    NullRejecting,
    Or,
    Predicate,
    TruePredicate,
    column_getter,
    conjunction,
    extract_range,
    range_selector,
)
from repro.exec.iterator import (
    Batch,
    DEFAULT_BATCH_SIZE,
    Operator,
    explain,
)
from repro.exec.joins import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    NestedLoopJoin,
)
from repro.exec.misc import (
    Filter,
    Limit,
    MapProject,
    Materialize,
    Project,
    Rename,
    RowCounter,
)
from repro.exec.scans import FullTableScan, IndexScan, SortScan
from repro.exec.scheduler import (
    CooperativeScheduler,
    QueryRecord,
    WorkloadClient,
    WorkloadReport,
)
from repro.exec.sort import Sort
from repro.exec.stats import RunResult, StreamingRun, measure

__all__ = [
    "AggSpec",
    "And",
    "Batch",
    "Between",
    "DEFAULT_BATCH_SIZE",
    "Comparison",
    "CompareOp",
    "CooperativeScheduler",
    "Filter",
    "FullTableScan",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "InList",
    "KeyRange",
    "Limit",
    "MapProject",
    "Materialize",
    "MergeJoin",
    "NestedLoopJoin",
    "Not",
    "NullRejecting",
    "Operator",
    "Or",
    "Predicate",
    "Project",
    "QueryRecord",
    "Rename",
    "RowCounter",
    "RunResult",
    "StreamingRun",
    "WorkloadClient",
    "WorkloadReport",
    "range_selector",
    "Sort",
    "SortScan",
    "TruePredicate",
    "column_getter",
    "conjunction",
    "explain",
    "extract_range",
    "measure",
    "scalar_aggregate",
]
