"""Predicates and key ranges.

Predicates are small composable objects that *bind* against a schema into a
plain ``row -> bool`` closure, so per-row evaluation never does name
lookups.  For batch execution they compile into three progressively more
vectorized forms:

* :meth:`Predicate.bind_batch` — a *selector* over a list of rows (plus an
  optional candidate selection) returning the indices of qualifying rows;
* :meth:`Predicate.bind_filter` — the gather-free ``rows -> rows`` form,
  now a single default expressed through ``bind_batch``;
* :meth:`Predicate.bind_mask` / :meth:`Predicate.bind_chunk` — the
  columnar forms over a :class:`~repro.storage.chunk.Chunk`: one array
  comparison produces a boolean mask over a whole heap page, and
  ``bind_chunk`` narrows the chunk by selection vector without touching a
  single row tuple.

:func:`extract_range` splits a predicate into the key range an index can
serve plus the residual part that must be re-checked per tuple — the
contract between the planner and every index-driven access path
(classical, Sort, Switch and Smooth Scan alike).  :func:`range_selector`,
:func:`range_filter` and :func:`range_mask` are the corresponding compiled
forms of a bare :class:`KeyRange`.
"""

from __future__ import annotations

import enum
import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import PlanningError
from repro.storage.chunk import (
    Chunk,
    Mask,
    mask_and,
    mask_any,
    mask_from_bools,
    mask_isin,
    mask_not,
    mask_or,
    object_mask,
)
from repro.storage.types import Row, Schema

RowPredicate = Callable[[Row], bool]

#: ``(rows, candidate_indices | None) -> selected_indices``.  ``None``
#: candidates mean "all of ``rows``"; the result is always ascending.
BatchPredicate = Callable[..., "list[int]"]

#: ``rows -> qualifying rows`` (order-preserving); the gather-free batch
#: form used when slot positions are not needed downstream.
RowsFilter = Callable[[Sequence[Row]], "list[Row]"]

#: ``chunk -> mask | None`` over the chunk's logical rows; ``None`` means
#: "every row qualifies" (the free all-pass case).
MaskPredicate = Callable[[Chunk], Optional[Mask]]

#: ``chunk -> chunk | None``: narrow a chunk to qualifying rows via its
#: selection vector; ``None`` means no row qualified.
ChunkFilter = Callable[[Chunk], Optional[Chunk]]


def _scalar_vectorizable(value: object) -> bool:
    """True when an array comparison against ``value`` is exact."""
    return type(value) in (int, float)


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def fn(self) -> Callable[[object, object], bool]:
        """The Python comparison implementing this operator."""
        return {
            CompareOp.EQ: operator.eq,
            CompareOp.NE: operator.ne,
            CompareOp.LT: operator.lt,
            CompareOp.LE: operator.le,
            CompareOp.GT: operator.gt,
            CompareOp.GE: operator.ge,
        }[self]


class Predicate(ABC):
    """A boolean expression over one row."""

    @abstractmethod
    def bind(self, schema: Schema) -> RowPredicate:
        """Compile to a ``row -> bool`` closure for ``schema``."""

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        """Compile to a vectorized selector over a list of rows.

        The selector takes ``(rows, sel=None)`` where ``sel`` is an
        optional ascending list of candidate indices (``None`` meaning all
        rows) and returns the ascending list of indices whose rows
        satisfy the predicate.  The default implementation wraps
        :meth:`bind`; leaf predicates override it with inlined loops.
        """
        fn = self.bind(schema)

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows) if fn(row)]
            return [i for i in sel if fn(rows[i])]

        return select

    def bind_filter(self, schema: Schema) -> RowsFilter:
        """Compile to a ``rows -> qualifying rows`` batch filter.

        The gather-free sibling of :meth:`bind_batch` for consumers that
        do not need slot positions.  This is the *single* default for all
        predicate classes, expressed through :meth:`bind_batch` so each
        subclass maintains one vectorized implementation instead of a
        near-identical select/filter pair; the all-pass case returns the
        input batch unchanged.
        """
        select = self.bind_batch(schema)

        def filter_rows(rows: Sequence[Row]) -> list[Row]:
            sel = select(rows)
            if len(sel) == len(rows):
                return rows if isinstance(rows, list) else list(rows)
            return [rows[i] for i in sel]

        return filter_rows

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        """Compile to a columnar ``chunk -> mask | None`` evaluator.

        The mask covers the chunk's *logical* rows (selection applied);
        ``None`` means every row qualifies.  The default evaluates
        :meth:`bind` row-wise over the chunk's row view — exact for any
        predicate (this is what :class:`NullRejecting` rides, keeping its
        three-valued-logic semantics byte-for-byte) — while leaf
        predicates override it with whole-column array comparisons.
        """
        fn = self.bind(schema)

        def mask_of(chunk: Chunk) -> Mask:
            return mask_from_bools(
                (fn(row) for row in chunk.to_rows()), len(chunk)
            )

        return mask_of

    def bind_chunk(self, schema: Schema) -> ChunkFilter:
        """Compile to a ``chunk -> chunk | None`` columnar filter.

        Narrows by selection vector — qualifying rows are never copied,
        an all-pass mask returns the input chunk itself, and ``None``
        signals an empty result (the batch contract forbids yielding it).
        """
        mask_of = self.bind_mask(schema)

        def filter_chunk(chunk: Chunk) -> Chunk | None:
            mask = mask_of(chunk)
            if mask is None:
                return chunk
            return chunk.filter(mask)

        return filter_chunk

    @abstractmethod
    def columns(self) -> set[str]:
        """Names of all columns the predicate references."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])


class TruePredicate(Predicate):
    """Matches every row (the default when no filter is given)."""

    def bind(self, schema: Schema) -> RowPredicate:
        return lambda row: True

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        def select(rows: Sequence[Row], sel=None) -> list[int]:
            return list(range(len(rows))) if sel is None else list(sel)

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        return lambda chunk: None

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TRUE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> value``."""

    column: str
    op: CompareOp
    value: object

    def bind(self, schema: Schema) -> RowPredicate:
        idx = schema.index_of(self.column)
        fn = self.op.fn
        value = self.value
        return lambda row: fn(row[idx], value)

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        idx = schema.index_of(self.column)
        fn = self.op.fn
        value = self.value

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows) if fn(row[idx], value)]
            return [i for i in sel if fn(rows[i][idx], value)]

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        idx = schema.index_of(self.column)
        fn = self.op.fn
        value = self.value
        vectorizable = _scalar_vectorizable(value)

        def mask_of(chunk: Chunk) -> Mask:
            arr = chunk.array(idx) if vectorizable else None
            if arr is not None:
                return fn(arr, value)
            return object_mask(
                chunk.column_values(idx), lambda v: fn(v, value)
            )

        return mask_of

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class Between(Predicate):
    """``lo <(=) column <(=) hi``."""

    column: str
    lo: object
    hi: object
    lo_inclusive: bool = True
    hi_inclusive: bool = False

    def bind(self, schema: Schema) -> RowPredicate:
        idx = schema.index_of(self.column)
        lo, hi = self.lo, self.hi
        lo_ok = operator.ge if self.lo_inclusive else operator.gt
        hi_ok = operator.le if self.hi_inclusive else operator.lt
        return lambda row: lo_ok(row[idx], lo) and hi_ok(row[idx], hi)

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        idx = schema.index_of(self.column)
        lo, hi = self.lo, self.hi
        lo_ok = operator.ge if self.lo_inclusive else operator.gt
        hi_ok = operator.le if self.hi_inclusive else operator.lt

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [
                    i for i, row in enumerate(rows)
                    if lo_ok(row[idx], lo) and hi_ok(row[idx], hi)
                ]
            return [
                i for i in sel
                if lo_ok(rows[i][idx], lo) and hi_ok(rows[i][idx], hi)
            ]

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        idx = schema.index_of(self.column)
        lo, hi = self.lo, self.hi
        lo_ok = operator.ge if self.lo_inclusive else operator.gt
        hi_ok = operator.le if self.hi_inclusive else operator.lt
        vectorizable = _scalar_vectorizable(lo) and _scalar_vectorizable(hi)

        def mask_of(chunk: Chunk) -> Mask:
            arr = chunk.array(idx) if vectorizable else None
            if arr is not None:
                return lo_ok(arr, lo) & hi_ok(arr, hi)
            return object_mask(
                chunk.column_values(idx),
                lambda v: lo_ok(v, lo) and hi_ok(v, hi),
            )

        return mask_of

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        if self.lo_inclusive and self.hi_inclusive:
            return f"{self.column} BETWEEN {self.lo!r} AND {self.hi!r}"
        lo_op = ">=" if self.lo_inclusive else ">"
        hi_op = "<=" if self.hi_inclusive else "<"
        return (f"{self.column} {lo_op} {self.lo!r} AND "
                f"{self.column} {hi_op} {self.hi!r}")


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (values)``."""

    column: str
    values: tuple

    def bind(self, schema: Schema) -> RowPredicate:
        idx = schema.index_of(self.column)
        values = frozenset(self.values)
        return lambda row: row[idx] in values

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        idx = schema.index_of(self.column)
        values = frozenset(self.values)

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows) if row[idx] in values]
            return [i for i in sel if rows[i][idx] in values]

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        idx = schema.index_of(self.column)
        values = tuple(self.values)
        return lambda chunk: mask_isin(chunk.data_column(idx), values)

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        items = ", ".join(repr(v) for v in self.values)
        return f"{self.column} IN ({items})"


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, parts: Sequence[Predicate]):
        self.parts = tuple(parts)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = [p.bind(schema) for p in self.parts]
        return lambda row: all(f(row) for f in bound)

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        bound = [p.bind_batch(schema) for p in self.parts]

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            for f in bound:
                sel = f(rows, sel)
                if not sel:
                    return []
            return list(range(len(rows))) if sel is None else sel

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        bound = [p.bind_mask(schema) for p in self.parts]

        def mask_of(chunk: Chunk) -> Mask | None:
            mask: Mask | None = None
            for f in bound:
                mask = mask_and(mask, f(chunk))
                if mask is not None and not mask_any(mask):
                    return mask
            return mask

        return mask_of

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, parts: Sequence[Predicate]):
        self.parts = tuple(parts)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = [p.bind(schema) for p in self.parts]
        return lambda row: any(f(row) for f in bound)

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        bound = [p.bind_batch(schema) for p in self.parts]

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            remaining = list(range(len(rows))) if sel is None else list(sel)
            matched: list[int] = []
            for f in bound:
                if not remaining:
                    break
                hits = f(rows, remaining)
                if hits:
                    matched.extend(hits)
                    hit_set = set(hits)
                    remaining = [i for i in remaining if i not in hit_set]
            matched.sort()
            return matched

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        bound = [p.bind_mask(schema) for p in self.parts]

        def mask_of(chunk: Chunk) -> Mask | None:
            mask: Mask | None = None
            first = True
            for f in bound:
                part = f(chunk)
                if part is None:
                    return None
                mask = part if first else mask_or(mask, part)
                first = False
            return mask

        return mask_of

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class NullRejecting(Predicate):
    """WHERE semantics over nullable rows: referenced NULLs fail the row.

    Wraps a predicate so that an atom touching ``None`` (e.g. the
    null-padded output of a left join) counts as not matching —
    approximating SQL's three-valued logic with explicit column checks,
    so genuine type errors in the predicate still surface loudly.  The
    UNKNOWN handling distributes through conjunctions and disjunctions
    (``TRUE OR UNKNOWN`` keeps the row; ``TRUE AND UNKNOWN`` drops it)
    and through negations via De Morgan (``NOT (FALSE AND UNKNOWN)``
    keeps the row).  Only the planner places this, and only above outer
    joins; everywhere else predicates stay unwrapped so their
    specialized fast paths keep applying.
    """

    def __init__(self, part: Predicate):
        self.part = part

    def bind(self, schema: Schema) -> RowPredicate:
        part = self.part
        if isinstance(part, Not):
            inner = part.part
            if isinstance(inner, And):
                part = Or([Not(p) for p in inner.parts])
            elif isinstance(inner, Or):
                part = And([Not(p) for p in inner.parts])
            elif isinstance(inner, Not):
                return NullRejecting(inner.part).bind(schema)
        if isinstance(part, (And, Or)):
            bound = [NullRejecting(p).bind(schema) for p in part.parts]
            if isinstance(part, And):
                return lambda row: all(f(row) for f in bound)
            return lambda row: any(f(row) for f in bound)
        fn = part.bind(schema)
        positions = sorted(schema.index_of(c) for c in part.columns())

        def null_safe(row: Row) -> bool:
            for pos in positions:
                if row[pos] is None:
                    return False
            return fn(row)

        return null_safe

    def columns(self) -> set[str]:
        return self.part.columns()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.part)


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, part: Predicate):
        self.part = part

    def bind(self, schema: Schema) -> RowPredicate:
        bound = self.part.bind(schema)
        return lambda row: not bound(row)

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        bound = self.part.bind_batch(schema)

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            candidates = range(len(rows)) if sel is None else sel
            hit_set = set(bound(rows, sel))
            return [i for i in candidates if i not in hit_set]

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        bound = self.part.bind_mask(schema)
        return lambda chunk: mask_not(bound(chunk), len(chunk))

    def columns(self) -> set[str]:
        return self.part.columns()

    def __repr__(self) -> str:
        return f"NOT ({self.part!r})"


@dataclass(frozen=True)
class StringMatch(Predicate):
    """SQL LIKE-style matching: prefix, suffix or substring.

    ``kind`` is one of ``"prefix"`` (``LIKE 'x%'``), ``"suffix"``
    (``LIKE '%x'``) or ``"contains"`` (``LIKE '%x%'``).
    """

    column: str
    kind: str
    value: str

    def __post_init__(self) -> None:
        if self.kind not in ("prefix", "suffix", "contains"):
            raise PlanningError(
                "StringMatch kind must be prefix/suffix/contains, "
                f"got {self.kind!r}"
            )

    def bind(self, schema: Schema) -> RowPredicate:
        idx = schema.index_of(self.column)
        value = self.value
        if self.kind == "prefix":
            return lambda row: row[idx].startswith(value)
        if self.kind == "suffix":
            return lambda row: row[idx].endswith(value)
        return lambda row: value in row[idx]

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        idx = schema.index_of(self.column)
        value = self.value
        if self.kind == "prefix":
            test = lambda v: v.startswith(value)  # noqa: E731
        elif self.kind == "suffix":
            test = lambda v: v.endswith(value)  # noqa: E731
        else:
            test = lambda v: value in v  # noqa: E731
        return lambda chunk: object_mask(chunk.column_values(idx), test)

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pattern = {
            "prefix": f"{self.value}%",
            "suffix": f"%{self.value}",
            "contains": f"%{self.value}%",
        }[self.kind]
        return f"{self.column} LIKE {pattern!r}"


@dataclass(frozen=True)
class ColumnComparison(Predicate):
    """``left_column <op> right_column`` — two columns of the same row.

    The predicate class whose selectivity no per-column statistic can
    estimate; TPC-H's correlated dates (``l_commitdate < l_receiptdate``)
    flow through here, and the optimizer's guess is a blind default.
    """

    left: str
    op: CompareOp
    right: str

    def bind(self, schema: Schema) -> RowPredicate:
        li = schema.index_of(self.left)
        ri = schema.index_of(self.right)
        fn = self.op.fn
        return lambda row: fn(row[li], row[ri])

    def bind_batch(self, schema: Schema) -> BatchPredicate:
        li = schema.index_of(self.left)
        ri = schema.index_of(self.right)
        fn = self.op.fn

        def select(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows) if fn(row[li], row[ri])]
            return [i for i in sel if fn(rows[i][li], rows[i][ri])]

        return select

    def bind_mask(self, schema: Schema) -> MaskPredicate:
        li = schema.index_of(self.left)
        ri = schema.index_of(self.right)
        fn = self.op.fn

        def mask_of(chunk: Chunk) -> Mask:
            left = chunk.array(li)
            right = chunk.array(ri)
            if left is not None and right is not None:
                return fn(left, right)
            lvals = chunk.column_values(li)
            rvals = chunk.column_values(ri)
            return mask_from_bools(
                (fn(a, b) for a, b in zip(lvals, rvals, strict=False)), len(lvals)
            )

        return mask_of

    def columns(self) -> set[str]:
        return {self.left, self.right}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class KeyRange:
    """A (possibly half-open) key interval an index scan can serve.

    ``None`` bounds mean unbounded on that side.
    """

    lo: object | None = None
    hi: object | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = False

    @classmethod
    def all(cls) -> "KeyRange":
        """The unbounded range (a full index sweep)."""
        return cls()

    @classmethod
    def equal(cls, value: object) -> "KeyRange":
        """The point range ``[value, value]``."""
        return cls(lo=value, hi=value, lo_inclusive=True, hi_inclusive=True)

    def contains(self, key: object) -> bool:
        """True when ``key`` lies inside the range."""
        if self.lo is not None:
            if self.lo_inclusive:
                if key < self.lo:
                    return False
            elif key <= self.lo:
                return False
        if self.hi is not None:
            if self.hi_inclusive:
                if key > self.hi:
                    return False
            elif key >= self.hi:
                return False
        return True

    def intersect(self, other: "KeyRange") -> "KeyRange":
        """The intersection of two ranges (may be empty)."""
        lo, lo_inc = self.lo, self.lo_inclusive
        if other.lo is not None and (lo is None or other.lo > lo or (
                other.lo == lo and not other.lo_inclusive)):
            lo, lo_inc = other.lo, other.lo_inclusive
        hi, hi_inc = self.hi, self.hi_inclusive
        if other.hi is not None and (hi is None or other.hi < hi or (
                other.hi == hi and not other.hi_inclusive)):
            hi, hi_inc = other.hi, other.hi_inclusive
        return KeyRange(lo, hi, lo_inc, hi_inc)


def range_selector(rng: KeyRange, col_pos: int) -> BatchPredicate:
    """Compile ``rng`` into a vectorized selector on column ``col_pos``.

    The returned function takes ``(rows, sel=None)`` and returns the
    ascending indices of rows whose key at ``col_pos`` lies inside the
    range — the batch counterpart of ``rng.contains(row[col_pos])``, with
    the bound checks specialized once instead of re-tested per tuple.
    """
    lo, hi = rng.lo, rng.hi
    lo_ok = operator.ge if rng.lo_inclusive else operator.gt
    hi_ok = operator.le if rng.hi_inclusive else operator.lt

    if lo is None and hi is None:
        def select_all(rows: Sequence[Row], sel=None) -> list[int]:
            return list(range(len(rows))) if sel is None else list(sel)
        return select_all

    if lo is None:
        def select_hi(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows)
                        if hi_ok(row[col_pos], hi)]
            return [i for i in sel if hi_ok(rows[i][col_pos], hi)]
        return select_hi

    if hi is None:
        def select_lo(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows)
                        if lo_ok(row[col_pos], lo)]
            return [i for i in sel if lo_ok(rows[i][col_pos], lo)]
        return select_lo

    # Both bounds: native chained comparisons per inclusivity variant.
    if rng.lo_inclusive and not rng.hi_inclusive:
        def select_incl_excl(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows)
                        if lo <= row[col_pos] < hi]
            return [i for i in sel if lo <= rows[i][col_pos] < hi]
        return select_incl_excl

    if rng.lo_inclusive and rng.hi_inclusive:
        def select_incl_incl(rows: Sequence[Row], sel=None) -> list[int]:
            if sel is None:
                return [i for i, row in enumerate(rows)
                        if lo <= row[col_pos] <= hi]
            return [i for i in sel if lo <= rows[i][col_pos] <= hi]
        return select_incl_incl

    def select_both(rows: Sequence[Row], sel=None) -> list[int]:
        if sel is None:
            return [
                i for i, row in enumerate(rows)
                if lo_ok(row[col_pos], lo) and hi_ok(row[col_pos], hi)
            ]
        return [
            i for i in sel
            if lo_ok(rows[i][col_pos], lo) and hi_ok(rows[i][col_pos], hi)
        ]
    return select_both


def range_filter(rng: KeyRange, col_pos: int) -> RowsFilter:
    """Compile ``rng`` into a gather-free ``rows -> qualifying rows`` filter.

    The :func:`range_selector` sibling for consumers that do not need slot
    positions (e.g. an unordered eager Smooth Scan, where no auxiliary
    cache consumes TIDs): one pass with native chained comparisons.
    """
    lo, hi = rng.lo, rng.hi
    if lo is None and hi is None:
        return lambda rows: rows  # type: ignore[return-value]
    if lo is None:
        if rng.hi_inclusive:
            return lambda rows: [r for r in rows if r[col_pos] <= hi]
        return lambda rows: [r for r in rows if r[col_pos] < hi]
    if hi is None:
        if rng.lo_inclusive:
            return lambda rows: [r for r in rows if r[col_pos] >= lo]
        return lambda rows: [r for r in rows if r[col_pos] > lo]
    if rng.lo_inclusive:
        if rng.hi_inclusive:
            return lambda rows: [r for r in rows if lo <= r[col_pos] <= hi]
        return lambda rows: [r for r in rows if lo <= r[col_pos] < hi]
    if rng.hi_inclusive:
        return lambda rows: [r for r in rows if lo < r[col_pos] <= hi]
    return lambda rows: [r for r in rows if lo < r[col_pos] < hi]


def range_mask(rng: KeyRange, col_pos: int) -> MaskPredicate:
    """Compile ``rng`` into a columnar ``chunk -> mask | None`` evaluator.

    The :func:`range_selector` sibling for chunk consumers: one or two
    whole-column array comparisons per chunk instead of per-tuple bound
    checks.  ``None`` means every row qualifies (the unbounded range).
    """
    lo, hi = rng.lo, rng.hi
    if lo is None and hi is None:
        return lambda chunk: None
    lo_ok = operator.ge if rng.lo_inclusive else operator.gt
    hi_ok = operator.le if rng.hi_inclusive else operator.lt
    vectorizable = (
        (lo is None or _scalar_vectorizable(lo))
        and (hi is None or _scalar_vectorizable(hi))
    )
    contains = rng.contains

    def mask_of(chunk: Chunk) -> Mask:
        arr = chunk.array(col_pos) if vectorizable else None
        if arr is not None:
            if lo is None:
                return hi_ok(arr, hi)
            if hi is None:
                return lo_ok(arr, lo)
            return lo_ok(arr, lo) & hi_ok(arr, hi)
        return object_mask(chunk.column_values(col_pos), contains)

    return mask_of


def range_chunk_filter(rng: KeyRange, col_pos: int) -> ChunkFilter:
    """Compile ``rng`` into a ``chunk -> chunk | None`` columnar filter.

    Narrows by selection vector; all-pass returns the input chunk itself
    and ``None`` signals that no row fell inside the range.
    """
    mask_of = range_mask(rng, col_pos)

    def filter_chunk(chunk: Chunk) -> Chunk | None:
        mask = mask_of(chunk)
        if mask is None:
            return chunk
        return chunk.filter(mask)

    return filter_chunk


def _range_of_comparison(cmp: Comparison) -> KeyRange | None:
    """The key range implied by one comparison, if any."""
    if cmp.op is CompareOp.EQ:
        return KeyRange.equal(cmp.value)
    if cmp.op is CompareOp.LT:
        return KeyRange(hi=cmp.value, hi_inclusive=False)
    if cmp.op is CompareOp.LE:
        return KeyRange(hi=cmp.value, hi_inclusive=True)
    if cmp.op is CompareOp.GT:
        return KeyRange(lo=cmp.value, lo_inclusive=False)
    if cmp.op is CompareOp.GE:
        return KeyRange(lo=cmp.value, lo_inclusive=True)
    return None  # NE is not a range


def extract_range(predicate: Predicate,
                  column: str) -> tuple[KeyRange | None, Predicate]:
    """Split ``predicate`` into an index range on ``column`` + a residual.

    Returns ``(range, residual)``; ``range`` is ``None`` when the predicate
    does not constrain ``column`` with a usable range (then the residual is
    the whole predicate).  Only top-level conjunctions are decomposed —
    the same simplification production planners start from.
    """
    if isinstance(predicate, Comparison) and predicate.column == column:
        rng = _range_of_comparison(predicate)
        if rng is not None:
            return rng, TruePredicate()
        return None, predicate
    if isinstance(predicate, Between) and predicate.column == column:
        return (
            KeyRange(predicate.lo, predicate.hi,
                     predicate.lo_inclusive, predicate.hi_inclusive),
            TruePredicate(),
        )
    if isinstance(predicate, InList) and predicate.column == column \
            and predicate.values:
        # IN (v1..vn) is bounded by [min, max]; the range over-approximates
        # membership, so the whole InList stays as the residual re-check.
        # This is what lets a SQL ``IN`` filter ride an index/smooth path
        # instead of forcing a full scan.
        try:
            lo, hi = min(predicate.values), max(predicate.values)
        except TypeError:
            # Mixed/unorderable values have no key range; membership via
            # the frozenset-based bind still works, so stay opaque.
            return None, predicate
        return (
            KeyRange(lo, hi, lo_inclusive=True, hi_inclusive=True),
            predicate,
        )
    if isinstance(predicate, And):
        combined: KeyRange | None = None
        residual: list[Predicate] = []
        for part in predicate.parts:
            rng, rest = extract_range(part, column)
            if rng is None:
                residual.append(part)
            else:
                combined = rng if combined is None else combined.intersect(rng)
                if not isinstance(rest, TruePredicate):
                    residual.append(rest)
        if combined is None:
            return None, predicate
        if not residual:
            return combined, TruePredicate()
        if len(residual) == 1:
            return combined, residual[0]
        return combined, And(residual)
    return None, predicate


def conjunction(parts: Iterable[Predicate]) -> Predicate:
    """AND together ``parts``, simplifying the empty and singleton cases.

    Nested conjunctions are flattened, so chained ``conjunction`` calls
    (e.g. repeated ``Query.where``) keep every conjunct at the top
    level — where planners split, push down and extract ranges.
    """
    flat: list[Predicate] = []
    for p in parts:
        if isinstance(p, TruePredicate):
            continue
        if isinstance(p, And):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def column_getter(schema: Schema, column: str) -> Callable[[Row], object]:
    """A fast ``row -> value`` accessor for one column."""
    idx = schema.index_of(column)
    return lambda row: row[idx]


def require_columns(schema: Schema, predicate: Predicate) -> None:
    """Raise PlanningError if the predicate references unknown columns."""
    missing = [c for c in predicate.columns() if not schema.has_column(c)]
    if missing:
        raise PlanningError(
            f"predicate references columns {missing} absent from schema "
            f"{schema.column_names}"
        )
