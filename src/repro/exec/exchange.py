"""Shard-parallel execution: Exchange, UnionAll and ShardedScan.

One logical scan over a partitioned table becomes N physical scans —
one per shard, each a :class:`ShardedScan` wrapping whichever access
path the planner chose for that shard — merged by an :class:`Exchange`.
The exchange is the intra-query parallelism model of this engine:

* **Cooperative, chunk-granular, deterministic.**  Shard scans are
  pulled in round-robin order, one batch per turn, on the caller's
  thread — the same interleaving discipline the
  :class:`~repro.exec.scheduler.CooperativeScheduler` applies between
  queries, applied within one.  No threads, no nondeterminism.
* **Overlapped simulated time.**  While K shards are still producing,
  each worker's charges advance the shared clock by ``1/K`` of their
  serial cost (:attr:`~repro.storage.disk.SimClock.scale`): K shard
  workers progress concurrently, so one unit of per-shard work moves
  *completion time* by 1/K.  As shards drain, survivors speed up less
  (K shrinks) — the straggler tail of real parallel scans.  The
  coordinator's merge cost (:meth:`~repro.context.ExecutionContext.
  charge_exchange` per row) stays unscaled: it is the serial fraction,
  the Amdahl term the shard-scaling experiment quantifies.
* **One spindle per shard.**  Each shard's disk-head position is saved
  after its slice and restored before its next one, so interleaved
  shards do not pay each other's seek penalties — shard files have
  disjoint file ids, making the swap exact.
* **Conserved accounting.**  Every pull runs inside a per-shard
  attribution window (:meth:`~repro.runtime.EngineRuntime.
  begin_shard_attribution`), nested in the query's own window; the
  merge cost is charged inside the producing shard's window.  Summing
  the per-shard ledgers therefore reproduces the parent ledger — and
  the runtime totals — exactly for integer counters and to float
  round-off for milliseconds.

:class:`UnionAll` is the serial baseline: same children, concatenated
one after another at full cost, no overlap.  The gap between the two is
the measured speedup of ``experiments/shards.py``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.context import ExecutionContext
from repro.errors import ExecutionError
from repro.exec.iterator import Batch, Chunk, Operator
from repro.runtime import CostLedger
from repro.storage.types import Row


def _check_children(children: Sequence[Operator], who: str) -> None:
    if not children:
        raise ExecutionError(f"{who} requires at least one child")
    schema = children[0].schema
    for child in children[1:]:
        if child.schema.column_names != schema.column_names:
            raise ExecutionError(
                f"{who} children must share one schema; "
                f"{children[0].name()} and {child.name()} differ"
            )


class ShardedScan(Operator):
    """One shard's scan, labeled with its shard identity.

    A thin wrapper around whichever access path the planner chose for
    this shard — it delegates both protocols unchanged — existing so
    ``explain()`` output and telemetry name the shard, and so the
    Exchange can attribute the slice to the right ledger without
    inspecting the child.
    """

    def __init__(self, child: Operator, shard_name: str,
                 shard_index: int):
        self.child = child
        self.shard_name = shard_name
        self.shard_index = shard_index
        self.schema = child.schema

    def name(self) -> str:
        return f"ShardedScan({self.shard_name})"

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.rows(ctx)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return self.child.batches(ctx)


class UnionAll(Operator):
    """Concatenate children's streams, in order, at serial cost.

    The unsharded semantics of an exchange without its parallelism:
    child *i+1* starts only after child *i* is exhausted, every charge
    lands at scale 1.  Correctness baseline (multiset-equal output) and
    cost baseline (the exchange's speedup denominator) in one.
    """

    def __init__(self, children: Sequence[Operator]):
        _check_children(children, "UnionAll")
        self._children = tuple(children)
        self.schema = self._children[0].schema

    def name(self) -> str:
        return f"UnionAll({len(self._children)})"

    def children(self) -> tuple[Operator, ...]:
        return self._children

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        for child in self._children:
            yield from child.rows(ctx)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        for child in self._children:
            yield from child.batches(ctx)


class Exchange(Operator):
    """Merge N shard scans, interleaved round-robin, overlapped in time.

    After a run, :attr:`shard_ledgers` holds one
    :class:`~repro.runtime.CostLedger` per child with that shard's
    share of the charges (merge cost included); their sum reproduces
    the query ledger.  See the module docstring for the execution
    model.
    """

    def __init__(self, children: Sequence[Operator],
                 table_name: str | None = None,
                 scheme: str | None = None):
        _check_children(children, "Exchange")
        self._children = tuple(children)
        self.table_name = table_name
        self.scheme = scheme
        self.schema = self._children[0].schema
        #: Per-shard cost breakdown of the most recent run.
        self.shard_ledgers: tuple[CostLedger, ...] = ()

    def name(self) -> str:
        origin = f"{self.table_name}, " if self.table_name else ""
        return (f"Exchange({origin}{len(self._children)} shards, "
                f"{self.scheme or 'round_robin'})")

    def children(self) -> tuple[Operator, ...]:
        return self._children

    def _shard_label(self, index: int) -> str:
        child = self._children[index]
        if isinstance(child, ShardedScan):
            return child.shard_name
        return f"shard{index}"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        """Row protocol: the same interleaving, flattened per batch."""
        for batch in self.batches(ctx):
            yield from (batch.to_rows() if isinstance(batch, Chunk)
                        else batch)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        runtime = ctx.runtime
        clock = ctx.clock
        disk = ctx.disk
        tracer = runtime.tracer
        n = len(self._children)
        ledgers = tuple(CostLedger() for _ in range(n))
        self.shard_ledgers = ledgers
        iters = [child.batches(ctx) for child in self._children]
        heads: list[tuple[int, int] | None] = [None] * n
        produced = [0] * n
        if tracer.enabled:
            for i in range(n):
                tracer.emit("shard.start", tracer.current_query_id,
                            shard=self._shard_label(i),
                            shards=n, op=self.name())
        active = list(range(n))
        turn = 0
        while active:
            if turn >= len(active):
                turn = 0
            i = active[turn]
            runtime.begin_shard_attribution(ledgers[i])
            try:
                saved_scale = clock.scale
                saved_head = disk.head_state()
                disk.set_head_state(heads[i])
                clock.scale = saved_scale / len(active)
                try:
                    batch = next(iters[i], None)
                finally:
                    clock.scale = saved_scale
                    heads[i] = disk.head_state()
                    disk.set_head_state(saved_head)
                if batch is not None:
                    # Coordinator merge work: serial (unscaled), but
                    # charged inside the producing shard's window so
                    # the per-shard ledgers still sum to the totals.
                    ctx.charge_exchange(len(batch))
            finally:
                runtime.end_shard_attribution()
            if batch is None:
                del active[turn]
                if tracer.enabled:
                    tracer.emit("shard.finish", tracer.current_query_id,
                                value=ledgers[i].total_ms,
                                shard=self._shard_label(i),
                                rows=produced[i],
                                io_ms=ledgers[i].io_ms,
                                cpu_ms=ledgers[i].cpu_ms,
                                pages_read=ledgers[i].disk.pages_read)
                continue
            produced[i] += len(batch)
            turn += 1
            yield batch
