"""The Sort operator.

A blocking in-memory sort that falls back to a simulated external merge
sort (write runs + read back, both sequential) when the input exceeds
``work_mem``.  This is the "posterior sorting" cost that Full Scan and
Sort Scan pay under an ``ORDER BY`` in Figure 5a while Smooth Scan, which
already emits in key order, does not.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.iterator import Batch, DEFAULT_BATCH_SIZE, Operator
from repro.storage.types import Row


class Sort(Operator):
    """Sort child rows by one or more ``(column, ascending)`` keys."""

    def __init__(self, child: Operator,
                 keys: Sequence[tuple[str, bool]] | Sequence[str]):
        if not keys:
            raise PlanningError("Sort needs at least one key")
        self.child = child
        self.schema = child.schema
        self.keys: list[tuple[str, bool]] = [
            (k, True) if isinstance(k, str) else (k[0], bool(k[1]))
            for k in keys
        ]
        for column, _asc in self.keys:
            self.schema.index_of(column)  # validate eagerly

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        order = ", ".join(
            f"{c}{'' if asc else ' DESC'}" for c, asc in self.keys
        )
        return f"Sort({order})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        yield from self._sorted(ctx, list(self.child.rows(ctx)))

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        data = [row for batch in self.child.batches(ctx) for row in batch]
        data = self._sorted(ctx, data)
        for start in range(0, len(data), DEFAULT_BATCH_SIZE):
            yield data[start:start + DEFAULT_BATCH_SIZE]

    def _sorted(self, ctx: ExecutionContext, data: list[Row]) -> list[Row]:
        """Sort the materialized input in place, charging compare + spill."""
        n = len(data)
        if n > 1:
            # Stable multi-key sort: apply keys last-to-first.
            for column, ascending in reversed(self.keys):
                idx = self.schema.index_of(column)
                data.sort(key=lambda row: row[idx], reverse=not ascending)
            ctx.charge_compare(n * max(1, (n - 1).bit_length()))
            self._charge_spill(ctx, n)
        return data

    def _charge_spill(self, ctx: ExecutionContext, n_rows: int) -> None:
        """Charge external-sort I/O when the input exceeds work_mem."""
        tuple_size = self.schema.tuple_size(ctx.config.tuple_header)
        data_pages = math.ceil(
            n_rows * tuple_size / ctx.config.usable_page_bytes
        )
        if data_pages > ctx.config.work_mem_pages:
            ctx.disk.spill(data_pages)
