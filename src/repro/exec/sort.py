"""The Sort operator.

A blocking in-memory sort that falls back to a simulated external merge
sort (write runs + read back, both sequential) when the input exceeds
``work_mem``.  This is the "posterior sorting" cost that Full Scan and
Sort Scan pay under an ``ORDER BY`` in Figure 5a while Smooth Scan, which
already emits in key order, does not.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.iterator import Batch, Chunk, DEFAULT_BATCH_SIZE, Operator
from repro.storage.types import Row

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class Sort(Operator):
    """Sort child rows by one or more ``(column, ascending)`` keys."""

    def __init__(self, child: Operator,
                 keys: Sequence[tuple[str, bool]] | Sequence[str]):
        if not keys:
            raise PlanningError("Sort needs at least one key")
        self.child = child
        self.schema = child.schema
        self.keys: list[tuple[str, bool]] = [
            (k, True) if isinstance(k, str) else (k[0], bool(k[1]))
            for k in keys
        ]
        for column, _asc in self.keys:
            self.schema.index_of(column)  # validate eagerly

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        order = ", ".join(
            f"{c}{'' if asc else ' DESC'}" for c, asc in self.keys
        )
        return f"Sort({order})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        yield from self._sorted(ctx, list(self.child.rows(ctx)))

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        batches = list(self.child.batches(ctx))
        if batches and all(isinstance(b, Chunk) for b in batches):
            merged = Chunk.concat(batches)
            perm = self._columnar_perm(merged)
            if perm is not None:
                n = len(merged)
                if n > 1:
                    ctx.charge_compare(n * max(1, (n - 1).bit_length()))
                    self._charge_spill(ctx, n)
                    merged = merged.take(perm)
                for start in range(0, n, DEFAULT_BATCH_SIZE):
                    yield merged[start:start + DEFAULT_BATCH_SIZE]
                return
        data = [row for batch in batches for row in batch]
        data = self._sorted(ctx, data)
        for start in range(0, len(data), DEFAULT_BATCH_SIZE):
            yield data[start:start + DEFAULT_BATCH_SIZE]

    def _columnar_perm(self, chunk: Chunk):
        """Stable multi-key sort permutation via successive argsorts.

        Returns ``None`` when ineligible — a descending key, or a key
        column that is not array-backed — in which case the caller falls
        back to the row sort.  Successive stable argsort passes applied
        last-key-first produce exactly the permutation of the equivalent
        chain of stable ``list.sort`` calls.
        """
        if _np is None:
            return None
        positions = []
        for column, ascending in self.keys:
            if not ascending:
                return None
            pos = self.schema.index_of(column)
            if chunk.array(pos) is None:
                return None
            positions.append(pos)
        perm = _np.arange(len(chunk))
        for pos in reversed(positions):
            col = chunk.array(pos)
            perm = perm[_np.argsort(col[perm], kind="stable")]
        return perm

    def _sorted(self, ctx: ExecutionContext, data: list[Row]) -> list[Row]:
        """Sort the materialized input in place, charging compare + spill."""
        n = len(data)
        if n > 1:
            # Stable multi-key sort: apply keys last-to-first.
            for column, ascending in reversed(self.keys):
                idx = self.schema.index_of(column)
                data.sort(key=lambda row: row[idx], reverse=not ascending)
            ctx.charge_compare(n * max(1, (n - 1).bit_length()))
            self._charge_spill(ctx, n)
        return data

    def _charge_spill(self, ctx: ExecutionContext, n_rows: int) -> None:
        """Charge external-sort I/O when the input exceeds work_mem."""
        tuple_size = self.schema.tuple_size(ctx.config.tuple_header)
        data_pages = math.ceil(
            n_rows * tuple_size / ctx.config.usable_page_bytes
        )
        if data_pages > ctx.config.work_mem_pages:
            ctx.disk.spill(data_pages)
