"""Deterministic cooperative scheduling of concurrent queries.

The serving scenario the ROADMAP aims at — many clients on one engine —
needs queries that *contend*: one client's random index probes seek the
shared disk head away from another's sequential run, and buffer
evictions land on whoever happens to be resident.  The shared
:class:`~repro.runtime.EngineRuntime` models exactly that, and
per-query :class:`~repro.runtime.CostLedger`\\ s keep each query's
measurement isolated; what remains is *interleaving*.

:class:`CooperativeScheduler` interleaves batch-draining across N live
streams, fully deterministically — no threads, no wall clock, no
randomness.  Clients are visited round-robin in admission order; each
visit pulls ``weight × quantum`` operator batches from the client's
current query (priority-weighted scheduling is just ``weight > 1``).
Simulated time is the shared clock: a query's *latency* is the span of
shared-clock time from the moment its client started it to the moment
it drained — so a query that keeps being scheduled away from, or whose
pages keep being evicted, honestly shows the wait.

Clients are closed-loop: each replays its queue of queries
back-to-back, starting the next one the first time it is scheduled
after the previous finished.  A query is anything that produces a
:class:`~repro.exec.stats.StreamingRun` when started — a plan wrapped
by the caller, or a session-layer :class:`~repro.api.session.Cursor`
(the scheduler unwraps its ``stream``), so prepared statements and the
plan cache compose with scheduling::

    sched = CooperativeScheduler(db)
    for i, stream in enumerate(param_streams):
        client = WorkloadClient(f"c{i + 1}")
        for params in stream:
            client.add_query(str(params), lambda p=params: st.execute(p))
        sched.add_client(client)
    report = sched.run(cold=True)
    print(report.p99_ms, report.throughput_qps)

``run(interleave=False)`` replays the same clients one after another —
the uncontended baseline a contended run is compared against.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ExecutionError
from repro.runtime import CostLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database
    from repro.exec.stats import StreamingRun


def nearest_rank_ms(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile — deterministic, no interpolation.

    The one percentile definition every latency report in the repo
    uses (workload reports, admission queue waits): sort, take the
    value at rank ``ceil(pct/100 × n)``, clamped to ``[1, n]``.  An
    empty sample reports 0.0; a single sample is every percentile of
    itself.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered),
                      math.ceil(pct / 100.0 * len(ordered))))
    return ordered[rank - 1]


@dataclass
class QueryRecord:
    """One finished query of a scheduled workload."""

    client: str
    label: str
    rows: int
    #: Shared-clock time when the client started this query.
    start_ms: float
    #: Shared-clock time when the last batch drained.
    finish_ms: float
    #: The query's own charges (isolated from interleaved queries).
    ledger: CostLedger

    @property
    def latency_ms(self) -> float:
        """Response time on the shared clock, queueing included."""
        return self.finish_ms - self.start_ms


@dataclass
class WorkloadReport:
    """Everything measured about one scheduled workload run."""

    records: list[QueryRecord]
    started_ms: float
    finished_ms: float

    @property
    def makespan_ms(self) -> float:
        """Shared-clock span from admission to the last query draining."""
        return self.finished_ms - self.started_ms

    def latencies_ms(self) -> list[float]:
        """Per-query latencies, in completion order."""
        return [r.latency_ms for r in self.records]

    def percentile_ms(self, pct: float) -> float:
        """Nearest-rank percentile of per-query latency (deterministic)."""
        return nearest_rank_ms(self.latencies_ms(), pct)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99)

    @property
    def mean_ms(self) -> float:
        lats = self.latencies_ms()
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def rows(self) -> int:
        """Total rows produced across every query."""
        return sum(r.rows for r in self.records)

    @property
    def throughput_qps(self) -> float:
        """Queries completed per simulated second."""
        if self.makespan_ms <= 0:
            return 0.0
        return len(self.records) / (self.makespan_ms / 1000.0)

    def total_ledger(self) -> CostLedger:
        """Sum of every query's ledger (conservation checks)."""
        total = CostLedger()
        for record in self.records:
            total.add(record.ledger)
        return total

    def for_client(self, name: str) -> list[QueryRecord]:
        """This client's records, in its completion order."""
        return [r for r in self.records if r.client == name]

    def summary_dict(self) -> dict:
        """The workload-report summary as one flat JSON-ready dict.

        The shared schema (``workload-report/v1``) every bench artifact
        embeds — the concurrency experiment and the serving harness
        emit the same keys, so downstream tooling parses one shape.
        """
        return {
            "schema": "workload-report/v1",
            "queries": len(self.records),
            "rows": self.rows,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "makespan_ms": self.makespan_ms,
            "throughput_qps": self.throughput_qps,
        }

    def to_json(self, detail: bool = False) -> str:
        """A deterministic one-line JSON string of this report.

        The default is :meth:`summary_dict` — the exact byte shape the
        committed bench artifacts embed.  ``detail=True`` serializes
        :meth:`detail_dict` instead: every record with its full ledger,
        loadable back via :meth:`from_detail_dict`.
        """
        payload = self.detail_dict() if detail else self.summary_dict()
        return json.dumps(payload, sort_keys=True)

    def detail_dict(self) -> dict:
        """The round-trippable shape: every record, ledgers included.

        Percentiles and throughput are deliberately *not* stored — a
        loaded report recomputes them from the records, so the summary
        can never drift from the detail it claims to summarize.
        """
        return {
            "schema": "workload-report-detail/v1",
            "started_ms": self.started_ms,
            "finished_ms": self.finished_ms,
            "records": [
                {
                    "client": r.client,
                    "label": r.label,
                    "rows": r.rows,
                    "start_ms": r.start_ms,
                    "finish_ms": r.finish_ms,
                    "ledger": r.ledger.to_dict(),
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_detail_dict(cls, data: dict) -> "WorkloadReport":
        """Rebuild a report serialized by :meth:`detail_dict`."""
        schema = data.get("schema")
        if schema != "workload-report-detail/v1":
            raise ExecutionError(
                f"unsupported workload-report schema {schema!r}"
            )
        return cls(
            records=[
                QueryRecord(
                    client=r["client"],
                    label=r["label"],
                    rows=r["rows"],
                    start_ms=r["start_ms"],
                    finish_ms=r["finish_ms"],
                    ledger=CostLedger.from_dict(r["ledger"]),
                )
                for r in data["records"]
            ],
            started_ms=data["started_ms"],
            finished_ms=data["finished_ms"],
        )


#: Starts one query: returns a StreamingRun, or any object (a Cursor)
#: exposing the run as a ``stream`` attribute.
QueryFactory = Callable[[], object]


class WorkloadClient:
    """A closed-loop client: a queue of queries replayed back-to-back.

    ``weight`` buys scheduling priority: a weight-``w`` client drains
    ``w`` quanta per round-robin visit, so heavier clients finish
    sooner on the same shared substrate.
    """

    def __init__(self, name: str, weight: int = 1):
        if weight < 1:
            raise ValueError("client weight must be >= 1")
        self.name = name
        self.weight = weight
        self._pending: deque[tuple[str, QueryFactory]] = deque()
        self._current: "StreamingRun | None" = None
        self._label = ""
        self._start_ms = 0.0

    def add_query(self, label: str, start: QueryFactory) -> "WorkloadClient":
        """Queue one query; ``start`` is called when it gets scheduled.

        Deferred start keeps arrival semantics honest (a query's clock
        starts when its client reaches it, not at workload build time)
        and lets the factory go through the session layer — e.g.
        ``lambda: statement.execute(params)`` — so cached-plan replay
        happens inside the measured run of the workload.
        """
        self._pending.append((label, start))
        return self

    @property
    def queries_left(self) -> int:
        """Queued queries not yet finished (the live one included)."""
        return len(self._pending) + (1 if self._current is not None else 0)

    def _step(self, scheduler: "CooperativeScheduler") -> bool:
        """Advance by one batch; False when this client is done."""
        run = self._current
        if run is None:
            if not self._pending:
                return False
            self._label, start = self._pending.popleft()
            self._start_ms = scheduler.runtime.clock.total_ms
            handle = start()
            run = getattr(handle, "stream", handle)
            if run is None or not hasattr(run, "next_batch"):
                raise ExecutionError(
                    f"client {self.name!r}: query {self._label!r} did "
                    "not produce a streaming run (EXPLAIN statements "
                    "cannot be scheduled)"
                )
            self._current = run
            # Join scheduling identity onto the query span the start()
            # factory just opened (capture/replay keys off this).
            scheduler.runtime.tracer.emit(
                "sched.start", query_id=getattr(run, "query_id", -1),
                value=self._start_ms, client=self.name, label=self._label,
                weight=self.weight,
            )
        if run.next_batch() is None:
            finish_ms = scheduler.runtime.clock.total_ms
            scheduler._records.append(QueryRecord(
                client=self.name,
                label=self._label,
                rows=run.rows_produced,
                start_ms=self._start_ms,
                finish_ms=finish_ms,
                ledger=run.ledger,
            ))
            scheduler.runtime.tracer.emit(
                "sched.finish", query_id=getattr(run, "query_id", -1),
                value=finish_ms - self._start_ms, client=self.name,
                label=self._label, rows=run.rows_produced,
            )
            self._current = None
        return True


class CooperativeScheduler:
    """Round-robin (and priority-weighted) interleaver of N clients.

    One scheduler drives one database's shared runtime.  ``quantum``
    is the number of operator batches one visit drains per unit of
    client weight — the granularity of interleaving, and therefore of
    contention on the shared disk head and buffer pool.
    """

    def __init__(self, db: "Database", quantum: int = 1):
        if quantum < 1:
            raise ValueError("scheduler quantum must be >= 1 batch")
        self.db = db
        self.runtime = db.runtime
        self.quantum = quantum
        self._clients: list[WorkloadClient] = []
        self._records: list[QueryRecord] = []

    def add_client(self, client: WorkloadClient) -> WorkloadClient:
        """Admit a client; round-robin order is admission order.

        The weight is validated *here*, not just at construction: a
        weight mutated to zero or negative after ``__init__`` would
        make every scheduling visit grant ``weight × quantum = 0``
        batches — the client never progresses and :meth:`run` spins
        forever on its undrained queue.
        """
        if client.weight < 1:
            raise ExecutionError(
                f"client {client.name!r} has non-positive weight "
                f"{client.weight}; a zero-batch slice would never "
                "drain its queue"
            )
        self._clients.append(client)
        return client

    def client(self, name: str, weight: int = 1) -> WorkloadClient:
        """Create *and* admit a client in one call."""
        return self.add_client(WorkloadClient(name, weight))

    def run(self, cold: bool = False,
            interleave: bool = True) -> WorkloadReport:
        """Drain every client's queue; returns the workload report.

        ``cold=True`` resets the shared substrate once, up front (the
        whole workload then runs against one cold engine — individual
        queries are warm-start, as concurrent traffic is).
        ``interleave=False`` runs clients to completion one after
        another in admission order: the serial baseline, same total
        work, no contention.

        Clients' queues are *consumed* by a run: comparing schedules
        (say serial vs contended) means building a fresh scheduler per
        run, so re-running one whose clients are already drained
        raises instead of silently measuring an empty workload.
        """
        if self._clients and not any(c.queries_left for c in self._clients):
            raise ExecutionError(
                "every client's queue is already drained; build a fresh "
                "schedule to run the workload again"
            )
        if cold:
            self.runtime.cold_start()
        self._records = []
        started_ms = self.runtime.clock.total_ms
        tracer = self.runtime.tracer
        if interleave:
            live = list(self._clients)
            while live:
                still: list[WorkloadClient] = []
                for client in live:
                    tracer.emit("sched.grant", client=client.name,
                                batches=client.weight * self.quantum)
                    alive = True
                    for _ in range(client.weight * self.quantum):
                        alive = client._step(self)
                        if not alive:
                            break
                    if alive:
                        still.append(client)
                live = still
        else:
            for client in self._clients:
                tracer.emit("sched.grant", client=client.name,
                            batches=client.weight * self.quantum)
                while client._step(self):
                    pass
        return WorkloadReport(
            records=self._records,
            started_ms=started_ms,
            finished_ms=self.runtime.clock.total_ms,
        )
