"""Small plumbing operators: Filter, Project, MapProject, Limit, Materialize.

Each implements both execution protocols: the classic ``rows()`` pipeline
and a columnar ``batches()`` path that consumes child chunks whole —
filters narrow by selection vector, projections share column payloads,
and row-function maps take an optional vectorized column implementation.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.context import ExecutionContext
from repro.errors import PlanningError
from repro.exec.expressions import Predicate, require_columns
from repro.exec.iterator import Batch, Chunk, DEFAULT_BATCH_SIZE, Operator
from repro.storage.types import Column, Row, Schema


class Filter(Operator):
    """Drop child rows that fail a predicate."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        require_columns(child.schema, predicate)
        self.schema = child.schema

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        return f"Filter({self.predicate!r})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        matches = self.predicate.bind(self.schema)
        for row in self.child.rows(ctx):
            ctx.charge_inspect()
            if matches(row):
                yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        filter_chunk = self.predicate.bind_chunk(self.schema)
        filter_rows = self.predicate.bind_filter(self.schema)
        for batch in self.child.batches(ctx):
            ctx.charge_inspect(len(batch))
            if isinstance(batch, Chunk):
                kept = filter_chunk(batch)
                if kept is not None:
                    yield kept
            else:
                kept_rows = filter_rows(batch)
                if kept_rows:
                    yield kept_rows


class Project(Operator):
    """Keep a subset of columns, in the given order."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        if not columns:
            raise PlanningError("Project needs at least one column")
        self.child = child
        self.columns = list(columns)
        positions = [child.schema.index_of(c) for c in self.columns]
        self._positions = positions
        self.schema = Schema([child.schema.columns[p] for p in positions])

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        return f"Project({', '.join(self.columns)})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        positions = self._positions
        for row in self.child.rows(ctx):
            yield tuple(row[p] for p in positions)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        positions = self._positions
        names = self.schema.column_names
        for batch in self.child.batches(ctx):
            if isinstance(batch, Chunk):
                yield batch.project(positions, names)
            else:
                yield [tuple(row[p] for p in positions) for row in batch]


class MapProject(Operator):
    """Compute derived columns with an arbitrary row function.

    The caller supplies the output schema explicitly — the executor cannot
    infer types from a Python callable.  An optional ``vector``
    implementation (``chunk -> column payloads``) lets the columnar path
    compute every output column with whole-array operations; it must be
    value-equivalent to mapping ``fn`` row-wise.
    """

    def __init__(self, child: Operator, out_schema: Schema,
                 fn: Callable[[Row], Row],
                 vector: Optional[Callable[[Chunk], Sequence]] = None):
        self.child = child
        self.schema = out_schema
        self.fn = fn
        self.vector = vector

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        fn = self.fn
        for row in self.child.rows(ctx):
            out = fn(row)
            self.schema.validate_row(out)
            yield out

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        fn = self.fn
        vector = self.vector
        names = self.schema.column_names
        validate = self.schema.validate_row
        for batch in self.child.batches(ctx):
            if vector is not None and isinstance(batch, Chunk):
                columns = vector(batch)
                if columns is not None:
                    # Arity is right by construction: one payload per
                    # output column, all of the chunk's view length.
                    yield Chunk.from_columns(names, columns)
                    continue
            out = [fn(row) for row in batch]
            for row in out:
                validate(row)
            yield out


class Rename(Operator):
    """Rename columns (aliasing for self-joins); values pass through."""

    def __init__(self, child: Operator, mapping: dict[str, str]):
        self.child = child
        self.mapping = dict(mapping)
        columns = []
        for col in child.schema.columns:
            new_name = self.mapping.get(col.name, col.name)
            columns.append(Column(new_name, col.ctype, col.length))
        self.schema = Schema(columns)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        return f"Rename({self.mapping})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.rows(ctx)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return self.child.batches(ctx)


class Limit(Operator):
    """Stop after ``n`` rows (early pipeline termination)."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise PlanningError("Limit must be non-negative")
        self.child = child
        self.n = n
        self.schema = child.schema

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def name(self) -> str:
        return f"Limit({self.n})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.n == 0:
            return
        emitted = 0
        for row in self.child.rows(ctx):
            yield row
            emitted += 1
            if emitted >= self.n:
                return

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        remaining = self.n
        if remaining == 0:
            return
        for batch in self.child.batches(ctx):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch


class RowCounter(Operator):
    """A transparent pass-through that records its output cardinality.

    The planner wraps every plan-tree node with one so ``explain()`` can
    report actual alongside estimated rows.  It charges nothing and never
    re-chunks, so a counted plan produces byte-identical rows and
    identical simulated costs to the bare tree.  It also hides itself
    from plan rendering: ``name()`` and ``children()`` delegate to the
    wrapped operator, so :func:`~repro.exec.iterator.explain` output is
    unchanged.
    """

    def __init__(self, child: Operator):
        self.child = child
        self.schema = child.schema
        #: Rows produced by the most recent execution; None before any.
        self.rows_seen: int | None = None

    def children(self) -> tuple[Operator, ...]:
        return self.child.children()

    def name(self) -> str:
        return self.child.name()

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        self.rows_seen = 0
        for row in self.child.rows(ctx):
            self.rows_seen += 1
            yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        self.rows_seen = 0
        for batch in self.child.batches(ctx):
            self.rows_seen += len(batch)
            yield batch


class Materialize(Operator):
    """Run the child once, cache its output, replay it on re-execution.

    Used for join inputs that are consumed multiple times; replays charge
    only emission CPU, modeling an in-memory temp table.
    """

    def __init__(self, child: Operator):
        self.child = child
        self.schema = child.schema
        self._cache: list[Row] | None = None
        self._chunks: list[Chunk] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self._cache is None:
            self._cache = [
                row for batch in self.child.batches(ctx) for row in batch
            ]
        else:
            ctx.charge_emit(len(self._cache))
        yield from self._cache

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        if self._cache is None:
            # Materialize fully before yielding (like rows() does) so a
            # partially drained first run — e.g. under a Limit — still
            # leaves a complete cache for re-execution.
            self._cache = [
                row for batch in self.child.batches(ctx) for row in batch
            ]
        else:
            ctx.charge_emit(len(self._cache))
        if self._chunks is None:
            # Transpose once per materialization; replays share the
            # columnar payloads.
            names = self.schema.column_names
            cache = self._cache
            self._chunks = [
                Chunk.from_rows(names, cache[start:start + DEFAULT_BATCH_SIZE])
                for start in range(0, len(cache), DEFAULT_BATCH_SIZE)
            ]
        yield from self._chunks

    def invalidate(self) -> None:
        """Drop the cache (e.g. between measured runs)."""
        self._cache = None
        self._chunks = None
